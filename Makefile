# Development entry points. `make check` is the PR gate: everything
# builds, every test passes, and formatting is clean.

.PHONY: all build test fmt fmt-apply fuzz-smoke trace-smoke solver-smoke check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# dune's @fmt covers dune files (always available); OCaml sources are
# checked only when ocamlformat is installed, since the container
# image does not bake it in.
fmt:
	dune build @fmt
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  echo "checking OCaml formatting"; \
	  dune build @fmt --auto-promote 2>/dev/null || true; \
	  git diff --exit-code -- '*.ml' '*.mli'; \
	else \
	  echo "ocamlformat not installed; skipping OCaml source check"; \
	fi

fmt-apply:
	dune build @fmt --auto-promote || true

# smoke-scale run of the bench fuzz stage: fails if the combined
# symex+fuzz suite stops strictly increasing edge coverage somewhere
fuzz-smoke:
	dune exec bench/main.exe -- fast fuzz --fuzz-json /tmp/eywa-fuzz-smoke.json
	@grep -q '"any_strict_increase": true' /tmp/eywa-fuzz-smoke.json \
	  || { echo "fuzz-smoke: no model gained edge coverage"; exit 1; }

# PR4 smoke: the wall-clock-stripped trace of a run is byte-identical
# at jobs=1 on a cold cache vs jobs=4 on the warm cache (`eywa trace`
# also checks well-formedness and the JSONL round-trip on the way),
# and the stats/bench JSON artifacts round-trip the canonical printer
trace-smoke:
	rm -rf /tmp/eywa-trace-smoke && mkdir -p /tmp/eywa-trace-smoke
	dune exec bin/eywa_cli.exe -- run RR -k 3 --timeout 5 --jobs 1 \
	  --cache-dir /tmp/eywa-trace-smoke/cache \
	  --trace-out /tmp/eywa-trace-smoke/t1.jsonl > /dev/null
	dune exec bin/eywa_cli.exe -- run RR -k 3 --timeout 5 --jobs 4 \
	  --cache-dir /tmp/eywa-trace-smoke/cache \
	  --trace-out /tmp/eywa-trace-smoke/t2.jsonl > /dev/null
	dune exec bin/eywa_cli.exe -- trace /tmp/eywa-trace-smoke/t1.jsonl \
	  --strip-wall --out /tmp/eywa-trace-smoke/s1.jsonl
	dune exec bin/eywa_cli.exe -- trace /tmp/eywa-trace-smoke/t2.jsonl \
	  --strip-wall --out /tmp/eywa-trace-smoke/s2.jsonl
	@cmp /tmp/eywa-trace-smoke/s1.jsonl /tmp/eywa-trace-smoke/s2.jsonl \
	  || { echo "trace-smoke: stripped traces differ across jobs/cache"; exit 1; }
	@echo "trace-smoke: stripped traces byte-identical"
	dune exec bin/eywa_cli.exe -- stats RR -k 3 --timeout 5 --json \
	  > /tmp/eywa-trace-smoke/stats.json
	dune exec bin/eywa_cli.exe -- trace --json /tmp/eywa-trace-smoke/stats.json
	dune exec bench/main.exe -- fast table1 \
	  --summary-json /tmp/eywa-trace-smoke/summary.json > /dev/null
	dune exec bin/eywa_cli.exe -- trace --json /tmp/eywa-trace-smoke/summary.json

# PR5 smoke: the counterexample cache must not change behaviour — the
# emitted tests and the wall-clock-stripped trace of a run are
# byte-identical with the cache on vs `--no-cex-cache` — and the bench
# solver stage must show it halving (or better) executed solver
# decisions across the model suite
solver-smoke:
	rm -rf /tmp/eywa-solver-smoke && mkdir -p /tmp/eywa-solver-smoke
	dune exec bin/eywa_cli.exe -- run CNAME -k 3 --timeout 5 \
	  --trace-out /tmp/eywa-solver-smoke/t-on.jsonl \
	  | grep -v '^wrote trace' > /tmp/eywa-solver-smoke/tests-on.txt
	dune exec bin/eywa_cli.exe -- run CNAME -k 3 --timeout 5 --no-cex-cache \
	  --trace-out /tmp/eywa-solver-smoke/t-off.jsonl \
	  | grep -v '^wrote trace' > /tmp/eywa-solver-smoke/tests-off.txt
	@cmp /tmp/eywa-solver-smoke/tests-on.txt /tmp/eywa-solver-smoke/tests-off.txt \
	  || { echo "solver-smoke: tests differ with cache on vs off"; exit 1; }
	dune exec bin/eywa_cli.exe -- trace /tmp/eywa-solver-smoke/t-on.jsonl \
	  --strip-wall --out /tmp/eywa-solver-smoke/s-on.jsonl
	dune exec bin/eywa_cli.exe -- trace /tmp/eywa-solver-smoke/t-off.jsonl \
	  --strip-wall --out /tmp/eywa-solver-smoke/s-off.jsonl
	@cmp /tmp/eywa-solver-smoke/s-on.jsonl /tmp/eywa-solver-smoke/s-off.jsonl \
	  || { echo "solver-smoke: stripped traces differ with cache on vs off"; exit 1; }
	@echo "solver-smoke: tests and stripped traces byte-identical on vs off"
	dune exec bench/main.exe -- fast solver \
	  --solver-json /tmp/eywa-solver-smoke/solver.json > /dev/null
	@grep -q '"decision_reduction_ok": true' /tmp/eywa-solver-smoke/solver.json \
	  || { echo "solver-smoke: cache saves less than 2x decisions"; exit 1; }
	@grep -q '"tests_identical": true' /tmp/eywa-solver-smoke/solver.json \
	  || { echo "solver-smoke: bench tests differ on vs off"; exit 1; }

check: build test fuzz-smoke trace-smoke solver-smoke fmt

bench:
	dune exec bench/main.exe -- fast

clean:
	dune clean
