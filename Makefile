# Development entry points. `make check` is the PR gate: everything
# builds, every test passes, and formatting is clean.

.PHONY: all build test fmt fmt-apply fuzz-smoke check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# dune's @fmt covers dune files (always available); OCaml sources are
# checked only when ocamlformat is installed, since the container
# image does not bake it in.
fmt:
	dune build @fmt
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  echo "checking OCaml formatting"; \
	  dune build @fmt --auto-promote 2>/dev/null || true; \
	  git diff --exit-code -- '*.ml' '*.mli'; \
	else \
	  echo "ocamlformat not installed; skipping OCaml source check"; \
	fi

fmt-apply:
	dune build @fmt --auto-promote || true

# smoke-scale run of the bench fuzz stage: fails if the combined
# symex+fuzz suite stops strictly increasing edge coverage somewhere
fuzz-smoke:
	dune exec bench/main.exe -- fast fuzz --fuzz-json /tmp/eywa-fuzz-smoke.json
	@grep -q '"any_strict_increase": true' /tmp/eywa-fuzz-smoke.json \
	  || { echo "fuzz-smoke: no model gained edge coverage"; exit 1; }

check: build test fuzz-smoke fmt

bench:
	dune exec bench/main.exe -- fast

clean:
	dune clean
