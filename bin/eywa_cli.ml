(* The eywa command-line interface.

   eywa models                 list the Table 2 models
   eywa prompt MODEL           print the generated LLM prompts
   eywa run MODEL              synthesize and print test cases
   eywa fuzz MODEL             synthesize, then coverage-guided fuzz the suite
   eywa difftest MODEL         run differential testing and triage
   eywa stats MODEL            synthesize + difftest, print stage statistics
   eywa trace FILE             inspect/strip/convert a JSONL trace
   eywa metrics MODEL          synthesize + difftest, print metrics exposition
   eywa bugs                   print the known-bug catalog (Table 3 rows)

   Synthesis commands accept --cache-dir DIR: draw artifacts are
   content-addressed there and reused by any later invocation with
   the same inputs (output is byte-identical either way).
   run/fuzz/difftest accept --trace-out FILE (JSONL span trace) and
   --metrics-out FILE (Prometheus text exposition); stats accepts
   --json for the bench-compatible summary schema. *)

open Cmdliner

module Model_def = Eywa_models.Model_def
module All = Eywa_models.All_models
module Difftest = Eywa_difftest.Difftest

let oracle = Eywa_llm.Gpt.oracle ()

let find_model id =
  match All.find (String.uppercase_ascii id) with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown model %S; available: %s" id
           (String.concat ", " (List.map (fun (m : Model_def.t) -> m.id) All.all)))

(* ----- arguments ----- *)

let model_arg =
  let doc = "Model name from Table 2 (e.g. DNAME, RMAP-PL, SERVER)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let k_arg =
  let doc = "Number of model implementations to draw from the LLM." in
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc)

let temperature_arg =
  let doc = "Sampling temperature (0.0 - 1.0)." in
  Arg.(value & opt float 0.6 & info [ "temperature"; "t" ] ~docv:"TAU" ~doc)

let seed_arg =
  let doc = "Base random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let timeout_arg =
  let doc =
    "Symbolic-execution budget per model, in budget seconds (a \
     deterministic tick budget calibrated to roughly wall seconds)."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the synthesis and difftest pools. Defaults to \
     $(b,EYWA_JOBS) or the recommended domain count; output is identical at \
     any value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Persist per-draw synthesis artifacts in this directory, keyed by a \
     content hash of every input (model, prompts, seed, temperature, \
     budgets). Later runs with the same inputs reuse them; the output is \
     byte-identical to an uncached run."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_of = function
  | None -> None
  | Some dir -> Some (Eywa_core.Cache.create ~dir ())

let limit_arg =
  let doc = "Print at most this many tests." in
  Arg.(value & opt int 50 & info [ "limit" ] ~docv:"N" ~doc)

let no_cex_cache_arg =
  let doc =
    "Disable the symex counterexample cache, executing every branch \
     feasibility probe as a full solve. Generated tests are byte-identical \
     either way; only the executed solver work differs (compare with \
     'eywa stats --json' solver_decisions)."
  in
  Arg.(value & flag & info [ "no-cex-cache" ] ~doc)

let trace_out_arg =
  let doc =
    "Write the run's span trace as JSONL to this file (one item per line, \
     meta line first). Deterministic fields never include wall time; strip \
     the rest with 'eywa trace FILE --strip-wall'."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc = "Write a Prometheus-style metrics exposition to this file." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* one observability context per command invocation, created only when
   an output was requested *)
let obs_for ~label trace_out metrics_out =
  match (trace_out, metrics_out) with
  | None, None -> None
  | _ -> Some (Eywa_obs.Obs.create ~label ())

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let finish_obs obs trace_out metrics_out =
  match obs with
  | None -> ()
  | Some ctx ->
      (match trace_out with
      | Some path ->
          write_file path (Eywa_obs.Export.to_jsonl (Eywa_obs.Obs.finish ctx));
          Printf.printf "wrote trace to %s\n" path
      | None -> ());
      (match metrics_out with
      | Some path ->
          write_file path (Eywa_obs.Metrics.expose (Eywa_obs.Obs.metrics ctx));
          Printf.printf "wrote metrics to %s\n" path
      | None -> ())

let fuzz_seed_arg =
  let doc = "Base fuzz seed; draw i fuzzes at SEED + i." in
  Arg.(value & opt int 42 & info [ "fuzz-seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc =
    "Candidate executions per model draw — a deterministic tick budget, \
     never wall clock."
  in
  Arg.(value & opt int 500 & info [ "budget" ] ~docv:"N" ~doc)

let max_new_tests_arg =
  let doc = "Stop a draw's fuzz loop after this many coverage-increasing tests." in
  Arg.(value & opt int 64 & info [ "max-new-tests" ] ~docv:"N" ~doc)

let suite_coverage (s : Eywa_core.Pipeline.t) (m : Model_def.t) tests =
  Eywa_fuzz.Coverage.of_suite ~graph:m.Model_def.graph ~main:s.main
    s.programs tests

let save_arg =
  let doc = "Also save the generated suite to this file." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let suite_arg =
  let doc = "Saved test-suite file (from 'eywa run --save')." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"SUITE" ~doc)

let version_arg =
  let doc = "DNS implementation versions to test: old or current." in
  Arg.(value & opt (enum [ ("old", Eywa_dns.Impls.Old);
                           ("current", Eywa_dns.Impls.Current) ])
         Eywa_dns.Impls.Old
       & info [ "versions" ] ~docv:"VERSIONS" ~doc)

(* ----- commands ----- *)

let models_cmd =
  let run () =
    Printf.printf "%-10s %-11s %-9s %s\n" "Protocol" "Model" "Spec LoC" "Entry module";
    List.iter
      (fun (m : Model_def.t) ->
        Printf.printf "%-10s %-11s %-9d %s\n" m.protocol m.id m.spec_loc
          (Eywa_core.Emodule.name m.main))
      All.all;
    `Ok ()
  in
  Cmd.v (Cmd.info "models" ~doc:"List the available protocol models.")
    Term.(ret (const run $ const ()))

let prompt_cmd =
  let run id =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        match Eywa_core.Graph.synthesis_order m.graph ~main:m.main with
        | Error e -> `Error (false, e)
        | Ok order ->
            List.iter
              (fun em ->
                match em with
                | Eywa_core.Emodule.Func f ->
                    let p = Eywa_core.Prompt.for_module m.graph f in
                    Printf.printf "=== prompt for %s ===\n%s\n\n" f.name
                      p.Eywa_core.Prompt.user
                | Eywa_core.Emodule.Regex _ | Eywa_core.Emodule.Custom _ -> ())
              order;
            `Ok ())
  in
  Cmd.v (Cmd.info "prompt" ~doc:"Print the LLM prompts a model generates.")
    Term.(ret (const run $ model_arg))

let run_cmd =
  let run id k temperature seed timeout jobs limit save cache_dir trace_out
      metrics_out no_cex_cache =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        let obs = obs_for ~label:m.id trace_out metrics_out in
        match
          Model_def.synthesize ?cache:(cache_of cache_dir) ?obs ~k ~temperature
            ~seed ?timeout ~cex_cache:(not no_cex_cache) ?jobs ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s ->
            Printf.printf
              "%s: %d unique tests, generated LoC %d/%d, %d/%d models compiled\n"
              m.id
              (List.length s.unique_tests)
              s.loc_min s.loc_max (List.length s.programs) k;
            List.iteri
              (fun i t ->
                if i < limit then
                  print_endline ("  " ^ Eywa_core.Testcase.to_string t))
              s.unique_tests;
            if List.length s.unique_tests > limit then
              Printf.printf "  ... (%d more)\n"
                (List.length s.unique_tests - limit);
            (match save with
            | Some path ->
                Eywa_core.Serialize.save path s.unique_tests;
                Printf.printf "saved %d tests to %s\n"
                  (List.length s.unique_tests) path
            | None -> ());
            finish_obs obs trace_out metrics_out;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Synthesize a model and print its generated tests.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ limit_arg $ save_arg $ cache_dir_arg
               $ trace_out_arg $ metrics_out_arg $ no_cex_cache_arg))

let fuzz_cmd =
  let run id k temperature seed timeout jobs fuzz_seed budget max_new_tests
      limit save cache_dir trace_out metrics_out =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        let cache = cache_of cache_dir in
        let obs = obs_for ~label:m.id trace_out metrics_out in
        match
          Model_def.synthesize ?cache ?obs ~k ~temperature ~seed ?timeout ?jobs
            ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s -> (
            let fuzz_config =
              {
                Eywa_fuzz.Fuzz.default_config with
                fuzz_seed;
                budget;
                max_new_tests;
              }
            in
            match
              Model_def.fuzz ?cache ?obs ~fuzz_config ~k ~temperature ~seed
                ?timeout ?jobs ~oracle m s
            with
            | Error e -> `Error (false, e)
            | Ok f ->
                Printf.printf
                  "%s: %d symex tests + %d fuzz tests = %d combined\n" m.id
                  (List.length s.unique_tests)
                  (List.length f.Eywa_fuzz.Fuzz.fuzz_tests)
                  (List.length f.Eywa_fuzz.Fuzz.combined_tests);
                List.iter
                  (fun (d : Eywa_fuzz.Fuzz.draw_fuzz) ->
                    Printf.printf
                      "  draw %2d: %4d execs, edges %3d -> %3d of %3d, %d new \
                       tests\n"
                      d.f_index d.execs d.edges_seed d.edges_after
                      d.edges_static
                      (List.length d.new_tests))
                  f.Eywa_fuzz.Fuzz.per_draw;
                List.iteri
                  (fun i t ->
                    if i < limit then
                      print_endline ("  " ^ Eywa_core.Testcase.to_string t))
                  f.Eywa_fuzz.Fuzz.fuzz_tests;
                if List.length f.Eywa_fuzz.Fuzz.fuzz_tests > limit then
                  Printf.printf "  ... (%d more)\n"
                    (List.length f.Eywa_fuzz.Fuzz.fuzz_tests - limit);
                (match save with
                | Some path ->
                    Eywa_core.Serialize.save path f.Eywa_fuzz.Fuzz.combined_tests;
                    Printf.printf "saved %d tests to %s\n"
                      (List.length f.Eywa_fuzz.Fuzz.combined_tests)
                      path
                | None -> ());
                finish_obs obs trace_out metrics_out;
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Synthesize a model, then grow its test suite with the \
          coverage-guided mutational fuzzer (deterministic in the fuzz seed \
          and execution budget).")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ fuzz_seed_arg $ budget_arg
               $ max_new_tests_arg $ limit_arg $ save_arg $ cache_dir_arg
               $ trace_out_arg $ metrics_out_arg))

let replay_cmd =
  let run id suite version jobs =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        match Eywa_core.Serialize.load suite with
        | Error e -> `Error (false, e)
        | Ok tests ->
            Printf.printf "loaded %d tests from %s\n" (List.length tests) suite;
            (match m.protocol with
            | "DNS" ->
                let report =
                  Eywa_models.Dns_adapter.run ?jobs ~model_id:m.id ~version tests
                in
                Format.printf "%a" Difftest.pp_report report
            | "BGP" ->
                let report =
                  Eywa_models.Bgp_adapter.run ?jobs ~model_id:m.id tests
                in
                Format.printf "%a" Difftest.pp_report report
            | _ -> print_endline "replay currently supports DNS and BGP models");
            `Ok ())
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Differentially replay a saved test suite without re-synthesis.")
    Term.(ret (const run $ model_arg $ suite_arg $ version_arg $ jobs_arg))

let difftest_cmd =
  let run id k temperature seed timeout jobs version cache_dir trace_out
      metrics_out =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        let obs = obs_for ~label:m.id trace_out metrics_out in
        let osink = Option.map Eywa_obs.Obs.sink obs in
        match
          Model_def.synthesize ?cache:(cache_of cache_dir) ?obs ~k ~temperature
            ~seed ?timeout ?jobs ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s ->
            Printf.printf "%s: %d unique tests\n" m.id (List.length s.unique_tests);
            let report, causes =
              match m.protocol with
              | "DNS" ->
                  ( Eywa_models.Dns_adapter.run ?jobs ?sink:osink ~model_id:m.id
                      ~version s.unique_tests,
                    List.map
                      (fun (impl, q) ->
                        (impl, Eywa_dns.Lookup.quirk_to_string q))
                      (Eywa_models.Dns_adapter.quirks_triggered ?jobs ~version
                         [ (m.id, s.unique_tests) ]) )
              | "BGP" ->
                  ( Eywa_models.Bgp_adapter.run ?jobs ?sink:osink ~model_id:m.id
                      s.unique_tests,
                    List.map
                      (fun (impl, q) -> (impl, Eywa_bgp.Quirks.to_string q))
                      (Eywa_models.Bgp_adapter.quirks_triggered ?jobs
                         [ (m.id, s.unique_tests) ]) )
              | _ -> (
                  match Eywa_models.Smtp_adapter.state_graph_for s with
                  | Error e -> failwith e
                  | Ok graph ->
                      ( Eywa_models.Smtp_adapter.run ?jobs ?sink:osink ~graph
                          s.unique_tests,
                        List.map
                          (fun (impl, _) -> (impl, "accept-mail-without-helo"))
                          (Eywa_models.Smtp_adapter.quirks_triggered ?jobs ~graph
                             s.unique_tests) ))
            in
            Format.printf "%a" Difftest.pp_report report;
            print_endline "root causes:";
            List.iter
              (fun (impl, q) -> Printf.printf "  %-12s %s\n" impl q)
              causes;
            finish_obs obs trace_out metrics_out;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "difftest"
       ~doc:"Synthesize a model and differentially test the implementations.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ version_arg $ cache_dir_arg
               $ trace_out_arg $ metrics_out_arg))

let report_cmd =
  let run id k temperature seed timeout jobs version cache_dir =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m ->
        if m.protocol <> "DNS" then
          `Error (false, "report currently supports DNS models")
        else (
          match
            Model_def.synthesize ?cache:(cache_of cache_dir) ~k ~temperature
              ~seed ?timeout ?jobs ~oracle m
          with
          | Error e -> `Error (false, e)
          | Ok s ->
              let coverage = suite_coverage s m s.unique_tests in
              print_string
                (Eywa_models.Report.dns ~coverage ~model_id:m.id ~version
                   s.unique_tests);
              `Ok ())
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Synthesize a DNS model and print a filing-ready markdown bug report.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ version_arg $ cache_dir_arg))

let stats_json_arg =
  let doc =
    "Print the statistics as JSON instead of text, using the same schema as \
     the bench harness's --summary-json totals, so the two outputs diff \
     cleanly in CI."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let stats_cmd =
  let run id k temperature seed timeout jobs version cache_dir as_json =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        let collector = Eywa_core.Instrument.Collector.create () in
        let sink = Eywa_core.Instrument.Collector.sink collector in
        match
          Model_def.synthesize ?cache:(cache_of cache_dir) ~sink ~k
            ~temperature ~seed ?timeout ?jobs ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s ->
            (* drive the difftest stage too, so its events show up *)
            (match m.protocol with
            | "DNS" ->
                ignore
                  (Eywa_models.Report.dns ~sink ~model_id:m.id ~version
                     s.unique_tests)
            | "BGP" ->
                ignore
                  (Eywa_models.Bgp_adapter.run ?jobs ~sink ~model_id:m.id
                     s.unique_tests)
            | _ -> ());
            let summary = Eywa_core.Instrument.Collector.summary collector in
            let hit, total = suite_coverage s m s.unique_tests in
            if as_json then
              let module Json = Eywa_core.Serialize.Json in
              print_string
                (Json.to_string_pretty
                   (Json.Obj
                      [
                        ("bench", Json.Str "eywa-stats");
                        ("model", Json.Str m.id);
                        ("k", Json.Int k);
                        ("seed", Json.Int seed);
                        ("temperature", Json.Float temperature);
                        ("coverage_edges_hit", Json.Int hit);
                        ("coverage_edges_total", Json.Int total);
                        ("totals", Eywa_obs.Export.summary_totals summary);
                      ]))
            else begin
              Printf.printf
                "%s: pipeline statistics (k=%d, seed=%d, tau=%.2f)\n" m.id k
                seed temperature;
              print_endline
                (Format.asprintf "%a" Eywa_core.Instrument.Collector.pp_summary
                   summary);
              Printf.printf
                "coverage     %d / %d branch edges over %d models%s\n" hit
                total
                (List.length s.programs)
                (if total > 0 then
                   Printf.sprintf " (%.0f%%)"
                     (100.0 *. float_of_int hit /. float_of_int total)
                 else "")
            end;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Synthesize a model (and difftest it) with a collecting \
          instrumentation sink, then print per-stage statistics: draws, \
          rejections, deterministic symex ticks, paths, solver calls, cache \
          hits/misses, difftest disagreements. With --json, print the \
          bench-compatible summary schema instead.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ version_arg $ cache_dir_arg
               $ stats_json_arg))

let trace_file_arg =
  let doc = "Trace JSONL file (from --trace-out), or any JSON file with --json." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let strip_wall_arg =
  let doc =
    "Drop environment-classed items and attributes (wall-clock seconds, \
     cache traffic, pool utilization). The stripped trace of a run is \
     byte-identical at any --jobs and any cache state."
  in
  Arg.(value & flag & info [ "strip-wall" ] ~doc)

let trace_out_file_arg =
  let doc = "Write the (possibly stripped) canonical JSONL here instead of stdout." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let chrome_arg =
  let doc =
    "Also write a Chrome trace_event JSON file viewable in about://tracing \
     or Perfetto (logical clock, 1 tick = 1 ms)."
  in
  Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)

let json_doc_arg =
  let doc =
    "Treat FILE as a single JSON document (e.g. a --summary-json or stats \
     --json output): validate it and check it round-trips through the \
     canonical printer."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let trace_cmd =
  let module Json = Eywa_core.Serialize.Json in
  let run file strip_wall out chrome as_json =
    match read_file file with
    | exception Sys_error e -> `Error (false, e)
    | contents ->
        if as_json then (
          match Json.of_string contents with
          | Error e -> `Error (false, Printf.sprintf "%s: invalid JSON: %s" file e)
          | Ok v -> (
              (* canonical print must re-parse to the same value *)
              match Json.of_string (Json.to_string v) with
              | Ok v' when v' = v ->
                  Printf.printf "%s: valid JSON (%d bytes), round-trips through Serialize.Json\n"
                    file (String.length contents);
                  `Ok ()
              | Ok _ | Error _ ->
                  `Error (false, Printf.sprintf "%s: canonical round-trip mismatch" file)))
        else
          match Eywa_obs.Export.of_jsonl contents with
          | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
          | Ok t -> (
              match Eywa_obs.Trace.well_formed t with
              | Error e ->
                  `Error (false, Printf.sprintf "%s: malformed trace: %s" file e)
              | Ok () -> (
                  (* every trace we accept must survive the serializer *)
                  match Eywa_obs.Export.of_jsonl (Eywa_obs.Export.to_jsonl t) with
                  | Ok t' when t' = t ->
                      let t = if strip_wall then Eywa_obs.Trace.strip t else t in
                      let spans, events =
                        List.fold_left
                          (fun (s, e) -> function
                            | Eywa_obs.Trace.Span _ -> (s + 1, e)
                            | Eywa_obs.Trace.Event _ -> (s, e + 1))
                          (0, 0) t.Eywa_obs.Trace.items
                      in
                      (match out with
                      | Some path ->
                          write_file path (Eywa_obs.Export.to_jsonl t);
                          Printf.printf
                            "%s: well-formed trace %S, %d spans, %d events -> %s%s\n"
                            file t.Eywa_obs.Trace.label spans events path
                            (if strip_wall then " (wall-clock stripped)" else "")
                      | None ->
                          if strip_wall then
                            print_string (Eywa_obs.Export.to_jsonl t)
                          else
                            Printf.printf
                              "%s: well-formed trace %S, %d spans, %d events\n"
                              file t.Eywa_obs.Trace.label spans events);
                      (match chrome with
                      | Some path ->
                          write_file path (Eywa_obs.Export.chrome_trace t);
                          Printf.printf "wrote Chrome trace to %s\n" path
                      | None -> ());
                      `Ok ()
                  | Ok _ | Error _ ->
                      `Error
                        (false, Printf.sprintf "%s: JSONL round-trip mismatch" file)))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Validate, strip, or convert a JSONL span trace written by \
          --trace-out. Checks well-formedness (unique ids, every span \
          closed, parents open before children) and that the file \
          round-trips through the canonical serializer; --strip-wall \
          removes everything environment-dependent, --chrome exports for \
          about://tracing, --json instead validates a plain JSON document.")
    Term.(ret (const run $ trace_file_arg $ strip_wall_arg $ trace_out_file_arg
               $ chrome_arg $ json_doc_arg))

let strip_env_arg =
  let doc = "Omit environment-classed instruments (wall clock, cache, pool)." in
  Arg.(value & flag & info [ "strip-env" ] ~doc)

let metrics_cmd =
  let run id k temperature seed timeout jobs version cache_dir strip_env =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        let ctx = Eywa_obs.Obs.create ~label:m.id () in
        let sink = Eywa_obs.Obs.sink ctx in
        match
          Model_def.synthesize ?cache:(cache_of cache_dir) ~sink ~k
            ~temperature ~seed ?timeout ?jobs ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s ->
            (match m.protocol with
            | "DNS" ->
                ignore
                  (Eywa_models.Dns_adapter.run ?jobs ~sink ~model_id:m.id
                     ~version s.unique_tests)
            | "BGP" ->
                ignore
                  (Eywa_models.Bgp_adapter.run ?jobs ~sink ~model_id:m.id
                     s.unique_tests)
            | _ -> ());
            print_string
              (Eywa_obs.Metrics.expose ~strip_env (Eywa_obs.Obs.metrics ctx));
            `Ok ())
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Synthesize a model (and difftest it) through an observability \
          context, then print the metrics registry in Prometheus text \
          format. With --strip-env the output is deterministic across \
          machines, pool sizes and cache states.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ version_arg $ cache_dir_arg
               $ strip_env_arg))

let bugs_cmd =
  let run () =
    List.iter
      (fun (impl, (b : Eywa_dns.Impls.bug)) ->
        Printf.printf "DNS   %-12s %-55s %s\n" impl b.description
          (if b.new_bug then "new" else "known"))
      Eywa_dns.Impls.bug_catalog;
    List.iter
      (fun (impl, (b : Eywa_bgp.Impls.bug)) ->
        Printf.printf "BGP   %-12s %-55s %s\n" impl b.description
          (if b.new_bug then "new" else "known"))
      Eywa_bgp.Impls.bug_catalog;
    List.iter
      (fun (impl, (b : Eywa_smtp.Impls.bug)) ->
        Printf.printf "SMTP  %-12s %-55s %s\n" impl b.description
          (if b.new_bug then "new" else "known"))
      Eywa_smtp.Impls.bug_catalog;
    `Ok ()
  in
  Cmd.v (Cmd.info "bugs" ~doc:"Print the Table 3 bug catalog.")
    Term.(ret (const run $ const ()))

let () =
  let info =
    Cmd.info "eywa" ~version:"1.0.0"
      ~doc:"Model-based protocol testing with a simulated LLM oracle."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ models_cmd; prompt_cmd; run_cmd; fuzz_cmd; replay_cmd;
            difftest_cmd; report_cmd; stats_cmd; trace_cmd; metrics_cmd;
            bugs_cmd ]))
