(* The eywa command-line interface.

   eywa models                 list the Table 2 models
   eywa prompt MODEL           print the generated LLM prompts
   eywa run MODEL              synthesize and print test cases
   eywa fuzz MODEL             synthesize, then coverage-guided fuzz the suite
   eywa difftest MODEL         run differential testing and triage
   eywa stats MODEL            synthesize + difftest, print stage statistics
   eywa bugs                   print the known-bug catalog (Table 3 rows)

   Synthesis commands accept --cache-dir DIR: draw artifacts are
   content-addressed there and reused by any later invocation with
   the same inputs (output is byte-identical either way). *)

open Cmdliner

module Model_def = Eywa_models.Model_def
module All = Eywa_models.All_models
module Difftest = Eywa_difftest.Difftest

let oracle = Eywa_llm.Gpt.oracle ()

let find_model id =
  match All.find (String.uppercase_ascii id) with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown model %S; available: %s" id
           (String.concat ", " (List.map (fun (m : Model_def.t) -> m.id) All.all)))

(* ----- arguments ----- *)

let model_arg =
  let doc = "Model name from Table 2 (e.g. DNAME, RMAP-PL, SERVER)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let k_arg =
  let doc = "Number of model implementations to draw from the LLM." in
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc)

let temperature_arg =
  let doc = "Sampling temperature (0.0 - 1.0)." in
  Arg.(value & opt float 0.6 & info [ "temperature"; "t" ] ~docv:"TAU" ~doc)

let seed_arg =
  let doc = "Base random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let timeout_arg =
  let doc =
    "Symbolic-execution budget per model, in budget seconds (a \
     deterministic tick budget calibrated to roughly wall seconds)."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the synthesis and difftest pools. Defaults to \
     $(b,EYWA_JOBS) or the recommended domain count; output is identical at \
     any value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Persist per-draw synthesis artifacts in this directory, keyed by a \
     content hash of every input (model, prompts, seed, temperature, \
     budgets). Later runs with the same inputs reuse them; the output is \
     byte-identical to an uncached run."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_of = function
  | None -> None
  | Some dir -> Some (Eywa_core.Cache.create ~dir ())

let limit_arg =
  let doc = "Print at most this many tests." in
  Arg.(value & opt int 50 & info [ "limit" ] ~docv:"N" ~doc)

let fuzz_seed_arg =
  let doc = "Base fuzz seed; draw i fuzzes at SEED + i." in
  Arg.(value & opt int 42 & info [ "fuzz-seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc =
    "Candidate executions per model draw — a deterministic tick budget, \
     never wall clock."
  in
  Arg.(value & opt int 500 & info [ "budget" ] ~docv:"N" ~doc)

let max_new_tests_arg =
  let doc = "Stop a draw's fuzz loop after this many coverage-increasing tests." in
  Arg.(value & opt int 64 & info [ "max-new-tests" ] ~docv:"N" ~doc)

let suite_coverage (s : Eywa_core.Pipeline.t) (m : Model_def.t) tests =
  Eywa_fuzz.Coverage.of_suite ~graph:m.Model_def.graph ~main:s.main
    s.programs tests

let save_arg =
  let doc = "Also save the generated suite to this file." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let suite_arg =
  let doc = "Saved test-suite file (from 'eywa run --save')." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"SUITE" ~doc)

let version_arg =
  let doc = "DNS implementation versions to test: old or current." in
  Arg.(value & opt (enum [ ("old", Eywa_dns.Impls.Old);
                           ("current", Eywa_dns.Impls.Current) ])
         Eywa_dns.Impls.Old
       & info [ "versions" ] ~docv:"VERSIONS" ~doc)

(* ----- commands ----- *)

let models_cmd =
  let run () =
    Printf.printf "%-10s %-11s %-9s %s\n" "Protocol" "Model" "Spec LoC" "Entry module";
    List.iter
      (fun (m : Model_def.t) ->
        Printf.printf "%-10s %-11s %-9d %s\n" m.protocol m.id m.spec_loc
          (Eywa_core.Emodule.name m.main))
      All.all;
    `Ok ()
  in
  Cmd.v (Cmd.info "models" ~doc:"List the available protocol models.")
    Term.(ret (const run $ const ()))

let prompt_cmd =
  let run id =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        match Eywa_core.Graph.synthesis_order m.graph ~main:m.main with
        | Error e -> `Error (false, e)
        | Ok order ->
            List.iter
              (fun em ->
                match em with
                | Eywa_core.Emodule.Func f ->
                    let p = Eywa_core.Prompt.for_module m.graph f in
                    Printf.printf "=== prompt for %s ===\n%s\n\n" f.name
                      p.Eywa_core.Prompt.user
                | Eywa_core.Emodule.Regex _ | Eywa_core.Emodule.Custom _ -> ())
              order;
            `Ok ())
  in
  Cmd.v (Cmd.info "prompt" ~doc:"Print the LLM prompts a model generates.")
    Term.(ret (const run $ model_arg))

let run_cmd =
  let run id k temperature seed timeout jobs limit save cache_dir =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        match
          Model_def.synthesize ?cache:(cache_of cache_dir) ~k ~temperature
            ~seed ?timeout ?jobs ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s ->
            Printf.printf
              "%s: %d unique tests, generated LoC %d/%d, %d/%d models compiled\n"
              m.id
              (List.length s.unique_tests)
              s.loc_min s.loc_max (List.length s.programs) k;
            List.iteri
              (fun i t ->
                if i < limit then
                  print_endline ("  " ^ Eywa_core.Testcase.to_string t))
              s.unique_tests;
            if List.length s.unique_tests > limit then
              Printf.printf "  ... (%d more)\n"
                (List.length s.unique_tests - limit);
            (match save with
            | Some path ->
                Eywa_core.Serialize.save path s.unique_tests;
                Printf.printf "saved %d tests to %s\n"
                  (List.length s.unique_tests) path
            | None -> ());
            `Ok ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Synthesize a model and print its generated tests.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ limit_arg $ save_arg $ cache_dir_arg))

let fuzz_cmd =
  let run id k temperature seed timeout jobs fuzz_seed budget max_new_tests
      limit save cache_dir =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        let cache = cache_of cache_dir in
        match
          Model_def.synthesize ?cache ~k ~temperature ~seed ?timeout ?jobs
            ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s -> (
            let fuzz_config =
              {
                Eywa_fuzz.Fuzz.default_config with
                fuzz_seed;
                budget;
                max_new_tests;
              }
            in
            match
              Model_def.fuzz ?cache ~fuzz_config ~k ~temperature ~seed ?timeout
                ?jobs ~oracle m s
            with
            | Error e -> `Error (false, e)
            | Ok f ->
                Printf.printf
                  "%s: %d symex tests + %d fuzz tests = %d combined\n" m.id
                  (List.length s.unique_tests)
                  (List.length f.Eywa_fuzz.Fuzz.fuzz_tests)
                  (List.length f.Eywa_fuzz.Fuzz.combined_tests);
                List.iter
                  (fun (d : Eywa_fuzz.Fuzz.draw_fuzz) ->
                    Printf.printf
                      "  draw %2d: %4d execs, edges %3d -> %3d of %3d, %d new \
                       tests\n"
                      d.f_index d.execs d.edges_seed d.edges_after
                      d.edges_static
                      (List.length d.new_tests))
                  f.Eywa_fuzz.Fuzz.per_draw;
                List.iteri
                  (fun i t ->
                    if i < limit then
                      print_endline ("  " ^ Eywa_core.Testcase.to_string t))
                  f.Eywa_fuzz.Fuzz.fuzz_tests;
                if List.length f.Eywa_fuzz.Fuzz.fuzz_tests > limit then
                  Printf.printf "  ... (%d more)\n"
                    (List.length f.Eywa_fuzz.Fuzz.fuzz_tests - limit);
                (match save with
                | Some path ->
                    Eywa_core.Serialize.save path f.Eywa_fuzz.Fuzz.combined_tests;
                    Printf.printf "saved %d tests to %s\n"
                      (List.length f.Eywa_fuzz.Fuzz.combined_tests)
                      path
                | None -> ());
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Synthesize a model, then grow its test suite with the \
          coverage-guided mutational fuzzer (deterministic in the fuzz seed \
          and execution budget).")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ fuzz_seed_arg $ budget_arg
               $ max_new_tests_arg $ limit_arg $ save_arg $ cache_dir_arg))

let replay_cmd =
  let run id suite version jobs =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        match Eywa_core.Serialize.load suite with
        | Error e -> `Error (false, e)
        | Ok tests ->
            Printf.printf "loaded %d tests from %s\n" (List.length tests) suite;
            (match m.protocol with
            | "DNS" ->
                let report =
                  Eywa_models.Dns_adapter.run ?jobs ~model_id:m.id ~version tests
                in
                Format.printf "%a" Difftest.pp_report report
            | "BGP" ->
                let report =
                  Eywa_models.Bgp_adapter.run ?jobs ~model_id:m.id tests
                in
                Format.printf "%a" Difftest.pp_report report
            | _ -> print_endline "replay currently supports DNS and BGP models");
            `Ok ())
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Differentially replay a saved test suite without re-synthesis.")
    Term.(ret (const run $ model_arg $ suite_arg $ version_arg $ jobs_arg))

let difftest_cmd =
  let run id k temperature seed timeout jobs version cache_dir =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        match
          Model_def.synthesize ?cache:(cache_of cache_dir) ~k ~temperature
            ~seed ?timeout ?jobs ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s ->
            Printf.printf "%s: %d unique tests\n" m.id (List.length s.unique_tests);
            let report, causes =
              match m.protocol with
              | "DNS" ->
                  ( Eywa_models.Dns_adapter.run ?jobs ~model_id:m.id ~version
                      s.unique_tests,
                    List.map
                      (fun (impl, q) ->
                        (impl, Eywa_dns.Lookup.quirk_to_string q))
                      (Eywa_models.Dns_adapter.quirks_triggered ?jobs ~version
                         [ (m.id, s.unique_tests) ]) )
              | "BGP" ->
                  ( Eywa_models.Bgp_adapter.run ?jobs ~model_id:m.id s.unique_tests,
                    List.map
                      (fun (impl, q) -> (impl, Eywa_bgp.Quirks.to_string q))
                      (Eywa_models.Bgp_adapter.quirks_triggered ?jobs
                         [ (m.id, s.unique_tests) ]) )
              | _ -> (
                  match Eywa_models.Smtp_adapter.state_graph_for s with
                  | Error e -> failwith e
                  | Ok graph ->
                      ( Eywa_models.Smtp_adapter.run ?jobs ~graph s.unique_tests,
                        List.map
                          (fun (impl, _) -> (impl, "accept-mail-without-helo"))
                          (Eywa_models.Smtp_adapter.quirks_triggered ?jobs ~graph
                             s.unique_tests) ))
            in
            Format.printf "%a" Difftest.pp_report report;
            print_endline "root causes:";
            List.iter
              (fun (impl, q) -> Printf.printf "  %-12s %s\n" impl q)
              causes;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "difftest"
       ~doc:"Synthesize a model and differentially test the implementations.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ version_arg $ cache_dir_arg))

let report_cmd =
  let run id k temperature seed timeout jobs version cache_dir =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m ->
        if m.protocol <> "DNS" then
          `Error (false, "report currently supports DNS models")
        else (
          match
            Model_def.synthesize ?cache:(cache_of cache_dir) ~k ~temperature
              ~seed ?timeout ?jobs ~oracle m
          with
          | Error e -> `Error (false, e)
          | Ok s ->
              let coverage = suite_coverage s m s.unique_tests in
              print_string
                (Eywa_models.Report.dns ~coverage ~model_id:m.id ~version
                   s.unique_tests);
              `Ok ())
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Synthesize a DNS model and print a filing-ready markdown bug report.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ version_arg $ cache_dir_arg))

let stats_cmd =
  let run id k temperature seed timeout jobs version cache_dir =
    match find_model id with
    | Error e -> `Error (false, e)
    | Ok m -> (
        let collector = Eywa_core.Instrument.Collector.create () in
        let sink = Eywa_core.Instrument.Collector.sink collector in
        match
          Model_def.synthesize ?cache:(cache_of cache_dir) ~sink ~k
            ~temperature ~seed ?timeout ?jobs ~oracle m
        with
        | Error e -> `Error (false, e)
        | Ok s ->
            (* drive the difftest stage too, so its events show up *)
            (match m.protocol with
            | "DNS" ->
                ignore
                  (Eywa_models.Report.dns ~sink ~model_id:m.id ~version
                     s.unique_tests)
            | "BGP" ->
                let report =
                  Eywa_models.Bgp_adapter.run ?jobs ~model_id:m.id
                    s.unique_tests
                in
                sink
                  (Eywa_core.Instrument.Difftest_done
                     {
                       label = m.id;
                       total_tests = report.Difftest.total_tests;
                       disagreeing_tests = report.Difftest.disagreeing_tests;
                       tuples = List.length report.Difftest.tuples;
                     })
            | _ -> ());
            Printf.printf "%s: pipeline statistics (k=%d, seed=%d, tau=%.2f)\n"
              m.id k seed temperature;
            print_endline
              (Format.asprintf "%a" Eywa_core.Instrument.Collector.pp_summary
                 (Eywa_core.Instrument.Collector.summary collector));
            let hit, total = suite_coverage s m s.unique_tests in
            Printf.printf "coverage     %d / %d branch edges over %d models%s\n"
              hit total
              (List.length s.programs)
              (if total > 0 then
                 Printf.sprintf " (%.0f%%)"
                   (100.0 *. float_of_int hit /. float_of_int total)
               else "");
            `Ok ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Synthesize a model (and difftest it) with a collecting \
          instrumentation sink, then print per-stage statistics: draws, \
          rejections, deterministic symex ticks, paths, solver calls, cache \
          hits/misses, difftest disagreements.")
    Term.(ret (const run $ model_arg $ k_arg $ temperature_arg $ seed_arg
               $ timeout_arg $ jobs_arg $ version_arg $ cache_dir_arg))

let bugs_cmd =
  let run () =
    List.iter
      (fun (impl, (b : Eywa_dns.Impls.bug)) ->
        Printf.printf "DNS   %-12s %-55s %s\n" impl b.description
          (if b.new_bug then "new" else "known"))
      Eywa_dns.Impls.bug_catalog;
    List.iter
      (fun (impl, (b : Eywa_bgp.Impls.bug)) ->
        Printf.printf "BGP   %-12s %-55s %s\n" impl b.description
          (if b.new_bug then "new" else "known"))
      Eywa_bgp.Impls.bug_catalog;
    List.iter
      (fun (impl, (b : Eywa_smtp.Impls.bug)) ->
        Printf.printf "SMTP  %-12s %-55s %s\n" impl b.description
          (if b.new_bug then "new" else "known"))
      Eywa_smtp.Impls.bug_catalog;
    `Ok ()
  in
  Cmd.v (Cmd.info "bugs" ~doc:"Print the Table 3 bug catalog.")
    Term.(ret (const run $ const ()))

let () =
  let info =
    Cmd.info "eywa" ~version:"1.0.0"
      ~doc:"Model-based protocol testing with a simulated LLM oracle."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ models_cmd; prompt_cmd; run_cmd; fuzz_cmd; replay_cmd;
            difftest_cmd; report_cmd; stats_cmd; bugs_cmd ]))
