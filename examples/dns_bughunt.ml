(* DNS bug hunt: the paper's §2.3 workflow.

   Synthesizes the DNAME and WILDCARD models, post-processes each test
   into a valid zone file and query, serves them with all ten
   nameserver implementations, and triages the disagreements into
   unique root causes — printing the §2.3 Knot DNAME bug when its
   witness appears.

   Run with: dune exec examples/dns_bughunt.exe *)

module Model_def = Eywa_models.Model_def
module Dns_models = Eywa_models.Dns_models
module Dns_adapter = Eywa_models.Dns_adapter
module Difftest = Eywa_difftest.Difftest
module Testcase = Eywa_core.Testcase

let oracle = Eywa_llm.Gpt.oracle ()

let () =
  let models = [ Dns_models.dname; Dns_models.wildcard ] in
  (* one content-addressed cache shared by both models: running this
     example twice in a row with --cache-dir-style persistence would
     skip every draw (here it stays in memory, so the second
     synthesize call of a model would hit) *)
  let cache = Eywa_core.Cache.create () in
  let tests =
    List.map
      (fun (m : Model_def.t) ->
        match Model_def.synthesize ~cache ~k:6 ~oracle m with
        | Ok s ->
            Printf.printf "%s: %d unique tests\n%!" m.id
              (List.length s.unique_tests);
            (m.id, s.unique_tests)
        | Error e -> failwith e)
      models
  in
  Printf.printf "synthesis cache: %d hits, %d misses\n"
    (Eywa_core.Cache.hits cache) (Eywa_core.Cache.misses cache);

  (* show one post-processed artifact, like the §2.3 zone *)
  (match tests with
  | (model_id, t :: _) :: _ -> (
      match Dns_adapter.artifacts_for ~model_id t with
      | Some (zone, query) ->
          print_endline "\n=== example zone file (post-processed test) ===";
          print_string (Eywa_dns.Zonefile.print zone);
          Printf.printf "query: %s %s\n"
            (Eywa_dns.Name.to_string query.Eywa_dns.Message.qname)
            (Eywa_dns.Rr.rtype_to_string query.Eywa_dns.Message.qtype)
      | None -> ())
  | _ -> ());

  (* differential testing across the ten implementations *)
  print_endline "\n=== differential testing (old versions) ===";
  List.iter
    (fun (model_id, ts) ->
      let report = Dns_adapter.run ~model_id ~version:Eywa_dns.Impls.Old ts in
      Printf.printf "[%s] %d tests, %d disagreeing, %d unique tuples\n" model_id
        report.Difftest.total_tests report.Difftest.disagreeing_tests
        (List.length report.Difftest.tuples))
    tests;

  print_endline "\n=== root causes (attributed by quirk removal) ===";
  let found =
    Dns_adapter.quirks_triggered ~version:Eywa_dns.Impls.Old
      tests
  in
  List.iter
    (fun (impl, quirk) ->
      Printf.printf "  %-12s %s\n" impl (Eywa_dns.Lookup.quirk_to_string quirk))
    found;
  if List.mem ("knot", Eywa_dns.Lookup.Dname_name_replaced_by_query) found then
    print_endline
      "\nFound the Knot bug of §2.3: the returned DNAME owner is replaced by \
       the query name."
