(* Quickstart: the paper's Fig. 1, end to end.

   Defines the DNS record-matching model — types, a regex validity
   module, a main FuncModule with a helper reachable through a call
   edge — synthesizes k models through the (simulated) LLM, and prints
   the generated prompt, one generated implementation, and the test
   cases symbolic execution produced.

   Run with: dune exec examples/quickstart.exe *)

open Eywa_core

let () =
  (* Define the data types (Fig. 1a). *)
  let domain_name = Etype.string_ ~maxsize:5 in
  let record_type =
    Etype.enum "RecordType" [ "A"; "AAAA"; "NS"; "TXT"; "CNAME"; "DNAME"; "SOA" ]
  in
  let record_ty =
    Etype.struct_ "Record"
      [ ("rtyp", record_type); ("name", Etype.string_ ~maxsize:3);
        ("rdat", Etype.string_ ~maxsize:3) ]
  in

  (* Define the module arguments. *)
  let query = Etype.Arg.v "query" domain_name "A DNS query domain name." in
  let record = Etype.Arg.v "record" record_ty "A DNS record." in
  let result =
    Etype.Arg.v "result" Etype.bool_ "If the DNS record matches the query."
  in

  (* Three modules: query validation, the matching logic, and the
     DNAME helper. *)
  let valid_query = Emodule.regex_module {|[a*](\.[a*])*|} query in
  let da =
    Emodule.func_module "dname_applies" "If a DNAME record matches a query."
      [ query; record; result ]
  in
  let ra =
    Emodule.func_module "record_applies" "If a DNS record matches a query."
      [ query; record; result ]
  in

  (* The dependency graph: pipe the validity module into the main one,
     and let record_applies call dname_applies. *)
  let g = Graph.create () in
  Graph.pipe g valid_query ra;
  Graph.call_edge g ra [ da ];

  (* Show the prompt Eywa generates (Fig. 5). *)
  let main_f = match ra with Emodule.Func f -> f | _ -> assert false in
  let prompt = Prompt.for_module g main_f in
  print_endline "=== generated user prompt ===";
  print_endline prompt.Prompt.user;

  (* Synthesize the end-to-end model and generate tests, through the
     staged pipeline with a collecting instrumentation sink. *)
  let oracle = Eywa_llm.Gpt.oracle () in
  let config =
    { Pipeline.default_config with k = 5; alphabet = [ 'a'; '.'; '*' ] }
  in
  let collector = Instrument.Collector.create () in
  match
    Pipeline.run ~sink:(Instrument.Collector.sink collector) ~config ~oracle g
      ~main:ra
  with
  | Error e -> prerr_endline ("synthesis failed: " ^ e)
  | Ok model ->
      print_endline "\n=== one generated implementation ===";
      (match model.results with
      | r :: _ -> print_endline r.c_source
      | [] -> ());
      Printf.printf "=== %d unique tests (showing 20) ===\n"
        (List.length model.unique_tests);
      List.iteri
        (fun i t -> if i < 20 then print_endline ("  " ^ Testcase.to_string t))
        model.unique_tests;
      print_endline "\n=== pipeline statistics ===";
      print_endline
        (Format.asprintf "%a" Instrument.Collector.pp_summary
           (Instrument.Collector.summary collector))
