(* TCP: the paper's §6 future work, implemented.

   "Our SMTP experience showed us that LLMs can also be used to drive
   protocols to specified states for testing, but we have only
   scratched the surface. We hope to explore this capability further to
   automatically test more complex stateful protocols like TCP."

   This example runs the identical stateful pipeline (model synthesis,
   second-LLM-call state-graph extraction, BFS driving, differential
   testing) on the RFC 793 connection machine, against three TCP stack
   variants — and finds the handshake-bypass and missing-RST bugs.

   Run with: dune exec examples/tcp_extension.exe *)

module Model_def = Eywa_models.Model_def
module Tcp_models = Eywa_models.Tcp_models
module Tcp_adapter = Eywa_models.Tcp_adapter
module Stategraph = Eywa_stategraph.Stategraph
module Difftest = Eywa_difftest.Difftest

let oracle = Eywa_llm.Gpt.oracle ()

let () =
  let collector = Eywa_core.Instrument.Collector.create () in
  match
    Model_def.synthesize ~sink:(Eywa_core.Instrument.Collector.sink collector)
      ~k:5 ~oracle Tcp_models.server
  with
  | Error e -> failwith e
  | Ok synth -> (
      Printf.printf "TCP: %d unique (state, segment) tests\n"
        (List.length synth.unique_tests);
      match Tcp_adapter.state_graph_for synth with
      | Error m -> failwith m
      | Ok graph ->
          Printf.printf "extracted state graph: %d transitions over %d states\n"
            (List.length (Stategraph.transitions graph))
            (List.length (Stategraph.states graph));
          (match Stategraph.path_to graph ~start:"LISTEN" ~goal:"LAST_ACK" with
          | Some inputs ->
              Printf.printf "driving sequence to LAST_ACK: %s\n"
                (String.concat " " inputs)
          | None -> print_endline "LAST_ACK unreachable");
          let report = Tcp_adapter.run ~graph synth.unique_tests in
          Printf.printf "\n%d tests, %d disagreeing, %d unique tuples\n"
            report.Difftest.total_tests report.Difftest.disagreeing_tests
            (List.length report.Difftest.tuples);
          List.iter
            (fun (d, n) ->
              Printf.printf "  (%s, %s, got %s, expected %s) x%d\n"
                d.Difftest.d_impl d.Difftest.d_field d.Difftest.d_got
                d.Difftest.d_majority n)
            report.Difftest.tuples;
          print_endline "\nroot causes:";
          List.iter
            (fun (impl, q) ->
              Printf.printf "  %-11s %s\n" impl
                (match q with
                | Eywa_tcp.Machine.Data_before_established ->
                    "data accepted before the handshake completes"
                | Eywa_tcp.Machine.No_rst_on_bad_segment ->
                    "no RST for unacceptable segments"))
            (Tcp_adapter.quirks_triggered ~graph synth.unique_tests);
          let s = Eywa_core.Instrument.Collector.summary collector in
          Printf.printf "\npipeline: %d draws, %d symex ticks (deterministic)\n"
            s.Eywa_core.Instrument.Collector.draws
            s.Eywa_core.Instrument.Collector.symex_ticks)
