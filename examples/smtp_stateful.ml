(* Stateful protocol testing: the SMTP SERVER model (§4.2, Figs. 6-8).

   Synthesizes the server model, issues the second LLM call to turn the
   generated code into a state-transition dictionary, BFS-searches that
   graph to drive implementations into each test's required state, and
   differentially tests aiosmtpd, smtpd and OpenSMTPD — reproducing the
   input-validation finding of Table 3.

   Run with: dune exec examples/smtp_stateful.exe *)

module Model_def = Eywa_models.Model_def
module Smtp_models = Eywa_models.Smtp_models
module Smtp_adapter = Eywa_models.Smtp_adapter
module Stategraph = Eywa_stategraph.Stategraph
module Difftest = Eywa_difftest.Difftest

let oracle = Eywa_llm.Gpt.oracle ()

let () =
  match
    Model_def.synthesize ~cache:(Eywa_core.Cache.create ()) ~k:5 ~oracle
      Smtp_models.server
  with
  | Error e -> failwith e
  | Ok synth -> (
      Printf.printf "SERVER: %d unique (state, input) tests\n"
        (List.length synth.unique_tests);

      (* the second LLM call: code -> python dict (Fig. 8) *)
      let code =
        match
          List.find_opt
            (fun (r : Eywa_core.Synthesis.model_result) -> r.compile_error = None)
            synth.results
        with
        | Some r -> r.c_source
        | None -> failwith "no compiled model"
      in
      print_endline "\n=== second LLM call response (Fig. 8) ===";
      print_endline (Eywa_llm.Gpt.complete_stategraph code);

      match Smtp_adapter.state_graph_for synth with
      | Error m -> failwith m
      | Ok graph ->
          (* drive an implementation to a deep state *)
          (match
             Stategraph.path_to graph ~start:"INITIAL" ~goal:"DATA_RECEIVED"
           with
          | Some inputs ->
              Printf.printf "\ndriving sequence to DATA_RECEIVED: %s\n"
                (String.concat " " inputs)
          | None -> print_endline "DATA_RECEIVED unreachable");

          print_endline "\n=== differential testing ===";
          let report = Smtp_adapter.run ~graph synth.unique_tests in
          Printf.printf "%d tests, %d disagreeing, %d unique tuples\n"
            report.Difftest.total_tests report.Difftest.disagreeing_tests
            (List.length report.Difftest.tuples);
          List.iter
            (fun (d, count) ->
              Printf.printf "  (%s, %s, got %s, expected %s) x%d\n"
                d.Difftest.d_impl d.Difftest.d_field d.Difftest.d_got
                d.Difftest.d_majority count)
            report.Difftest.tuples;
          let found = Smtp_adapter.quirks_triggered ~graph synth.unique_tests in
          if
            List.mem
              ("aiosmtpd", Eywa_smtp.Machine.Accept_mail_without_helo)
              found
          then
            print_endline
              "\nFound the Table 3 aiosmtpd bug: MAIL FROM accepted without \
               HELO/EHLO.")
