(* BGP policy testing: the RMAP-PL model of Fig. 11 and the CONFED
   model of §4.3.

   Builds the exact dependency graph of the paper's appendix (validity
   guards piped in front of the route-map matcher, helpers via call
   edges), generates tests, and replays them on the three-router
   network against FRR, GoBGP and Batfish — reproducing the prefix-list
   and confederation findings of Table 3.

   Run with: dune exec examples/bgp_policy.exe *)

module Model_def = Eywa_models.Model_def
module Bgp_models = Eywa_models.Bgp_models
module Bgp_adapter = Eywa_models.Bgp_adapter
module Difftest = Eywa_difftest.Difftest

let oracle = Eywa_llm.Gpt.oracle ()

let () =
  let collector = Eywa_core.Instrument.Collector.create () in
  let sink = Eywa_core.Instrument.Collector.sink collector in
  let run (m : Model_def.t) =
    match Model_def.synthesize ~sink ~k:6 ~oracle m with
    | Ok s ->
        Printf.printf "%s: %d unique tests\n%!" m.id (List.length s.unique_tests);
        (m.id, s.unique_tests)
    | Error e -> failwith e
  in
  let rmap = run Bgp_models.rmap_pl in
  let confed = run Bgp_models.confed in
  let s = Eywa_core.Instrument.Collector.summary collector in
  Printf.printf "pipeline: %d draws, %d symex ticks, %d paths\n"
    s.Eywa_core.Instrument.Collector.draws
    s.Eywa_core.Instrument.Collector.symex_ticks
    s.Eywa_core.Instrument.Collector.paths_completed;

  print_endline "\n=== differential testing on the R1 -> R2 -> R3 chain ===";
  List.iter
    (fun (model_id, ts) ->
      let report = Bgp_adapter.run ~model_id ts in
      Printf.printf "[%s] %d tests, %d disagreeing, %d unique tuples\n" model_id
        report.Difftest.total_tests report.Difftest.disagreeing_tests
        (List.length report.Difftest.tuples);
      List.iteri
        (fun i (d, count) ->
          if i < 4 then
            Printf.printf "    (%s, %s) x%d\n" d.Difftest.d_impl d.Difftest.d_field
              count)
        report.Difftest.tuples)
    [ rmap; confed ];

  print_endline "\n=== root causes ===";
  let found = Bgp_adapter.quirks_triggered [ rmap; confed ] in
  List.iter
    (fun (impl, quirk) ->
      Printf.printf "  %-8s %s\n" impl (Eywa_bgp.Quirks.to_string quirk))
    found;

  (* the §4.3 anecdote, replayed directly: a router R inside a
     confederation whose sub-AS collides with its external neighbor
     N's AS number *)
  print_endline "\n=== the §4.3 confederation corner case ===";
  let config =
    Some { Eywa_bgp.Confed.confed_id = 100; sub_as = 65001; members = [ 65001 ] }
  in
  let session quirks =
    Eywa_bgp.Confed.agree ~quirks config ~local_as:65001 ~peer_as:65001
      ~peer_in_confed:false
  in
  Printf.printf "reference session: %s\n"
    (Eywa_bgp.Confed.session_to_string (session []));
  Printf.printf "buggy session:     %s\n"
    (Eywa_bgp.Confed.session_to_string
       (session [ Eywa_bgp.Quirks.Confed_sub_as_eq_peer ]))
