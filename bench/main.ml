(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4).

     table1  — Table 1: implementations tested per protocol
     table2  — Table 2: models, LoC, unique test counts
     table3  — Table 3: bugs found per implementation (+ new-bug flags)
     fig10   — Fig. 10: unique tests vs k for several temperatures
     timing   — §4.3 result 1: generation and symbolic-execution times
     parallel — jobs=1 vs jobs=N wall clock for the pooled stages
     micro    — Bechamel micro-benchmarks of the core engines

     fuzz     — PR3: symex-only vs symex+fuzz edge coverage and
                difftest disagreements (writes BENCH_PR3.json)
     obs      — PR4: observability layer determinism — the
                wall-clock-stripped trace and env-stripped metrics of a
                full CNAME run must be byte-identical at jobs=1 vs
                jobs=N and warm vs cold cache (writes BENCH_PR4.json)
     solver   — PR5: counterexample cache off vs on across the model
                suite — generated tests must be byte-identical and
                total executed solver decisions must drop by >= 2x
                (writes BENCH_PR5.json)

   Run with no argument to execute everything in order. Pass [fast] as
   a final argument for a quick smoke-scale run; [--jobs N] sizes the
   domain pools, [--json PATH] writes the parallel stage's
   measurements as JSON, [--cache-dir DIR] persists the synthesis
   cache on disk, [--summary-json PATH] writes per-stage
   instrumentation totals (ticks, cache hits/misses) after the run,
   and [--fuzz-json PATH] / [--obs-json PATH] / [--solver-json PATH]
   redirect the fuzz, obs and solver stages' JSON.
   Counts reproduce the
   paper's *shape* (relative sizes, who hits the timeout, diminishing
   returns around k = 10), not its absolute numbers: the substrate here
   is the built-in symbolic executor and bug-seeded reference
   implementations, not Klee and ten production servers. *)

module Model_def = Eywa_models.Model_def
module All = Eywa_models.All_models
module Dns_adapter = Eywa_models.Dns_adapter
module Bgp_adapter = Eywa_models.Bgp_adapter
module Smtp_adapter = Eywa_models.Smtp_adapter
module Synthesis = Eywa_core.Synthesis
module Pipeline = Eywa_core.Pipeline
module Cache = Eywa_core.Cache
module Instrument = Eywa_core.Instrument
module Testcase = Eywa_core.Testcase
module Difftest = Eywa_difftest.Difftest

let oracle = Eywa_llm.Gpt.oracle ()

type scale = {
  k : int;
  timeout_scale : float;
  fig10_max_k : int;
  fig10_seeds : int;
  fuzz_budget : int;
}

let full_scale =
  { k = 10; timeout_scale = 0.5; fig10_max_k = 12; fig10_seeds = 2; fuzz_budget = 1000 }

let fast_scale =
  { k = 3; timeout_scale = 0.1; fig10_max_k = 6; fig10_seeds = 1; fuzz_budget = 250 }

(* --jobs N / --json PATH / --cache-dir DIR / --summary-json PATH /
   --fuzz-json PATH, set by the driver before any stage runs *)
let jobs : int option ref = ref None
let json_path : string option ref = ref None
let cache_dir : string option ref = ref None
let summary_json : string option ref = ref None
let fuzz_json : string ref = ref "BENCH_PR3.json"
let obs_json : string ref = ref "BENCH_PR4.json"
let solver_json : string ref = ref "BENCH_PR5.json"

(* ----- shared synthesis cache + instrumentation ----- *)

(* One content-addressed cache for the whole run: table2, table3,
   fig10 and timing all re-synthesize the same models, and every draw
   after the first is a hit. With --cache-dir it also survives across
   bench invocations. *)
let the_cache : Cache.t option ref = ref None

let cache () =
  match !the_cache with
  | Some c -> c
  | None ->
      let c = Cache.create ?dir:!cache_dir () in
      the_cache := Some c;
      c

let collector = Instrument.Collector.create ()
let sink = Instrument.Collector.sink collector

let synthesize scale (m : Model_def.t) =
  match
    Model_def.synthesize ~cache:(cache ()) ~sink ~k:scale.k
      ~timeout:(Float.max 1.0 (m.timeout *. scale.timeout_scale))
      ?jobs:!jobs ~oracle m
  with
  | Ok s -> s
  | Error e -> failwith (m.id ^ ": " ^ e)

let line = String.make 78 '-'

(* ----- Table 1 ----- *)

let table1 () =
  Printf.printf "\n%s\nTable 1: Protocol implementations tested by Eywa\n%s\n" line line;
  Printf.printf "%-10s %s\n" "Protocol" "Tested Implementations";
  Printf.printf "%-10s %s\n" "DNS"
    (String.concat ", "
       (List.map (fun (i : Eywa_dns.Impls.t) -> i.name) Eywa_dns.Impls.all));
  Printf.printf "%-10s %s (+ exabgp as the R1 injector)\n" "BGP"
    (String.concat ", "
       (List.map (fun (i : Eywa_bgp.Impls.t) -> i.name) Eywa_bgp.Impls.all));
  Printf.printf "%-10s %s\n" "SMTP"
    (String.concat ", "
       (List.map (fun (i : Eywa_smtp.Impls.t) -> i.name) Eywa_smtp.Impls.all))

(* ----- Table 2 ----- *)

(* the paper's numbers, for side-by-side shape comparison *)
let paper_table2 =
  [
    ("CNAME", (21, "222/246", 435)); ("DNAME", (23, "209/230", 269));
    ("WILDCARD", (23, "210/238", 470)); ("IPV4", (21, "209/229", 515));
    ("FULLLOOKUP", (26, "487/510", 12281)); ("RCODE", (26, "487/510", 26617));
    ("AUTH", (26, "477/504", 31411)); ("LOOP", (26, "474/489", 31453));
    ("CONFED", (22, "189/202", 957)); ("RR", (16, "59/76", 36));
    ("RMAP-PL", (48, "150/162", 400)); ("RR-RMAP", (48, "341/366", 7147));
    ("SERVER", (26, "245/252", 80));
  ]

let table2 scale =
  Printf.printf "\n%s\nTable 2: models, lines of code, and unique tests (k=%d)\n%s\n"
    line scale.k line;
  Printf.printf "%-9s %-11s %9s %10s %8s | %8s %10s %8s\n" "Protocol" "Model"
    "LOC(spec)" "LOC(C)" "Tests" "paper:" "LOC(C)" "Tests";
  List.iter
    (fun (m : Model_def.t) ->
      let s = synthesize scale m in
      let p_spec, p_loc, p_tests =
        match List.assoc_opt m.id paper_table2 with
        | Some (a, b, c) -> (a, b, c)
        | None -> (0, "-", 0)
      in
      Printf.printf "%-9s %-11s %6d(%2d) %10s %8d | %17s %8d\n" m.protocol m.id
        m.spec_loc p_spec
        (Printf.sprintf "%d/%d" s.loc_min s.loc_max)
        (List.length s.unique_tests) p_loc p_tests)
    All.all

(* ----- Table 3 ----- *)

let mark found = if found then "yes" else "MISSED"

let table3 scale =
  Printf.printf "\n%s\nTable 3: bugs found by differential testing\n%s\n" line line;
  (* DNS: run every model's tests against the Old versions (as the
     paper does, to compare against SCALE's bug set) *)
  let dns_tests =
    List.map (fun (m : Model_def.t) -> (m.id, (synthesize scale m).unique_tests))
      All.dns
  in
  let dns_found =
    Dns_adapter.quirks_triggered ?jobs:!jobs ~version:Eywa_dns.Impls.Old
      dns_tests
  in
  Printf.printf "%-6s %-12s %-55s %-18s %-5s %s\n" "Proto" "Impl" "Description"
    "Bug type" "New?" "Found";
  List.iter
    (fun (impl, (b : Eywa_dns.Impls.bug)) ->
      Printf.printf "%-6s %-12s %-55s %-18s %-5s %s\n" "DNS" impl b.description
        b.bug_type
        (if b.new_bug then "new" else "known")
        (mark (List.mem (impl, b.quirk) dns_found)))
    Eywa_dns.Impls.bug_catalog;
  let bgp_tests =
    List.map (fun (m : Model_def.t) -> (m.id, (synthesize scale m).unique_tests))
      All.bgp
  in
  let bgp_found = Bgp_adapter.quirks_triggered ?jobs:!jobs bgp_tests in
  List.iter
    (fun (impl, (b : Eywa_bgp.Impls.bug)) ->
      Printf.printf "%-6s %-12s %-55s %-18s %-5s %s\n" "BGP" impl b.description
        b.bug_type
        (if b.new_bug then "new" else "known")
        (mark (List.mem (impl, b.quirk) bgp_found)))
    Eywa_bgp.Impls.bug_catalog;
  let smtp_synth = synthesize scale (List.hd All.smtp) in
  let smtp_found =
    match Smtp_adapter.state_graph_for smtp_synth with
    | Ok graph ->
        Smtp_adapter.quirks_triggered ?jobs:!jobs ~graph smtp_synth.unique_tests
    | Error _ -> []
  in
  List.iter
    (fun (impl, (b : Eywa_smtp.Impls.bug)) ->
      Printf.printf "%-6s %-12s %-55s %-18s %-5s %s\n" "SMTP" impl b.description
        b.bug_type
        (if b.new_bug then "new" else "known")
        (mark (List.mem (impl, b.quirk) smtp_found)))
    Eywa_smtp.Impls.bug_catalog;
  (* summary in the paper's accounting: unique root causes *)
  let dns_unique =
    List.sort_uniq compare (List.map (fun (_, q) -> q) dns_found)
  in
  let bgp_unique =
    List.sort_uniq compare (List.map (fun (_, q) -> q) bgp_found)
  in
  let new_dns =
    List.filter
      (fun (impl, q) ->
        List.exists
          (fun (i, (b : Eywa_dns.Impls.bug)) -> i = impl && b.quirk = q && b.new_bug)
          Eywa_dns.Impls.bug_catalog)
      dns_found
  in
  Printf.printf "%s\n" line;
  Printf.printf
    "Summary: DNS %d impl-bugs (%d unique root causes), BGP %d impl-bugs (%d \
     unique), SMTP %d; new impl-bugs (DNS) %d\n"
    (List.length dns_found) (List.length dns_unique) (List.length bgp_found)
    (List.length bgp_unique) (List.length smtp_found) (List.length new_dns);
  Printf.printf
    "(paper: 38 DNS bugs / 26 unique / 11 new; 7 BGP rows / 5 unique / 3 new; 1 \
     SMTP)\n"

(* ----- Fig. 10 ----- *)

(* The k-sweep reuses one synthesis per (tau, seed) at the maximum k:
   the union over the first j models is exactly a k=j run. *)
let fig10 scale =
  Printf.printf "\n%s\nFigure 10: unique tests vs k, per temperature\n%s\n" line line;
  let taus = [ 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  let models = [ Eywa_models.Dns_models.cname; Eywa_models.Dns_models.dname ] in
  List.iter
    (fun (m : Model_def.t) ->
      Printf.printf "\n[%s]\n%-6s" m.id "k";
      for k = 1 to scale.fig10_max_k do
        Printf.printf "%7d" k
      done;
      print_newline ();
      List.iter
        (fun tau ->
          let per_seed =
            List.init scale.fig10_seeds (fun seed ->
                match
                  Model_def.synthesize ~cache:(cache ()) ~sink
                    ~k:scale.fig10_max_k ~temperature:tau
                    ~seed:(100 * (seed + 1)) ~timeout:2.0 ?jobs:!jobs ~oracle m
                with
                | Ok s ->
                    let per_model =
                      List.map (fun (r : Synthesis.model_result) -> r.tests) s.results
                    in
                    List.init scale.fig10_max_k (fun j ->
                        let upto = List.filteri (fun i _ -> i <= j) per_model in
                        List.length (Testcase.dedup (List.concat upto)))
                | Error e -> failwith e)
          in
          let avg j =
            let total =
              List.fold_left (fun acc series -> acc + List.nth series j) 0 per_seed
            in
            float_of_int total /. float_of_int scale.fig10_seeds
          in
          Printf.printf "t=%.1f " tau;
          for j = 0 to scale.fig10_max_k - 1 do
            Printf.printf "%7.1f" (avg j)
          done;
          print_newline ())
        taus)
    models;
  Printf.printf
    "\n(expected shape: counts grow with k with diminishing returns around k=10;\n\
    \ tau=0.2..1.0 series close to each other — cf. the paper's choice of k=10,\n\
    \ tau=0.6)\n"

(* ----- timing (§4.3 result 1) ----- *)

(* Wall seconds are machine-dependent; the tick column is the symex
   budget counter (Exec.stats.ticks_used) — deterministic in the
   inputs, so comparable across hosts and identical on cache hits. *)
let timing scale =
  Printf.printf "\n%s\nRunning time (paper §4.3 result 1)\n%s\n" line line;
  Printf.printf "%-11s %14s %14s %12s %10s %10s\n" "Model" "gen total (s)"
    "symex total(s)" "symex ticks" "paths" "timed out";
  List.iter
    (fun (m : Model_def.t) ->
      let s = synthesize scale m in
      let gen =
        List.fold_left (fun acc (r : Synthesis.model_result) -> acc +. r.gen_seconds)
          0.0 s.results
      in
      let sym =
        List.fold_left
          (fun acc (r : Synthesis.model_result) -> acc +. r.symex_seconds)
          0.0 s.results
      in
      let paths, ticks, timed_out =
        List.fold_left
          (fun (p, k, t) (r : Synthesis.model_result) ->
            match r.stats with
            | Some st -> (p + st.Eywa_symex.Exec.paths_completed,
                          k + st.Eywa_symex.Exec.ticks_used,
                          t || st.Eywa_symex.Exec.timed_out)
            | None -> (p, k, t))
          (0, 0, false) s.results
      in
      Printf.printf "%-11s %14.2f %14.2f %12d %10d %10b\n" m.id gen sym ticks
        paths timed_out)
    All.all;
  let c = cache () in
  Printf.printf "synthesis cache: %d hits, %d misses this run\n" (Cache.hits c)
    (Cache.misses c);
  print_endline
    (Format.asprintf "%a" Instrument.Collector.pp_summary
       (Instrument.Collector.summary collector));
  Printf.printf
    "(paper: each LLM query < 20 s; Klee 5-10 s on small models, 5-minute \
     timeout on FULLLOOKUP/RCODE/AUTH/LOOP; BGP models always terminate)\n"

(* ----- micro-benchmarks ----- *)

let micro () =
  let open Bechamel in
  Printf.printf "\n%s\nMicro-benchmarks (Bechamel, monotonic clock)\n%s\n" line line;
  (* pre-build inputs outside the timed sections *)
  let solver_problem =
    let module T = Eywa_solver.Term in
    let vars = List.init 6 (fun i ->
        T.fresh_var ~name:(Printf.sprintf "m%d" i) (T.Sint 3)
          (Array.init 8 (fun v -> v))) in
    let sum =
      List.fold_left (fun acc v -> T.add acc (T.var v)) (T.const 0) vars
    in
    [ T.eq sum (T.const 17);
      T.lt (T.var (List.hd vars)) (T.var (List.nth vars 1)) ]
  in
  let regex = Eywa_symex.Regex.parse {|[a*](\.[a*])*|} in
  let cells =
    match Eywa_symex.Sv.symbolic_string
            ~alphabet:[| 0; Char.code 'a'; Char.code '.'; Char.code '*' |] 5
    with
    | Eywa_symex.Sv.Sstring c -> c
    | _ -> assert false
  in
  let dname_program =
    let src = List.assoc "dname_applies" Eywa_llm.Kb_dns.entries in
    let full =
      "typedef enum { A, AAAA, NS, TXT, CNAME, DNAME, SOA } RecordType;\n\
       typedef struct { RecordType rtyp; char* name; char* rdat; } Record;\n"
      ^ src
    in
    match Eywa_minic.Parser.parse_result full with
    | Ok p -> p
    | Error m -> failwith m
  in
  let sym_args () =
    let alphabet = [| 0; Char.code 'a'; Char.code '.' |] in
    let q = Eywa_symex.Sv.symbolic_string ~name:"q" ~alphabet 3 in
    let r =
      Eywa_symex.Sv.Sstruct
        ( "Record",
          [
            ("rtyp",
             Eywa_symex.Sv.fresh_scalar ~name:"rtyp" (Eywa_minic.Ast.Tenum "RecordType")
               ~domain:(Array.init 7 (fun i -> i)));
            ("name", Eywa_symex.Sv.symbolic_string ~name:"rname" ~alphabet 2);
            ("rdat", Eywa_symex.Sv.concrete_string "a");
          ] )
    in
    [ q; r ]
  in
  let dns_zone =
    Eywa_dns.Zonefile.build_zone ~extra_delegation:true
      [
        { Eywa_dns.Zonefile.rname = "*"; rtype = Eywa_dns.Rr.DNAME; rdata = "a.a" };
        { Eywa_dns.Zonefile.rname = "a.a"; rtype = Eywa_dns.Rr.A; rdata = "10.0.0.1" };
      ]
  in
  let dns_query =
    Eywa_dns.Zonefile.build_query "b.*" Eywa_dns.Rr.A
  in
  let pfx = match Eywa_bgp.Prefix.of_string "10.0.0.0/8" with
    | Ok p -> p | Error m -> failwith m in
  let pl =
    { Eywa_bgp.Policy.pl_name = "pl";
      entries =
        [ { Eywa_bgp.Policy.seq = 10; permit = true; prefix = pfx;
            ge = Some 16; le = Some 24 } ] }
  in
  let rm =
    { Eywa_bgp.Policy.rm_name = "rm";
      stanzas =
        [ { Eywa_bgp.Policy.stanza_seq = 10; stanza_permit = true;
            matches = [ Eywa_bgp.Policy.Match_prefix_list "pl" ];
            sets = [ Eywa_bgp.Policy.Set_local_pref 200 ] } ] }
  in
  let route = Eywa_bgp.Route.v (match Eywa_bgp.Prefix.of_string "10.1.0.0/20" with
    | Ok p -> p | Error m -> failwith m) in
  let smtp_session =
    List.map Eywa_smtp.Machine.command_of_letter
      [ "H"; "M"; "R"; "R"; "D"; "x"; "."; "Q" ]
  in
  let tests =
    [
      Test.make ~name:"solver: 6-var sum constraint"
        (Staged.stage (fun () -> Eywa_solver.Solve.solve solver_problem));
      Test.make ~name:"regex: compile domain pattern to a term"
        (Staged.stage (fun () -> Eywa_symex.Regex.compile_term regex cells));
      Test.make ~name:"symex: explore the DNAME model"
        (Staged.stage (fun () ->
             Eywa_symex.Exec.run dname_program ~entry:"dname_applies"
               ~args:(sym_args ()) ~assumes:[]));
      Test.make ~name:"dns: authoritative lookup (DNAME+wildcard zone)"
        (Staged.stage (fun () -> Eywa_dns.Lookup.lookup dns_zone dns_query));
      Test.make ~name:"bgp: route-map evaluation"
        (Staged.stage (fun () ->
             Eywa_bgp.Policy.apply_route_map ~prefix_lists:[ pl ] rm route));
      Test.make ~name:"smtp: 8-command session"
        (Staged.stage (fun () -> Eywa_smtp.Machine.run_session smtp_session));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "%-48s %12.0f ns/run\n" (Test.Elt.name elt) ns)
        (Test.elements test))
    tests

(* ----- ablations ----- *)

(* Design choices the paper (and DESIGN.md) motivate, each knocked out
   in turn on the DNAME model:

   1. k model drafts vs a single one (§2.2: model errors are
      compensated by other drafts).
   2. Differential majority voting vs trusting the LLM model's own
      output as the oracle (§2.2: "we do not rely on the LLM-generated
      model's result").
   3. The validity pipe (§2.1: the RegexModule guard) — how many
      generated inputs would be invalid without it.
   4. Dense per-path sampling (our Klee-coverage substitute). *)
let ablate scale =
  Printf.printf "\n%s\nAblations (DNAME model)\n%s\n" line line;
  let synth ~k ~samples =
    let m = Eywa_models.Dns_models.dname in
    let config =
      {
        Pipeline.default_config with
        k;
        timeout = 3.0;
        alphabet = m.Model_def.alphabet;
        samples_per_path = samples;
      }
    in
    match
      Pipeline.run ~cache:(cache ()) ~sink ~config ?jobs:!jobs ~oracle
        m.Model_def.graph ~main:m.Model_def.main
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let bug_count (s : Synthesis.t) =
    List.length
      (Dns_adapter.quirks_triggered ?jobs:!jobs ~version:Eywa_dns.Impls.Old
         [ ("DNAME", s.unique_tests) ])
  in
  ignore scale;
  (* 1 + 4: k and sampling *)
  let base = synth ~k:10 ~samples:4 in
  let k1 = synth ~k:1 ~samples:4 in
  let s1 = synth ~k:10 ~samples:1 in
  Printf.printf "k=10 samples=4 : %4d tests, %2d (impl, bug) pairs found\n"
    (List.length base.unique_tests) (bug_count base);
  Printf.printf "k=1  samples=4 : %4d tests, %2d (impl, bug) pairs found\n"
    (List.length k1.unique_tests) (bug_count k1);
  Printf.printf "k=10 samples=1 : %4d tests, %2d (impl, bug) pairs found\n"
    (List.length s1.unique_tests) (bug_count s1);
  (* 3: the validity pipe *)
  let invalid =
    List.length (List.filter (fun (t : Testcase.t) -> t.bad_input) base.unique_tests)
  in
  Printf.printf
    "validity pipe  : %d of %d generated inputs violate the domain-name regex\n\
    \                 (flagged bad_input and excluded from replay)\n"
    invalid
    (List.length base.unique_tests);
  (* 2: trusting the model instead of the majority. Interpret the
     model's boolean as "the answer section must be non-empty" and
     count how often that verdict wrongly flags the quirk-free
     reference engine. *)
  let false_positives = ref 0 and applicable = ref 0 in
  List.iter
    (fun (t : Testcase.t) ->
      match (Dns_adapter.artifacts_for ~model_id:"DNAME" t, t.result) with
      | Some (zone, query), Some expected -> (
          match Eywa_dns.Lookup.lookup zone query with
          | Eywa_dns.Message.Reply r ->
              incr applicable;
              let got = r.Eywa_dns.Message.answer <> [] in
              let model_says =
                match expected with
                | Eywa_minic.Value.Vbool b -> b
                | v -> ( try Eywa_minic.Value.to_int v <> 0 with _ -> false)
              in
              if got <> model_says then incr false_positives
          | Eywa_dns.Message.Crash _ -> ())
      | _ -> ())
    base.unique_tests;
  Printf.printf
    "model-as-oracle: flags the CORRECT reference engine on %d of %d tests\n\
    \                 (differential voting avoids all of these false alarms)\n"
    !false_positives !applicable

(* ----- parallel speedup ----- *)

(* Everything observable about a synthesis except wall-clock timings;
   two runs are "byte-identical" iff these strings are equal. *)
let fingerprint (s : Synthesis.t) =
  String.concat "\n"
    (Printf.sprintf "loc=%d/%d programs=%d" s.loc_min s.loc_max
       (List.length s.programs)
     :: List.map Testcase.to_string s.unique_tests
    @ List.concat_map
        (fun (r : Synthesis.model_result) ->
          Printf.sprintf "model %d loc=%d err=%s" r.index r.c_loc
            (Option.value ~default:"-" r.compile_error)
          :: List.map Testcase.to_string r.tests)
        s.results)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Times the synthesis+symex stage and the difftest stage at jobs=1
   and jobs=N, checking the byte-identity claim on every run. With
   --json PATH the measurements are also written as JSON. *)
let parallel scale =
  let n =
    match !jobs with
    | Some j -> max 1 j
    | None -> Eywa_core.Pool.default_jobs ()
  in
  Printf.printf "\n%s\nParallel pool: jobs=1 vs jobs=%d\n%s\n" line n line;
  let models =
    [ Eywa_models.Dns_models.cname; Eywa_models.Dns_models.dname;
      Eywa_models.Bgp_models.rr ]
  in
  let synth ~jobs (m : Model_def.t) =
    match Model_def.synthesize ~k:scale.k ~timeout:10.0 ~jobs ~oracle m with
    | Ok s -> s
    | Error e -> failwith (m.id ^ ": " ^ e)
  in
  Printf.printf "%-24s %12s %12s %9s %s\n" "stage" "jobs=1 (s)"
    (Printf.sprintf "jobs=%d (s)" n) "speedup" "identical";
  let stages =
    List.map
      (fun (m : Model_def.t) ->
        let s1, t1 = time (fun () -> synth ~jobs:1 m) in
        let sn, tn = time (fun () -> synth ~jobs:n m) in
        ("synthesis:" ^ m.id, t1, tn, fingerprint s1 = fingerprint sn, Some (m, s1)))
      models
  in
  (* difftest stage: replay the CNAME suite against the DNS servers *)
  let stages =
    stages
    @
    match stages with
    | ("synthesis:CNAME", _, _, _, Some (m, s)) :: _ ->
        let r1, t1 =
          time (fun () ->
              Dns_adapter.run ~jobs:1 ~model_id:m.id
                ~version:Eywa_dns.Impls.Old s.unique_tests)
        in
        let rn, tn =
          time (fun () ->
              Dns_adapter.run ~jobs:n ~model_id:m.id
                ~version:Eywa_dns.Impls.Old s.unique_tests)
        in
        let render r = Format.asprintf "%a" Difftest.pp_report r in
        [ ("difftest:CNAME", t1, tn, render r1 = render rn, None) ]
    | _ -> []
  in
  let total l sel = List.fold_left (fun acc st -> acc +. sel st) 0.0 l in
  let t1_total = total stages (fun (_, t1, _, _, _) -> t1) in
  let tn_total = total stages (fun (_, _, tn, _, _) -> tn) in
  let all_identical = List.for_all (fun (_, _, _, same, _) -> same) stages in
  let speedup t1 tn = if tn > 0.0 then t1 /. tn else 1.0 in
  List.iter
    (fun (name, t1, tn, same, _) ->
      Printf.printf "%-24s %12.2f %12.2f %8.2fx %s\n" name t1 tn (speedup t1 tn)
        (if same then "yes" else "NO"))
    stages;
  Printf.printf "%s\n%-24s %12.2f %12.2f %8.2fx %s\n" line "total" t1_total
    tn_total
    (speedup t1_total tn_total)
    (if all_identical then "yes" else "NO");
  if not all_identical then
    failwith "parallel: output differs between jobs=1 and jobs=N";
  (match !json_path with
  | None -> ()
  | Some path ->
      (try
      let oc = open_out path in
      let stage_json (name, t1, tn, same, _) =
        Printf.sprintf
          "    { \"stage\": %S, \"jobs1_seconds\": %.4f, \"jobsN_seconds\": \
           %.4f, \"speedup\": %.4f, \"identical_output\": %b }"
          name t1 tn (speedup t1 tn) same
      in
      Printf.fprintf oc
        "{\n\
        \  \"jobs\": %d,\n\
        \  \"cores\": %d,\n\
        \  \"stages\": [\n\
         %s\n\
        \  ],\n\
        \  \"total\": { \"jobs1_seconds\": %.4f, \"jobsN_seconds\": %.4f, \
         \"speedup\": %.4f },\n\
        \  \"identical_output\": %b\n\
         }\n"
        n
        (Domain.recommended_domain_count ())
        (String.concat ",\n" (List.map stage_json stages))
        t1_total tn_total (speedup t1_total tn_total) all_identical;
      close_out oc;
      Printf.printf "wrote %s\n" path
      with Sys_error m -> Printf.eprintf "error: cannot write JSON: %s\n" m))

(* ----- fuzz stage (PR3) ----- *)

(* Symex-only vs symex+fuzz: for each DNS model, fuzz the compiled
   draws seeded from their own symex tests, then compare the edge
   coverage of the two suites and the difftest disagreement counts on
   the bug-seeded implementation set. *)
let fuzz_stage scale =
  Printf.printf
    "\n%s\nFuzz: symex-only vs symex+fuzz (budget %d execs/draw)\n%s\n" line
    scale.fuzz_budget line;
  Printf.printf "%-11s %7s %7s  %-13s %-13s %9s %9s\n" "Model" "symex" "fuzz"
    "edges(symex)" "edges(+fuzz)" "dis(symex)" "dis(+fuzz)";
  let open Eywa_models.Dns_models in
  let models = [ cname; dname; rcode; loop ] in
  let fuzz_config =
    { Eywa_fuzz.Fuzz.default_config with budget = scale.fuzz_budget }
  in
  let rows =
    List.map
      (fun (m : Model_def.t) ->
        let s = synthesize scale m in
        let f =
          match
            Model_def.fuzz ~cache:(cache ()) ~sink ~fuzz_config ~k:scale.k
              ~timeout:(Float.max 1.0 (m.timeout *. scale.timeout_scale))
              ?jobs:!jobs ~oracle m s
          with
          | Ok f -> f
          | Error e -> failwith (m.id ^ ": fuzz: " ^ e)
        in
        let sum sel =
          List.fold_left
            (fun acc (d : Eywa_fuzz.Fuzz.draw_fuzz) -> acc + sel d)
            0 f.Eywa_fuzz.Fuzz.per_draw
        in
        let edges_seed = sum (fun d -> d.edges_seed) in
        let edges_after = sum (fun d -> d.edges_after) in
        let edges_static = sum (fun d -> d.edges_static) in
        let dis tests =
          (Dns_adapter.run ?jobs:!jobs ~model_id:m.id
             ~version:Eywa_dns.Impls.Old tests)
            .Difftest.disagreeing_tests
        in
        let dis_symex = dis s.Pipeline.unique_tests in
        let dis_combined = dis f.Eywa_fuzz.Fuzz.combined_tests in
        Printf.printf "%-11s %7d %7d  %4d / %-6d %4d / %-6d %9d %9d\n" m.id
          (List.length s.Pipeline.unique_tests)
          (List.length f.Eywa_fuzz.Fuzz.fuzz_tests)
          edges_seed edges_static edges_after edges_static dis_symex
          dis_combined;
        ( m.id,
          List.length s.Pipeline.unique_tests,
          List.length f.Eywa_fuzz.Fuzz.fuzz_tests,
          edges_seed, edges_after, edges_static, dis_symex, dis_combined ))
      models
  in
  let any_strict_increase =
    List.exists (fun (_, _, _, seed, after, _, _, _) -> after > seed) rows
  in
  Printf.printf "%s\nedge coverage strictly increased on %d of %d models\n" line
    (List.length
       (List.filter (fun (_, _, _, seed, after, _, _, _) -> after > seed) rows))
    (List.length rows);
  let path = !fuzz_json in
  try
    let oc = open_out path in
    let row_json (id, symex, fuzz, seed, after, static, d_sy, d_co) =
      Printf.sprintf
        "    { \"model\": %S, \"symex_tests\": %d, \"fuzz_tests\": %d, \
         \"edges_symex\": %d, \"edges_combined\": %d, \"edges_static\": %d, \
         \"disagreeing_symex\": %d, \"disagreeing_combined\": %d, \
         \"strict_increase\": %b }"
        id symex fuzz seed after static d_sy d_co (after > seed)
    in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"eywa-fuzz\",\n\
      \  \"fuzz_budget\": %d,\n\
      \  \"models\": [\n\
       %s\n\
      \  ],\n\
      \  \"any_strict_increase\": %b\n\
       }\n"
      scale.fuzz_budget
      (String.concat ",\n" (List.map row_json rows))
      any_strict_increase;
    close_out oc;
    Printf.printf "wrote %s\n" path
  with Sys_error m -> Printf.eprintf "error: cannot write fuzz JSON: %s\n" m

(* ----- obs stage (PR4) ----- *)

(* The observability determinism claim, end to end: run synthesis +
   fuzz + difftest on CNAME three times — jobs=1 on a cold cache,
   jobs=N warm on the same cache, jobs=N on a second cold cache — and
   require the wall-clock-stripped JSONL traces and the env-stripped
   Prometheus expositions to be byte-identical, every trace
   well-formed and JSONL/Chrome exports round-trip/parse. *)
let obs_stage scale =
  let module Obs = Eywa_obs.Obs in
  let module Trace = Eywa_obs.Trace in
  let module Export = Eywa_obs.Export in
  let module Metrics = Eywa_obs.Metrics in
  let module Json = Eywa_core.Serialize.Json in
  let n =
    match !jobs with
    | Some j when j > 1 -> j
    | _ -> max 2 (Eywa_core.Pool.default_jobs ())
  in
  Printf.printf
    "\n%s\nObservability: stripped traces at jobs=1/jobs=%d, warm/cold cache\n%s\n"
    line n line;
  let m = Eywa_models.Dns_models.cname in
  let run ~jobs ~cache =
    let ctx = Obs.create ~label:m.Model_def.id () in
    let s =
      match
        Model_def.synthesize ~cache ~obs:ctx ~k:scale.k ~timeout:2.0 ~jobs
          ~oracle m
      with
      | Ok s -> s
      | Error e -> failwith (m.Model_def.id ^ ": " ^ e)
    in
    (match
       Model_def.fuzz ~cache ~obs:ctx
         ~fuzz_config:
           { Eywa_fuzz.Fuzz.default_config with budget = scale.fuzz_budget }
         ~k:scale.k ~timeout:2.0 ~jobs ~oracle m s
     with
    | Ok _ -> ()
    | Error e -> failwith (m.Model_def.id ^ ": fuzz: " ^ e));
    ignore
      (Dns_adapter.run ~jobs ~sink:(Obs.sink ctx) ~model_id:m.Model_def.id
         ~version:Eywa_dns.Impls.Old s.Pipeline.unique_tests);
    ctx
  in
  (* run order matters: the second run must find the first one's cache
     warm, the third must start cold again *)
  let cache_a = Cache.create () in
  let ctx1 = run ~jobs:1 ~cache:cache_a in
  let ctx2 = run ~jobs:n ~cache:cache_a in
  let ctx3 = run ~jobs:n ~cache:(Cache.create ()) in
  let runs =
    [
      ("jobs=1, cold cache", ctx1);
      (Printf.sprintf "jobs=%d, warm cache" n, ctx2);
      (Printf.sprintf "jobs=%d, cold cache" n, ctx3);
    ]
  in
  let traces = List.map (fun (name, ctx) -> (name, Obs.finish ctx)) runs in
  List.iter
    (fun (name, t) ->
      match Trace.well_formed t with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "obs: %s: malformed trace: %s" name e))
    traces;
  let roundtrip_ok =
    List.for_all
      (fun (_, t) ->
        match Export.of_jsonl (Export.to_jsonl t) with
        | Ok t' -> t' = t
        | Error _ -> false)
      traces
  in
  let chrome_valid =
    List.for_all
      (fun (_, t) ->
        match Json.of_string (Export.chrome_trace t) with
        | Ok _ -> true
        | Error _ -> false)
      traces
  in
  let stripped =
    List.map (fun (name, t) -> (name, Export.to_jsonl (Trace.strip t))) traces
  in
  let metrics_txt =
    List.map
      (fun (name, ctx) ->
        (name, Metrics.expose ~strip_env:true (Obs.metrics ctx)))
      runs
  in
  let all_equal = function
    | [] -> true
    | (_, first) :: rest -> List.for_all (fun (_, s) -> String.equal s first) rest
  in
  let trace_identical = all_equal stripped in
  let metrics_identical = all_equal metrics_txt in
  let count items =
    List.fold_left
      (fun (s, e) -> function
        | Trace.Span _ -> (s + 1, e)
        | Trace.Event _ -> (s, e + 1))
      (0, 0) items
  in
  Printf.printf "%-22s %7s %8s %15s %14s\n" "run" "spans" "events"
    "trace bytes" "stripped bytes";
  List.iter2
    (fun (name, t) (_, s) ->
      let spans, events = count t.Trace.items in
      Printf.printf "%-22s %7d %8d %15d %14d\n" name spans events
        (String.length (Export.to_jsonl t))
        (String.length s))
    traces stripped;
  Printf.printf "%s\n" line;
  Printf.printf "stripped traces byte-identical : %s\n"
    (if trace_identical then "yes" else "NO");
  Printf.printf "stripped metrics byte-identical: %s\n"
    (if metrics_identical then "yes" else "NO");
  Printf.printf "JSONL round-trips, Chrome valid: %s, %s\n"
    (if roundtrip_ok then "yes" else "NO")
    (if chrome_valid then "yes" else "NO");
  let path = !obs_json in
  let run_obj (name, t) (_, s) =
    let spans, events = count t.Trace.items in
    Json.Obj
      [
        ("run", Json.Str name);
        ("spans", Json.Int spans);
        ("events", Json.Int events);
        ("trace_bytes", Json.Int (String.length (Export.to_jsonl t)));
        ("stripped_bytes", Json.Int (String.length s));
      ]
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "eywa-obs");
        ("model", Json.Str m.Model_def.id);
        ("jobs", Json.Int n);
        ("runs", Json.List (List.map2 run_obj traces stripped));
        ("stripped_trace_identical", Json.Bool trace_identical);
        ("stripped_metrics_identical", Json.Bool metrics_identical);
        ("jsonl_roundtrip", Json.Bool roundtrip_ok);
        ("chrome_valid", Json.Bool chrome_valid);
      ]
  in
  (try
     let oc = open_out path in
     output_string oc (Json.to_string_pretty doc);
     close_out oc;
     Printf.printf "wrote %s\n" path
   with Sys_error e -> Printf.eprintf "error: cannot write obs JSON: %s\n" e);
  if
    not (trace_identical && metrics_identical && roundtrip_ok && chrome_valid)
  then failwith "obs: determinism check failed"

(* ----- solver stage (PR5) ----- *)

(* Counterexample cache off vs on across the full model suite. The
   cache's bookkeeping runs in both modes, so the two legs must emit
   byte-identical tests; what the cache changes is how many search
   decisions actually execute, and the stage fails unless that total
   drops by at least 2x. No shared synthesis cache here: the point is
   to measure executed work, not replay stored artifacts. *)
let solver_stage scale =
  let module Json = Eywa_core.Serialize.Json in
  Printf.printf
    "\n%s\nSolver: counterexample cache off vs on (%d-model suite)\n%s\n" line
    (List.length All.all) line;
  Printf.printf "%-11s %12s %12s %7s %9s %9s %s\n" "Model" "dec(off)"
    "dec(on)" "ratio" "cex hits" "reuses" "identical";
  let leg ~cex_cache (m : Model_def.t) =
    let c = Instrument.Collector.create () in
    let s =
      match
        Model_def.synthesize
          ~sink:(Instrument.tee (Instrument.Collector.sink c) sink)
          ~k:scale.k
          ~timeout:(Float.max 1.0 (m.timeout *. scale.timeout_scale))
          ?jobs:!jobs ~cex_cache ~oracle m
      with
      | Ok s -> s
      | Error e -> failwith (m.id ^ ": " ^ e)
    in
    (s, Instrument.Collector.summary c)
  in
  let rows =
    List.map
      (fun (m : Model_def.t) ->
        let s_off, sum_off = leg ~cex_cache:false m in
        let s_on, sum_on = leg ~cex_cache:true m in
        let identical = fingerprint s_off = fingerprint s_on in
        let open Instrument.Collector in
        let ratio =
          if sum_on.solver_decisions > 0 then
            float_of_int sum_off.solver_decisions
            /. float_of_int sum_on.solver_decisions
          else 1.0
        in
        Printf.printf "%-11s %12d %12d %6.2fx %9d %9d %s\n" m.id
          sum_off.solver_decisions sum_on.solver_decisions ratio
          sum_on.cex_hits sum_on.model_reuses
          (if identical then "yes" else "NO");
        (m.id, sum_off, sum_on, identical))
      All.all
  in
  let total sel =
    List.fold_left (fun acc (_, off, on, _) -> acc + sel off on) 0 rows
  in
  let open Instrument.Collector in
  let dec_off = total (fun off _ -> off.solver_decisions) in
  let dec_on = total (fun _ on -> on.solver_decisions) in
  let hits = total (fun _ on -> on.cex_hits) in
  let reuses = total (fun _ on -> on.model_reuses) in
  let all_identical = List.for_all (fun (_, _, _, same) -> same) rows in
  let ratio =
    if dec_on > 0 then float_of_int dec_off /. float_of_int dec_on else 1.0
  in
  let reduction_ok = ratio >= 2.0 in
  Printf.printf "%s\n%-11s %12d %12d %6.2fx %9d %9d %s\n" line "total" dec_off
    dec_on ratio hits reuses
    (if all_identical then "yes" else "NO");
  Printf.printf "decision reduction >= 2x        : %s\n"
    (if reduction_ok then "yes" else "NO");
  Printf.printf "tests byte-identical off vs on  : %s\n"
    (if all_identical then "yes" else "NO");
  let path = !solver_json in
  let row_obj (id, off, on, identical) =
    Json.Obj
      [
        ("model", Json.Str id);
        ("decisions_off", Json.Int off.solver_decisions);
        ("decisions_on", Json.Int on.solver_decisions);
        ("cex_hits", Json.Int on.cex_hits);
        ("model_reuses", Json.Int on.model_reuses);
        ("solver_calls", Json.Int on.solver_calls);
        ("tests_identical", Json.Bool identical);
      ]
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "eywa-solver");
        ("k", Json.Int scale.k);
        ("models", Json.List (List.map row_obj rows));
        ("decisions_off_total", Json.Int dec_off);
        ("decisions_on_total", Json.Int dec_on);
        ("decision_ratio", Json.Float ratio);
        ("cex_hits_total", Json.Int hits);
        ("model_reuses_total", Json.Int reuses);
        ("tests_identical", Json.Bool all_identical);
        ("decision_reduction_ok", Json.Bool reduction_ok);
      ]
  in
  (try
     let oc = open_out path in
     output_string oc (Json.to_string_pretty doc);
     close_out oc;
     Printf.printf "wrote %s\n" path
   with Sys_error e -> Printf.eprintf "error: cannot write solver JSON: %s\n" e);
  if not all_identical then
    failwith "solver: tests differ between cache off and on";
  if not reduction_ok then
    failwith "solver: counterexample cache saves less than 2x decisions"

(* ----- driver ----- *)

(* Per-stage instrumentation: (name, wall seconds, collector summary
   before, after). The JSON deltas come out of the collector, so the
   tick/hit/miss totals are exactly what the pipeline reported. *)
let stage_log :
    (string * float * Instrument.Collector.summary * Instrument.Collector.summary)
    list ref =
  ref []

let staged name f =
  let before = Instrument.Collector.summary collector in
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  let after = Instrument.Collector.summary collector in
  stage_log := (name, dt, before, after) :: !stage_log

(* The document is canonical [Serialize.Json]; "totals" is the schema
   shared with [eywa stats --json] ({!Eywa_obs.Export.summary_totals}),
   so both validate with [eywa trace --json PATH]. *)
let write_summary_json path ~fast ~total_seconds =
  let module Json = Eywa_core.Serialize.Json in
  let stage_json (name, dt, b, a) =
    let open Instrument.Collector in
    Json.Obj
      [
        ("stage", Json.Str name);
        ("wall_seconds", Json.Float dt);
        ("draws", Json.Int (a.draws - b.draws));
        ("rejected", Json.Int (a.rejected - b.rejected));
        ("symex_ticks", Json.Int (a.symex_ticks - b.symex_ticks));
        ("paths_completed", Json.Int (a.paths_completed - b.paths_completed));
        ("solver_calls", Json.Int (a.solver_calls - b.solver_calls));
        ("solver_decisions", Json.Int (a.solver_decisions - b.solver_decisions));
        ("cex_hits", Json.Int (a.cex_hits - b.cex_hits));
        ("model_reuses", Json.Int (a.model_reuses - b.model_reuses));
        ("cache_hits", Json.Int (a.cache_hits - b.cache_hits));
        ("cache_misses", Json.Int (a.cache_misses - b.cache_misses));
        ("unique_tests", Json.Int (a.unique_tests - b.unique_tests));
        ("difftests", Json.Int (a.difftests - b.difftests));
        ( "fuzz_edges_gained",
          Json.Int (a.fuzz_edges_gained - b.fuzz_edges_gained) );
        ("difftest_execs", Json.Int (a.difftest_execs - b.difftest_execs));
        ("pool_tasks", Json.Int (a.pool_tasks - b.pool_tasks));
      ]
  in
  let s = Instrument.Collector.summary collector in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "eywa");
        ("scale", Json.Str (if fast then "fast" else "full"));
        ( "jobs",
          Json.Int
            (match !jobs with
            | Some j -> j
            | None -> Eywa_core.Pool.default_jobs ()) );
        ("total_seconds", Json.Float total_seconds);
        ("stages", Json.List (List.rev_map stage_json !stage_log));
        ("totals", Eywa_obs.Export.summary_totals s);
      ]
  in
  try
    let oc = open_out path in
    output_string oc (Json.to_string_pretty doc);
    close_out oc;
    Printf.printf "wrote %s\n" path
  with Sys_error m -> Printf.eprintf "error: cannot write summary JSON: %s\n" m

let () =
  let rec parse_flags = function
    | [] -> []
    | "--jobs" :: v :: rest ->
        jobs := Some (int_of_string v);
        parse_flags rest
    | "--json" :: p :: rest ->
        json_path := Some p;
        parse_flags rest
    | "--cache-dir" :: d :: rest ->
        cache_dir := Some d;
        parse_flags rest
    | "--summary-json" :: p :: rest ->
        summary_json := Some p;
        parse_flags rest
    | "--fuzz-json" :: p :: rest ->
        fuzz_json := p;
        parse_flags rest
    | "--obs-json" :: p :: rest ->
        obs_json := p;
        parse_flags rest
    | "--solver-json" :: p :: rest ->
        solver_json := p;
        parse_flags rest
    | a :: rest -> a :: parse_flags rest
  in
  let args = parse_flags (Array.to_list Sys.argv |> List.tl) in
  let fast = List.mem "fast" args in
  let scale = if fast then fast_scale else full_scale in
  let commands = List.filter (fun a -> a <> "fast") args in
  let run_all = commands = [] || List.mem "all" commands in
  let wants c = run_all || List.mem c commands in
  let t0 = Unix.gettimeofday () in
  if wants "table1" then staged "table1" table1;
  if wants "table2" then staged "table2" (fun () -> table2 scale);
  if wants "table3" then staged "table3" (fun () -> table3 scale);
  if wants "fig10" then staged "fig10" (fun () -> fig10 scale);
  if wants "timing" then staged "timing" (fun () -> timing scale);
  if wants "ablate" then staged "ablate" (fun () -> ablate scale);
  if wants "parallel" then staged "parallel" (fun () -> parallel scale);
  if wants "fuzz" then staged "fuzz" (fun () -> fuzz_stage scale);
  if wants "obs" then staged "obs" (fun () -> obs_stage scale);
  if wants "solver" then staged "solver" (fun () -> solver_stage scale);
  if wants "micro" then staged "micro" micro;
  let total_seconds = Unix.gettimeofday () -. t0 in
  Printf.printf "\n%s\ntotal bench time: %.1f s%s\n" line total_seconds
    (if fast then " (fast scale)" else "");
  match !summary_json with
  | None -> ()
  | Some path -> write_summary_json path ~fast ~total_seconds
