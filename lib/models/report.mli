(** Markdown bug reports from triaged differential-testing results.

    The paper's endpoint is filing issues upstream ("we filed the issue
    on the Knot Gitlab... fixed within a week"); this renders a
    filing-ready report per implementation: the disagreement tuples,
    how often each fired, and — for DNS — a reproduction section with
    the §2.3-style zone file and query of a witness test. *)

val dns :
  ?sink:Eywa_core.Instrument.sink ->
  ?obs:Eywa_obs.Obs.t ->
  ?coverage:int * int ->
  model_id:string ->
  version:Eywa_dns.Impls.version ->
  Eywa_core.Testcase.t list ->
  string
(** Run differential testing over the tests and render the findings.
    [sink] receives the [Pool_merged]/[Difftest_done] events the
    difftest merge emits (default: none); [obs] additionally feeds an
    observability context (its sink is teed in front of [sink]).
    [coverage] is the suite's [(edges hit, edges total)] over the
    compiled models (see {!Eywa_fuzz.Coverage.of_suite}); when given,
    the report carries a model-coverage line. *)

val render_generic :
  title:string ->
  Eywa_difftest.Difftest.report ->
  string
(** Protocol-independent rendering of an existing report. *)
