module Smtp = Eywa_smtp
module Difftest = Eywa_difftest.Difftest
module Testcase = Eywa_core.Testcase
module Stategraph = Eywa_stategraph.Stategraph

let state_graph_for (synth : Eywa_core.Synthesis.t) =
  match
    List.find_opt
      (fun (r : Eywa_core.Synthesis.model_result) -> r.compile_error = None)
      synth.results
  with
  | None -> Error "no compiled model to extract a state graph from"
  | Some r ->
      let response = Eywa_llm.Gpt.complete_stategraph r.c_source in
      (match Eywa_llm.Extract.parse_pydict response with
      | Error m -> Error m
      | Ok transitions -> Ok (Stategraph.of_list transitions))

let probe impl graph state input =
  match Smtp.Impls.drive_and_probe impl graph ~state ~input with
  | Ok reply -> [ ("reply", reply); ("drive", "ok") ]
  | Error m -> [ ("reply", ""); ("drive", m) ]

let observations_for ~graph (test : Testcase.t) =
  if test.bad_input || test.error <> None then None
  else begin
    let state = Smtp_models.test_state test in
    let input = Smtp_models.test_input test in
    if input = "" then None
    else
      Some
        (List.map
           (fun impl ->
             { Difftest.impl = impl.Smtp.Impls.name;
               fields = probe impl graph state input })
           Smtp.Impls.all)
  end

let run ?jobs ?sink ~graph tests =
  Difftest.run ?jobs ?sink ~label:"SERVER" ~observe:(observations_for ~graph)
    tests

(* Quirk attribution for one test (pure, pool-safe). *)
let quirks_for_test ~graph (test : Testcase.t) =
  match observations_for ~graph test with
  | None -> []
  | Some obs ->
      let disagreements = Difftest.compare_all obs in
      List.concat_map
        (fun (d : Difftest.disagreement) ->
          match Smtp.Impls.find d.d_impl with
          | None -> []
          | Some impl ->
              let state = Smtp_models.test_state test in
              let input = Smtp_models.test_input test in
              let active = Smtp.Impls.quirks impl in
              let reply_with quirks =
                match Stategraph.path_to graph ~start:"INITIAL" ~goal:state with
                | None -> None
                | Some prefix ->
                    let commands =
                      List.map Smtp.Machine.command_of_letter (prefix @ [ input ])
                    in
                    Some (Smtp.Machine.run_session ~quirks commands)
              in
              let with_all = reply_with active in
              List.filter_map
                (fun q ->
                  let without = reply_with (List.filter (fun x -> x <> q) active) in
                  if without <> with_all then Some (impl.Smtp.Impls.name, q)
                  else None)
                active)
        disagreements

let quirks_triggered ?jobs ~graph tests =
  let found = ref [] in
  let note pair = if not (List.mem pair !found) then found := !found @ [ pair ] in
  List.iter (List.iter note)
    (Difftest.parallel_map ?jobs (quirks_for_test ~graph) tests);
  !found
