(** From SMTP model tests to differential observations.

    SMTP is stateful: every test is a (state, input) pair, and the
    implementation must be driven to the state first (§4.2). The driver
    BFS-searches the state graph — extracted from the generated server
    code by the second LLM call — for an input sequence, prepends it,
    runs the session on a fresh server, and observes the reply to the
    probed input. *)

val state_graph_for :
  Eywa_core.Synthesis.t -> (Eywa_stategraph.Stategraph.t, string) result
(** Ask the (simulated) LLM for the state graph of the first compiled
    model's generated code (Fig. 8), then parse its dict response. *)

val observations_for :
  graph:Eywa_stategraph.Stategraph.t ->
  Eywa_core.Testcase.t ->
  Eywa_difftest.Difftest.observation list option

val run :
  ?jobs:int ->
  ?sink:Eywa_core.Instrument.sink ->
  graph:Eywa_stategraph.Stategraph.t ->
  Eywa_core.Testcase.t list ->
  Eywa_difftest.Difftest.report
(** Per-test observations fan out over a [jobs]-domain pool and merge
    in input order; the report is identical at any [jobs]. [sink]
    receives the merge-point events, labelled ["SERVER"]. *)

val quirks_triggered :
  ?jobs:int ->
  graph:Eywa_stategraph.Stategraph.t ->
  Eywa_core.Testcase.t list ->
  (string * Eywa_smtp.Machine.quirk) list
