(** From DNS model tests to differential observations (§4.2).

    Each test's inputs are post-processed into a valid zone (§2.3's
    suffixing plus apex SOA/NS; lookup-oriented models additionally get
    a child delegation with sibling glue so referral behaviour is
    exercised) and a query, which are then served by every
    implementation of Table 1. The response fields compared are the
    ones the paper lists: answer, authority, additional sections, the
    aa flag, the return code, and whether the server crashed. *)

val fields_of_outcome : Eywa_dns.Message.outcome -> Eywa_difftest.Difftest.fields

val artifacts_for :
  model_id:string ->
  Eywa_core.Testcase.t ->
  (Eywa_dns.Zone.t * Eywa_dns.Message.query) option
(** The zone and query a test turns into; [None] for bad-input or
    crash-path tests, which are not replayed against servers. *)

val observations_for :
  model_id:string ->
  version:Eywa_dns.Impls.version ->
  Eywa_core.Testcase.t ->
  Eywa_difftest.Difftest.observation list option

val run :
  ?jobs:int ->
  ?sink:Eywa_core.Instrument.sink ->
  model_id:string ->
  version:Eywa_dns.Impls.version ->
  Eywa_core.Testcase.t list ->
  Eywa_difftest.Difftest.report
(** Per-test observations are computed on a [jobs]-domain pool
    (default {!Eywa_core.Pool.default_jobs}) and merged in input
    order, so the report is identical at any [jobs]. [sink] receives
    the [Pool_merged]/[Difftest_done] events {!Eywa_difftest.Difftest.run}
    emits at the merge point, labelled with [model_id]. *)

val quirks_triggered :
  ?jobs:int ->
  version:Eywa_dns.Impls.version ->
  (string * Eywa_core.Testcase.t list) list ->
  (string * Eywa_dns.Lookup.quirk) list
(** Root-cause attribution: for every disagreeing (implementation,
    test), re-serve the query with each of the implementation's quirks
    removed in turn; a quirk whose removal repairs the response is the
    root cause. Returns the distinct (implementation, quirk) pairs
    confirmed by at least one test — the "bugs found" of Table 3. *)
