module Difftest = Eywa_difftest.Difftest
module Testcase = Eywa_core.Testcase

let render_generic ~title (report : Difftest.report) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# %s" title;
  line "";
  line "%d tests executed; %d produced disagreements; %d unique root-cause tuples."
    report.total_tests report.disagreeing_tests
    (List.length report.tuples);
  List.iter
    (fun impl ->
      line "";
      line "## %s" impl;
      line "";
      line "| field | observed | majority | occurrences |";
      line "|---|---|---|---|";
      List.iter
        (fun ((d : Difftest.disagreement), count) ->
          let trim s = if String.length s > 70 then String.sub s 0 70 ^ "…" else s in
          line "| %s | `%s` | `%s` | %d |" d.d_field
            (trim (if d.d_got = "" then "(empty)" else d.d_got))
            (trim (if d.d_majority = "" then "(empty)" else d.d_majority))
            count)
        (Difftest.tuples_for report impl))
    (Difftest.impls_in_report report);
  Buffer.contents buf

(* The first test whose observations make this implementation dissent. *)
let dns_witness ~model_id ~version impl tests =
  List.find_opt
    (fun t ->
      match Dns_adapter.observations_for ~model_id ~version t with
      | None -> false
      | Some obs ->
          List.exists
            (fun (d : Difftest.disagreement) -> d.d_impl = impl)
            (Difftest.compare_all obs))
    tests

let dns ?(sink = Eywa_core.Instrument.null) ?obs ?coverage ~model_id ~version
    tests =
  let sink =
    match obs with
    | None -> sink
    | Some ctx -> Eywa_core.Instrument.tee (Eywa_obs.Obs.sink ctx) sink
  in
  let report = Dns_adapter.run ~sink ~model_id ~version tests in
  let base = render_generic ~title:(Printf.sprintf "Eywa findings: DNS %s model" model_id) report in
  let buf = Buffer.create (String.length base + 1024) in
  Buffer.add_string buf base;
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match coverage with
  | None -> ()
  | Some (hit, total) ->
      line "";
      line "Model edge coverage: %d / %d branch edges%s." hit total
        (if total > 0 then
           Printf.sprintf " (%.0f%%)" (100.0 *. float_of_int hit /. float_of_int total)
         else ""));
  List.iter
    (fun impl ->
      match dns_witness ~model_id ~version impl tests with
      | None -> ()
      | Some t -> (
          match Dns_adapter.artifacts_for ~model_id t with
          | None -> ()
          | Some (zone, query) ->
              line "";
              line "### Reproduction for %s" impl;
              line "";
              line "Zone file:";
              line "```";
              Buffer.add_string buf (Eywa_dns.Zonefile.print zone);
              line "```";
              line "Query: `%s %s`"
                (Eywa_dns.Name.to_string query.Eywa_dns.Message.qname)
                (Eywa_dns.Rr.rtype_to_string query.Eywa_dns.Message.qtype);
              (match Eywa_dns.Impls.find impl with
              | Some i ->
                  line "";
                  line "Observed response:";
                  line "```";
                  Buffer.add_string buf
                    (Eywa_dns.Message.outcome_to_string
                       (Eywa_dns.Impls.serve i version zone query));
                  line "```"
              | None -> ())))
    (Difftest.impls_in_report report);
  Buffer.contents buf
