module Dns = Eywa_dns
module Difftest = Eywa_difftest.Difftest
module Testcase = Eywa_core.Testcase

let render_rrs rrs =
  String.concat " | "
    (List.sort_uniq compare (List.map Dns.Rr.to_string rrs))

let fields_of_outcome = function
  | Dns.Message.Crash m ->
      [
        ("crash", m); ("rcode", ""); ("aa", ""); ("answer", ""); ("authority", "");
        ("additional", "");
      ]
  | Dns.Message.Reply r ->
      [
        ("crash", "");
        ("rcode", Dns.Message.rcode_to_string r.rcode);
        ("aa", string_of_bool r.aa);
        ("answer", render_rrs r.answer);
        ("authority", render_rrs r.authority);
        ("additional", render_rrs r.additional);
      ]

(* Lookup-style models get the delegation so referral/glue behaviour is
   reachable; per-record models keep the minimal zone. *)
let with_delegation model_id =
  match model_id with
  | "FULLLOOKUP" | "AUTH" -> true
  | _ -> false

let artifacts_for ~model_id (test : Testcase.t) =
  if test.bad_input || test.error <> None then None
  else begin
    let records =
      match Dns_models.test_record test with
      | Some r -> [ r ]
      | None -> Dns_models.test_zone_records test
    in
    if records = [] then None
    else begin
      let zone =
        Dns.Zonefile.build_zone ~extra_delegation:(with_delegation model_id) records
      in
      let qtype =
        match model_id with
        | "FULLLOOKUP" | "RCODE" | "AUTH" -> Dns_models.test_qtype test
        | _ -> Dns.Rr.A
      in
      let query = Dns.Zonefile.build_query (Dns_models.test_query test) qtype in
      Some (zone, query)
    end
  end

let observations_for ~model_id ~version test =
  match artifacts_for ~model_id test with
  | None -> None
  | Some (zone, query) ->
      Some
        (List.map
           (fun impl ->
             let outcome = Dns.Impls.serve impl version zone query in
             { Difftest.impl = impl.Dns.Impls.name;
               fields = fields_of_outcome outcome })
           Dns.Impls.all)

let run ?jobs ?sink ~model_id ~version tests =
  Difftest.run ?jobs ?sink ~label:model_id
    ~observe:(observations_for ~model_id ~version)
    tests

(* Quirk attribution for one test: which (impl, quirk) pairs change
   behaviour on it. Pure, so the per-test loop fans out on the pool;
   the dedup into first-occurrence order stays sequential. *)
let quirks_for_test ~version ~model_id test =
  match artifacts_for ~model_id test with
  | None -> []
  | Some (zone, query) ->
      let fieldss =
        List.map
          (fun impl ->
            { Difftest.impl = impl.Dns.Impls.name;
              fields = fields_of_outcome (Dns.Impls.serve impl version zone query) })
          Dns.Impls.all
      in
      let disagreements = Difftest.compare_all fieldss in
      List.concat_map
        (fun (d : Difftest.disagreement) ->
          match Dns.Impls.find d.d_impl with
          | None -> []
          | Some impl ->
              let active = Dns.Impls.quirks impl version in
              let with_all = Dns.Lookup.lookup ~quirks:active zone query in
              List.filter_map
                (fun q ->
                  let without =
                    Dns.Lookup.lookup
                      ~quirks:(List.filter (fun x -> x <> q) active)
                      zone query
                  in
                  if without <> with_all then Some (impl.Dns.Impls.name, q)
                  else None)
                active)
        disagreements

let quirks_triggered ?jobs ~version model_ids_and_tests =
  let found = ref [] in
  let note pair = if not (List.mem pair !found) then found := !found @ [ pair ] in
  List.iter
    (fun (model_id, tests) ->
      List.iter (List.iter note)
        (Difftest.parallel_map ?jobs (quirks_for_test ~version ~model_id) tests))
    model_ids_and_tests;
  !found
