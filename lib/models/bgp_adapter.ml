module Bgp = Eywa_bgp
module Difftest = Eywa_difftest.Difftest
module Testcase = Eywa_core.Testcase

let injected_prefix = Bgp.Prefix.v (Int32.shift_left 5l 28) 4

let render_rib rib =
  String.concat " | " (List.map Bgp.Route.to_string rib)

(* ----- scenario construction per model ----- *)

(* CONFED: R2 sits in a confederation; the test chooses the peer AS,
   R2's sub-AS, the confederation id, and whether the peer is a member.
   R2 exports to R3 with local-as replace-as configured, which is the
   FRR replace-as bug surface. *)
let confed_scenario test quirks =
  let peer_as = Bgp_models.test_int test "peer_as" in
  let my_sub_as = Bgp_models.test_int test "my_sub_as" in
  let confed_id = Bgp_models.test_int test "confed_id" in
  let peer_in_confed = Bgp_models.test_bool test "peer_in_confed" in
  let confed =
    Some
      {
        Bgp.Confed.confed_id;
        sub_as = my_sub_as;
        members = (if peer_in_confed then [ my_sub_as; peer_as ] else [ my_sub_as ]);
      }
  in
  let r2 =
    {
      Bgp.Network.rname = "r2"; asn = my_sub_as; confed; cluster_id = 2;
      prefix_lists = []; route_maps = [];
    }
  in
  let r3 =
    { Bgp.Network.rname = "r3"; asn = 7; confed = None; cluster_id = 3;
      prefix_lists = []; route_maps = [] }
  in
  let r2_in =
    { Bgp.Network.peer_as; peer_in_confed; peer_kind = Bgp.Reflect.External;
      import_map = None; export_map = None; replace_as = None }
  in
  let r2_out =
    { Bgp.Network.peer_as = 7; peer_in_confed = false;
      peer_kind = Bgp.Reflect.External; import_map = None; export_map = None;
      replace_as = Some (6, true) }
  in
  let r3_in =
    { Bgp.Network.peer_as = confed_id; peer_in_confed = false;
      peer_kind = Bgp.Reflect.External; import_map = None; export_map = None;
      replace_as = None }
  in
  let injected =
    [ Bgp.Route.v ~as_path:(Bgp.Aspath.prepend peer_as Bgp.Aspath.empty)
        injected_prefix ]
  in
  let session =
    Bgp.Confed.agree ~quirks confed ~local_as:my_sub_as ~peer_as ~peer_in_confed
  in
  let r2_rib, r3_rib =
    Bgp.Network.run_chain ~quirks ~r2 ~r2_in ~r2_out ~r3 ~r3_in ~injected ()
  in
  [
    ("session", Bgp.Confed.session_to_string session);
    ("r2_rib", render_rib r2_rib);
    ("r3_rib", render_rib r3_rib);
  ]

(* RR / RR-RMAP: R2 is a route reflector; the test chooses the peer
   kinds on both sides, and (for RR-RMAP) an export policy from the
   prefix-list entry. Injected routes carry a non-default local-pref so
   the Batfish local-pref bug is observable at R3. *)
let reflect_scenario ~with_policy test quirks =
  let from_kind = Bgp_models.test_peer_type test "from_peer" in
  let to_kind = Bgp_models.test_peer_type test "to_peer" in
  let prefix_lists, route_maps, export_map =
    if with_policy then begin
      match Bgp_models.test_prefix_entry test with
      | None -> ([], [], None)
      | Some entry ->
          ( [ { Bgp.Policy.pl_name = "pl"; entries = [ entry ] } ],
            [
              {
                Bgp.Policy.rm_name = "export";
                stanzas =
                  [
                    {
                      Bgp.Policy.stanza_seq = 10;
                      stanza_permit = true;
                      matches = [ Bgp.Policy.Match_prefix_list "pl" ];
                      sets = [];
                    };
                  ];
              };
            ],
            Some "export" )
    end
    else ([], [], None)
  in
  let kind_as = function
    | Bgp.Reflect.External -> 9  (* eBGP peers are in another AS *)
    | Bgp.Reflect.Client | Bgp.Reflect.Non_client -> 2
  in
  let r2 =
    { Bgp.Network.rname = "r2"; asn = 2; confed = None; cluster_id = 2;
      prefix_lists; route_maps }
  in
  let r3 =
    { Bgp.Network.rname = "r3"; asn = kind_as to_kind; confed = None;
      cluster_id = 3; prefix_lists = []; route_maps = [] }
  in
  let r2_in =
    { Bgp.Network.peer_as = kind_as from_kind; peer_in_confed = false;
      peer_kind = from_kind; import_map = None; export_map = None;
      replace_as = None }
  in
  let r2_out =
    { Bgp.Network.peer_as = kind_as to_kind; peer_in_confed = false;
      peer_kind = to_kind; import_map = None; export_map; replace_as = None }
  in
  let r3_in =
    { Bgp.Network.peer_as = 2; peer_in_confed = false;
      peer_kind = Bgp.Reflect.External; import_map = None; export_map = None;
      replace_as = None }
  in
  let route =
    match Bgp_models.test_route test with
    | Some p -> Bgp.Route.v ~local_pref:200
        ~as_path:(Bgp.Aspath.prepend (kind_as from_kind) Bgp.Aspath.empty) p
    | None ->
        Bgp.Route.v ~local_pref:200
          ~as_path:(Bgp.Aspath.prepend (kind_as from_kind) Bgp.Aspath.empty)
          injected_prefix
  in
  let r2_rib, r3_rib =
    Bgp.Network.run_chain ~quirks ~r2 ~r2_in ~r2_out ~r3 ~r3_in ~injected:[ route ]
      ()
  in
  [ ("r2_rib", render_rib r2_rib); ("r3_rib", render_rib r3_rib) ]

(* RMAP-PL: pure policy evaluation — a route against a one-entry prefix
   list used by a route-map stanza. *)
let policy_scenario test quirks =
  match (Bgp_models.test_route test, Bgp_models.test_prefix_entry test) with
  | Some prefix, Some entry ->
      let route = Bgp.Route.v prefix in
      let pl = { Bgp.Policy.pl_name = "pl"; entries = [ entry ] } in
      let rm =
        {
          Bgp.Policy.rm_name = "rm";
          stanzas =
            [
              {
                Bgp.Policy.stanza_seq = 10;
                stanza_permit = true;
                matches = [ Bgp.Policy.Match_prefix_list "pl" ];
                sets = [ Bgp.Policy.Set_local_pref 150 ];
              };
            ];
        }
      in
      let outcome =
        Bgp.Policy.apply_route_map ~quirks ~prefix_lists:[ pl ] rm route
      in
      Some
        [
          ( "policy",
            match outcome with
            | None -> "deny"
            | Some r -> "permit " ^ Bgp.Route.to_string r );
        ]
  | _, _ -> None

let scenario ~model_id test quirks =
  match model_id with
  | "CONFED" -> Some (confed_scenario test quirks)
  | "RR" -> Some (reflect_scenario ~with_policy:false test quirks)
  | "RR-RMAP" -> Some (reflect_scenario ~with_policy:true test quirks)
  | "RMAP-PL" -> policy_scenario test quirks
  | _ -> None

(* The injector on R1 is ExaBGP — an independent, correct
   implementation that participates in the experiment. Including its
   view as an observation means a bug shared by all three tested
   implementations (the confederation sub-AS collision affects FRR,
   GoBGP and Batfish alike) still surfaces as a disagreement. *)
let observations_for ~model_id (test : Testcase.t) =
  if test.bad_input || test.error <> None then None
  else begin
    let viewpoints =
      ("exabgp", [])
      :: List.map (fun impl -> (impl.Bgp.Impls.name, Bgp.Impls.quirks impl))
           Bgp.Impls.all
    in
    let obs =
      List.filter_map
        (fun (name, quirks) ->
          match scenario ~model_id test quirks with
          | None -> None
          | Some fields -> Some { Difftest.impl = name; fields })
        viewpoints
    in
    match obs with [] -> None | _ -> Some obs
  end

let run ?jobs ?sink ~model_id tests =
  Difftest.run ?jobs ?sink ~label:model_id
    ~observe:(observations_for ~model_id)
    tests

(* Quirk attribution for one test (pure, pool-safe): a disagreement
   anywhere prompts attribution for every implementation — majority
   voting alone cannot name the culprit when the bug is shared. *)
let quirks_for_test ~model_id (test : Testcase.t) =
  match observations_for ~model_id test with
  | None -> []
  | Some obs ->
      if Difftest.compare_all obs = [] then []
      else
        List.concat_map
          (fun impl ->
            let active = Bgp.Impls.quirks impl in
            let with_all = scenario ~model_id test active in
            List.filter_map
              (fun q ->
                let without =
                  scenario ~model_id test (List.filter (fun x -> x <> q) active)
                in
                if without <> with_all then Some (impl.Bgp.Impls.name, q)
                else None)
              active)
          Bgp.Impls.all

let quirks_triggered ?jobs model_ids_and_tests =
  let found = ref [] in
  let note pair = if not (List.mem pair !found) then found := !found @ [ pair ] in
  List.iter
    (fun (model_id, tests) ->
      List.iter (List.iter note)
        (Difftest.parallel_map ?jobs (quirks_for_test ~model_id) tests))
    model_ids_and_tests;
  !found
