(** A named Eywa model (one row of Table 2): its module graph, entry
    module, and synthesis parameters. *)

type t = {
  id : string;  (** Table 2 name, e.g. "CNAME" *)
  protocol : string;  (** "DNS" | "BGP" | "SMTP" *)
  graph : Eywa_core.Graph.t;
  main : Eywa_core.Emodule.t;
  spec_loc : int;  (** lines of the defining model code (Table 2 "LOC") *)
  alphabet : char list;  (** character domain for this model's strings *)
  timeout : float;  (** per-model symbolic execution budget, seconds *)
}

val pipeline_config :
  ?k:int ->
  ?temperature:float ->
  ?seed:int ->
  ?timeout:float ->
  ?max_paths:int ->
  ?cex_cache:bool ->
  t ->
  Eywa_core.Pipeline.config
(** The exact config {!synthesize} runs with — exposed so stages
    layered on a synthesis result (the fuzz stage's cache key) can
    reproduce it instead of guessing. *)

val synthesize :
  ?cache:Eywa_core.Cache.t ->
  ?sink:Eywa_core.Instrument.sink ->
  ?obs:Eywa_obs.Obs.t ->
  ?k:int ->
  ?temperature:float ->
  ?seed:int ->
  ?timeout:float ->
  ?max_paths:int ->
  ?cex_cache:bool ->
  ?jobs:int ->
  oracle:Eywa_core.Oracle.t ->
  t ->
  (Eywa_core.Synthesis.t, string) result
(** Run the full pipeline with this model's alphabet; [timeout] and
    [max_paths] override the model's defaults (tests and sweeps use
    small budgets). [jobs] fans the [k] draws out over a domain pool
    (see {!Eywa_core.Pipeline.run}); the result is identical at any
    value. [cache] content-addresses the per-draw artifacts and
    [sink] receives stage events — both default to off. [obs] feeds
    an observability context (span tree + metrics); when both [obs]
    and [sink] are given, the context's sink runs first. *)

val fuzz :
  ?cache:Eywa_core.Cache.t ->
  ?sink:Eywa_core.Instrument.sink ->
  ?obs:Eywa_obs.Obs.t ->
  ?fuzz_config:Eywa_fuzz.Fuzz.config ->
  ?k:int ->
  ?temperature:float ->
  ?seed:int ->
  ?timeout:float ->
  ?max_paths:int ->
  ?cex_cache:bool ->
  ?jobs:int ->
  oracle:Eywa_core.Oracle.t ->
  t ->
  Eywa_core.Pipeline.t ->
  (Eywa_fuzz.Fuzz.t, string) result
(** Run the coverage-guided fuzz stage over a synthesis result of this
    model (see {!Eywa_fuzz.Fuzz.fuzz_of_seeds}). The synthesis
    parameters must match the ones [suite] was produced with — they
    feed the fuzz cache key. *)
