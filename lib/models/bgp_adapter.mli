(** From BGP model tests to differential observations.

    Each implementation (FRR, GoBGP, Batfish) is the reference engine
    under its own quirk set. Tests are replayed on the §4.2 three-node
    setup: routes injected at R1 (the ExaBGP stand-in) into R2, which
    runs the configuration derived from the test and propagates to R3;
    the observation renders the session outcome and both routing
    tables. *)

val observations_for :
  model_id:string -> Eywa_core.Testcase.t -> Eywa_difftest.Difftest.observation list option

val run :
  ?jobs:int ->
  ?sink:Eywa_core.Instrument.sink ->
  model_id:string ->
  Eywa_core.Testcase.t list ->
  Eywa_difftest.Difftest.report
(** Per-test observations fan out over a [jobs]-domain pool and merge
    in input order; the report is identical at any [jobs]. [sink]
    receives the merge-point events, labelled with [model_id]. *)

val quirks_triggered :
  ?jobs:int ->
  (string * Eywa_core.Testcase.t list) list ->
  (string * Eywa_bgp.Quirks.t) list
(** Root-cause attribution by quirk removal, as in
    {!Dns_adapter.quirks_triggered}. *)
