type t = {
  id : string;
  protocol : string;
  graph : Eywa_core.Graph.t;
  main : Eywa_core.Emodule.t;
  spec_loc : int;
  alphabet : char list;
  timeout : float;
}

let pipeline_config ?(k = 10) ?(temperature = 0.6) ?(seed = 42) ?timeout
    ?max_paths ?(cex_cache = true) t =
  let config =
    {
      Eywa_core.Pipeline.default_config with
      k;
      temperature;
      timeout = (match timeout with Some s -> s | None -> t.timeout);
      alphabet = t.alphabet;
      base_seed = seed;
      cex_cache;
    }
  in
  match max_paths with Some n -> { config with max_paths = n } | None -> config

(* [?obs] and [?sink] compose: the observability context's sink is
   teed in front of any caller-supplied sink. *)
let combine_sink ?sink ?obs () =
  match (obs, sink) with
  | None, sink -> sink
  | Some ctx, None -> Some (Eywa_obs.Obs.sink ctx)
  | Some ctx, Some s -> Some (Eywa_core.Instrument.tee (Eywa_obs.Obs.sink ctx) s)

let synthesize ?cache ?sink ?obs ?k ?temperature ?seed ?timeout ?max_paths
    ?cex_cache ?jobs ~oracle t =
  let sink = combine_sink ?sink ?obs () in
  let config =
    pipeline_config ?k ?temperature ?seed ?timeout ?max_paths ?cex_cache t
  in
  Eywa_core.Pipeline.run ?cache ?sink ~config ?jobs ~oracle t.graph
    ~main:t.main

let fuzz ?cache ?sink ?obs ?fuzz_config ?k ?temperature ?seed ?timeout
    ?max_paths ?cex_cache ?jobs ~oracle t suite =
  let sink = combine_sink ?sink ?obs () in
  let pipeline =
    pipeline_config ?k ?temperature ?seed ?timeout ?max_paths ?cex_cache t
  in
  Eywa_fuzz.Fuzz.fuzz_of_seeds ?cache ?sink ?config:fuzz_config ?jobs
    ~oracle_name:oracle.Eywa_core.Oracle.name ~pipeline t.graph suite
