type t = {
  id : string;
  protocol : string;
  graph : Eywa_core.Graph.t;
  main : Eywa_core.Emodule.t;
  spec_loc : int;
  alphabet : char list;
  timeout : float;
}

let synthesize ?cache ?sink ?(k = 10) ?(temperature = 0.6) ?(seed = 42)
    ?timeout ?max_paths ?jobs ~oracle t =
  let config =
    {
      Eywa_core.Pipeline.default_config with
      k;
      temperature;
      timeout = (match timeout with Some s -> s | None -> t.timeout);
      alphabet = t.alphabet;
      base_seed = seed;
    }
  in
  let config =
    match max_paths with Some n -> { config with max_paths = n } | None -> config
  in
  Eywa_core.Pipeline.run ?cache ?sink ~config ?jobs ~oracle t.graph
    ~main:t.main
