(** Differential testing with majority voting and root-cause triage
    (§4.2).

    Each implementation's response to a test is rendered as a set of
    named fields (for DNS: rcode, flags, answer, authority, additional,
    crash). For every field, the majority value is the expected one;
    implementations that differ produce a disagreement tuple
    [(impl, field, got, majority)]. Because many tests trigger the same
    bug, tuples are deduplicated into unique root causes, exactly as
    the paper triages its results. *)

type fields = (string * string) list
(** field name -> rendered value; all observations of one test must use
    the same field names. *)

type observation = { impl : string; fields : fields }

type disagreement = {
  d_impl : string;
  d_field : string;
  d_got : string;
  d_majority : string;
}

val field_majority : (string * string) list -> string
(** Majority value among (impl, value) pairs; ties broken towards the
    lexicographically smallest value with maximal count, so results are
    deterministic. *)

val compare_all : observation list -> disagreement list
(** Disagreements of a single test across implementations. *)

(** Accumulation across a whole test suite. *)

type accum

type report = {
  total_tests : int;
  disagreeing_tests : int;
  observations : int;
      (** implementation executions recorded over the suite — a
          deterministic counter (sum of observation-list lengths), the
          difftest analogue of symex ticks *)
  tuples : (disagreement * int) list;
      (** unique tuples with occurrence counts, most frequent first *)
}

val create : unit -> accum
val record : accum -> observation list -> disagreement list
val report : accum -> report

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving fan-out over a fresh {!Eywa_core.Pool} of [jobs]
    domains (default {!Eywa_core.Pool.default_jobs}). Shared by the
    protocol adapters for their per-test loops, whose per-element work
    is "run every implementation on this test". *)

val run :
  ?jobs:int ->
  ?sink:Eywa_core.Instrument.sink ->
  ?label:string ->
  observe:('a -> observation list option) ->
  'a list ->
  report
(** [run ~observe tests] computes every test's observations in
    parallel ([observe] returning [None] skips the test), then records
    them {e sequentially in input order} into one accumulator — so the
    report is identical at any [jobs]. [observe] must be safe to call
    from concurrent domains.

    After the merge, emits [Pool_merged] (labelled
    ["difftest:" ^ label]) and [Difftest_done] on [sink] from the
    orchestrating domain, following the {!Eywa_core.Instrument}
    replay-at-merge-point contract. [label] defaults to ["suite"]. *)

val impls_in_report : report -> string list
val tuples_for : report -> string -> (disagreement * int) list

val pp_report : Format.formatter -> report -> unit
