type fields = (string * string) list

type observation = { impl : string; fields : fields }

type disagreement = {
  d_impl : string;
  d_field : string;
  d_got : string;
  d_majority : string;
}

let field_majority values =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, v) ->
      let n = try Hashtbl.find counts v with Not_found -> 0 in
      Hashtbl.replace counts v (n + 1))
    values;
  let best =
    Hashtbl.fold
      (fun v n acc ->
        match acc with
        | None -> Some (v, n)
        | Some (bv, bn) ->
            if n > bn || (n = bn && v < bv) then Some (v, n) else acc)
      counts None
  in
  match best with Some (v, _) -> v | None -> ""

let compare_all observations =
  match observations with
  | [] | [ _ ] -> []
  | first :: _ ->
      let field_names = List.map fst first.fields in
      List.concat_map
        (fun field ->
          let values =
            List.filter_map
              (fun o ->
                match List.assoc_opt field o.fields with
                | Some v -> Some (o.impl, v)
                | None -> None)
              observations
          in
          let majority = field_majority values in
          List.filter_map
            (fun (impl, v) ->
              if v = majority then None
              else
                Some { d_impl = impl; d_field = field; d_got = v; d_majority = majority })
            values)
        field_names

type accum = {
  mutable total : int;
  mutable disagreeing : int;
  mutable observations : int;
  counts : (disagreement, int) Hashtbl.t;
}

type report = {
  total_tests : int;
  disagreeing_tests : int;
  observations : int;
  tuples : (disagreement * int) list;
}

let create () =
  { total = 0; disagreeing = 0; observations = 0; counts = Hashtbl.create 64 }

let record acc observations =
  let ds = compare_all observations in
  acc.total <- acc.total + 1;
  acc.observations <- acc.observations + List.length observations;
  if ds <> [] then acc.disagreeing <- acc.disagreeing + 1;
  List.iter
    (fun d ->
      let n = try Hashtbl.find acc.counts d with Not_found -> 0 in
      Hashtbl.replace acc.counts d (n + 1))
    ds;
  ds

let report acc =
  let tuples =
    Hashtbl.fold (fun d n l -> (d, n) :: l) acc.counts []
    |> List.sort (fun (da, na) (db, nb) ->
           if na <> nb then compare nb na else compare da db)
  in
  {
    total_tests = acc.total;
    disagreeing_tests = acc.disagreeing;
    observations = acc.observations;
    tuples;
  }

(* Parallel fan-out for the observation loop: computing one test's
   observations means running every implementation on it, which is the
   expensive, embarrassingly parallel part. Merging stays sequential
   and in input order, so reports are identical at any [jobs]. *)

let parallel_map ?jobs f xs =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Eywa_core.Pool.default_jobs ()
  in
  Eywa_core.Pool.with_pool ~jobs (fun pool -> Eywa_core.Pool.map pool f xs)

let run ?jobs ?(sink = Eywa_core.Instrument.null) ?(label = "suite") ~observe
    tests =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Eywa_core.Pool.default_jobs ()
  in
  let results, stats =
    Eywa_core.Pool.with_pool ~jobs (fun pool ->
        Eywa_core.Pool.map_stats pool observe tests)
  in
  (* like the pipeline, events fire only at the merge point, on the
     orchestrating domain, after the deterministic index-ordered merge *)
  sink
    (Eywa_core.Instrument.Pool_merged
       {
         label = "difftest:" ^ label;
         tasks = List.length tests;
         computed = stats.Eywa_core.Pool.tasks;
         jobs = stats.Eywa_core.Pool.jobs;
         per_worker = stats.Eywa_core.Pool.per_worker;
         queue_wait_ticks = stats.Eywa_core.Pool.queue_wait_ticks;
       });
  let acc = create () in
  List.iter (function None -> () | Some obs -> ignore (record acc obs)) results;
  let r = report acc in
  sink
    (Eywa_core.Instrument.Difftest_done
       {
         label;
         total_tests = r.total_tests;
         disagreeing_tests = r.disagreeing_tests;
         tuples = List.length r.tuples;
         execs = r.observations;
       });
  r

let impls_in_report r =
  List.sort_uniq compare (List.map (fun (d, _) -> d.d_impl) r.tuples)

let tuples_for r impl = List.filter (fun (d, _) -> d.d_impl = impl) r.tuples

let pp_report ppf r =
  Format.fprintf ppf "tests: %d, with disagreements: %d, unique tuples: %d@."
    r.total_tests r.disagreeing_tests (List.length r.tuples);
  List.iter
    (fun (d, n) ->
      Format.fprintf ppf "  (%s, %s, %s, %s) x%d@." d.d_impl d.d_field
        (if String.length d.d_got > 60 then String.sub d.d_got 0 60 ^ "..." else d.d_got)
        (if String.length d.d_majority > 60 then
           String.sub d.d_majority 0 60 ^ "..."
         else d.d_majority)
        n)
    r.tuples
