(** Concrete interpreter for MiniC.

    Executes a function of a typechecked program on concrete argument
    values. Loops and recursion are bounded by [fuel] (decremented per
    statement), so any input terminates — the property differential
    testing needs when replaying tests against the model. *)

type error =
  | Out_of_fuel
  | Runtime of string  (** out-of-bounds access, missing return, ... *)

val error_to_string : error -> string

type coverage = (string, unit) Hashtbl.t
(** Set of branch edges hit during execution. Edges are labelled by
    structural position (function name + statement path + construct +
    outcome, e.g. ["f.0t.1#if:t"]), so the same program yields the same
    labels in every run and on every domain. *)

val coverage_create : unit -> coverage

val static_edges : Ast.program -> string list
(** All branch-edge labels the program can ever hit, enumerated
    syntactically with the exact labelling scheme [run ~coverage] uses.
    The dynamic coverage map is always a subset of this list. *)

val run :
  ?fuel:int ->
  ?string_bound:int ->
  ?natives:(string * (Value.t list -> Value.t)) list ->
  ?coverage:coverage ->
  Ast.program ->
  string ->
  Value.t list ->
  (Value.t, error) result
(** [run program fname args] calls [fname] with [args]. Default fuel is
    [100_000]; [string_bound] sizes locally declared string buffers
    (default [16]). [natives] supplies pure host-implemented functions
    (the harness's regex guards) looked up before program functions.
    Falling off the end of a non-void function is a [Runtime] error;
    for a void function it yields [Vunit]. *)

val call_count : unit -> int
(** Total number of function calls executed since start-up; used by the
    benchmarks as a cheap work counter. *)
