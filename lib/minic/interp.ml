type error = Out_of_fuel | Runtime of string

let error_to_string = function
  | Out_of_fuel -> "out of fuel"
  | Runtime m -> "runtime error: " ^ m

exception Return_exc of Value.t
exception Break_exc
exception Continue_exc
exception Runtime_exc of string
exception Fuel_exc

let rt fmt = Printf.ksprintf (fun s -> raise (Runtime_exc s)) fmt

(* atomic: concrete replays may run on several pool domains at once *)
let calls = Atomic.make 0
let call_count () = Atomic.get calls

type coverage = (string, unit) Hashtbl.t

let coverage_create () : coverage = Hashtbl.create 64

type state = {
  program : Ast.program;
  string_bound : int;
  natives : (string * (Value.t list -> Value.t)) list;
  coverage : coverage option;
  mutable fuel : int;
  mutable scopes : (string * Value.t ref) list list;
}

(* Branch edges are labelled by structural position (function name +
   statement path + construct + outcome), so the same program yields
   the same labels in any run and [static_edges] can enumerate the
   full universe without executing anything. *)
let mark st at suffix =
  match st.coverage with
  | None -> ()
  | Some tbl -> Hashtbl.replace tbl (at ^ suffix) ()

let tick st = if st.fuel <= 0 then raise Fuel_exc else st.fuel <- st.fuel - 1

let lookup_opt st name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with Some c -> Some c | None -> go rest)
  in
  go st.scopes

let lookup st name =
  match lookup_opt st name with
  | Some c -> c
  | None -> rt "unbound variable %S" name

let declare st name v =
  match st.scopes with
  | scope :: rest -> st.scopes <- ((name, ref v) :: scope) :: rest
  | [] -> assert false

(* String buffer helpers. Buffers carry their NULs explicitly. *)

let buf_get raw i =
  if i < 0 || i >= String.length raw then rt "string index %d out of bounds (size %d)" i (String.length raw)
  else raw.[i]

let buf_set raw i c =
  if i < 0 || i >= String.length raw then rt "string index %d out of bounds (size %d)" i (String.length raw)
  else begin
    let b = Bytes.of_string raw in
    Bytes.set b i c;
    Bytes.to_string b
  end

let c_strlen raw =
  match String.index_opt raw '\000' with
  | Some i -> i
  | None -> String.length raw

let c_str raw = String.sub raw 0 (c_strlen raw)

let c_strcmp a b = compare (c_str a) (c_str b)

let c_strncmp a b n =
  let cut s = if String.length s > n then String.sub s 0 n else s in
  compare (cut (c_str a)) (cut (c_str b))

let c_strcpy dest src =
  let s = c_str src in
  let size = String.length dest in
  if String.length s + 1 > size then rt "strcpy overflow (%d bytes into %d)" (String.length s + 1) size;
  let b = Bytes.make size '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  Bytes.to_string b

let as_string = function
  | Value.Vstring raw -> raw
  | v -> rt "expected a string, got %s" (Value.to_string v)

(* Functional update of a value along an lvalue path. *)
let rec update_path st v path (x : Value.t) : Value.t =
  match (path, v) with
  | [], _ -> x
  | `Field f :: rest, Value.Vstruct (n, fields) ->
      let updated =
        List.map
          (fun (g, w) -> if g = f then (g, update_path st w rest x) else (g, w))
          fields
      in
      if not (List.exists (fun (g, _) -> g = f) fields) then rt "struct %s has no field %S" n f;
      Value.Vstruct (n, updated)
  | `Index i :: rest, Value.Varray vs ->
      if i < 0 || i >= Array.length vs then rt "array index %d out of bounds" i;
      let copy = Array.copy vs in
      copy.(i) <- update_path st copy.(i) rest x;
      Value.Varray copy
  | `Index i :: [], Value.Vstring raw -> (
      match x with
      | Value.Vchar c -> Value.Vstring (buf_set raw i c)
      | v -> (
          (* scalar int assigned into a char cell *)
          match v with
          | Value.Vint n -> Value.Vstring (buf_set raw i (Char.chr (n land 0xff)))
          | Value.Vbool b -> Value.Vstring (buf_set raw i (if b then '\001' else '\000'))
          | _ -> rt "cannot store %s into a string cell" (Value.to_string v)))
  | _, v -> rt "cannot follow lvalue path into %s" (Value.to_string v)

let rec eval st (e : Ast.expr) : Value.t =
  match e with
  | Ast.Ebool b -> Value.Vbool b
  | Ast.Echar c -> Value.Vchar c
  | Ast.Eint n -> Value.Vint n
  | Ast.Estr s -> Value.of_cstring s
  | Ast.Eenum m -> (
      match Ast.enum_member_index st.program m with
      | Some (ename, i) -> Value.Venum (ename, i)
      | None -> rt "unknown enum member %S" m)
  | Ast.Evar x -> (
      match lookup_opt st x with
      | Some cell -> !cell
      | None -> (
          match Ast.enum_member_index st.program x with
          | Some (ename, i) -> Value.Venum (ename, i)
          | None -> rt "unbound variable %S" x))
  | Ast.Efield (b, f) -> (
      match eval st b with
      | Value.Vstruct (n, fields) -> (
          match List.assoc_opt f fields with
          | Some v -> v
          | None -> rt "struct %s has no field %S" n f)
      | v -> rt "field access on %s" (Value.to_string v))
  | Ast.Eindex (b, i) -> (
      let idx = Value.to_int (eval st i) in
      match eval st b with
      | Value.Vstring raw -> Value.Vchar (buf_get raw idx)
      | Value.Varray vs ->
          if idx < 0 || idx >= Array.length vs then rt "array index %d out of bounds" idx
          else vs.(idx)
      | v -> rt "indexing %s" (Value.to_string v))
  | Ast.Eunop (Ast.Lnot, a) -> Value.Vbool (not (Value.truthy (eval st a)))
  | Ast.Eunop (Ast.Neg, a) -> Value.Vint (- Value.to_int (eval st a))
  | Ast.Ebinop (Ast.Land, a, b) ->
      Value.Vbool (Value.truthy (eval st a) && Value.truthy (eval st b))
  | Ast.Ebinop (Ast.Lor, a, b) ->
      Value.Vbool (Value.truthy (eval st a) || Value.truthy (eval st b))
  | Ast.Ebinop (op, a, b) -> (
      let x = Value.to_int (eval st a) and y = Value.to_int (eval st b) in
      match op with
      | Ast.Add -> Value.Vint (x + y)
      | Ast.Sub -> Value.Vint (x - y)
      | Ast.Mul -> Value.Vint (x * y)
      | Ast.Div -> if y = 0 then rt "division by zero" else Value.Vint (x / y)
      | Ast.Mod -> if y = 0 then rt "modulo by zero" else Value.Vint (x mod y)
      | Ast.Eq -> Value.Vbool (x = y)
      | Ast.Ne -> Value.Vbool (x <> y)
      | Ast.Lt -> Value.Vbool (x < y)
      | Ast.Le -> Value.Vbool (x <= y)
      | Ast.Gt -> Value.Vbool (x > y)
      | Ast.Ge -> Value.Vbool (x >= y)
      | Ast.Land | Ast.Lor -> assert false)
  | Ast.Econd (c, a, b) -> if Value.truthy (eval st c) then eval st a else eval st b
  | Ast.Ecall (name, args) -> eval_call st name (List.map (eval st) args)

and eval_call st name args =
  tick st;
  Atomic.incr calls;
  match (name, args) with
  | "strlen", [ s ] -> Value.Vint (c_strlen (as_string s))
  | "strcmp", [ a; b ] -> Value.Vint (c_strcmp (as_string a) (as_string b))
  | "strncmp", [ a; b; n ] ->
      Value.Vint (c_strncmp (as_string a) (as_string b) (Value.to_int n))
  | "strcpy", [ _; _ ] -> rt "strcpy used in expression position"
  | _ when List.mem_assoc name st.natives -> (List.assoc name st.natives) args
  | _ -> (
      match Ast.find_func st.program name with
      | None -> rt "call to undefined function %S" name
      | Some f ->
          if List.length f.params <> List.length args then
            rt "%s: arity mismatch" name;
          let saved = st.scopes in
          st.scopes <- [ [] ];
          List.iter2 (fun (_, pname) v -> declare st pname v) f.params args;
          let result =
            try
              exec_block st f.fname f.body;
              if f.ret = Ast.Tvoid then Value.Vunit
              else rt "function %s fell off the end without returning" name
            with
            | Return_exc v -> v
            | e ->
                (* restore the caller's stack even when a runtime error or
                   fuel exhaustion escapes this frame: the caller's
                   [exec_block] handlers pop as the exception unwinds, and
                   they must pop the caller's scopes, not this frame's
                   leftovers *)
                st.scopes <- saved;
                raise e
          in
          st.scopes <- saved;
          result)

and exec_stmt st at (s : Ast.stmt) : unit =
  tick st;
  match s with
  | Ast.Sdecl (ty, name, init) ->
      let v =
        match init with
        | Some e -> coerce st ty (eval st e)
        | None -> Value.default ~string_bound:st.string_bound st.program ty
      in
      declare st name v
  | Ast.Sassign (lv, e) -> assign st lv (eval st e)
  | Ast.Sif (c, t, e) ->
      if Value.truthy (eval st c) then begin
        mark st at "#if:t";
        exec_block st (at ^ "t") t
      end
      else begin
        mark st at "#if:f";
        exec_block st (at ^ "e") e
      end
  | Ast.Swhile (c, body) ->
      let rec loop () =
        tick st;
        if Value.truthy (eval st c) then begin
          mark st at "#wh:t";
          (try exec_block st (at ^ "b") body with Continue_exc -> ());
          loop ()
        end
        else mark st at "#wh:f"
      in
      (try loop () with Break_exc -> ())
  | Ast.Sfor (init, c, step, body) ->
      st.scopes <- [] :: st.scopes;
      (match init with None -> () | Some s -> exec_stmt st (at ^ "i") s);
      let rec loop () =
        tick st;
        if Value.truthy (eval st c) then begin
          mark st at "#for:t";
          (try exec_block st (at ^ "b") body with Continue_exc -> ());
          (match step with None -> () | Some s -> exec_stmt st (at ^ "s") s);
          loop ()
        end
        else mark st at "#for:f"
      in
      (try loop () with Break_exc -> ());
      st.scopes <- List.tl st.scopes
  | Ast.Sreturn None -> raise (Return_exc Value.Vunit)
  | Ast.Sreturn (Some e) -> raise (Return_exc (eval st e))
  | Ast.Sexpr (Ast.Ecall ("strcpy", [ dst; src ])) -> (
      let v = eval st src in
      match dst with
      | Ast.Evar _ | Ast.Efield _ | Ast.Eindex _ ->
          let lv = expr_lvalue dst in
          let cur = eval st dst in
          assign st lv (Value.Vstring (c_strcpy (as_string cur) (as_string v)))
      | _ -> rt "strcpy destination is not assignable")
  | Ast.Sexpr e -> ignore (eval st e)
  | Ast.Sbreak -> raise Break_exc
  | Ast.Scontinue -> raise Continue_exc

and expr_lvalue = function
  | Ast.Evar x -> Ast.Lvar x
  | Ast.Efield (b, f) -> Ast.Lfield (expr_lvalue b, f)
  | Ast.Eindex (b, i) -> Ast.Lindex (expr_lvalue b, i)
  | _ -> raise (Runtime_exc "not an lvalue")

and coerce st ty v =
  ignore st;
  match (ty, v) with
  | Ast.Tbool, _ when (match v with Value.Vbool _ -> false | _ -> true) -> (
      match v with
      | Value.Vchar _ | Value.Vint _ | Value.Venum _ -> Value.Vbool (Value.truthy v)
      | _ -> v)
  | Ast.Tchar, Value.Vint n -> Value.Vchar (Char.chr (n land 0xff))
  | Ast.Tint _, Value.Vbool b -> Value.Vint (if b then 1 else 0)
  | Ast.Tint _, Value.Vchar c -> Value.Vint (Char.code c)
  | Ast.Tint _, Value.Venum (_, i) -> Value.Vint i
  | Ast.Tenum e, Value.Vint n -> Value.Venum (e, n)
  | _ -> v

and assign st lv v =
  (* Resolve the lvalue to its root variable plus an access path, then
     update functionally. *)
  let rec resolve = function
    | Ast.Lvar x -> (x, [])
    | Ast.Lfield (b, f) ->
        let root, path = resolve b in
        (root, path @ [ `Field f ])
    | Ast.Lindex (b, i) ->
        let root, path = resolve b in
        (root, path @ [ `Index (Value.to_int (eval st i)) ])
  in
  let root, path = resolve lv in
  let cell = lookup st root in
  cell := update_path st !cell path v

and exec_block st at body =
  st.scopes <- [] :: st.scopes;
  (try
     match st.coverage with
     | None -> List.iter (exec_stmt st "") body
     | Some _ ->
         List.iteri (fun i s -> exec_stmt st (at ^ "." ^ string_of_int i) s) body
   with e ->
     st.scopes <- List.tl st.scopes;
     raise e);
  st.scopes <- List.tl st.scopes

let run ?(fuel = 100_000) ?(string_bound = 16) ?(natives = []) ?coverage program
    fname args =
  let st = { program; string_bound; natives; coverage; fuel; scopes = [ [] ] } in
  match eval_call st fname args with
  | v -> Ok v
  | exception Runtime_exc m -> Error (Runtime m)
  | exception Fuel_exc -> Error Out_of_fuel

(* Mirrors the labelling of [exec_stmt]/[exec_block] exactly: every
   edge the interpreter can mark appears here, and nothing else. *)
let static_edges (program : Ast.program) =
  let edges = ref [] in
  let add e = edges := e :: !edges in
  let rec stmt at (s : Ast.stmt) =
    match s with
    | Ast.Sif (_, t, e) ->
        add (at ^ "#if:t");
        add (at ^ "#if:f");
        block (at ^ "t") t;
        block (at ^ "e") e
    | Ast.Swhile (_, body) ->
        add (at ^ "#wh:t");
        add (at ^ "#wh:f");
        block (at ^ "b") body
    | Ast.Sfor (init, _, step, body) ->
        (match init with None -> () | Some s -> stmt (at ^ "i") s);
        add (at ^ "#for:t");
        add (at ^ "#for:f");
        block (at ^ "b") body;
        (match step with None -> () | Some s -> stmt (at ^ "s") s)
    | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sreturn _ | Ast.Sexpr _ | Ast.Sbreak
    | Ast.Scontinue ->
        ()
  and block at body = List.iteri (fun i s -> stmt (at ^ "." ^ string_of_int i) s) body
  in
  List.iter (fun (f : Ast.func) -> block f.fname f.body) program.Ast.funcs;
  List.rev !edges
