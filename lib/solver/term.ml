type sort = Sbool | Schar | Sint of int | Senum of string * int

type var = { vid : int; vname : string; sort : sort; domain : int array }

type t =
  | Const of int
  | Var of var
  | Not of t
  | And of t * t
  | Or of t * t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Ite of t * t * t

(* Id allocation is per-domain (Domain.DLS), not global: concurrent
   synthesis jobs on a work-pool never share a counter, so identical
   generated code yields identical atom ids whatever domain runs it.
   [with_fresh_ids] gives one job its own allocator starting at 0. *)
let counter_key = Domain.DLS.new_key (fun () -> ref 0)

let counter () = Domain.DLS.get counter_key

(* Hash-consing state, a sibling of [counter_key]: the intern table
   assigns every structurally distinct term a dense id, and the other
   tables memoize by that id. All of it is keyed on vids, so it must
   live and die with the id allocator — [with_fresh_ids]/[reset_ids]
   swap in a fresh state along with the fresh counter, or a recycled
   vid would alias a stale entry. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( = )

  (* deeper than the stdlib default so big path-condition conjuncts
     don't all land in one bucket; still bounded, so O(1) per call *)
  let hash t = Hashtbl.hash_param 60 120 t
end)

type intern_state = {
  ids : int Tbl.t;  (* term -> dense intern id *)
  mutable next_id : int;
  fvs : (int, var list) Hashtbl.t;  (* intern id -> free vars *)
  conses : (int * int, int) Hashtbl.t;  (* (head id, tail key) -> list key *)
  mutable next_key : int;  (* list keys; 0 is reserved for [] *)
}

let fresh_intern () =
  {
    ids = Tbl.create 512;
    next_id = 0;
    fvs = Hashtbl.create 512;
    conses = Hashtbl.create 512;
    next_key = 1;
  }

let intern_key = Domain.DLS.new_key fresh_intern

let intern_state () = Domain.DLS.get intern_key

let fresh_var ?(name = "v") sort domain =
  assert (Array.length domain > 0);
  let c = counter () in
  let vid = !c in
  incr c;
  { vid; vname = name; sort; domain }

let var_count () = !(counter ())

let reset_ids () =
  counter () := 0;
  Domain.DLS.set intern_key (fresh_intern ())

let with_fresh_ids f =
  let saved = Domain.DLS.get counter_key in
  let saved_intern = Domain.DLS.get intern_key in
  Domain.DLS.set counter_key (ref 0);
  Domain.DLS.set intern_key (fresh_intern ());
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set counter_key saved;
      Domain.DLS.set intern_key saved_intern)
    f

let intern_id t =
  let s = intern_state () in
  match Tbl.find_opt s.ids t with
  | Some id -> id
  | None ->
      let id = s.next_id in
      s.next_id <- id + 1;
      Tbl.add s.ids t id;
      id

let default_domain = function
  | Sbool -> [| 0; 1 |]
  | Schar -> Array.init 256 (fun i -> i)
  | Senum (_, n) -> Array.init (max n 1) (fun i -> i)
  | Sint w ->
      let w = min w 16 in
      Array.init (1 lsl w) (fun i -> i)

let tt = Const 1
let ff = Const 0
let const n = Const n
let of_bool b = if b then tt else ff
let var v = Var v

(* Truthiness follows C: any non-zero value is true. Smart constructors
   normalise boolean results to 0/1. *)

let is_true = function Const n -> n <> 0 | _ -> false
let is_false = function Const 0 -> true | _ -> false

let not_ = function
  | Const n -> of_bool (n = 0)
  | Not (Eq _ as e) -> e
  | Not (Lt _ as e) -> e
  | Not (Le _ as e) -> e
  | Not (And _ as e) -> e
  | Not (Or _ as e) -> e
  | Not (Not _ as e) -> e
  | t -> Not t

let and_ a b =
  match (a, b) with
  | Const 0, _ | _, Const 0 -> ff
  | Const _, other | other, Const _ -> (
      (* the surviving Const is non-zero *)
      match other with Const n -> of_bool (n <> 0) | _ -> other)
  | _ -> And (a, b)

let or_ a b =
  match (a, b) with
  | Const n, other when n <> 0 -> ignore other; tt
  | other, Const n when n <> 0 -> ignore other; tt
  | Const 0, other | other, Const 0 -> other
  | _ -> Or (a, b)

let eq a b =
  match (a, b) with
  | Const x, Const y -> of_bool (x = y)
  | Var u, Var v when u.vid = v.vid -> tt
  | _ -> Eq (a, b)

let lt a b =
  match (a, b) with
  | Const x, Const y -> of_bool (x < y)
  | Var u, Var v when u.vid = v.vid -> ff
  | _ -> Lt (a, b)

let le a b =
  match (a, b) with
  | Const x, Const y -> of_bool (x <= y)
  | Var u, Var v when u.vid = v.vid -> tt
  | _ -> Le (a, b)

let neq a b = not_ (eq a b)
let gt a b = lt b a
let ge a b = le b a

let add a b =
  match (a, b) with
  | Const x, Const y -> Const (x + y)
  | Const 0, t | t, Const 0 -> t
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | Const x, Const y -> Const (x - y)
  | t, Const 0 -> t
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const x, Const y -> Const (x * y)
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, t | t, Const 1 -> t
  | _ -> Mul (a, b)

let safe_div x y = if y = 0 then 0 else x / y
let safe_mod x y = if y = 0 then 0 else x mod y

let div a b =
  match (a, b) with
  | Const x, Const y -> Const (safe_div x y)
  | t, Const 1 -> t
  | _ -> Div (a, b)

let mod_ a b =
  match (a, b) with
  | Const x, Const y -> Const (safe_mod x y)
  | _, Const 1 -> Const 0
  | _ -> Mod (a, b)

let ite c a b =
  match c with
  | Const n -> if n <> 0 then a else b
  | _ -> if a = b then a else Ite (c, a, b)

let conj ts = List.fold_left and_ tt ts

let compute_vars t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v.vid) then begin
          Hashtbl.add seen v.vid ();
          acc := v :: !acc
        end
    | Not a -> go a
    | And (a, b) | Or (a, b) | Eq (a, b) | Lt (a, b) | Le (a, b)
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b) ->
        go a; go b
    | Ite (c, a, b) -> go c; go a; go b
  in
  go t;
  List.rev !acc

let vars t =
  let s = intern_state () in
  let id = intern_id t in
  match Hashtbl.find_opt s.fvs id with
  | Some vs -> vs
  | None ->
      let vs = compute_vars t in
      Hashtbl.add s.fvs id vs;
      vs

(* Canonical constraint-list keys: the empty list is 0 and every
   distinct (head term, tail key) pair gets a dense id, so two
   structurally equal constraint lists built in the same id epoch get
   the same key. Path conditions grow by consing, so re-keying a pc
   after one more conjunct costs a single table lookup per element,
   all O(1). *)
let pc_key_cons c tail_key =
  let s = intern_state () in
  let pair = (intern_id c, tail_key) in
  match Hashtbl.find_opt s.conses pair with
  | Some k -> k
  | None ->
      let k = s.next_key in
      s.next_key <- k + 1;
      Hashtbl.add s.conses pair k;
      k

let rec pc_key = function
  | [] -> 0
  | c :: rest -> pc_key_cons c (pc_key rest)

let rec eval env = function
  | Const n -> n
  | Var v -> env v.vid
  | Not a -> if eval env a = 0 then 1 else 0
  | And (a, b) -> if eval env a <> 0 && eval env b <> 0 then 1 else 0
  | Or (a, b) -> if eval env a <> 0 || eval env b <> 0 then 1 else 0
  | Eq (a, b) -> if eval env a = eval env b then 1 else 0
  | Lt (a, b) -> if eval env a < eval env b then 1 else 0
  | Le (a, b) -> if eval env a <= eval env b then 1 else 0
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) -> safe_div (eval env a) (eval env b)
  | Mod (a, b) -> safe_mod (eval env a) (eval env b)
  | Ite (c, a, b) -> if eval env c <> 0 then eval env a else eval env b

let rec peval env = function
  | Const n -> Some n
  | Var v -> env v.vid
  | Not a -> (
      match peval env a with
      | Some n -> Some (if n = 0 then 1 else 0)
      | None -> None)
  | And (a, b) -> (
      match (peval env a, peval env b) with
      | Some 0, _ | _, Some 0 -> Some 0
      | Some x, Some y -> Some (if x <> 0 && y <> 0 then 1 else 0)
      | _ -> None)
  | Or (a, b) -> (
      match (peval env a, peval env b) with
      | Some x, _ when x <> 0 -> Some 1
      | _, Some y when y <> 0 -> Some 1
      | Some 0, Some 0 -> Some 0
      | _ -> None)
  | Eq (a, b) -> lift2 env (fun x y -> if x = y then 1 else 0) a b
  | Lt (a, b) -> lift2 env (fun x y -> if x < y then 1 else 0) a b
  | Le (a, b) -> lift2 env (fun x y -> if x <= y then 1 else 0) a b
  | Add (a, b) -> lift2 env ( + ) a b
  | Sub (a, b) -> lift2 env ( - ) a b
  | Mul (a, b) -> lift2 env ( * ) a b
  | Div (a, b) -> lift2 env safe_div a b
  | Mod (a, b) -> lift2 env safe_mod a b
  | Ite (c, a, b) -> (
      match peval env c with
      | Some n -> peval env (if n <> 0 then a else b)
      | None -> None)

and lift2 env f a b =
  match (peval env a, peval env b) with
  | Some x, Some y -> Some (f x y)
  | _ -> None

(* Deterministic pseudo-random index for value-order rotation: a plain
   linear formula degenerates on two-element domains (booleans with odd
   ids would never flip), so mix the inputs properly. *)
let rotate_index ~rotate ~vid len =
  if rotate = 0 || len <= 1 then 0
  else begin
    let h = ((vid + 1) * 0x9E3779B1) lxor (rotate * 0x85EBCA77) in
    let h = h lxor (h lsr 13) in
    (h land max_int) mod len
  end

let pp_sort ppf = function
  | Sbool -> Format.fprintf ppf "bool"
  | Schar -> Format.fprintf ppf "char"
  | Sint w -> Format.fprintf ppf "u%d" w
  | Senum (n, _) -> Format.fprintf ppf "enum:%s" n

let rec pp ppf = function
  | Const n -> Format.fprintf ppf "%d" n
  | Var v -> Format.fprintf ppf "%s#%d" v.vname v.vid
  | Not a -> Format.fprintf ppf "!(%a)" pp a
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Eq (a, b) -> Format.fprintf ppf "(%a == %a)" pp a pp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp a pp b
  | Le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp a pp b
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Mod (a, b) -> Format.fprintf ppf "(%a %% %a)" pp a pp b
  | Ite (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b

let to_string t = Format.asprintf "%a" pp t
