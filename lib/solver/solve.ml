type assignment = (int, int) Hashtbl.t

type stats = { decisions : int; conflicts : int }

type outcome = Sat of assignment | Unsat | Unknown

exception Budget

(* Variable ordering: smaller domain first, ties broken by occurrence
   count (more occurrences = more constraining = earlier), then by vid.
   The vid tiebreaker is load-bearing: without it, equal-keyed vars
   kept whatever order [Hashtbl.fold] produced them in, which is an
   implementation detail of the stdlib hash function — any change
   there would silently reorder the search and with it every generated
   test. *)
let order_vars constraints =
  let occ = Hashtbl.create 32 in
  let bump v =
    let n = try Hashtbl.find occ v.Term.vid with Not_found -> 0 in
    Hashtbl.replace occ v.Term.vid (n + 1)
  in
  let all = Hashtbl.create 32 in
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          bump v;
          if not (Hashtbl.mem all v.Term.vid) then Hashtbl.add all v.Term.vid v)
        (Term.vars c))
    constraints;
  let vs = Hashtbl.fold (fun _ v acc -> v :: acc) all [] in
  let key v =
    ( Array.length v.Term.domain,
      - (try Hashtbl.find occ v.Term.vid with Not_found -> 0),
      v.Term.vid )
  in
  List.sort (fun a b -> compare (key a) (key b)) vs

(* ----- the naive reference search ----- *)

(* Re-evaluates every constraint after every assignment. Kept as the
   executable specification of the solver: the watched-constraint
   search below must agree with it bit for bit (outcome, model,
   decision and conflict counts) — it only skips re-evaluations whose
   verdict cannot have changed. The qcheck suite holds the two to that
   contract. *)
let naive_search ~max_decisions ~rotate constraints =
  let vars = Array.of_list (order_vars constraints) in
  let model : assignment = Hashtbl.create 32 in
  let decisions = ref 0 and conflicts = ref 0 in
  let env vid = Hashtbl.find_opt model vid in
  let consistent () =
    List.for_all
      (fun c -> match Term.peval env c with Some 0 -> false | _ -> true)
      constraints
  in
  let n = Array.length vars in
  let rec assign i =
    if i >= n then true
    else begin
      let v = vars.(i) in
      let dom = v.Term.domain in
      let len = Array.length dom in
      let start = Term.rotate_index ~rotate ~vid:v.Term.vid len in
      let rec try_values j =
        if j >= len then begin
          Hashtbl.remove model v.Term.vid;
          incr conflicts;
          false
        end
        else begin
          incr decisions;
          if !decisions > max_decisions then raise Budget;
          Hashtbl.replace model v.Term.vid dom.((start + j) mod len);
          if consistent () && assign (i + 1) then true else try_values (j + 1)
        end
      in
      try_values 0
    end
  in
  let outcome =
    try if assign 0 then Sat model else Unsat with Budget -> Unknown
  in
  (outcome, { decisions = !decisions; conflicts = !conflicts })

let prefilter constraints =
  (* Drop constant-true constraints up front; fail fast on constant false. *)
  let constraints = List.filter (fun c -> not (Term.is_true c)) constraints in
  if List.exists Term.is_false constraints then None else Some constraints

let solve_naive_with_stats ?(max_decisions = 2_000_000) ?(rotate = 0)
    constraints =
  match prefilter constraints with
  | None -> (Unsat, { decisions = 0; conflicts = 0 })
  | Some constraints -> naive_search ~max_decisions ~rotate constraints

(* ----- the watched-constraint search ----- *)

(* Same search, minus the wasted work: after assigning variable [v],
   only constraints that mention [v] can change their partial-eval
   verdict, so only those are re-checked ("watched constraints").
   Values that violate a unary constraint on [v] are pre-screened once
   per solve instead of re-discovered on every backtrack. Decision and
   conflict counting is untouched — pruned values still cost a
   decision, exactly as they do when the naive search tries and
   rejects them — so budgets, Unknown cut-offs and value rotation are
   bit-for-bit those of the reference (the qcheck suite holds the
   hint-free search to that contract).

   [?hint] warm-starts the search: for each variable whose hinted
   value lies in its domain, that value is tried first and the rest of
   the domain follows in the usual rotated order. The search stays
   complete — the verdict cannot change, only the order in which the
   same assignments are visited (and with it the decision count and,
   for Sat, which model is found first). Callers that need a specific
   model order (test emission) must not pass a hint. *)
let solve_with_stats ?(max_decisions = 2_000_000) ?(rotate = 0) ?hint
    constraints =
  match prefilter constraints with
  | None -> (Unsat, { decisions = 0; conflicts = 0 })
  | Some constraints ->
      let empty _ = None in
      if List.exists (fun c -> Term.peval empty c = Some 0) constraints then
        (* a ground-false constraint that is not syntactically [Const 0]
           (only raw-constructed terms can do this — smart constructors
           fold it away): no variable would ever watch it, so defer to
           the reference search, whose accounting defines this case *)
        naive_search ~max_decisions ~rotate constraints
      else begin
        let cs = Array.of_list constraints in
        let vars = Array.of_list (order_vars constraints) in
        let n = Array.length vars in
        let model : assignment = Hashtbl.create 32 in
        let decisions = ref 0 and conflicts = ref 0 in
        let env vid = Hashtbl.find_opt model vid in
        let pos = Hashtbl.create (max 16 (2 * n)) in
        Array.iteri (fun i v -> Hashtbl.replace pos v.Term.vid i) vars;
        (* watchers.(i): indices of non-unary constraints mentioning
           vars.(i), in constraint order; unary constraints instead
           pre-screen the domain below *)
        let watchers = Array.make (max 1 n) [] in
        let unary = Array.make (max 1 n) [] in
        Array.iteri
          (fun ci c ->
            match Term.vars c with
            | [ v ] ->
                let i = Hashtbl.find pos v.Term.vid in
                unary.(i) <- ci :: unary.(i)
            | vs ->
                List.iter
                  (fun v ->
                    let i = Hashtbl.find pos v.Term.vid in
                    watchers.(i) <- ci :: watchers.(i))
                  vs)
          cs;
        Array.iteri (fun i l -> watchers.(i) <- List.rev l) watchers;
        let admissible =
          Array.mapi
            (fun i v ->
              match unary.(i) with
              | [] -> None
              | us ->
                  Some
                    (Array.map
                       (fun value ->
                         let env1 vid =
                           if vid = v.Term.vid then Some value else None
                         in
                         List.for_all
                           (fun ci -> Term.peval env1 cs.(ci) <> Some 0)
                           us)
                       v.Term.domain))
            vars
        in
        (* val_order.(i).(j): the domain index tried j-th for vars.(i).
           Without a hint this is the rotated identity the naive search
           uses; a hinted value jumps to the front and the rotated
           order follows with it removed. *)
        let val_order =
          Array.map
            (fun v ->
              let dom = v.Term.domain in
              let len = Array.length dom in
              let start = Term.rotate_index ~rotate ~vid:v.Term.vid len in
              let base = Array.init len (fun j -> (start + j) mod len) in
              match hint with
              | None -> base
              | Some h -> (
                  match Hashtbl.find_opt h v.Term.vid with
                  | None -> base
                  | Some hv ->
                      let hi = ref (-1) in
                      Array.iteri
                        (fun k x -> if !hi < 0 && x = hv then hi := k)
                        dom;
                      if !hi < 0 then base
                      else begin
                        let order = Array.make len !hi in
                        let k = ref 1 in
                        Array.iter
                          (fun idx ->
                            if idx <> !hi then begin
                              order.(!k) <- idx;
                              incr k
                            end)
                          base;
                        order
                      end))
            vars
        in
        let rec assign i =
          if i >= n then true
          else begin
            let v = vars.(i) in
            let dom = v.Term.domain in
            let len = Array.length dom in
            let ord = val_order.(i) in
            let ok = admissible.(i) in
            let ws = watchers.(i) in
            let rec try_values j =
              if j >= len then begin
                Hashtbl.remove model v.Term.vid;
                incr conflicts;
                false
              end
              else begin
                incr decisions;
                if !decisions > max_decisions then raise Budget;
                let idx = ord.(j) in
                let allowed =
                  match ok with None -> true | Some a -> a.(idx)
                in
                if not allowed then try_values (j + 1)
                else begin
                  Hashtbl.replace model v.Term.vid dom.(idx);
                  let consistent =
                    List.for_all
                      (fun ci ->
                        match Term.peval env cs.(ci) with
                        | Some 0 -> false
                        | _ -> true)
                      ws
                  in
                  if consistent && assign (i + 1) then true
                  else try_values (j + 1)
                end
              end
            in
            try_values 0
          end
        in
        let outcome =
          try if assign 0 then Sat model else Unsat with Budget -> Unknown
        in
        (outcome, { decisions = !decisions; conflicts = !conflicts })
      end

let solve ?max_decisions ?rotate constraints =
  fst (solve_with_stats ?max_decisions ?rotate constraints)

let is_sat ?max_decisions constraints =
  match solve ?max_decisions constraints with
  | Sat _ -> true
  | Unsat | Unknown -> false

let value m v =
  match Hashtbl.find_opt m v.Term.vid with
  | Some x -> x
  | None -> v.Term.domain.(0)

let check m constraints =
  let domains = Hashtbl.create 32 in
  List.iter
    (fun c -> List.iter (fun v -> Hashtbl.replace domains v.Term.vid v) (Term.vars c))
    constraints;
  let env vid =
    match Hashtbl.find_opt m vid with
    | Some x -> x
    | None -> (Hashtbl.find domains vid).Term.domain.(0)
  in
  List.for_all (fun c -> Term.eval env c <> 0) constraints
