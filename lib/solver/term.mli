(** Finite-domain constraint terms.

    All values are integers: booleans are [0]/[1], characters are their
    codes, and enum members are their declared index. Every variable
    carries a finite domain of candidate values, which makes the theory
    decidable by search (see {!Solve}). This is the constraint language
    the symbolic executor compiles path conditions into. *)

(** The sort of a variable, kept for printing and test reconstruction. *)
type sort =
  | Sbool
  | Schar
  | Sint of int  (** unsigned, width in bits *)
  | Senum of string * int  (** enum name and number of members *)

type var = private {
  vid : int;  (** unique id, dense from 0 *)
  vname : string;
  sort : sort;
  domain : int array;  (** allowed values, non-empty, strictly increasing *)
}

(** A term. Build terms with the smart constructors below, which fold
    constants and apply algebraic simplifications eagerly. *)
type t =
  | Const of int
  | Var of var
  | Not of t
  | And of t * t
  | Or of t * t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** total: division by zero yields 0 *)
  | Mod of t * t  (** total: modulo zero yields 0 *)
  | Ite of t * t * t

(** Variable creation. Ids are dense from 0 so that assignments can be
    stored in flat arrays. The counter is {e per-domain}
    ([Domain.DLS]), never shared between domains: parallel synthesis
    jobs each allocate from their own counter, so identical generated
    code produces identical atoms regardless of which pool worker runs
    it. *)

val fresh_var : ?name:string -> sort -> int array -> var
val var_count : unit -> int

val with_fresh_ids : (unit -> 'a) -> 'a
(** [with_fresh_ids f] runs [f] with a fresh id allocator starting at
    0, restoring the caller's allocator afterwards (also on raise).
    The synthesis pipeline wraps every model run in this so identical
    models produce identical atoms — and therefore identical value
    rotations and identical test samples — at any pool size. Never
    call it in the middle of building or solving a constraint
    system. *)

val reset_ids : unit -> unit
(** Restart the calling domain's id counter. Compatibility shim for
    sequential (jobs = 1) callers and tests; new code should prefer
    {!with_fresh_ids}, which scopes and restores the allocator. *)

(** Per-domain hash-consing. An intern table (a [Domain.DLS] sibling of
    the id allocator, scoped and restored by {!with_fresh_ids} /
    {!reset_ids} along with it) assigns every structurally distinct
    term a dense id, giving O(1) equality and hashing on terms that
    have been seen before; {!vars} is memoized through it, and
    {!pc_key} derives a canonical key for any constraint list. All of
    this state is domain-local and epoch-local: ids from different
    {!with_fresh_ids} scopes are unrelated and must never be mixed. *)

val intern_id : t -> int
(** Dense id of [t] in the calling domain's current intern epoch; equal
    terms get equal ids, distinct terms distinct ids. *)

val pc_key : t list -> int
(** Canonical key of a constraint list: [0] for [[]], and a dense id
    per distinct (head, tail-key) pair otherwise. Within one intern
    epoch, two lists get the same key iff they are structurally
    equal. *)

val pc_key_cons : t -> int -> int
(** [pc_key_cons c k] is [pc_key (c :: rest)] where [k = pc_key rest] —
    the O(1) incremental step the symbolic executor uses as the path
    condition grows. *)

(** Default domains per sort: [0;1] for booleans, the full enum index
    range for enums, [0 .. 2^width-1] for ints (width capped at 16 to
    keep domains finite in practice). *)
val default_domain : sort -> int array

(** Smart constructors. *)

val tt : t
val ff : t
val const : int -> t
val of_bool : bool -> t
val var : var -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val eq : t -> t -> t
val neq : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val mod_ : t -> t -> t
val ite : t -> t -> t -> t
val conj : t list -> t

(** [vars t] lists the distinct variables of [t] in first-occurrence
    order. *)
val vars : t -> var list

(** [eval env t] fully evaluates [t]; [env vid] must return the value of
    every variable that occurs. Division-free, so total. *)
val eval : (int -> int) -> t -> int

(** [peval env t] partially evaluates [t] under a partial assignment
    ([env vid = None] when unassigned). Short-circuits [And]/[Or]/[Ite]
    so a determined result can be reached before all variables are
    assigned. Returns [None] if the value is not yet determined. *)
val peval : (int -> int option) -> t -> int option

val rotate_index : rotate:int -> vid:int -> int -> int
(** Deterministic pseudo-random start index into a domain of the given
    size; [rotate = 0] always yields 0. Shared by the solver's
    value-order rotation and symbolic-value concretization so the two
    stay consistent within one sample. *)

val is_true : t -> bool
val is_false : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_sort : Format.formatter -> sort -> unit
