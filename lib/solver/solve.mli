(** Backtracking search over finite-domain constraint sets.

    The solver assigns variables in most-constrained-first order and
    prunes with partial evaluation: after each assignment the branch is
    abandoned as soon as some constraint is determined false under the
    partial model. The production search ({!solve_with_stats}) indexes
    constraints by the variables they mention, so each assignment only
    re-evaluates the constraints watching that variable, and values
    ruled out by unary constraints are pre-screened once per solve; a
    naive reference that re-evaluates everything is kept as
    {!solve_naive_with_stats} and the two are held bit-for-bit
    equivalent (outcome, model, decision and conflict counts) by the
    test suite. Domains are small by construction (the Eywa pipeline
    bounds every input type), so this is complete and fast in
    practice. *)

type assignment = (int, int) Hashtbl.t
(** Maps variable id to its chosen value. *)

type stats = { decisions : int; conflicts : int }

type outcome =
  | Sat of assignment
  | Unsat
  | Unknown  (** step budget exhausted *)

val solve : ?max_decisions:int -> ?rotate:int -> Term.t list -> outcome
(** [solve cs] finds one model of the conjunction of [cs].
    [max_decisions] bounds the search (default [2_000_000]).
    [rotate] (default 0) rotates each variable's value ordering, so
    different rotations of the same satisfiable problem tend to return
    different models — the executor rotates per path to diversify the
    concrete tests it emits, mirroring Klee's per-path value bias. *)

val solve_with_stats :
  ?max_decisions:int ->
  ?rotate:int ->
  ?hint:assignment ->
  Term.t list ->
  outcome * stats
(** Like {!solve}, also returning search statistics. [hint]
    warm-starts the search: each variable whose hinted value is in its
    domain tries that value first, with the rest of the domain
    following in the usual rotated order. The search stays complete,
    so the verdict is that of the hint-free search; only the decision
    count and (for Sat) the first model found may differ. The symbolic
    executor hints feasibility probes with the parent path's cached
    counterexample — never the model-producing solve, whose value
    order is what diversifies emitted tests. *)

val solve_naive_with_stats :
  ?max_decisions:int -> ?rotate:int -> Term.t list -> outcome * stats
(** The reference search: identical ordering and accounting to
    {!solve_with_stats}, but re-evaluates every constraint after every
    assignment. Kept as the executable specification the watched search
    is tested against; not used on the hot path. *)

val order_vars : Term.t list -> Term.var list
(** The search's variable order: ascending domain size, then descending
    occurrence count, then ascending [vid]. The [vid] tiebreaker makes
    the order a pure function of the constraint set (never of
    [Hashtbl] iteration order). Exposed for the regression test. *)

val is_sat : ?max_decisions:int -> Term.t list -> bool
(** [is_sat cs] is [true] iff [solve cs] is [Sat _]. An [Unknown]
    outcome counts as unsatisfiable for the purposes of path pruning,
    which keeps exploration sound-for-tests (we never emit a test from
    an unproven path). *)

val value : assignment -> Term.var -> int
(** Value of [v] in the model, defaulting to the first domain element
    for variables the search never needed to constrain. *)

val check : assignment -> Term.t list -> bool
(** [check m cs] re-evaluates every constraint under [m] (unassigned
    variables default as in {!value}); used by tests as a soundness
    oracle. *)
