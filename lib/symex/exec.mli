(** Symbolic execution of MiniC programs — the Klee substitute.

    Explores the program path-by-path in depth-first order. Every
    branch on a symbolic condition forks; both sides are kept when the
    solver proves them feasible under the current path condition.
    String builtins fork the way Klee's uclibc models effectively do
    ([strlen] forks per possible length, [strcmp] per distinguishing
    position), which is what produces the paper's "same length"
    corner-case tests (§2.2).

    Each completed path is solved into a concrete model, yielding one
    test case. Paths that crash (out-of-bounds, division by zero,
    exhausted fuel) are reported too, with [error] set — crashes found
    by the model are test cases in their own right. *)

module Term = Eywa_solver.Term
module Solve = Eywa_solver.Solve

type config = {
  max_paths : int;  (** stop after this many completed paths *)
  max_steps : int;  (** per-path statement budget *)
  timeout : float;
      (** exploration budget in "budget seconds" — a deterministic tick
          budget calibrated to roughly one wall-clock second per unit
          on a commodity core, so the cut-off (and hence the test set
          of a timed-out model) is a function of the inputs alone,
          independent of machine speed or pool contention *)
  max_solver_decisions : int;
  string_bound : int;  (** buffer size for locally declared strings *)
  cex_cache : bool;
      (** short-circuit branch-feasibility probes through the per-run
          counterexample cache (default [true]). The cache's
          bookkeeping — hit detection, counters, tick charges — runs
          either way, so paths, ticks and emitted tests are
          byte-identical on or off; only the executed solver work
          ([solver_decisions]) differs. Model-producing solves never
          consult the cache. *)
}

val default_config : config

type path = {
  model : Solve.assignment;
  pc : Term.t list;  (** path condition, most recent first *)
  ret : Sv.t;
  error : string option;
}

type stats = {
  paths_completed : int;
  paths_pruned : int;  (** infeasible or unsolvable branches *)
  solver_calls : int;
  solver_decisions : int;
      (** the work measure the counterexample cache reduces; the only
          stats field that depends on [config.cex_cache]. With the
          cache on: decisions of the (parent-model-hinted) solves that
          actually ran. With the cache off: decisions of one hint-free
          solve per feasibility probe — what a cache-free run executes
          — so off-vs-on is an apples-to-apples work comparison *)
  cex_hits : int;
      (** feasibility probes answered by the sat/unsat memo;
          deterministic and identical whether the cache is on or off *)
  model_reuses : int;
      (** probes answered by re-checking the parent path's cached model
          against the new conjunct; deterministic, cache on or off *)
  timed_out : bool;
  ticks_used : int;
      (** exploration ticks consumed against the deterministic budget —
          a machine-independent measure of symex work, comparable
          across hosts (unlike wall seconds) *)
}

val run :
  ?config:config ->
  ?natives:(string * (Sv.t list -> Sv.t)) list ->
  Eywa_minic.Ast.program ->
  entry:string ->
  args:Sv.t list ->
  assumes:Term.t list ->
  path list * stats
(** Execute [entry] on the given (possibly symbolic) arguments, with
    [assumes] conjoined to the initial path condition (the
    [klee_assume] channel used by regex validity modules). [natives]
    supplies pure host-implemented functions — notably the compiled
    regex guards of [RegexModule]s, which return a boolean term built
    by {!Regex.compile_term} instead of forking. *)
