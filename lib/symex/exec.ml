module Term = Eywa_solver.Term
module Solve = Eywa_solver.Solve
module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value

type config = {
  max_paths : int;
  max_steps : int;
  timeout : float;
  max_solver_decisions : int;
  string_bound : int;
  cex_cache : bool;
}

let default_config =
  {
    max_paths = 4096;
    max_steps = 20_000;
    timeout = 30.0;
    max_solver_decisions = 200_000;
    string_bound = 8;
    cex_cache = true;
  }

type path = {
  model : Solve.assignment;
  pc : Term.t list;
  ret : Sv.t;
  error : string option;
}

type stats = {
  paths_completed : int;
  paths_pruned : int;
  solver_calls : int;
  solver_decisions : int;
  cex_hits : int;
  model_reuses : int;
  timed_out : bool;
  ticks_used : int;
}

type ctx = {
  program : Ast.program;
  config : config;
  natives : (string * (Sv.t list -> Sv.t)) list;
  mutable checks : int;
  mutable results : path list;
  mutable completed : int;
  mutable pruned : int;
  mutable solver_calls : int;
  mutable solver_decisions : int;
  mutable cex_hits : int;
  mutable model_reuses : int;
  cex_memo : (int, bool) Hashtbl.t;
  cex_models : (int, Solve.assignment) Hashtbl.t;
  mutable stop : bool;
  mutable timed_out : bool;
}

type st = {
  pc : Term.t list;
  scopes : (string * Sv.t) list list;
  steps : int;
}

(* One budget-second buys [ticks_per_second] exploration ticks. Every
   budget probe costs one tick; every solver call costs
   decisions * (1 + pc size) / [work_per_tick] ticks — the search
   re-evaluates the whole path condition per decision, so that product
   tracks its real cost. Both rates are calibrated to roughly one
   wall-clock second per budget-second on a commodity core. A wall
   clock here would make a timed-out model's test set depend on
   machine speed and pool contention; the tick budget keeps the
   paper's Klee-budget shape — heavy models still cut off, reported as
   [timed_out] — while staying a deterministic function of the inputs
   alone, so jobs=1 and jobs=N agree. *)
let ticks_per_second = 50_000.
let work_per_tick = 600

let check_budget ctx =
  if not ctx.stop then begin
    ctx.checks <- ctx.checks + 1;
    if ctx.completed >= ctx.config.max_paths then ctx.stop <- true
    else if float_of_int ctx.checks > ctx.config.timeout *. ticks_per_second
    then begin
      ctx.stop <- true;
      ctx.timed_out <- true
    end
  end;
  ctx.stop

let charge_solver ctx (stats : Solve.stats) pc =
  ctx.checks <-
    ctx.checks + (stats.decisions * (1 + List.length pc) / work_per_tick)

(* The slice of [head :: parent] that can decide its satisfiability
   when [parent] is already known sat: [head] plus every parent
   conjunct transitively sharing a variable with it. Constraints
   outside the slice mention none of its variables, so they and the
   slice are satisfied or refuted independently — and the ones outside
   are a sub-conjunction of the sat parent, hence sat. Slice order is a
   pure function of the pc list (fixpoint over it in list order), never
   of hash order; {!Term.vars} is memoized so the walk is cheap. *)
let slice_for head parent =
  let vs = Hashtbl.create 16 in
  let add_vars t =
    List.iter (fun v -> Hashtbl.replace vs v.Term.vid ()) (Term.vars t)
  in
  add_vars head;
  let touches c =
    List.exists (fun v -> Hashtbl.mem vs v.Term.vid) (Term.vars c)
  in
  let picked = ref [] in
  let remaining = ref parent in
  let changed = ref true in
  while !changed do
    changed := false;
    remaining :=
      List.filter
        (fun c ->
          if touches c then begin
            picked := c :: !picked;
            add_vars c;
            changed := true;
            false
          end
          else true)
        !remaining
  done;
  head :: List.rev !picked

(* A slice model extended with the parent model's values for the
   variables outside the slice satisfies the whole pc: slice conjuncts
   see only slice variables (all assigned by the slice solve), the rest
   see only variables the parent model already satisfied them on. The
   stored invariant — every [cex_models] entry, with [domain.(0)]
   defaults for missing variables, satisfies its key's pc — is
   maintained, which is what the reuse check below leans on. *)
let combine_models slice_model parent_model =
  match parent_model with
  | None -> slice_model
  | Some pm ->
      let t = Hashtbl.copy pm in
      Hashtbl.iter (fun vid v -> Hashtbl.replace t vid v) slice_model;
      t

(* Branch-feasibility probe with a KLEE-style per-run counterexample
   cache. The path condition only ever grows by one conjunct, so before
   solving [head :: parent] we (1) consult a sat/unsat memo keyed by
   {!Term.pc_key}, (2) re-check the parent path's cached model against
   just [head] — the usual case: of a branch's two probes (c and not c),
   the parent model decides at least one — and only then (3) solve.
   Step (3) leans on the cache twice more: the memo's record that
   [parent] is sat licenses solving only the head-connected slice
   ({!slice_for} — the rest of the pc is a sub-conjunction of the sat
   parent and shares no variable with the slice), and the parent model
   warm-starts the search as a value-order hint (it already satisfies
   every conjunct but [head], so the hinted walk lands almost
   immediately; the search stays complete, so the verdict is
   unchanged). Multi-way forks are why step (3) dominates: their
   guards are mutually exclusive, so the parent model decides exactly
   one of N probes and the other N-1 — most proving the guard
   infeasible — all miss step (2).

   The bookkeeping (memo/model lookups, hit counters, the sliced solve
   on a miss, tick charges) runs unconditionally; [config.cex_cache]
   only decides whether the additional hint-free whole-pc solve — the
   work a cache-free run would execute for the probe — runs too.
   Verdicts, cached models and tick charges always come from the
   cache-assisted path in both modes, which keeps ticks — and with
   them timeout cut-offs, path sets and emitted tests — byte-identical
   with the cache on or off, while [solver_decisions] counts one
   hint-free whole-pc solve per probe with the cache off versus only
   the cheap sliced misses with it on: the real solver work the cache
   saves. A cache hit is charged one tick-decision; a miss is charged
   the sliced solve's actual decision count. *)
let is_sat ctx pc =
  ctx.solver_calls <- ctx.solver_calls + 1;
  match pc with
  | [] -> true
  | head :: parent ->
      let kparent = Term.pc_key parent in
      let key = Term.pc_key_cons head kparent in
      let count_unhinted () =
        let _, stats =
          Solve.solve_with_stats ~max_decisions:ctx.config.max_solver_decisions
            pc
        in
        ctx.solver_decisions <- ctx.solver_decisions + stats.Solve.decisions
      in
      let hit sat =
        charge_solver ctx { Solve.decisions = 1; conflicts = 0 } pc;
        if not ctx.config.cex_cache then count_unhinted ();
        sat
      in
      (match Hashtbl.find_opt ctx.cex_memo key with
      | Some sat ->
          ctx.cex_hits <- ctx.cex_hits + 1;
          hit sat
      | None -> (
          let parent_model = Hashtbl.find_opt ctx.cex_models kparent in
          let reused =
            match parent_model with
            | Some m when Solve.check m [ head ] -> Some m
            | _ -> None
          in
          match reused with
          | Some m ->
              ctx.model_reuses <- ctx.model_reuses + 1;
              Hashtbl.replace ctx.cex_memo key true;
              Hashtbl.replace ctx.cex_models key m;
              hit true
          | None ->
              let parent_sat =
                match parent with
                | [] -> true
                | _ -> Hashtbl.find_opt ctx.cex_memo kparent = Some true
              in
              let target = if parent_sat then slice_for head parent else pc in
              let outcome, stats =
                Solve.solve_with_stats ?hint:parent_model
                  ~max_decisions:ctx.config.max_solver_decisions target
              in
              charge_solver ctx stats target;
              if ctx.config.cex_cache then
                ctx.solver_decisions <-
                  ctx.solver_decisions + stats.Solve.decisions
              else
                (* cache off: count the hint-free whole-pc solve this
                   probe would have cost instead, so off-vs-on compares
                   the cache-free world's work against the cache's *)
                count_unhinted ();
              (match outcome with
              | Solve.Sat m ->
                  let m_full =
                    if parent_sat then combine_models m parent_model else m
                  in
                  Hashtbl.replace ctx.cex_memo key true;
                  Hashtbl.replace ctx.cex_models key m_full;
                  true
              | Solve.Unsat | Solve.Unknown ->
                  Hashtbl.replace ctx.cex_memo key false;
                  false)))

(* ----- environment (persistent) ----- *)

let lookup st name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with Some v -> Some v | None -> go rest)
  in
  go st.scopes

let declare st name v =
  match st.scopes with
  | scope :: rest -> { st with scopes = ((name, v) :: scope) :: rest }
  | [] -> assert false

let set_var st name v =
  let rec go = function
    | [] -> None
    | scope :: rest ->
        if List.mem_assoc name scope then
          Some (List.map (fun (n, w) -> if n = name then (n, v) else (n, w)) scope :: rest)
        else (
          match go rest with
          | Some rest' -> Some (scope :: rest')
          | None -> None)
  in
  match go st.scopes with
  | Some scopes -> { st with scopes }
  | None -> invalid_arg (Printf.sprintf "Exec.set_var: unbound %S" name)

let push_scope st = { st with scopes = [] :: st.scopes }
let pop_scope st =
  match st.scopes with _ :: rest -> { st with scopes = rest } | [] -> assert false

(* ----- path completion ----- *)

(* The model-producing solve. Never consults the counterexample cache:
   the [~rotate:ctx.completed] value-order rotation is what diversifies
   the emitted tests, and a cached probe model would short-circuit it —
   reusing one here would change the tests the cache exists to leave
   untouched. *)
let complete ctx st ~ret ~error =
  if not (check_budget ctx) then begin
    ctx.solver_calls <- ctx.solver_calls + 1;
    let outcome, stats =
      Solve.solve_with_stats ~max_decisions:ctx.config.max_solver_decisions
        ~rotate:ctx.completed st.pc
    in
    ctx.solver_decisions <- ctx.solver_decisions + stats.Solve.decisions;
    charge_solver ctx stats st.pc;
    match outcome with
    | Solve.Sat model ->
        ctx.completed <- ctx.completed + 1;
        ctx.results <- { model; pc = st.pc; ret; error } :: ctx.results
    | Solve.Unsat | Solve.Unknown -> ctx.pruned <- ctx.pruned + 1
  end

exception Path_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Path_error s)) fmt

(* Run a continuation, turning a path error into a completed error path
   for the state at this fork point. Between forks execution is
   deterministic, so the path condition is exact. *)
let protect ctx st f =
  try f () with Path_error m -> complete ctx st ~ret:Sv.Sunit ~error:(Some m)

(* ----- forking ----- *)

let branch ctx st cond kt kf =
  if not (check_budget ctx) then begin
    match cond with
    | Term.Const n -> if n <> 0 then kt st else kf st
    | c ->
        let pc_t = c :: st.pc in
        let pc_f = Term.not_ c :: st.pc in
        let sat_t = is_sat ctx pc_t in
        let sat_f = is_sat ctx pc_f in
        (match (sat_t, sat_f) with
        | true, true ->
            let st_t = { st with pc = pc_t } in
            protect ctx st_t (fun () -> kt st_t);
            if not ctx.stop then begin
              let st_f = { st with pc = pc_f } in
              protect ctx st_f (fun () -> kf st_f)
            end
        | true, false -> kt { st with pc = pc_t }
        | false, true -> kf { st with pc = pc_f }
        | false, false -> ctx.pruned <- ctx.pruned + 1)
  end

(* Multi-way fork: explore every case whose guard is feasible. *)
let fork_cases ctx st cases k =
  List.iter
    (fun (guard, payload) ->
      if not (check_budget ctx) then begin
        match guard with
        | Term.Const 0 -> ()
        | Term.Const _ -> protect ctx st (fun () -> k st payload)
        | g ->
            let pc = g :: st.pc in
            if is_sat ctx pc then begin
              let st' = { st with pc } in
              protect ctx st' (fun () -> k st' payload)
            end
      end)
    cases

let truthy_term sv =
  match sv with
  | Sv.Sscalar (Ast.Tbool, t) -> t
  | Sv.Sscalar (_, t) -> Term.neq t (Term.const 0)
  | _ -> err "condition is not a scalar"

(* ----- string helpers ----- *)

let as_cells = function
  | Sv.Sstring cells -> cells
  | v -> err "expected a string, got %s" (Format.asprintf "%a" Sv.pp v)

(* Fork over the length of a (possibly symbolic) C string: for each
   possible first-NUL position i, the guard is
   s[0..i-1] all non-NUL and s[i] = NUL. *)
let fork_strlen ctx st cells k =
  let n = Array.length cells in
  let cases = ref [] in
  let prefix_nonnul = ref Term.tt in
  (try
     for i = 0 to n - 1 do
       let ends = Term.eq cells.(i) (Term.const 0) in
       cases := (Term.and_ !prefix_nonnul ends, i) :: !cases;
       prefix_nonnul := Term.and_ !prefix_nonnul (Term.neq cells.(i) (Term.const 0));
       if Term.is_false !prefix_nonnul then raise Exit
     done
   with Exit -> ());
  fork_cases ctx st (List.rev !cases) k

(* Fork over the sign of strcmp: walk positions, forking on equality.
   [k st sign] receives -1, 0 or 1. *)
let fork_strcmp ctx st a_cells b_cells limit k =
  let na = Array.length a_cells and nb = Array.length b_cells in
  let rec walk st i =
    if check_budget ctx then ()
    else if i >= limit then k st 0
    else begin
      let a = if i < na then a_cells.(i) else Term.const 0 in
      let b = if i < nb then b_cells.(i) else Term.const 0 in
      branch ctx st (Term.eq a b)
        (fun st ->
          (* equal here; if NUL, strings are equal overall *)
          branch ctx st (Term.eq a (Term.const 0))
            (fun st -> k st 0)
            (fun st -> walk st (i + 1)))
        (fun st ->
          branch ctx st (Term.lt a b) (fun st -> k st (-1)) (fun st -> k st 1))
    end
  in
  walk st 0

(* ----- lvalue paths ----- *)

type step = Pfield of string | Pindex of int

let rec read_path v = function
  | [] -> v
  | Pfield f :: rest -> (
      match v with
      | Sv.Sstruct (n, fields) -> (
          match List.assoc_opt f fields with
          | Some w -> read_path w rest
          | None -> err "struct %s has no field %S" n f)
      | _ -> err "field read on non-struct")
  | Pindex i :: rest -> (
      match v with
      | Sv.Sarray vs ->
          if i < 0 || i >= Array.length vs then err "array index %d out of bounds" i
          else read_path vs.(i) rest
      | Sv.Sstring cells ->
          if rest <> [] then err "indexing into a char"
          else if i < 0 || i >= Array.length cells then
            err "string index %d out of bounds" i
          else Sv.Sscalar (Ast.Tchar, cells.(i))
      | _ -> err "index read on non-array")

let rec write_path v path x =
  match (path, v) with
  | [], _ -> x
  | Pfield f :: rest, Sv.Sstruct (n, fields) ->
      if not (List.mem_assoc f fields) then err "struct %s has no field %S" n f;
      Sv.Sstruct
        (n, List.map (fun (g, w) -> if g = f then (g, write_path w rest x) else (g, w)) fields)
  | Pindex i :: rest, Sv.Sarray vs ->
      if i < 0 || i >= Array.length vs then err "array index %d out of bounds" i;
      let copy = Array.copy vs in
      copy.(i) <- write_path copy.(i) rest x;
      Sv.Sarray copy
  | [ Pindex i ], Sv.Sstring cells ->
      if i < 0 || i >= Array.length cells then err "string index %d out of bounds" i;
      let copy = Array.copy cells in
      (match x with
      | Sv.Sscalar (_, t) -> copy.(i) <- t
      | _ -> err "cannot store an aggregate into a string cell");
      Sv.Sstring copy
  | Pindex _ :: _, Sv.Sstring _ -> err "indexing into a char"
  | _, _ -> err "cannot follow lvalue path"

(* Concretize a symbolic index by forking over the feasible in-bounds
   values; out-of-range feasibility becomes an error path. *)
let fork_index ctx st idx_term size k_ok k_err =
  match idx_term with
  | Term.Const i -> if i < 0 || i >= size then k_err st i else k_ok st i
  | t ->
      let in_bounds =
        Term.and_ (Term.le (Term.const 0) t) (Term.lt t (Term.const size))
      in
      branch ctx st in_bounds
        (fun st ->
          let cases = List.init size (fun i -> (Term.eq t (Term.const i), i)) in
          fork_cases ctx st cases k_ok)
        (fun st -> k_err st (-1))

(* ----- expression evaluation (CPS) ----- *)

let enum_index program m =
  match Ast.enum_member_index program m with
  | Some (ename, i) -> (ename, i)
  | None -> err "unknown enum member %S" m

let scalar_binop op x y =
  match op with
  | Ast.Add -> Term.add x y
  | Ast.Sub -> Term.sub x y
  | Ast.Mul -> Term.mul x y
  | Ast.Eq -> Term.eq x y
  | Ast.Ne -> Term.neq x y
  | Ast.Lt -> Term.lt x y
  | Ast.Le -> Term.le x y
  | Ast.Gt -> Term.gt x y
  | Ast.Ge -> Term.ge x y
  | Ast.Land -> Term.and_ (Term.neq x (Term.const 0)) (Term.neq y (Term.const 0))
  | Ast.Lor -> Term.or_ (Term.neq x (Term.const 0)) (Term.neq y (Term.const 0))
  | Ast.Div | Ast.Mod -> assert false

let result_ty op =
  match op with
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor ->
      Ast.Tbool
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> Ast.Tint 32

let rec eval ctx st (e : Ast.expr) (k : st -> Sv.t -> unit) : unit =
  if check_budget ctx then ()
  else
    match e with
    | Ast.Ebool b -> k st (Sv.Sscalar (Ast.Tbool, Term.of_bool b))
    | Ast.Echar c -> k st (Sv.Sscalar (Ast.Tchar, Term.const (Char.code c)))
    | Ast.Eint n -> k st (Sv.Sscalar (Ast.Tint 32, Term.const n))
    | Ast.Estr s -> k st (Sv.concrete_string s)
    | Ast.Eenum m ->
        let ename, i = enum_index ctx.program m in
        k st (Sv.Sscalar (Ast.Tenum ename, Term.const i))
    | Ast.Evar x -> (
        match lookup st x with
        | Some v -> k st v
        | None -> (
            match Ast.enum_member_index ctx.program x with
            | Some (ename, i) -> k st (Sv.Sscalar (Ast.Tenum ename, Term.const i))
            | None -> err "unbound variable %S" x))
    | Ast.Efield (b, f) ->
        eval ctx st b (fun st v -> k st (read_path v [ Pfield f ]))
    | Ast.Eindex (b, i) ->
        eval ctx st b (fun st bv ->
            eval ctx st i (fun st iv ->
                let it = Sv.scalar_term iv in
                let size =
                  match bv with
                  | Sv.Sarray vs -> Array.length vs
                  | Sv.Sstring cells -> Array.length cells
                  | _ -> err "indexing non-array"
                in
                fork_index ctx st it size
                  (fun st idx -> k st (read_path bv [ Pindex idx ]))
                  (fun st idx ->
                    complete ctx st ~ret:Sv.Sunit
                      ~error:(Some (Printf.sprintf "index %d out of bounds" idx)))))
    | Ast.Eunop (Ast.Lnot, a) ->
        eval ctx st a (fun st v ->
            k st (Sv.Sscalar (Ast.Tbool, Term.not_ (truthy_term v))))
    | Ast.Eunop (Ast.Neg, a) ->
        eval ctx st a (fun st v ->
            k st (Sv.Sscalar (Ast.Tint 32, Term.sub (Term.const 0) (Sv.scalar_term v))))
    | Ast.Ebinop ((Ast.Div | Ast.Mod) as op, a, b) ->
        eval ctx st a (fun st av ->
            eval ctx st b (fun st bv ->
                let x = Sv.scalar_term av and y = Sv.scalar_term bv in
                branch ctx st (Term.eq y (Term.const 0))
                  (fun st ->
                    complete ctx st ~ret:Sv.Sunit ~error:(Some "division by zero"))
                  (fun st ->
                    let r =
                      match op with
                      | Ast.Div -> Term.div x y
                      | Ast.Mod -> Term.mod_ x y
                      | _ -> assert false
                    in
                    k st (Sv.Sscalar (Ast.Tint 32, r)))))
    | Ast.Ebinop (op, a, b) ->
        eval ctx st a (fun st av ->
            eval ctx st b (fun st bv ->
                let x = Sv.scalar_term av and y = Sv.scalar_term bv in
                k st (Sv.Sscalar (result_ty op, scalar_binop op x y))))
    | Ast.Econd (c, a, b) ->
        eval ctx st c (fun st cv ->
            branch ctx st (truthy_term cv)
              (fun st -> eval ctx st a k)
              (fun st -> eval ctx st b k))
    | Ast.Ecall (name, args) -> eval_args ctx st args (fun st argvs ->
        eval_call ctx st name argvs k)

and eval_args ctx st args k =
  let rec go st acc = function
    | [] -> k st (List.rev acc)
    | a :: rest -> eval ctx st a (fun st v -> go st (v :: acc) rest)
  in
  go st [] args

and eval_call ctx st name args k =
  match (name, args) with
  | "strlen", [ s ] ->
      fork_strlen ctx st (as_cells s) (fun st len ->
          k st (Sv.Sscalar (Ast.Tint 32, Term.const len)))
  | "strcmp", [ a; b ] ->
      let ac = as_cells a and bc = as_cells b in
      fork_strcmp ctx st ac bc (max (Array.length ac) (Array.length bc))
        (fun st sign -> k st (Sv.Sscalar (Ast.Tint 32, Term.const sign)))
  | "strncmp", [ a; b; n ] -> (
      match Sv.scalar_term n with
      | Term.Const limit ->
          fork_strcmp ctx st (as_cells a) (as_cells b) limit (fun st sign ->
              k st (Sv.Sscalar (Ast.Tint 32, Term.const sign)))
      | _ -> err "strncmp bound must be concrete")
  | "strcpy", _ -> err "strcpy used in expression position"
  | _ when List.mem_assoc name ctx.natives ->
      k st ((List.assoc name ctx.natives) args)
  | _ -> (
      match Ast.find_func ctx.program name with
      | None -> err "call to undefined function %S" name
      | Some f ->
          if List.length f.params <> List.length args then err "%s: arity mismatch" name;
          let callee_scope =
            List.fold_left2
              (fun acc (_, pname) v -> (pname, v) :: acc)
              [] f.params args
          in
          let saved_scopes = st.scopes in
          let st = { st with scopes = [ callee_scope ] } in
          exec_block ctx st f.body
            ~knorm:(fun st ->
              if f.ret = Ast.Tvoid then k { st with scopes = saved_scopes } Sv.Sunit
              else err "function %s fell off the end without returning" name)
            ~kret:(fun st v -> k { st with scopes = saved_scopes } v)
            ~kbrk:(fun _ -> err "break outside of a loop")
            ~kcont:(fun _ -> err "continue outside of a loop"))

(* ----- statements (CPS) ----- *)

and exec_stmt ctx st (s : Ast.stmt) ~knorm ~kret ~kbrk ~kcont : unit =
  if check_budget ctx then ()
  else if st.steps >= ctx.config.max_steps then
    complete ctx st ~ret:Sv.Sunit ~error:(Some "step budget exhausted")
  else begin
    let st = { st with steps = st.steps + 1 } in
    match s with
    | Ast.Sdecl (ty, name, init) -> (
        match init with
        | Some e ->
            eval ctx st e (fun st v -> knorm (declare st name (coerce ty v)))
        | None ->
            let v =
              Sv.of_value
                (Value.default ~string_bound:ctx.config.string_bound ctx.program ty)
            in
            knorm (declare st name v))
    | Ast.Sassign (lv, e) ->
        eval ctx st e (fun st v ->
            resolve_lvalue ctx st lv (fun st root path ->
                assign ctx st root path v knorm))
    | Ast.Sif (c, t, e) ->
        eval ctx st c (fun st cv ->
            branch ctx st (truthy_term cv)
              (fun st -> exec_block ctx st t ~knorm ~kret ~kbrk ~kcont)
              (fun st -> exec_block ctx st e ~knorm ~kret ~kbrk ~kcont))
    | Ast.Swhile (c, body) ->
        let rec iterate st =
          if check_budget ctx then ()
          else if st.steps >= ctx.config.max_steps then
            complete ctx st ~ret:Sv.Sunit ~error:(Some "step budget exhausted")
          else
            let st = { st with steps = st.steps + 1 } in
            eval ctx st c (fun st cv ->
                branch ctx st (truthy_term cv)
                  (fun st ->
                    exec_block ctx st body ~knorm:iterate ~kret ~kbrk:knorm
                      ~kcont:iterate)
                  knorm)
        in
        iterate st
    | Ast.Sfor (init, c, step, body) ->
        let st = push_scope st in
        let after st = knorm (pop_scope st) in
        let rec iterate st =
          if check_budget ctx then ()
          else if st.steps >= ctx.config.max_steps then
            complete ctx st ~ret:Sv.Sunit ~error:(Some "step budget exhausted")
          else
            let st = { st with steps = st.steps + 1 } in
            eval ctx st c (fun st cv ->
                branch ctx st (truthy_term cv)
                  (fun st ->
                    exec_block ctx st body ~knorm:do_step
                      ~kret:(fun st v -> kret st v)
                      ~kbrk:after ~kcont:do_step)
                  after)
        and do_step st =
          match step with
          | None -> iterate st
          | Some s ->
              exec_stmt ctx st s ~knorm:iterate ~kret ~kbrk:after ~kcont:iterate
        in
        (match init with
        | None -> iterate st
        | Some s -> exec_stmt ctx st s ~knorm:iterate ~kret ~kbrk:after ~kcont:iterate)
    | Ast.Sreturn None -> kret st Sv.Sunit
    | Ast.Sreturn (Some e) -> eval ctx st e (fun st v -> kret st v)
    | Ast.Sexpr (Ast.Ecall ("strcpy", [ dst; src ])) ->
        eval ctx st src (fun st srcv ->
            let src_cells = as_cells srcv in
            resolve_lvalue ctx st (expr_lvalue dst) (fun st root path ->
                let cur = read_root st root path in
                let dst_cells = as_cells cur in
                let nd = Array.length dst_cells in
                let copied =
                  Array.init nd (fun i ->
                      if i = nd - 1 then Term.const 0
                      else if i < Array.length src_cells then src_cells.(i)
                      else Term.const 0)
                in
                assign ctx st root path (Sv.Sstring copied) knorm))
    | Ast.Sexpr e -> eval ctx st e (fun st _ -> knorm st)
    | Ast.Sbreak -> kbrk st
    | Ast.Scontinue -> kcont st
  end

and expr_lvalue = function
  | Ast.Evar x -> Ast.Lvar x
  | Ast.Efield (b, f) -> Ast.Lfield (expr_lvalue b, f)
  | Ast.Eindex (b, i) -> Ast.Lindex (expr_lvalue b, i)
  | _ -> err "expression is not an lvalue"

and coerce ty v =
  match (ty, v) with
  | Ast.Tbool, Sv.Sscalar (t, term) when t <> Ast.Tbool ->
      Sv.Sscalar (Ast.Tbool, Term.neq term (Term.const 0))
  | (Ast.Tchar | Ast.Tint _ | Ast.Tenum _), Sv.Sscalar (_, term) ->
      Sv.Sscalar (ty, term)
  | _ -> v

and resolve_lvalue ctx st lv (k : st -> string -> step list -> unit) =
  (* Materialise the access path, concretizing symbolic indices. *)
  let rec go lv k =
    match lv with
    | Ast.Lvar x -> k st x []
    | Ast.Lfield (b, f) -> go b (fun st root path -> k st root (path @ [ Pfield f ]))
    | Ast.Lindex (b, i) ->
        go b (fun st root path ->
            eval ctx st i (fun st iv ->
                let it = Sv.scalar_term iv in
                let container = read_root st root path in
                let size =
                  match container with
                  | Sv.Sarray vs -> Array.length vs
                  | Sv.Sstring cells -> Array.length cells
                  | _ -> err "index assignment on non-array"
                in
                fork_index ctx st it size
                  (fun st idx -> k st root (path @ [ Pindex idx ]))
                  (fun st idx ->
                    complete ctx st ~ret:Sv.Sunit
                      ~error:(Some (Printf.sprintf "index %d out of bounds" idx)))))
  in
  go lv k

and read_root st root path =
  match lookup st root with
  | Some v -> read_path v path
  | None -> err "unbound variable %S" root

and assign ctx st root path v knorm =
  ignore ctx;
  match lookup st root with
  | None -> err "assignment to unbound variable %S" root
  | Some cur -> knorm (set_var st root (write_path cur path v))

and exec_block ctx st body ~knorm ~kret ~kbrk ~kcont =
  let st = push_scope st in
  let rec go st = function
    | [] -> knorm (pop_scope st)
    | s :: rest ->
        exec_stmt ctx st s
          ~knorm:(fun st -> go st rest)
          ~kret:(fun st v -> kret (pop_scope st) v)
          ~kbrk:(fun st -> kbrk (pop_scope st))
          ~kcont:(fun st -> kcont (pop_scope st))
  in
  go st body

let run ?(config = default_config) ?(natives = []) program ~entry ~args ~assumes =
  let ctx =
    {
      program;
      config;
      natives;
      checks = 0;
      results = [];
      completed = 0;
      pruned = 0;
      solver_calls = 0;
      solver_decisions = 0;
      cex_hits = 0;
      model_reuses = 0;
      cex_memo = Hashtbl.create 256;
      cex_models = Hashtbl.create 256;
      stop = false;
      timed_out = false;
    }
  in
  (match Ast.find_func program entry with
  | None -> invalid_arg (Printf.sprintf "Exec.run: no function %S" entry)
  | Some f ->
      if List.length f.params <> List.length args then
        invalid_arg (Printf.sprintf "Exec.run: %s arity mismatch" entry);
      let init_scope =
        List.fold_left2 (fun acc (_, pname) v -> (pname, v) :: acc) [] f.params args
      in
      let st = { pc = assumes; scopes = [ init_scope ]; steps = 0 } in
      let feasible =
        match assumes with [] -> true | _ -> is_sat ctx assumes
      in
      if feasible then
        protect ctx st (fun () ->
            exec_block ctx st f.body
              ~knorm:(fun st ->
                if f.ret = Ast.Tvoid then complete ctx st ~ret:Sv.Sunit ~error:None
                else
                  complete ctx st ~ret:Sv.Sunit
                    ~error:(Some "fell off the end without returning"))
              ~kret:(fun st v -> complete ctx st ~ret:v ~error:None)
              ~kbrk:(fun _ -> ())
              ~kcont:(fun _ -> ())));
  ( List.rev ctx.results,
    {
      paths_completed = ctx.completed;
      paths_pruned = ctx.pruned;
      solver_calls = ctx.solver_calls;
      solver_decisions = ctx.solver_decisions;
      cex_hits = ctx.cex_hits;
      model_reuses = ctx.model_reuses;
      timed_out = ctx.timed_out;
      ticks_used = ctx.checks;
    } )
