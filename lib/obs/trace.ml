module Instrument = Eywa_core.Instrument
module Json = Eywa_core.Serialize.Json

type cls = Det | Env

type attrs = (string * Json.t) list

type item =
  | Span of {
      id : string;
      parent : string option;
      name : string;
      start_at : int;
      end_at : int;
      cls : cls;
      det : attrs;
      env : attrs;
    }
  | Event of {
      id : string;
      parent : string option;
      name : string;
      at : int;
      cls : cls;
      det : attrs;
      env : attrs;
    }

type t = { label : string; items : item list }

type builder = {
  label : string;
  mutable seq : int;  (* logical clock; root opens at 0 *)
  mutable rev_items : item list;
  open_draws : (int, int * string) Hashtbl.t;  (* index -> start_at, span id *)
  id_counts : (string, int) Hashtbl.t;  (* base id -> uses so far *)
}

let builder ~label =
  {
    label;
    seq = 0;
    rev_items = [];
    open_draws = Hashtbl.create 16;
    id_counts = Hashtbl.create 64;
  }

(* Ids are paths under the run label; a base that repeats (a second
   synthesis fed into the same context, repeated cache probes) gets a
   deterministic #n suffix. Env-classed bases (cache probes) have their
   own counters, so their multiplicity never shifts a Det id. *)
let fresh b base =
  let n = try Hashtbl.find b.id_counts base with Not_found -> 0 in
  Hashtbl.replace b.id_counts base (n + 1);
  if n = 0 then base else Printf.sprintf "%s#%d" base (n + 1)

let tick b =
  b.seq <- b.seq + 1;
  b.seq

let push b item = b.rev_items <- item :: b.rev_items

let draw_base b index = Printf.sprintf "%s/draw/%d" b.label index

(* the draw span a child event belongs to: the open one for this index,
   or (tolerating streams that skip [Draw_started]) the base id *)
let draw_parent b index =
  match Hashtbl.find_opt b.open_draws index with
  | Some (_, id) -> id
  | None -> draw_base b index

let feed b (ev : Instrument.event) =
  let at = tick b in
  match ev with
  | Draw_started { index } ->
      Hashtbl.replace b.open_draws index (at, fresh b (draw_base b index))
  | Draw_finished { index; tests; gen_seconds; symex_seconds } ->
      let start_at, id =
        try Hashtbl.find b.open_draws index
        with Not_found -> (at, fresh b (draw_base b index))
      in
      Hashtbl.remove b.open_draws index;
      push b
        (Span
           {
             id;
             parent = Some b.label;
             name = Printf.sprintf "draw %d" index;
             start_at;
             end_at = at;
             cls = Det;
             det = [ ("tests", Json.Int tests) ];
             env =
               [
                 ("gen_seconds", Json.Float gen_seconds);
                 ("symex_seconds", Json.Float symex_seconds);
               ];
           })
  | Compile_rejected { index; stage; message } ->
      push b
        (Event
           {
             id = fresh b (draw_parent b index ^ "/reject");
             parent = Some (draw_parent b index);
             name = "compile_rejected";
             at;
             cls = Det;
             det = [ ("stage", Json.Str stage); ("message", Json.Str message) ];
             env = [];
           })
  | Symex_done { index; ticks; paths_completed; paths_pruned; solver_calls;
                 solver_decisions; cex_hits; model_reuses; timed_out } ->
      push b
        (Span
           {
             id = fresh b (draw_parent b index ^ "/symex");
             parent = Some (draw_parent b index);
             name = "symex";
             start_at = at;
             end_at = at;
             cls = Det;
             det =
               [
                 ("ticks", Json.Int ticks);
                 ("paths_completed", Json.Int paths_completed);
                 ("paths_pruned", Json.Int paths_pruned);
                 ("solver_calls", Json.Int solver_calls);
                 ("cex_hits", Json.Int cex_hits);
                 ("model_reuses", Json.Int model_reuses);
                 ("timed_out", Json.Bool timed_out);
               ];
             env =
               (* executed work depends on the cex-cache toggle, so it
                  must strip away like cache traffic does *)
               [ ("solver_decisions", Json.Int solver_decisions) ];
           })
  | Cache_hit { stage; key } | Cache_miss { stage; key } ->
      let hit = match ev with Instrument.Cache_hit _ -> true | _ -> false in
      let name = if hit then "cache_hit" else "cache_miss" in
      push b
        (Event
           {
             id = fresh b (Printf.sprintf "%s/cache/%s" b.label name);
             parent = Some b.label;
             name;
             at;
             cls = Env;
             det = [ ("stage", Json.Str stage); ("key", Json.Str key) ];
             env = [];
           })
  | Suite_aggregated { draws; unique_tests } ->
      push b
        (Event
           {
             id = fresh b (b.label ^ "/aggregate");
             parent = Some b.label;
             name = "suite_aggregated";
             at;
             cls = Det;
             det =
               [
                 ("draws", Json.Int draws);
                 ("unique_tests", Json.Int unique_tests);
               ];
             env = [];
           })
  | Fuzz_done { index; execs; edges_seed; edges_after; new_tests } ->
      push b
        (Span
           {
             id = fresh b (Printf.sprintf "%s/fuzz/%d" b.label index);
             parent = Some b.label;
             name = Printf.sprintf "fuzz %d" index;
             start_at = at;
             end_at = at;
             cls = Det;
             det =
               [
                 ("execs", Json.Int execs);
                 ("edges_seed", Json.Int edges_seed);
                 ("edges_after", Json.Int edges_after);
                 ("new_tests", Json.Int new_tests);
               ];
             env = [];
           })
  | Fuzz_aggregated { draws; fuzz_tests; combined_tests } ->
      push b
        (Event
           {
             id = fresh b (b.label ^ "/fuzz-aggregate");
             parent = Some b.label;
             name = "fuzz_aggregated";
             at;
             cls = Det;
             det =
               [
                 ("draws", Json.Int draws);
                 ("fuzz_tests", Json.Int fuzz_tests);
                 ("combined_tests", Json.Int combined_tests);
               ];
             env = [];
           })
  | Difftest_done { label; total_tests; disagreeing_tests; tuples; execs } ->
      push b
        (Span
           {
             id = fresh b (Printf.sprintf "%s/difftest/%s" b.label label);
             parent = Some b.label;
             name = Printf.sprintf "difftest %s" label;
             start_at = at;
             end_at = at;
             cls = Det;
             det =
               [
                 ("total_tests", Json.Int total_tests);
                 ("disagreeing_tests", Json.Int disagreeing_tests);
                 ("tuples", Json.Int tuples);
                 ("execs", Json.Int execs);
               ];
             env = [];
           })
  | Pool_merged { label; tasks; computed; jobs; per_worker; queue_wait_ticks }
    ->
      push b
        (Event
           {
             id = fresh b (Printf.sprintf "%s/pool/%s" b.label label);
             parent = Some b.label;
             name = Printf.sprintf "pool %s" label;
             at;
             cls = Det;
             det = [ ("tasks", Json.Int tasks) ];
             env =
               [
                 ("computed", Json.Int computed);
                 ("jobs", Json.Int jobs);
                 ( "per_worker",
                   Json.List (List.map (fun n -> Json.Int n) per_worker) );
                 ("queue_wait_ticks", Json.Int queue_wait_ticks);
               ];
           })

let finish b =
  let unclosed =
    Hashtbl.fold (fun index (start_at, id) acc -> (index, start_at, id) :: acc)
      b.open_draws []
    |> List.sort compare
    |> List.map (fun (index, start_at, id) ->
           Span
             {
               id;
               parent = Some b.label;
               name = Printf.sprintf "draw %d" index;
               start_at;
               end_at = -1;
               cls = Det;
               det = [];
               env = [];
             })
  in
  let root =
    Span
      {
        id = b.label;
        parent = None;
        name = "run";
        start_at = 0;
        end_at = b.seq;
        cls = Det;
        det = [ ("label", Json.Str b.label) ];
        env = [];
      }
  in
  { label = b.label; items = (root :: List.rev b.rev_items) @ unclosed }

let item_id = function Span { id; _ } -> id | Event { id; _ } -> id

let span_ids t = List.map item_id t.items

let well_formed t =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* () =
    match
      List.filter
        (function
          | Span { parent = None; _ } -> true
          | Event { parent = None; _ } -> true
          | _ -> false)
        t.items
    with
    | [ Span { id; _ } ] when id = t.label -> Ok ()
    | [ Span { id; _ } ] -> err "root span %S does not match label %S" id t.label
    | [ Event { id; _ } ] -> err "root item %S is an event, not a span" id
    | [] -> err "no root span"
    | items -> err "%d parentless items" (List.length items)
  in
  let seen = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc item ->
        let* () = acc in
        let id = item_id item in
        if Hashtbl.mem seen id then err "duplicate id %S" id
        else begin
          Hashtbl.replace seen id item;
          Ok ()
        end)
      (Ok ()) t.items
  in
  let* () =
    List.fold_left
      (fun acc item ->
        let* () = acc in
        match item with
        | Span { id; start_at; end_at; _ } ->
            if end_at < start_at then err "span %S not closed" id
            else if start_at < 0 then err "span %S has negative start" id
            else Ok ()
        | Event _ -> Ok ())
      (Ok ()) t.items
  in
  List.fold_left
    (fun acc item ->
      let* () = acc in
      let id = item_id item in
      let parent, start_at, end_at =
        match item with
        | Span { parent; start_at; end_at; _ } -> (parent, start_at, end_at)
        | Event { parent; at; _ } -> (parent, at, at)
      in
      match parent with
      | None -> Ok ()
      | Some pid -> (
          match Hashtbl.find_opt seen pid with
          | None -> err "item %S has unknown parent %S" id pid
          | Some (Event _) -> err "item %S has event parent %S" id pid
          | Some (Span { start_at = ps; end_at = pe; _ }) ->
              if ps > start_at then
                err "parent %S opened after child %S" pid id
              else if pe < end_at then
                err "parent %S closed before child %S" pid id
              else Ok ()))
    (Ok ()) t.items

let strip t =
  let items =
    List.filter_map
      (function
        | Span { cls = Env; _ } | Event { cls = Env; _ } -> None
        | Span s -> Some (Span { s with env = [] })
        | Event e -> Some (Event { e with env = [] }))
      t.items
  in
  { t with items }
