module Json = Eywa_core.Serialize.Json

type cls = Trace.cls = Det | Env

type counter_state = { mutable count : int }

type gauge_state = { mutable value : float }

type histogram_state = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1; last = +Inf *)
  mutable sum : float;
  mutable observations : int;
}

type vec_state = (string, int) Hashtbl.t

type instrument =
  | Counter of counter_state
  | Gauge of gauge_state
  | Histogram of histogram_state
  | Vec of { label : string; cells : vec_state }

type entry = { name : string; help : string; cls : cls; inst : instrument }

type t = {
  mutex : Mutex.t;
  mutable rev_entries : entry list;  (* newest first; exposed reversed *)
  names : (string, unit) Hashtbl.t;
}

type counter = { c_reg : t; c_state : counter_state }
type gauge = { g_reg : t; g_state : gauge_state }
type histogram = { h_reg : t; h_state : histogram_state }
type vec = { v_reg : t; v_cells : vec_state }

let create () =
  { mutex = Mutex.create (); rev_entries = []; names = Hashtbl.create 32 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let register t ~name ~help ~cls inst =
  locked t (fun () ->
      if Hashtbl.mem t.names name then
        invalid_arg (Printf.sprintf "Metrics: %S already registered" name);
      Hashtbl.replace t.names name ();
      t.rev_entries <- { name; help; cls; inst } :: t.rev_entries)

let counter t ?(cls = Det) ?(help = "") name =
  let state = { count = 0 } in
  register t ~name ~help ~cls (Counter state);
  { c_reg = t; c_state = state }

let inc c n = locked c.c_reg (fun () -> c.c_state.count <- c.c_state.count + n)

let gauge t ?(cls = Det) ?(help = "") name =
  let state = { value = 0.0 } in
  register t ~name ~help ~cls (Gauge state);
  { g_reg = t; g_state = state }

let set_gauge g v = locked g.g_reg (fun () -> g.g_state.value <- v)

let histogram t ?(cls = Det) ?(help = "") ~buckets name =
  let bounds = Array.of_list buckets in
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg
          (Printf.sprintf "Metrics: %S bucket bounds must strictly increase"
             name))
    bounds;
  let state =
    {
      bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      sum = 0.0;
      observations = 0;
    }
  in
  register t ~name ~help ~cls (Histogram state);
  { h_reg = t; h_state = state }

let observe h v =
  locked h.h_reg (fun () ->
      let st = h.h_state in
      let i = ref 0 in
      while !i < Array.length st.bounds && v > st.bounds.(!i) do
        incr i
      done;
      st.counts.(!i) <- st.counts.(!i) + 1;
      st.sum <- st.sum +. v;
      st.observations <- st.observations + 1)

let counter_vec t ?(cls = Det) ?(help = "") ~label name =
  let cells = Hashtbl.create 8 in
  register t ~name ~help ~cls (Vec { label; cells });
  { v_reg = t; v_cells = cells }

let inc_vec v label_value n =
  locked v.v_reg (fun () ->
      let cur = try Hashtbl.find v.v_cells label_value with Not_found -> 0 in
      Hashtbl.replace v.v_cells label_value (cur + n))

let float_str f = Json.to_string (Json.Float f)

let expose ?(strip_env = false) t =
  locked t (fun () ->
      let buf = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
      List.iter
        (fun e ->
          if not (strip_env && e.cls = Env) then begin
            if e.help <> "" then line "# HELP %s %s" e.name e.help;
            match e.inst with
            | Counter st ->
                line "# TYPE %s counter" e.name;
                line "%s %d" e.name st.count
            | Gauge st ->
                line "# TYPE %s gauge" e.name;
                line "%s %s" e.name (float_str st.value)
            | Histogram st ->
                line "# TYPE %s histogram" e.name;
                let cumulative = ref 0 in
                Array.iteri
                  (fun i n ->
                    cumulative := !cumulative + n;
                    let le =
                      if i = Array.length st.bounds then "+Inf"
                      else float_str st.bounds.(i)
                    in
                    line "%s_bucket{le=\"%s\"} %d" e.name le !cumulative)
                  st.counts;
                line "%s_sum %s" e.name (float_str st.sum);
                line "%s_count %d" e.name st.observations
            | Vec { label; cells } ->
                line "# TYPE %s counter" e.name;
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) cells []
                |> List.sort compare
                |> List.iter (fun (k, v) ->
                       line "%s{%s=\"%s\"} %d" e.name label k v)
          end)
        (List.rev t.rev_entries);
      Buffer.contents buf)
