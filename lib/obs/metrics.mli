(** Metrics registry: counters, gauges and fixed-bucket histograms with
    a Prometheus-style text exposition.

    Instruments register in creation order and expose in that order, so
    the text form is deterministic. Histograms take their bucket bounds
    at creation and never rebucket, and every observation happens at the
    pipeline's deterministic merge point in input-index order — merged
    output is therefore jobs-invariant for [Det]-classed instruments.
    [Env]-classed instruments (wall-clock, cache hit/miss, pool
    utilization) are machine-, cache- or pool-size-dependent;
    {!expose} can leave them out so the remainder is comparable across
    runs. *)

type cls = Trace.cls = Det | Env

type t
(** A registry. Instrument updates and {!expose} are serialized by an
    internal mutex. *)

val create : unit -> t

type counter

val counter : t -> ?cls:cls -> ?help:string -> string -> counter
(** Registers (or raises [Invalid_argument] on a name already taken).
    [cls] defaults to [Det]. *)

val inc : counter -> int -> unit

type gauge

val gauge : t -> ?cls:cls -> ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit

type histogram

val histogram :
  t -> ?cls:cls -> ?help:string -> buckets:float list -> string -> histogram
(** [buckets] are the upper bounds, strictly increasing; an implicit
    [+Inf] bucket is always appended. *)

val observe : histogram -> float -> unit

type vec

val counter_vec : t -> ?cls:cls -> ?help:string -> label:string -> string -> vec
(** A counter family keyed by one label (e.g. per-worker task counts).
    Label values expose in sorted order. *)

val inc_vec : vec -> string -> int -> unit

val expose : ?strip_env:bool -> t -> string
(** Prometheus text exposition ([# HELP]/[# TYPE] then samples), in
    registration order. With [strip_env:true], [Env]-classed
    instruments are omitted entirely — the remaining text is
    deterministic across machines, pool sizes and cache states. *)
