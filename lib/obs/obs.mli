(** Observability context: one run's span tree and metrics, fed by a
    single {!Eywa_core.Instrument.sink}.

    Thread an [Obs.t] through {!Eywa_models.Model_def.synthesize} /
    [fuzz] / {!Eywa_models.Report.dns} (their [?obs] parameter) or
    pass {!sink} anywhere a sink goes; every event updates both the
    {!Trace.builder} and the metrics registry under one mutex, so a
    context is safe to share with any code that follows the
    [Instrument] emit-at-merge-point contract. *)

type t

val create : ?metrics:Metrics.t -> label:string -> unit -> t
(** A fresh context whose root span id is [label]. The registry
    (default: a fresh one) is populated with the standard pipeline
    instruments — counters and fixed-bucket histograms for draws,
    symex ticks, fuzz coverage, difftest executions ([Det]); wall
    clock, cache traffic and pool utilization ([Env]). *)

val sink : t -> Eywa_core.Instrument.sink

val metrics : t -> Metrics.t

val finish : t -> Trace.t
(** Snapshot the trace (see {!Trace.finish}). *)
