module Json = Eywa_core.Serialize.Json

(* ----- JSONL ----- *)

let cls_str = function Trace.Det -> "det" | Trace.Env -> "env"

let cls_of_string = function
  | "det" -> Ok Trace.Det
  | "env" -> Ok Trace.Env
  | s -> Error (Printf.sprintf "unknown cls %S" s)

let parent_json = function None -> Json.Null | Some p -> Json.Str p

let item_json (item : Trace.item) =
  match item with
  | Trace.Span { id; parent; name; start_at; end_at; cls; det; env } ->
      Json.Obj
        [
          ("type", Json.Str "span");
          ("id", Json.Str id);
          ("parent", parent_json parent);
          ("name", Json.Str name);
          ("start", Json.Int start_at);
          ("end", Json.Int end_at);
          ("cls", Json.Str (cls_str cls));
          ("det", Json.Obj det);
          ("env", Json.Obj env);
        ]
  | Trace.Event { id; parent; name; at; cls; det; env } ->
      Json.Obj
        [
          ("type", Json.Str "event");
          ("id", Json.Str id);
          ("parent", parent_json parent);
          ("name", Json.Str name);
          ("at", Json.Int at);
          ("cls", Json.Str (cls_str cls));
          ("det", Json.Obj det);
          ("env", Json.Obj env);
        ]

let to_jsonl (t : Trace.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Json.to_string
       (Json.Obj
          [
            ("type", Json.Str "meta");
            ("format", Json.Str "eywa-trace");
            ("version", Json.Int 1);
            ("label", Json.Str t.label);
          ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun item ->
      Buffer.add_string buf (Json.to_string (item_json item));
      Buffer.add_char buf '\n')
    t.items;
  Buffer.contents buf

let ( let* ) = Result.bind

let field obj key =
  match Json.member key obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let str_field obj key =
  let* v = field obj key in
  match v with
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" key)

let int_field obj key =
  let* v = field obj key in
  match v with
  | Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "field %S is not an integer" key)

let parent_field obj =
  let* v = field obj "parent" in
  match v with
  | Json.Null -> Ok None
  | Json.Str s -> Ok (Some s)
  | _ -> Error "field \"parent\" is not a string or null"

let attrs_field obj key =
  let* v = field obj key in
  match v with
  | Json.Obj fields -> Ok fields
  | _ -> Error (Printf.sprintf "field %S is not an object" key)

let item_of_json obj =
  let* ty = str_field obj "type" in
  let* id = str_field obj "id" in
  let* parent = parent_field obj in
  let* name = str_field obj "name" in
  let* cls_s = str_field obj "cls" in
  let* cls = cls_of_string cls_s in
  let* det = attrs_field obj "det" in
  let* env = attrs_field obj "env" in
  match ty with
  | "span" ->
      let* start_at = int_field obj "start" in
      let* end_at = int_field obj "end" in
      Ok (Trace.Span { id; parent; name; start_at; end_at; cls; det; env })
  | "event" ->
      let* at = int_field obj "at" in
      Ok (Trace.Event { id; parent; name; at; cls; det; env })
  | _ -> Error (Printf.sprintf "unknown item type %S" ty)

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let numbered = List.mapi (fun i l -> (i + 1, l)) lines in
  match numbered with
  | [] -> Error "empty trace"
  | (_, meta_line) :: rest ->
      let* meta = Json.of_string meta_line in
      let* ty = str_field meta "type" in
      let* format = str_field meta "format" in
      if ty <> "meta" || format <> "eywa-trace" then
        Error "first line is not an eywa-trace meta line"
      else
        let* label = str_field meta "label" in
        let* rev_items =
          List.fold_left
            (fun acc (lineno, line) ->
              let* items = acc in
              match
                let* v = Json.of_string line in
                item_of_json v
              with
              | Ok item -> Ok (item :: items)
              | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
            (Ok []) rest
        in
        Ok { Trace.label; items = List.rev rev_items }

(* ----- Chrome trace_event ----- *)

let chrome_trace (t : Trace.t) =
  let args det env =
    ("args", Json.Obj [ ("det", Json.Obj det); ("env", Json.Obj env) ])
  in
  let common = [ ("cat", Json.Str "eywa"); ("pid", Json.Int 1); ("tid", Json.Int 1) ] in
  let events =
    List.map
      (function
        | Trace.Span { id; name; start_at; end_at; det; env; _ } ->
            Json.Obj
              ([
                 ("name", Json.Str name);
                 ("ph", Json.Str "X");
                 ("ts", Json.Int (start_at * 1000));
                 ("dur", Json.Int (max 1 (end_at - start_at) * 1000));
                 ("id", Json.Str id);
               ]
              @ common
              @ [ args det env ])
        | Trace.Event { id; name; at; det; env; _ } ->
            Json.Obj
              ([
                 ("name", Json.Str name);
                 ("ph", Json.Str "i");
                 ("ts", Json.Int (at * 1000));
                 ("s", Json.Str "t");
                 ("id", Json.Str id);
               ]
              @ common
              @ [ args det env ]))
      t.items
  in
  let process_name =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str ("eywa " ^ t.label)) ]);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (process_name :: events));
         ("displayTimeUnit", Json.Str "ms");
       ])

(* ----- shared summary-totals schema ----- *)

let summary_totals (s : Eywa_core.Instrument.Collector.summary) =
  Json.Obj
    [
      ("draws", Json.Int s.draws);
      ("rejected", Json.Int s.rejected);
      ("tests", Json.Int s.tests);
      ("gen_seconds", Json.Float s.gen_seconds);
      ("symex_seconds", Json.Float s.symex_seconds);
      ("symex_ticks", Json.Int s.symex_ticks);
      ("paths_completed", Json.Int s.paths_completed);
      ("paths_pruned", Json.Int s.paths_pruned);
      ("solver_calls", Json.Int s.solver_calls);
      ("solver_decisions", Json.Int s.solver_decisions);
      ("cex_hits", Json.Int s.cex_hits);
      ("model_reuses", Json.Int s.model_reuses);
      ("timeouts", Json.Int s.timeouts);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("unique_tests", Json.Int s.unique_tests);
      ("fuzz_draws", Json.Int s.fuzz_draws);
      ("fuzz_execs", Json.Int s.fuzz_execs);
      ("fuzz_new_tests", Json.Int s.fuzz_new_tests);
      ("fuzz_edges_gained", Json.Int s.fuzz_edges_gained);
      ("difftests", Json.Int s.difftests);
      ("difftest_execs", Json.Int s.difftest_execs);
      ("disagreeing_tests", Json.Int s.disagreeing_tests);
      ("pool_batches", Json.Int s.pool_batches);
      ("pool_tasks", Json.Int s.pool_tasks);
    ]
