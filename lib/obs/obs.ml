module Instrument = Eywa_core.Instrument

(* The standard instrument set, registered in a fixed order at [create]
   so the exposition text is deterministic. Buckets are fixed at
   creation (never derived from observed data), so merged histograms
   are jobs-invariant: observations happen at the deterministic merge
   point in input-index order. *)
type instruments = {
  draws : Metrics.counter;
  rejected : Metrics.counter;
  raw_tests : Metrics.counter;
  symex_ticks : Metrics.counter;
  paths_completed : Metrics.counter;
  paths_pruned : Metrics.counter;
  solver_calls : Metrics.counter;
  cex_hits : Metrics.counter;
  model_reuses : Metrics.counter;
  timeouts : Metrics.counter;
  unique_tests : Metrics.counter;
  fuzz_draws : Metrics.counter;
  fuzz_execs : Metrics.counter;
  fuzz_new_tests : Metrics.counter;
  fuzz_edges_gained : Metrics.counter;
  difftest_runs : Metrics.counter;
  difftest_execs : Metrics.counter;
  difftest_disagreements : Metrics.counter;
  pool_batches : Metrics.counter;
  pool_tasks : Metrics.counter;
  h_draw_tests : Metrics.histogram;
  h_symex_ticks : Metrics.histogram;
  h_fuzz_edges_gained : Metrics.histogram;
  h_difftest_execs : Metrics.histogram;
  (* environment: wall clock, cache state, pool scheduling *)
  gen_seconds : Metrics.gauge;
  symex_seconds : Metrics.gauge;
  cache_hits : Metrics.counter;
  cache_misses : Metrics.counter;
  solver_decisions : Metrics.counter;
  pool_computed : Metrics.counter;
  pool_queue_wait : Metrics.counter;
  pool_jobs : Metrics.gauge;
  pool_worker_tasks : Metrics.vec;
}

type t = {
  mutex : Mutex.t;
  builder : Trace.builder;
  registry : Metrics.t;
  inst : instruments;
  mutable gen_seconds_total : float;
  mutable symex_seconds_total : float;
}

let make_instruments reg =
  let c ?cls ?help name = Metrics.counter reg ?cls ?help name in
  let h ?cls ?help ~buckets name = Metrics.histogram reg ?cls ?help ~buckets name in
  {
    draws = c "eywa_draws_total" ~help:"finished model draws";
    rejected = c "eywa_draws_rejected_total" ~help:"compile-rejected draws";
    raw_tests = c "eywa_tests_total" ~help:"tests before suite dedup";
    symex_ticks = c "eywa_symex_ticks_total" ~help:"deterministic symex ticks";
    paths_completed = c "eywa_symex_paths_completed_total";
    paths_pruned = c "eywa_symex_paths_pruned_total";
    solver_calls = c "eywa_symex_solver_calls_total";
    cex_hits = c "eywa_symex_cex_hits_total" ~help:"probes answered by the sat/unsat memo";
    model_reuses = c "eywa_symex_model_reuses_total" ~help:"probes answered by the parent model";
    timeouts = c "eywa_symex_timeouts_total" ~help:"draws that hit the tick budget";
    unique_tests = c "eywa_unique_tests_total" ~help:"tests after suite dedup";
    fuzz_draws = c "eywa_fuzz_draws_total";
    fuzz_execs = c "eywa_fuzz_execs_total" ~help:"candidate executions (deterministic)";
    fuzz_new_tests = c "eywa_fuzz_new_tests_total";
    fuzz_edges_gained = c "eywa_fuzz_edges_gained_total" ~help:"edges beyond the symex seeds";
    difftest_runs = c "eywa_difftest_runs_total";
    difftest_execs = c "eywa_difftest_execs_total" ~help:"implementation executions";
    difftest_disagreements = c "eywa_difftest_disagreeing_tests_total";
    pool_batches = c "eywa_pool_batches_total" ~help:"pool map batches merged";
    pool_tasks = c "eywa_pool_tasks_total" ~help:"logical units across batches";
    h_draw_tests =
      h "eywa_draw_tests" ~help:"tests per draw"
        ~buckets:[ 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200. ];
    h_symex_ticks =
      h "eywa_symex_ticks" ~help:"ticks per draw"
        ~buckets:[ 100.; 1_000.; 10_000.; 100_000.; 1_000_000.; 10_000_000. ];
    h_fuzz_edges_gained =
      h "eywa_fuzz_edges_gained" ~help:"edge gain per fuzz round"
        ~buckets:[ 0.; 1.; 2.; 5.; 10.; 20.; 50. ];
    h_difftest_execs =
      h "eywa_difftest_execs" ~help:"implementation executions per suite"
        ~buckets:[ 10.; 100.; 1_000.; 10_000.; 100_000. ];
    gen_seconds = Metrics.gauge reg ~cls:Env "eywa_gen_seconds" ~help:"wall clock";
    symex_seconds = Metrics.gauge reg ~cls:Env "eywa_symex_seconds" ~help:"wall clock";
    cache_hits = c ~cls:Env "eywa_cache_hits_total";
    cache_misses = c ~cls:Env "eywa_cache_misses_total";
    solver_decisions =
      c ~cls:Env "eywa_symex_solver_decisions_total"
        ~help:"search decisions executed (depends on the cex-cache toggle)";
    pool_computed = c ~cls:Env "eywa_pool_computed_total" ~help:"units executed (cache misses)";
    pool_queue_wait = c ~cls:Env "eywa_pool_queue_wait_ticks_total";
    pool_jobs = Metrics.gauge reg ~cls:Env "eywa_pool_jobs" ~help:"last batch's pool size";
    pool_worker_tasks =
      Metrics.counter_vec reg ~cls:Env ~label:"worker" "eywa_pool_worker_tasks_total";
  }

let create ?metrics ~label () =
  let registry = match metrics with Some r -> r | None -> Metrics.create () in
  {
    mutex = Mutex.create ();
    builder = Trace.builder ~label;
    registry;
    inst = make_instruments registry;
    gen_seconds_total = 0.0;
    symex_seconds_total = 0.0;
  }

let feed_metrics t (ev : Instrument.event) =
  let i = t.inst in
  match ev with
  | Draw_started _ -> ()
  | Draw_finished { tests; gen_seconds; symex_seconds; _ } ->
      Metrics.inc i.draws 1;
      Metrics.inc i.raw_tests tests;
      Metrics.observe i.h_draw_tests (float_of_int tests);
      t.gen_seconds_total <- t.gen_seconds_total +. gen_seconds;
      t.symex_seconds_total <- t.symex_seconds_total +. symex_seconds;
      Metrics.set_gauge i.gen_seconds t.gen_seconds_total;
      Metrics.set_gauge i.symex_seconds t.symex_seconds_total
  | Compile_rejected _ -> Metrics.inc i.rejected 1
  | Symex_done { ticks; paths_completed; paths_pruned; solver_calls;
                 solver_decisions; cex_hits; model_reuses; timed_out; _ } ->
      Metrics.inc i.symex_ticks ticks;
      Metrics.observe i.h_symex_ticks (float_of_int ticks);
      Metrics.inc i.paths_completed paths_completed;
      Metrics.inc i.paths_pruned paths_pruned;
      Metrics.inc i.solver_calls solver_calls;
      Metrics.inc i.cex_hits cex_hits;
      Metrics.inc i.model_reuses model_reuses;
      Metrics.inc i.solver_decisions solver_decisions;
      if timed_out then Metrics.inc i.timeouts 1
  | Cache_hit _ -> Metrics.inc i.cache_hits 1
  | Cache_miss _ -> Metrics.inc i.cache_misses 1
  | Suite_aggregated { unique_tests; _ } ->
      Metrics.inc i.unique_tests unique_tests
  | Fuzz_done { execs; edges_seed; edges_after; new_tests; _ } ->
      Metrics.inc i.fuzz_draws 1;
      Metrics.inc i.fuzz_execs execs;
      Metrics.inc i.fuzz_new_tests new_tests;
      let gained = max 0 (edges_after - edges_seed) in
      Metrics.inc i.fuzz_edges_gained gained;
      Metrics.observe i.h_fuzz_edges_gained (float_of_int gained)
  | Fuzz_aggregated _ -> ()
  | Difftest_done { disagreeing_tests; execs; _ } ->
      Metrics.inc i.difftest_runs 1;
      Metrics.inc i.difftest_execs execs;
      Metrics.inc i.difftest_disagreements disagreeing_tests;
      Metrics.observe i.h_difftest_execs (float_of_int execs)
  | Pool_merged { tasks; computed; jobs; per_worker; queue_wait_ticks; _ } ->
      Metrics.inc i.pool_batches 1;
      Metrics.inc i.pool_tasks tasks;
      Metrics.inc i.pool_computed computed;
      Metrics.inc i.pool_queue_wait queue_wait_ticks;
      Metrics.set_gauge i.pool_jobs (float_of_int jobs);
      List.iteri
        (fun w n -> Metrics.inc_vec i.pool_worker_tasks (string_of_int w) n)
        per_worker

let sink t : Instrument.sink =
  fun ev ->
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        Trace.feed t.builder ev;
        feed_metrics t ev)

let metrics t = t.registry

let finish t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Trace.finish t.builder)
