(** Span trees over {!Eywa_core.Instrument} event streams.

    A trace is the tree the flat event stream already implies: a root
    span for the run, one span per draw (opened at [Draw_started],
    closed at [Draw_finished]), child spans/events for symex, compile
    rejections, fuzz rounds and difftest suites.

    Determinism contract (the same one [Instrument] documents): span
    ids derive from the run label, stage name and model index — never
    from wall time, machine identity or pool size — and timestamps are
    a {e logical clock} (the event's position in the stream), so the
    deterministic portion of a trace is bit-for-bit independent of
    [jobs] and, after {!strip}, of the cache state. Every attribute is
    classed [Det] or [Env]: wall-clock [*_seconds], cache keys and
    pool-utilization data are [Env] and removed by {!strip}; ticks,
    paths, edges and test counts are [Det] and must stay identical
    across pool sizes and cache states. *)

type cls = Det | Env

type attrs = (string * Eywa_core.Serialize.Json.t) list

type item =
  | Span of {
      id : string;
      parent : string option;  (** [None] only for the root span *)
      name : string;
      start_at : int;  (** logical clock: event sequence number *)
      end_at : int;  (** [-1] when the span was never closed *)
      cls : cls;
      det : attrs;
      env : attrs;
    }
  | Event of {
      id : string;
      parent : string option;
      name : string;
      at : int;
      cls : cls;
      det : attrs;
      env : attrs;
    }

type t = { label : string; items : item list  (** root span first *) }

type builder

val builder : label:string -> builder
(** A fresh builder whose root span id is [label]. Feed it events from
    the orchestrating domain only (the [Instrument] contract already
    guarantees events fire at the merge point); the builder itself is
    not thread-safe — {!Obs} serializes access. *)

val feed : builder -> Eywa_core.Instrument.event -> unit

val finish : builder -> t
(** Close the root span and return the trace. Draws still open (a
    [Draw_started] without its [Draw_finished]) become spans with
    [end_at = -1], which {!well_formed} reports. The builder can keep
    feeding afterwards; [finish] snapshots. *)

val well_formed : t -> (unit, string) result
(** Structural validity: exactly one root span; ids collision-free;
    every span closed with [end_at >= start_at]; every parent exists,
    is a span, and opened before (and closes after) the child. *)

val strip : t -> t
(** Drop [Env]-classed items and every [env] attribute list — the
    wall-clock-stripped view. [strip] output is byte-identical across
    pool sizes and cache states for the same (seed, prompt,
    temperature) run; idempotent. *)

val span_ids : t -> string list
(** Ids of all items, in trace order. *)
