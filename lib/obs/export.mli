(** Trace and summary exporters.

    Three formats, all built on {!Eywa_core.Serialize.Json} so output
    is valid, canonical JSON:

    - {b JSONL}: one item per line, meta line first. The
      wall-clock-stripped JSONL of a run ({!Trace.strip} then
      {!to_jsonl}) is byte-identical across pool sizes and cache
      states — the property [make trace-smoke] and the bench [obs]
      stage assert.
    - {b Chrome [trace_event]}: loads in [about://tracing] /
      Perfetto; spans become ["ph":"X"] complete events on the logical
      clock (1 tick = 1 ms), point events ["ph":"i"] instants.
    - {b summary totals}: the shared JSON schema of bench
      [--summary-json] and [eywa stats --json]. *)

val to_jsonl : Trace.t -> string
(** One JSON document per line: a [{"type":"meta",...}] header, then
    every item in trace order. *)

val of_jsonl : string -> (Trace.t, string) result
(** Exact inverse of {!to_jsonl}; the first malformed line aborts with
    its line number. *)

val chrome_trace : Trace.t -> string
(** A complete [{"traceEvents":[...]}] document. Deterministic
    attributes appear under [args.det], environment attributes under
    [args.env]. *)

val summary_totals : Eywa_core.Instrument.Collector.summary -> Eywa_core.Serialize.Json.t
(** Every summary counter as a flat JSON object — the ["totals"]
    schema shared by bench [--summary-json] and [stats --json].
    Wall-clock fields keep their [*_seconds] names so consumers can
    strip them. *)
