module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value
module Interp = Eywa_minic.Interp
module Testcase = Eywa_core.Testcase
module Harness = Eywa_core.Harness
module Emodule = Eywa_core.Emodule
module Etype = Eywa_core.Etype

let execute ?fuel ~natives ~main ~coverage program inputs =
  let args =
    List.map
      (fun (a : Etype.Arg.t) ->
        match List.assoc_opt a.name inputs with
        | Some v -> v
        | None -> Etype.default_value a.ty)
      (Emodule.inputs main)
  in
  match
    Interp.run ?fuel ~natives ~coverage program Harness.entry_name args
  with
  | Error e ->
      { Testcase.inputs; result = None; bad_input = false;
        error = Some (Interp.error_to_string e) }
  | Ok (Value.Vstruct (_, fields)) ->
      let bad_input =
        match List.assoc_opt "bad_input" fields with
        | Some (Value.Vbool b) -> b
        | _ -> false
      in
      let result = List.assoc_opt "result" fields in
      { Testcase.inputs; result; bad_input; error = None }
  | Ok v ->
      { Testcase.inputs; result = Some v; bad_input = false; error = None }

let news ~global local =
  Hashtbl.fold
    (fun edge () acc -> if Hashtbl.mem global edge then acc else acc + 1)
    local 0

let absorb ~into local =
  Hashtbl.iter (fun edge () -> Hashtbl.replace into edge ()) local

let count = Hashtbl.length

let of_suite ~graph ~main programs tests =
  let natives = Harness.natives_concrete graph main in
  List.fold_left
    (fun (hit, total) program ->
      let cov = Interp.coverage_create () in
      List.iter
        (fun (t : Testcase.t) ->
          ignore
            (execute ~natives ~main ~coverage:cov program t.Testcase.inputs))
        tests;
      (hit + count cov, total + List.length (Interp.static_edges program)))
    (0, 0) programs
