(** Seeded splittable PRNG for the fuzzer (splitmix64).

    Deterministic by construction: the stream is a pure function of
    the creation seed, independent of machine, wall clock, and pool
    size, so a fuzz draw seeded at [fuzz_seed + index] replays
    identically on any worker. *)

type t

val create : int -> t
(** A fresh generator; equal seeds yield equal streams. *)

val split : t -> int -> t
(** [split t i] derives an independent child stream from [t]'s current
    state and the label [i], without advancing [t]. Distinct labels
    give decorrelated streams. *)

val int : t -> int -> int
(** [int t n] is uniform-ish in [\[0, n)]. [n] must be positive. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_weighted : t -> ('a * int) list -> 'a
(** Element chosen with probability proportional to its (positive)
    weight, walking the list in order — deterministic for a given
    stream position. The list must be non-empty with positive total
    weight. *)
