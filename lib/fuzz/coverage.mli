(** Concrete replay with edge coverage.

    Wraps {!Eywa_minic.Interp.run} over the harness the same way
    differential replay does — regex guards as concrete natives,
    arguments in declared input order — but collects the interpreter's
    branch-edge coverage map and packages the outcome as a
    {!Eywa_core.Testcase} exactly like the symex path decoder does. *)

module Interp = Eywa_minic.Interp

val execute :
  ?fuel:int ->
  natives:(string * (Eywa_minic.Value.t list -> Eywa_minic.Value.t)) list ->
  main:Eywa_core.Emodule.func ->
  coverage:Interp.coverage ->
  Eywa_minic.Ast.program ->
  (string * Eywa_minic.Value.t) list ->
  Eywa_core.Testcase.t
(** Run the harness on one concrete input vector, marking hit edges
    into [coverage]. The result mirrors [Pipeline.path_to_test]:
    an [EywaOut] return is unpacked into [bad_input]/[result], a
    runtime error (or fuel exhaustion) lands in [error]. *)

val news : global:Interp.coverage -> Interp.coverage -> int
(** Number of edges in the local map that the global map lacks. *)

val absorb : into:Interp.coverage -> Interp.coverage -> unit
(** Union the local map into the global one. *)

val count : Interp.coverage -> int

val of_suite :
  graph:Eywa_core.Graph.t ->
  main:Eywa_core.Emodule.func ->
  Eywa_minic.Ast.program list ->
  Eywa_core.Testcase.t list ->
  int * int
(** [(edges_hit, edges_total)] of replaying the whole suite over every
    compiled model: per program, the union of edges its executions hit
    against its static edge universe, summed across programs. The
    model-coverage number the report and CLI [stats] print. *)
