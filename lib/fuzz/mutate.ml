module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value

type kind = Byte | Arith | Enum | Havoc | Splice

let all = [ Byte; Arith; Enum; Havoc; Splice ]

let kind_to_string = function
  | Byte -> "byte"
  | Arith -> "arith"
  | Enum -> "enum"
  | Havoc -> "havoc"
  | Splice -> "splice"

let kind_of_string = function
  | "byte" -> Some Byte
  | "arith" -> Some Arith
  | "enum" -> Some Enum
  | "havoc" -> Some Havoc
  | "splice" -> Some Splice
  | _ -> None

(* ----- scalar sites ----- *)

(* A mutation targets one scalar "site" of the input value tree: a
   bool/char/int/enum leaf or a single byte of a string buffer.
   [which] restricts the site class: [`Enum] targets enum leaves only
   (the Enum mutator), [`All] everything. *)

type site =
  | Sbool of bool
  | Schar of char
  | Sint of int
  | Senum of string * int
  | Sbyte of char

let rec count_sites which v =
  match v with
  | Value.Vunit -> 0
  | Value.Vbool _ -> ( match which with `All -> 1 | `Enum -> 0)
  | Value.Vchar _ -> ( match which with `All -> 1 | `Enum -> 0)
  | Value.Vint _ -> ( match which with `All -> 1 | `Enum -> 0)
  | Value.Venum _ -> 1
  | Value.Vstring raw -> (
      match which with `All -> String.length raw | `Enum -> 0)
  | Value.Vstruct (_, fs) ->
      List.fold_left (fun a (_, f) -> a + count_sites which f) 0 fs
  | Value.Varray vs ->
      Array.fold_left (fun a f -> a + count_sites which f) 0 vs

(* Rewrite the [target]-th site (in traversal order) with [f]; all
   other sites — and the whole shape — are untouched. *)
let rewrite_site which target f v =
  let k = ref target in
  let take () =
    let hit = !k = 0 in
    decr k;
    hit
  in
  let rec go v =
    match v with
    | Value.Vunit -> v
    | Value.Vbool b ->
        if which = `All && take () then f (Sbool b) else v
    | Value.Vchar c ->
        if which = `All && take () then f (Schar c) else v
    | Value.Vint n ->
        if which = `All && take () then f (Sint n) else v
    | Value.Venum (e, i) -> if take () then f (Senum (e, i)) else v
    | Value.Vstring raw ->
        if which = `Enum then v
        else begin
          let b = Bytes.of_string raw in
          for i = 0 to Bytes.length b - 1 do
            if take () then
              match f (Sbyte (Bytes.get b i)) with
              | Value.Vchar c -> Bytes.set b i c
              | _ -> ()
          done;
          Value.Vstring (Bytes.to_string b)
        end
    | Value.Vstruct (n, fs) ->
        Value.Vstruct (n, List.map (fun (fn, fv) -> (fn, go fv)) fs)
    | Value.Varray vs -> Value.Varray (Array.map go vs)
  in
  go v

(* ----- the individual mutators ----- *)

let interesting_ints =
  [ 0; 1; 2; 7; 8; 15; 16; 31; 32; 63; 64; 127; 128; 255; 256; 1023; 1024 ]

let enum_members program ename =
  match Ast.find_enum program ename with
  | Some e -> List.length e.Ast.members
  | None -> 0

let char_pool alphabet = if alphabet = [] then [ '\000' ] else '\000' :: alphabet

let byte_site ~program ~alphabet ~rng site =
  let pool = char_pool alphabet in
  match site with
  | Sbool b -> Value.Vbool (not b)
  | Schar _ | Sbyte _ -> Value.Vchar (Rng.pick rng pool)
  | Sint _ -> Value.Vint (Rng.pick rng interesting_ints)
  | Senum (e, i) ->
      let n = enum_members program e in
      Value.Venum (e, if n > 0 then Rng.int rng n else i)

let arith_site ~program ~alphabet ~rng site =
  let delta () =
    let d = 1 + Rng.int rng 8 in
    if Rng.bool rng then d else -d
  in
  let shift_char c =
    let pool = char_pool alphabet in
    let len = List.length pool in
    let idx =
      let rec find i = function
        | [] -> None
        | x :: rest -> if x = c then Some i else find (i + 1) rest
      in
      find 0 pool
    in
    match idx with
    | None -> Rng.pick rng pool
    | Some i -> List.nth pool (((i + delta ()) mod len + len) mod len)
  in
  match site with
  | Sbool b -> Value.Vbool (not b)
  | Schar c | Sbyte c -> Value.Vchar (shift_char c)
  | Sint n -> Value.Vint (n + delta ())
  | Senum (e, i) ->
      let n = enum_members program e in
      if n > 0 then Value.Venum (e, ((i + delta ()) mod n + n) mod n)
      else Value.Venum (e, i)

(* Mutate one site across the whole argument vector: sites are counted
   over the concatenation of the argument value trees, so every leaf
   is equally likely regardless of which argument holds it. *)
let mutate_one which f inputs rng =
  let total =
    List.fold_left (fun a (_, v) -> a + count_sites which v) 0 inputs
  in
  if total = 0 then inputs
  else begin
    let target = ref (Rng.int rng total) in
    List.map
      (fun (n, v) ->
        let here = count_sites which v in
        let v' =
          if !target >= 0 && !target < here then rewrite_site which !target f v
          else v
        in
        target := !target - here;
        (n, v'))
      inputs
  end

let rec shape_compatible a b =
  match (a, b) with
  | Value.Vunit, Value.Vunit
  | Value.Vbool _, Value.Vbool _
  | Value.Vchar _, Value.Vchar _
  | Value.Vint _, Value.Vint _ ->
      true
  | Value.Venum (e, _), Value.Venum (f, _) -> e = f
  | Value.Vstring x, Value.Vstring y -> String.length x = String.length y
  | Value.Vstruct (n, fs), Value.Vstruct (m, gs) ->
      n = m
      && List.length fs = List.length gs
      && List.for_all2
           (fun (f, v) (g, w) -> f = g && shape_compatible v w)
           fs gs
  | Value.Varray x, Value.Varray y ->
      Array.length x = Array.length y
      && (Array.length x = 0 || shape_compatible x.(0) y.(0))
  | _ -> false

let rec apply ~program ~alphabet ~rng kind ~other inputs =
  match kind with
  | Byte -> mutate_one `All (byte_site ~program ~alphabet ~rng) inputs rng
  | Arith -> mutate_one `All (arith_site ~program ~alphabet ~rng) inputs rng
  | Enum ->
      let total =
        List.fold_left (fun a (_, v) -> a + count_sites `Enum v) 0 inputs
      in
      if total = 0 then
        (* no enum anywhere in the signature: degrade gracefully *)
        apply ~program ~alphabet ~rng Byte ~other inputs
      else mutate_one `Enum (byte_site ~program ~alphabet ~rng) inputs rng
  | Havoc ->
      let rounds = 1 + Rng.int rng 4 in
      let rec go n acc =
        if n = 0 then acc
        else
          let kind = Rng.pick rng [ Byte; Arith; Enum ] in
          go (n - 1) (apply ~program ~alphabet ~rng kind ~other acc)
      in
      go rounds inputs
  | Splice -> (
      match other with
      | None -> apply ~program ~alphabet ~rng Havoc ~other inputs
      | Some partner ->
          List.map
            (fun (n, v) ->
              match List.assoc_opt n partner with
              | Some w when shape_compatible v w && Rng.bool rng -> (n, w)
              | _ -> (n, v))
            inputs)
