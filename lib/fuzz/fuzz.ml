module Ast = Eywa_minic.Ast
module Interp = Eywa_minic.Interp
module Pipeline = Eywa_core.Pipeline
module Cache = Eywa_core.Cache
module Instrument = Eywa_core.Instrument
module Testcase = Eywa_core.Testcase
module Serialize = Eywa_core.Serialize
module Harness = Eywa_core.Harness
module Emodule = Eywa_core.Emodule
module Graph = Eywa_core.Graph
module Pool = Eywa_core.Pool

type config = {
  fuzz_seed : int;
  budget : int;
  max_new_tests : int;
  mutators : Mutate.kind list;
  fuel : int;
}

let default_config =
  {
    fuzz_seed = 42;
    budget = 500;
    max_new_tests = 64;
    mutators = Mutate.all;
    fuel = 100_000;
  }

type draw_fuzz = {
  f_index : int;
  execs : int;
  edges_seed : int;
  edges_after : int;
  edges_static : int;
  new_tests : Testcase.t list;
}

type t = {
  per_draw : draw_fuzz list;
  fuzz_tests : Testcase.t list;
  combined_tests : Testcase.t list;
}

(* ----- cache key ----- *)

let fuzz_key ~oracle_name ~pipeline ~config ~prompts ~index =
  Cache.Key.v ~stage:"fuzz"
    (Pipeline.draw_key_parts ~oracle_name ~config:pipeline ~prompts ~index
    @ [
        (* effective seed, mirroring the draw-seed convention: two runs
           agreeing on fuzz_seed + index share the artifact *)
        ("fuzz_seed", string_of_int (config.fuzz_seed + index));
        ("fuzz_budget", string_of_int config.budget);
        ("fuzz_max_new_tests", string_of_int config.max_new_tests);
        ( "fuzz_mutators",
          String.concat "," (List.map Mutate.kind_to_string config.mutators) );
        ("fuzz_fuel", string_of_int config.fuel);
      ])

(* ----- the artifact codec ----- *)

let artifact_to_string (d : draw_fuzz) =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "eywa-fuzz 1";
  line "index %d" d.f_index;
  line "execs %d" d.execs;
  line "edges %d %d %d" d.edges_seed d.edges_after d.edges_static;
  line "tests %d" (List.length d.new_tests);
  List.iter (fun t -> line "%s" (Serialize.test_to_line t)) d.new_tests;
  Buffer.contents buf

let artifact_of_string s =
  let ( let* ) = Result.bind in
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> Error "truncated fuzz artifact"
    | l :: rest ->
        lines := rest;
        Ok l
  in
  let field name =
    let* l = next () in
    let p = name ^ " " in
    let pl = String.length p in
    if String.length l >= pl && String.sub l 0 pl = p then
      Ok (String.sub l pl (String.length l - pl))
    else Error (Printf.sprintf "expected %S line, found %S" name l)
  in
  let int_field name =
    let* v = field name in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "bad %s value %S" name v)
  in
  let* header = next () in
  if header <> "eywa-fuzz 1" then Error "not a fuzz artifact"
  else
    let* f_index = int_field "index" in
    let* execs = int_field "execs" in
    let* edges_line = field "edges" in
    let* edges_seed, edges_after, edges_static =
      match String.split_on_char ' ' edges_line |> List.map int_of_string_opt with
      | [ Some s; Some a; Some t ] -> Ok (s, a, t)
      | _ -> Error (Printf.sprintf "bad edges line %S" edges_line)
    in
    let* n_tests = int_field "tests" in
    let rec read_tests acc = function
      | 0 -> Ok (List.rev acc)
      | n ->
          let* l = next () in
          let* t = Serialize.test_of_line l in
          read_tests (t :: acc) (n - 1)
    in
    let* new_tests = read_tests [] n_tests in
    Ok { f_index; execs; edges_seed; edges_after; edges_static; new_tests }

(* ----- one draw's fuzz loop ----- *)

type entry = { inputs : (string * Eywa_minic.Value.t) list; energy : int }

let fuzz_draw ~natives ~main ~config ~alphabet ~index program seeds =
  let rng = Rng.create (config.fuzz_seed + index) in
  let global = Interp.coverage_create () in
  (* seed the corpus from the symex suite: replay each seed test,
     energy = its coverage novelty at arrival (first tests earn more) *)
  let corpus = ref [] in
  let add_entry inputs energy =
    corpus := { inputs; energy = max 1 energy } :: !corpus
  in
  List.iter
    (fun (t : Testcase.t) ->
      let local = Interp.coverage_create () in
      ignore
        (Coverage.execute ~fuel:config.fuel ~natives ~main ~coverage:local
           program t.Testcase.inputs);
      let fresh = Coverage.news ~global local in
      Coverage.absorb ~into:global local;
      add_entry t.Testcase.inputs fresh)
    seeds;
  let edges_seed = Coverage.count global in
  let mutators = if config.mutators = [] then Mutate.all else config.mutators in
  let new_tests = ref [] in
  let n_new = ref 0 in
  let execs = ref 0 in
  (* the budget counts candidate executions — a deterministic tick
     budget in the sense of Exec.check_budget, never wall clock *)
  while !execs < config.budget && !n_new < config.max_new_tests do
    (* corpus is newest-first; schedule by energy over insertion order *)
    let ordered = List.rev !corpus in
    let parent = Rng.pick_weighted rng (List.map (fun e -> (e, e.energy)) ordered) in
    let kind = Rng.pick rng mutators in
    let other =
      match kind with
      | Mutate.Splice -> Some (Rng.pick rng ordered).inputs
      | _ -> None
    in
    let candidate =
      Mutate.apply ~program ~alphabet ~rng kind ~other parent.inputs
    in
    let local = Interp.coverage_create () in
    let test =
      Coverage.execute ~fuel:config.fuel ~natives ~main ~coverage:local program
        candidate
    in
    incr execs;
    let fresh = Coverage.news ~global local in
    if fresh > 0 then begin
      Coverage.absorb ~into:global local;
      add_entry test.Testcase.inputs fresh;
      new_tests := test :: !new_tests;
      incr n_new
    end
  done;
  {
    f_index = index;
    execs = !execs;
    edges_seed;
    edges_after = Coverage.count global;
    edges_static = List.length (Interp.static_edges program);
    new_tests = List.rev !new_tests;
  }

(* ----- the staged engine ----- *)

(* Pair each model result with its compiled program: [s.programs] holds
   exactly the programs of the results whose [compile_error] is [None],
   in index order (see [Pipeline.aggregate]). *)
let pair_draws (s : Pipeline.t) =
  let rec go results programs =
    match results with
    | [] -> []
    | (r : Pipeline.model_result) :: rest ->
        if r.compile_error = None then
          match programs with
          | p :: ps -> (r, Some p) :: go rest ps
          | [] -> (r, None) :: go rest []
        else (r, None) :: go rest programs
  in
  go s.results s.programs

let emit_fuzz_events sink (d : draw_fuzz) =
  sink
    (Instrument.Fuzz_done
       {
         index = d.f_index;
         execs = d.execs;
         edges_seed = d.edges_seed;
         edges_after = d.edges_after;
         new_tests = List.length d.new_tests;
       })

let fuzz_of_seeds ?cache ?(sink = Instrument.null) ?(config = default_config)
    ?jobs ~oracle_name ~pipeline g (s : Pipeline.t) =
  match Graph.synthesis_order g ~main:(Emodule.Func s.main) with
  | Error e -> Error e
  | Ok order ->
      let jobs =
        match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
      in
      let prompts = Pipeline.prompt_parts g ~order ~main:s.main in
      let natives = Harness.natives_concrete g s.main in
      let alphabet = pipeline.Pipeline.alphabet in
      let key_of index =
        fuzz_key ~oracle_name ~pipeline ~config ~prompts ~index
      in
      let units =
        List.filter_map
          (fun ((r : Pipeline.model_result), program) ->
            match program with
            | None -> None
            | Some p -> Some (r.Pipeline.index, p, r.Pipeline.tests))
          (pair_draws s)
      in
      (* probe the cache sequentially, in index order *)
      let cached =
        List.map
          (fun (index, program, seeds) ->
            match cache with
            | None -> (index, program, seeds, None)
            | Some c -> (
                match Cache.find ~sink c (key_of index) with
                | None -> (index, program, seeds, None)
                | Some payload -> (
                    match artifact_of_string payload with
                    | Ok d -> (index, program, seeds, Some d)
                    | Error _ ->
                        (* corrupt entry: fall back to computing *)
                        (index, program, seeds, None))))
          units
      in
      let missing =
        List.filter_map
          (fun (i, p, seeds, d) -> if d = None then Some (i, p, seeds) else None)
          cached
      in
      (* misses are independent pure units; fan out, merge by index *)
      let computed, pool_stats =
        Pool.with_pool ~jobs (fun pool ->
            Pool.map_stats pool
              (fun (i, p, seeds) ->
                (i, fuzz_draw ~natives ~main:s.main ~config ~alphabet ~index:i p seeds))
              missing)
      in
      sink
        (Instrument.Pool_merged
           {
             label = "fuzz";
             tasks = List.length units;
             computed = pool_stats.Pool.tasks;
             jobs = pool_stats.Pool.jobs;
             per_worker = pool_stats.Pool.per_worker;
             queue_wait_ticks = pool_stats.Pool.queue_wait_ticks;
           });
      (match cache with
      | None -> ()
      | Some c ->
          List.iter
            (fun (i, d) -> Cache.store c (key_of i) (artifact_to_string d))
            computed);
      let per_draw =
        List.map
          (fun (i, _, _, d) ->
            match d with Some d -> d | None -> List.assoc i computed)
          cached
      in
      List.iter (emit_fuzz_events sink) per_draw;
      let symex_keys =
        List.fold_left
          (fun acc t ->
            Hashtbl.replace acc (Testcase.key t) ();
            acc)
          (Hashtbl.create 64) s.unique_tests
      in
      let fuzz_tests =
        Testcase.dedup (List.concat_map (fun d -> d.new_tests) per_draw)
        |> List.filter (fun t -> not (Hashtbl.mem symex_keys (Testcase.key t)))
      in
      let combined_tests = s.unique_tests @ fuzz_tests in
      sink
        (Instrument.Fuzz_aggregated
           {
             draws = List.length per_draw;
             fuzz_tests = List.length fuzz_tests;
             combined_tests = List.length combined_tests;
           });
      Ok { per_draw; fuzz_tests; combined_tests }
