(** Structure-preserving mutations over concrete test inputs.

    Mutators rewrite the input assignment of a {!Eywa_core.Testcase}
    in place of its value tree: string lengths (the declared bounds),
    array sizes and struct fields are preserved, so every mutant is a
    well-typed argument vector for the same harness. Characters and
    string bytes are drawn from the model's alphabet (plus NUL, so
    strings can shorten), and enum mutations stay within the declared
    member range via [Ast.find_enum] — the same enum resolution every
    other pass uses. *)

type kind =
  | Byte  (** replace one scalar site with an interesting/alphabet value *)
  | Arith  (** small additive nudge on one numeric/enum/char site *)
  | Enum  (** re-draw one enum site within its member range *)
  | Havoc  (** a short random burst of the above *)
  | Splice  (** per-argument crossover with another corpus entry *)

val all : kind list
(** Every mutator, in a fixed canonical order. *)

val kind_to_string : kind -> string
(** Stable lowercase name, used in cache keys and CLI flags. *)

val kind_of_string : string -> kind option

val apply :
  program:Eywa_minic.Ast.program ->
  alphabet:char list ->
  rng:Rng.t ->
  kind ->
  other:(string * Eywa_minic.Value.t) list option ->
  (string * Eywa_minic.Value.t) list ->
  (string * Eywa_minic.Value.t) list
(** One mutation of the named input vector. [other] supplies the
    crossover partner for [Splice] (ignored by the rest; [Splice]
    degrades to [Havoc] without one). Pure in (rng stream, inputs):
    the same stream position yields the same mutant. *)
