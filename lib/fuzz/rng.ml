(* splitmix64 (Steele, Lea & Flood): a tiny, high-quality, seedable
   generator whose whole state is one int64 — trivially splittable and
   with no global state to leak across domains. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t i =
  { state = mix (Int64.add t.state (mix (Int64.of_int i))) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_weighted t xs =
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 xs in
  if total <= 0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: no positive weight"
    | (x, w) :: rest ->
        let acc = acc + max 0 w in
        if target < acc then x else go acc rest
  in
  go 0 xs
