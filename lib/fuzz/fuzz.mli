(** The coverage-guided mutational fuzz stage.

    A second test generator beside symbolic execution: each compiled
    model draw seeds a corpus from its own symex tests, then mutates
    corpus entries under a deterministic execution budget, keeping a
    candidate iff it covers a branch edge nothing before it covered
    (AFL's "new coverage" rule on the interpreter's edge map).

    Determinism contract — the same invariants as {!Eywa_core.Pipeline}:
    a fuzz draw is a pure function of (program, its symex tests, config,
    index). Randomness comes only from {!Rng} seeded at
    [fuzz_seed + index]; the budget is a count of candidate executions
    (a deterministic tick budget, never wall clock); coverage maps are
    used for membership and counting only, so hash order is invisible.
    Fixed (seed, budget, mutator set) gives byte-identical corpus and
    tests at any [jobs] value and on warm or cold cache. *)

module Pipeline = Eywa_core.Pipeline
module Cache = Eywa_core.Cache
module Instrument = Eywa_core.Instrument
module Testcase = Eywa_core.Testcase

type config = {
  fuzz_seed : int;  (** base seed; draw [i] fuzzes at [fuzz_seed + i] *)
  budget : int;  (** candidate executions per draw (deterministic ticks) *)
  max_new_tests : int;  (** stop a draw early after this many keepers *)
  mutators : Mutate.kind list;  (** enabled mutators, canonical order *)
  fuel : int;  (** interpreter fuel per candidate execution *)
}

val default_config : config
(** seed 42, 500 executions, 64 keepers, every mutator, fuel 100k. *)

type draw_fuzz = {
  f_index : int;  (** the model-draw index this fuzz run extends *)
  execs : int;  (** candidate executions actually spent *)
  edges_seed : int;  (** edges covered by the symex seed suite alone *)
  edges_after : int;  (** edges covered after fuzzing *)
  edges_static : int;  (** the program's whole static edge universe *)
  new_tests : Testcase.t list;  (** coverage-increasing keepers, in order *)
}

type t = {
  per_draw : draw_fuzz list;  (** one per compiled draw, in index order *)
  fuzz_tests : Testcase.t list;
      (** all keepers, deduped, minus any test already in the symex
          suite *)
  combined_tests : Testcase.t list;
      (** the symex unique suite followed by [fuzz_tests] — feed this
          to [Difftest.run] unchanged *)
}

(** {1 Cache key and artifact} *)

val fuzz_key :
  oracle_name:string ->
  pipeline:Pipeline.config ->
  config:config ->
  prompts:(string * string) list ->
  index:int ->
  Cache.Key.t
(** Extends {!Pipeline.draw_key_parts} — which already covers every
    input the underlying draw (and hence the seed suite) depends on —
    with the fuzz stage's own inputs: effective fuzz seed
    ([fuzz_seed + index]), execution budget, keeper cap, mutator set,
    and interpreter fuel. Like the draw key it excludes [k], wall
    time, machine, and pool size. *)

val artifact_to_string : draw_fuzz -> string
(** No wall-clock fields: a decoded artifact is structurally equal to
    the run that stored it. *)

val artifact_of_string : string -> (draw_fuzz, string) result
(** Inverse of {!artifact_to_string}; [Error] (never an exception) on
    truncated or malformed payloads. *)

(** {1 Stage functions} *)

val fuzz_draw :
  natives:(string * (Eywa_minic.Value.t list -> Eywa_minic.Value.t)) list ->
  main:Eywa_core.Emodule.func ->
  config:config ->
  alphabet:char list ->
  index:int ->
  Eywa_minic.Ast.program ->
  Testcase.t list ->
  draw_fuzz
(** One draw's fuzz loop — the pure parallel unit {!fuzz_of_seeds}
    fans out. [alphabet] is the model's character domain (the same one
    symbolic strings range over). *)

val fuzz_of_seeds :
  ?cache:Cache.t ->
  ?sink:Instrument.sink ->
  ?config:config ->
  ?jobs:int ->
  oracle_name:string ->
  pipeline:Pipeline.config ->
  Eywa_core.Graph.t ->
  Pipeline.t ->
  (t, string) result
(** The staged engine: pair each compiled draw of the synthesis result
    with its program, probe the cache in index order, fan misses out
    over {!Eywa_core.Pool}, store, merge by index, replay
    [Fuzz_done] events at the merge point and emit [Fuzz_aggregated].
    [pipeline] must be the config the synthesis ran with (it is part
    of the cache key). *)
