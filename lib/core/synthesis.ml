(* The historical entry point; the staged engine itself lives in
   {!Pipeline}, this module re-exports its types and wraps its runner
   for callers that need neither caching nor instrumentation. *)

module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value
module Interp = Eywa_minic.Interp

type config = Pipeline.config = {
  k : int;
  temperature : float;
  timeout : float;
  max_paths : int;
  max_steps : int;
  max_solver_decisions : int;
  alphabet : char list;
  base_seed : int;
  samples_per_path : int;
  cex_cache : bool;
}

let default_config = Pipeline.default_config

type model_result = Pipeline.model_result = {
  index : int;
  c_source : string;
  c_loc : int;
  compile_error : string option;
  tests : Testcase.t list;
  stats : Eywa_symex.Exec.stats option;
  gen_seconds : float;
  symex_seconds : float;
}

type t = Pipeline.t = {
  main : Emodule.func;
  results : model_result list;
  unique_tests : Testcase.t list;
  loc_min : int;
  loc_max : int;
  programs : Ast.program list;
}

let run ?config ?jobs ~oracle g ~main =
  Pipeline.run ?config ?jobs ~oracle g ~main

let replay ?(string_bound = 16) g ~main program (test : Testcase.t) =
  let natives = Harness.natives_concrete g main in
  let args =
    List.map
      (fun (a : Etype.Arg.t) ->
        match List.assoc_opt a.name test.Testcase.inputs with
        | Some v -> v
        | None -> Etype.default_value a.ty)
      (Emodule.inputs main)
  in
  match Interp.run ~string_bound ~natives program Harness.entry_name args with
  | Ok v -> Ok v
  | Error e -> Error (Interp.error_to_string e)
