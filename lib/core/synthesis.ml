module Ast = Eywa_minic.Ast
module Parser = Eywa_minic.Parser
module Typecheck = Eywa_minic.Typecheck
module Pretty = Eywa_minic.Pretty
module Value = Eywa_minic.Value
module Interp = Eywa_minic.Interp
module Exec = Eywa_symex.Exec
module Sv = Eywa_symex.Sv

type config = {
  k : int;
  temperature : float;
  timeout : float;
  max_paths : int;
  max_steps : int;
  max_solver_decisions : int;
  alphabet : char list;
  base_seed : int;
  samples_per_path : int;
}

let default_config =
  {
    k = 10;
    temperature = 0.6;
    timeout = 5.0;
    max_paths = 4096;
    max_steps = 20_000;
    max_solver_decisions = 200_000;
    alphabet = [ 'a'; 'b'; '.'; '*' ];
    base_seed = 42;
    samples_per_path = 4;
  }

type model_result = {
  index : int;
  c_source : string;
  c_loc : int;
  compile_error : string option;
  tests : Testcase.t list;
  stats : Exec.stats option;
  gen_seconds : float;
  symex_seconds : float;
}

type t = {
  main : Emodule.func;
  results : model_result list;
  unique_tests : Testcase.t list;
  loc_min : int;
  loc_max : int;
  programs : Ast.program list;
}

let now () = Unix.gettimeofday ()

(* Obtain the implementation of one module for model index [i]:
   prompt the oracle for Func modules, parse Custom sources directly. *)
let generate_module oracle config g index m :
    (Ast.func list * string, string) result =
  match m with
  | Emodule.Func f -> (
      let prompt = Prompt.for_module g f in
      let completion =
        oracle.Oracle.complete
          {
            Oracle.system = prompt.Prompt.system;
            user = prompt.Prompt.user;
            temperature = config.temperature;
            seed = config.base_seed + index;
          }
      in
      match Parser.parse_result completion with
      | Error msg -> Error (Printf.sprintf "module %s: %s" f.name msg)
      | Ok parsed -> (
          match Ast.find_func parsed f.name with
          | None ->
              Error
                (Printf.sprintf "module %s: completion does not define %s" f.name
                   f.name)
          | Some fn -> Ok ([ fn ], completion)))
  | Emodule.Custom c -> (
      match Parser.parse_result c.source with
      | Error msg -> Error (Printf.sprintf "custom module %s: %s" c.cname msg)
      | Ok parsed -> Ok (parsed.Ast.funcs, c.source))
  | Emodule.Regex _ -> Ok ([], "")

let path_to_test ~rotate ~model inputs (path : Exec.path) : Testcase.t =
  let concrete_inputs =
    List.map (fun (name, sv) -> (name, Sv.concretize ~rotate model sv)) inputs
  in
  match path.error with
  | Some e ->
      { Testcase.inputs = concrete_inputs; result = None; bad_input = false;
        error = Some e }
  | None -> (
      match Sv.concretize ~rotate model path.ret with
      | Value.Vstruct (_, fields) ->
          let bad_input =
            match List.assoc_opt "bad_input" fields with
            | Some (Value.Vbool b) -> b
            | _ -> false
          in
          let result = List.assoc_opt "result" fields in
          { Testcase.inputs = concrete_inputs; result; bad_input; error = None }
      | v ->
          { Testcase.inputs = concrete_inputs; result = Some v; bad_input = false;
            error = None })

(* One test per (path, sample): re-solving the path condition under
   different value rotations yields several concrete witnesses of the
   same path, the way Klee's test generation covers bounded input
   spaces far more densely than one-per-path (cf. the Table 2 counts). *)
let path_to_tests config (path : Exec.path) inputs : Testcase.t list =
  let samples = max 1 config.samples_per_path in
  List.init samples (fun s ->
      let model =
        if s = 0 then path.Exec.model
        else
          match
            Eywa_solver.Solve.solve ~max_decisions:config.max_solver_decisions
              ~rotate:s path.Exec.pc
          with
          | Eywa_solver.Solve.Sat m -> m
          | Eywa_solver.Solve.Unsat | Eywa_solver.Solve.Unknown -> path.Exec.model
      in
      path_to_test ~rotate:s ~model inputs path)

let synthesize_one oracle config g (main : Emodule.func) order index :
    model_result * Ast.program option =
  (* fresh atom ids per run — scoped to this job, so parallel draws on
     a pool never share a counter and identical generated code yields
     identical paths, rotations and tests (tau = 0 determinism) *)
  Eywa_solver.Term.with_fresh_ids @@ fun () ->
  let gen_start = now () in
  let rec gen acc_funcs acc_src = function
    | [] -> Ok (List.rev acc_funcs, String.concat "\n\n" (List.rev acc_src))
    | m :: rest -> (
        match generate_module oracle config g index m with
        | Error e -> Error e
        | Ok (fns, src) ->
            gen (List.rev_append fns acc_funcs)
              (if src = "" then acc_src else src :: acc_src)
              rest)
  in
  match gen [] [] order with
  | Error e ->
      (* stage-tagged so parallel failure logs are attributable: this
         branch covers oracle completions that do not parse or do not
         define the requested function *)
      ( { index; c_source = ""; c_loc = 0; compile_error = Some ("oracle: " ^ e);
          tests = []; stats = None; gen_seconds = now () -. gen_start;
          symex_seconds = 0.0 },
        None )
  | Ok (funcs, c_source) -> (
      let gen_seconds = now () -. gen_start in
      let c_loc =
        List.fold_left (fun acc f -> acc + Pretty.loc (Pretty.func f)) 0 funcs
      in
      let program = Harness.build g ~main ~funcs in
      match Typecheck.check program with
      | Error e ->
          ( { index; c_source; c_loc; compile_error = Some ("typecheck: " ^ e);
              tests = []; stats = None; gen_seconds; symex_seconds = 0.0 },
            None )
      | Ok () ->
          let inputs = Harness.symbolic_inputs ~alphabet:config.alphabet main in
          let natives = Harness.natives_symbolic g main in
          let exec_config =
            {
              Exec.max_paths = config.max_paths;
              max_steps = config.max_steps;
              timeout = config.timeout;
              max_solver_decisions = config.max_solver_decisions;
              string_bound = 8;
            }
          in
          let sym_start = now () in
          let paths, stats =
            Exec.run ~config:exec_config ~natives program
              ~entry:Harness.entry_name
              ~args:(List.map snd inputs)
              ~assumes:[]
          in
          let symex_seconds = now () -. sym_start in
          let tests =
            Testcase.dedup
              (List.concat_map (fun p -> path_to_tests config p inputs) paths)
          in
          ( { index; c_source; c_loc; compile_error = None; tests;
              stats = Some stats; gen_seconds; symex_seconds },
            Some program ))

let run ?(config = default_config) ?jobs ~oracle g ~main =
  match main with
  | Emodule.Regex _ | Emodule.Custom _ ->
      Error "Synthesis.run: main must be a Func module"
  | Emodule.Func main_f -> (
      match Graph.synthesis_order g ~main with
      | Error e -> Error e
      | Ok order ->
          let jobs =
            match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
          in
          (* the k draws are independent; fan them out and merge by
             model index, so the result is identical at any [jobs] *)
          let results_and_programs =
            Pool.with_pool ~jobs (fun pool ->
                Pool.map pool
                  (fun i -> synthesize_one oracle config g main_f order i)
                  (List.init config.k (fun i -> i)))
          in
          let results = List.map fst results_and_programs in
          let programs = List.filter_map snd results_and_programs in
          let compiled = List.filter (fun r -> r.compile_error = None) results in
          let locs = List.map (fun r -> r.c_loc) compiled in
          let loc_min = List.fold_left min max_int locs in
          let loc_max = List.fold_left max 0 locs in
          let unique_tests =
            Testcase.dedup (List.concat_map (fun r -> r.tests) results)
          in
          Ok
            {
              main = main_f;
              results;
              unique_tests;
              loc_min = (if locs = [] then 0 else loc_min);
              loc_max;
              programs;
            })

let replay ?(string_bound = 16) g ~main program (test : Testcase.t) =
  let natives = Harness.natives_concrete g main in
  let args =
    List.map
      (fun (a : Etype.Arg.t) ->
        match List.assoc_opt a.name test.Testcase.inputs with
        | Some v -> v
        | None -> Etype.default_value a.ty)
      (Emodule.inputs main)
  in
  match Interp.run ~string_bound ~natives program Harness.entry_name args with
  | Ok v -> Ok v
  | Error e -> Error (Interp.error_to_string e)
