(** Durable textual form for test cases.

    Generated test suites are expensive (k LLM drafts + symbolic
    execution), so users persist them and replay later — the paper's
    workflow stores Klee's outputs the same way. One test per line;
    the format is self-describing and round-trips every {!Value}
    shape. *)

val value_to_string : Eywa_minic.Value.t -> string
(** [T], [F], [C99], [I42], [E(RecordType,5)], [S"ab\000c"],
    [{Record rtyp=... ; name=...}], [[v; v]], [U]. *)

val value_of_string : string -> (Eywa_minic.Value.t, string) result

val quote : string -> string
(** Wrap a string in double quotes, escaping quotes, backslashes,
    newlines and non-printable bytes — the quoted token other
    line-based formats (the {!Pipeline} cache artifacts) embed
    arbitrary text with. *)

val unquote : string -> (string, string) result
(** Exact inverse of {!quote}; the whole input must be one quoted
    token. *)

val test_to_line : Testcase.t -> string
val test_of_line : string -> (Testcase.t, string) result

val save : string -> Testcase.t list -> unit
(** Write a suite to a file, one test per line with a header comment.
    Overwrites. *)

val load : string -> (Testcase.t list, string) result
(** Read a suite; blank lines and [#] comments are skipped. The first
    malformed line aborts with its message. *)
