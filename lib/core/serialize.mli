(** Durable textual form for test cases.

    Generated test suites are expensive (k LLM drafts + symbolic
    execution), so users persist them and replay later — the paper's
    workflow stores Klee's outputs the same way. One test per line;
    the format is self-describing and round-trips every {!Value}
    shape. *)

val value_to_string : Eywa_minic.Value.t -> string
(** [T], [F], [C99], [I42], [E(RecordType,5)], [S"ab\000c"],
    [{Record rtyp=... ; name=...}], [[v; v]], [U]. *)

val value_of_string : string -> (Eywa_minic.Value.t, string) result

val quote : string -> string
(** Wrap a string in double quotes, escaping quotes, backslashes,
    newlines and non-printable bytes — the quoted token other
    line-based formats (the {!Pipeline} cache artifacts) embed
    arbitrary text with. *)

val unquote : string -> (string, string) result
(** Exact inverse of {!quote}; the whole input must be one quoted
    token. *)

(** Minimal JSON codec for the observability exporters (JSONL traces,
    Chrome [trace_event] files, metrics/summary JSON). [quote] above
    emits [\xNN] escapes which JSON parsers reject, so the trace layer
    must not reuse it. The printer is canonical and deterministic:
    shortest float representation that round-trips (always with a
    ['.'] or exponent so floats re-parse as [Float]), no insignificant
    whitespace, object fields kept in the order given. Strings are
    byte strings; bytes outside printable ASCII are escaped as
    [\u00XX], and only latin-1 [\uXXXX] escapes are accepted on
    input. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact canonical form. Raises [Invalid_argument] on non-finite
      floats — nothing the deterministic pipeline produces. *)

  val to_string_pretty : t -> string
  (** 2-space-indented form, trailing newline; parses back with
      {!of_string} to the same value. *)

  val of_string : string -> (t, string) result
  (** Accepts any JSON this module prints (and standard whitespace);
      the whole input must be one document. *)

  val member : string -> t -> t option
  (** [member key (Obj fields)] is the first binding of [key]. *)
end

val test_to_line : Testcase.t -> string
val test_of_line : string -> (Testcase.t, string) result

val save : string -> Testcase.t list -> unit
(** Write a suite to a file, one test per line with a header comment.
    Overwrites. *)

val load : string -> (Testcase.t list, string) result
(** Read a suite; blank lines and [#] comments are skipped. The first
    malformed line aborts with its message. *)
