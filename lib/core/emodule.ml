type func = { name : string; desc : string; args : Etype.Arg.t list }

type regex = { rname : string; pattern : string; target : Etype.Arg.t }

type custom = { cname : string; source : string }

type t = Func of func | Regex of regex | Custom of custom

let func_module name desc args =
  if List.length args < 2 then
    invalid_arg "Emodule.func_module: need at least one input and the result";
  Func { name; desc; args }

(* atomic: models may be defined from any domain *)
let regex_counter = Atomic.make 0

let regex_module pattern (target : Etype.Arg.t) =
  (* validate the pattern now so mistakes surface at model-definition
     time, as the Python library does *)
  ignore (Eywa_symex.Regex.parse pattern);
  (match Etype.strip_alias target.ty with
  | Etype.String _ -> ()
  | _ -> invalid_arg "Emodule.regex_module: target must be a string argument");
  let rname = Printf.sprintf "__eywa_regex_%d" (Atomic.fetch_and_add regex_counter 1) in
  Regex { rname; pattern; target }

let custom_module cname source = Custom { cname; source }

let name = function
  | Func f -> f.name
  | Regex r -> r.rname
  | Custom c -> c.cname

let inputs (f : func) =
  match List.rev f.args with
  | _result :: rev_inputs -> List.rev rev_inputs
  | [] -> assert false

let result (f : func) = List.nth f.args (List.length f.args - 1)

let equal a b = name a = name b
