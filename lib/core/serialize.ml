module Value = Eywa_minic.Value

(* ----- values ----- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec value_to_string = function
  | Value.Vunit -> "U"
  | Value.Vbool true -> "T"
  | Value.Vbool false -> "F"
  | Value.Vchar c -> Printf.sprintf "C%d" (Char.code c)
  | Value.Vint n -> Printf.sprintf "I%d" n
  | Value.Venum (e, i) -> Printf.sprintf "E(%s,%d)" e i
  | Value.Vstring raw -> Printf.sprintf "S\"%s\"" (escape raw)
  | Value.Vstruct (name, fields) ->
      Printf.sprintf "{%s %s}" name
        (String.concat " ; "
           (List.map (fun (f, v) -> f ^ "=" ^ value_to_string v) fields))
  | Value.Varray vs ->
      Printf.sprintf "[%s]"
        (String.concat " ; " (List.map value_to_string (Array.to_list vs)))

type cursor = { src : string; mutable pos : int }

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> bad "unexpected end of input at %d" c.pos

let skip_ws c =
  while peek c = Some ' ' do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  let got = next c in
  if got <> ch then bad "expected %C, found %C at %d" ch got (c.pos - 1)

let read_int c =
  skip_ws c;
  let start = c.pos in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  while (match peek c with Some ('0' .. '9') -> true | _ -> false) do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then bad "expected an integer at %d" start;
  int_of_string (String.sub c.src start (c.pos - start))

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let read_ident c =
  skip_ws c;
  let start = c.pos in
  while (match peek c with Some ch when is_ident_char ch -> true | _ -> false) do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then bad "expected an identifier at %d" start;
  String.sub c.src start (c.pos - start)

let read_quoted c =
  expect c '"';
  let buf = Buffer.create 8 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        match next c with
        | 'n' ->
            Buffer.add_char buf '\n';
            go ()
        | 'x' -> (
            let h1 = next c and h2 = next c in
            match int_of_string_opt (Printf.sprintf "0x%c%c" h1 h2) with
            | None -> bad "bad hex escape \\x%c%c at %d" h1 h2 (c.pos - 2)
            | Some v ->
                Buffer.add_char buf (Char.chr v);
                go ())
        | ch ->
            Buffer.add_char buf ch;
            go ())
    | ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let rec read_value c : Value.t =
  skip_ws c;
  match next c with
  | 'U' -> Value.Vunit
  | 'T' -> Value.Vbool true
  | 'F' -> Value.Vbool false
  | 'C' -> Value.Vchar (Char.chr (read_int c land 0xff))
  | 'I' -> Value.Vint (read_int c)
  | 'E' ->
      expect c '(';
      let name = read_ident c in
      expect c ',';
      let i = read_int c in
      expect c ')';
      Value.Venum (name, i)
  | 'S' ->
      skip_ws c;
      Value.Vstring (read_quoted c)
  | '{' ->
      let name = read_ident c in
      let rec fields acc =
        skip_ws c;
        if peek c = Some '}' then begin
          c.pos <- c.pos + 1;
          List.rev acc
        end
        else begin
          if acc <> [] then expect c ';';
          let f = read_ident c in
          expect c '=';
          let v = read_value c in
          fields ((f, v) :: acc)
        end
      in
      Value.Vstruct (name, fields [])
  | '[' ->
      let rec elems acc =
        skip_ws c;
        if peek c = Some ']' then begin
          c.pos <- c.pos + 1;
          List.rev acc
        end
        else begin
          if acc <> [] then expect c ';';
          elems (read_value c :: acc)
        end
      in
      Value.Varray (Array.of_list (elems []))
  | ch -> bad "unexpected %C at %d" ch (c.pos - 1)

let value_of_string s =
  let c = { src = s; pos = 0 } in
  match read_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing input"
      else Ok v
  | exception Bad m -> Error m

let quote s = "\"" ^ escape s ^ "\""

let unquote s =
  let c = { src = s; pos = 0 } in
  match read_quoted c with
  | decoded ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing input after quote"
      else Ok decoded
  | exception Bad m -> Error m

(* ----- JSON ----- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (* The trace/metrics exporters need real JSON ([escape] above emits
     \xNN, which JSON parsers reject), and deterministic output: the
     printer is canonical — shortest float representation that
     round-trips, no whitespace, object fields in the order given. *)

  let escape_string s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 32 || Char.code c > 126 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let float_to_string f =
    if not (Float.is_finite f) then invalid_arg "Json: non-finite float"
    else
      let rec shortest prec =
        if prec > 17 then Printf.sprintf "%.17g" f
        else
          let s = Printf.sprintf "%.*g" prec f in
          if float_of_string s = f then s else shortest (prec + 1)
      in
      let s = shortest 1 in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

  let rec print buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            print buf v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf "\":";
            print buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    print buf v;
    Buffer.contents buf

  let rec print_pretty buf indent = function
    | List (_ :: _ as items) ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (String.make (indent + 2) ' ');
            print_pretty buf (indent + 2) v)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf ']'
    | Obj (_ :: _ as fields) ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (String.make (indent + 2) ' ');
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf "\": ";
            print_pretty buf (indent + 2) v)
          fields;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf '}'
    | v -> print buf v

  let to_string_pretty v =
    let buf = Buffer.create 256 in
    print_pretty buf 0 v;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let skip_json_ws c =
    let ws = function Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false in
    while ws (peek c) do
      c.pos <- c.pos + 1
    done

  let hex_val ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> bad "bad hex digit %C" ch

  let read_json_string c =
    let q = next c in
    if q <> '"' then bad "expected '\"' at %d" (c.pos - 1);
    let buf = Buffer.create 16 in
    let rec go () =
      match next c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          match next c with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              let d1 = hex_val (next c) in
              let d2 = hex_val (next c) in
              let d3 = hex_val (next c) in
              let d4 = hex_val (next c) in
              let v = (d1 lsl 12) lor (d2 lsl 8) lor (d3 lsl 4) lor d4 in
              if v > 0xff then
                bad "\\u%04x: only latin-1 escapes are supported" v;
              Buffer.add_char buf (Char.chr v);
              go ()
          | ch -> bad "bad escape \\%C at %d" ch (c.pos - 1))
      | ch -> Buffer.add_char buf ch; go ()
    in
    go ()

  let read_number c =
    let start = c.pos in
    let number_char = function
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
      | _ -> false
    in
    while number_char (peek c) do
      c.pos <- c.pos + 1
    done;
    if c.pos = start then bad "expected a number at %d" start;
    let s = String.sub c.src start (c.pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> bad "bad number %S at %d" s start
    else
      match int_of_string_opt s with
      | Some n -> Int n
      | None -> bad "bad number %S at %d" s start

  let read_keyword c kw v =
    String.iter
      (fun expected ->
        let got = next c in
        if got <> expected then bad "bad literal at %d (expected %s)" c.pos kw)
      kw;
    v

  let rec read_json c =
    skip_json_ws c;
    match peek c with
    | None -> bad "unexpected end of input at %d" c.pos
    | Some '"' -> Str (read_json_string c)
    | Some 'n' -> read_keyword c "null" Null
    | Some 't' -> read_keyword c "true" (Bool true)
    | Some 'f' -> read_keyword c "false" (Bool false)
    | Some '[' ->
        c.pos <- c.pos + 1;
        let rec elems acc =
          skip_json_ws c;
          if peek c = Some ']' then begin
            c.pos <- c.pos + 1;
            List (List.rev acc)
          end
          else begin
            if acc <> [] then expect c ',';
            let v = read_json c in
            elems (v :: acc)
          end
        in
        elems []
    | Some '{' ->
        c.pos <- c.pos + 1;
        let rec fields acc =
          skip_json_ws c;
          if peek c = Some '}' then begin
            c.pos <- c.pos + 1;
            Obj (List.rev acc)
          end
          else begin
            if acc <> [] then expect c ',';
            skip_json_ws c;
            let k = read_json_string c in
            skip_json_ws c;
            expect c ':';
            let v = read_json c in
            fields ((k, v) :: acc)
          end
        in
        fields []
    | Some _ -> read_number c

  let of_string s =
    let c = { src = s; pos = 0 } in
    match read_json c with
    | v ->
        skip_json_ws c;
        if c.pos <> String.length s then
          Error (Printf.sprintf "trailing input at %d" c.pos)
        else Ok v
    | exception Bad m -> Error m

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ----- test cases ----- *)

let test_to_line (t : Testcase.t) =
  let inputs =
    String.concat ", "
      (List.map (fun (n, v) -> n ^ "=" ^ value_to_string v) t.inputs)
  in
  let result =
    match t.result with None -> "none" | Some v -> value_to_string v
  in
  let error = match t.error with None -> "" | Some e -> escape e in
  Printf.sprintf "inputs(%s) result(%s) bad(%b) error(\"%s\")" inputs result
    t.bad_input error

let test_of_line line =
  let c = { src = line; pos = 0 } in
  match
    let kw = read_ident c in
    if kw <> "inputs" then bad "expected 'inputs'";
    expect c '(';
    let rec inputs acc =
      skip_ws c;
      if peek c = Some ')' then begin
        c.pos <- c.pos + 1;
        List.rev acc
      end
      else begin
        if acc <> [] then expect c ',';
        let n = read_ident c in
        expect c '=';
        let v = read_value c in
        inputs ((n, v) :: acc)
      end
    in
    let inputs = inputs [] in
    let kw = read_ident c in
    if kw <> "result" then bad "expected 'result'";
    expect c '(';
    skip_ws c;
    let result =
      if peek c = Some 'n' then begin
        let w = read_ident c in
        if w <> "none" then bad "expected 'none'";
        None
      end
      else Some (read_value c)
    in
    expect c ')';
    let kw = read_ident c in
    if kw <> "bad" then bad "expected 'bad'";
    expect c '(';
    let flag = read_ident c in
    let bad_input =
      match flag with
      | "true" -> true
      | "false" -> false
      | _ -> bad "expected a boolean"
    in
    expect c ')';
    let kw = read_ident c in
    if kw <> "error" then bad "expected 'error'";
    expect c '(';
    skip_ws c;
    let err = read_quoted c in
    expect c ')';
    { Testcase.inputs; result; bad_input;
      error = (if err = "" then None else Some err) }
  with
  | t -> Ok t
  | exception Bad m -> Error m

let save path tests =
  let oc = open_out path in
  Printf.fprintf oc "# eywa test suite: %d tests\n" (List.length tests);
  List.iter (fun t -> output_string oc (test_to_line t ^ "\n")) tests;
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            Ok (List.rev acc)
        | line ->
            let line = String.trim line in
            if line = "" || (String.length line > 0 && line.[0] = '#') then
              go acc (lineno + 1)
            else (
              match test_of_line line with
              | Ok t -> go (t :: acc) (lineno + 1)
              | Error m ->
                  close_in ic;
                  Error (Printf.sprintf "line %d: %s" lineno m))
      in
      go [] 1
