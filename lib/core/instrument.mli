(** Per-stage instrumentation for the pipeline engine.

    Every stage of {!Pipeline} reports what it did through a [sink] —
    a plain event callback. The default sink drops everything at zero
    cost; {!Collector} accumulates events for the bench's timing
    stage, the CLI [stats] subcommand, and tests.

    Determinism contract: parallel pipeline units stay pure, so stage
    events are {e replayed} at the deterministic merge point in input
    (model-index) order, never from inside pool workers. Hence the
    event sequence a run emits is — modulo the two wall-clock fields
    of [Draw_finished] and the environment fields of [Pool_merged]
    ([computed]/[jobs]/[per_worker]/[queue_wait_ticks]) — bit-for-bit
    independent of [jobs] and of the cache state; a cache hit replays
    even the wall-clock fields the stored run measured, so only the
    [Cache_hit]/[Cache_miss] events themselves (and [Pool_merged]'s
    environment fields) distinguish a warm run from the cold run that
    filled the cache. *)

type event =
  | Draw_started of { index : int }
  | Draw_finished of {
      index : int;
      tests : int;
      gen_seconds : float;  (** wall clock; machine-dependent *)
      symex_seconds : float;  (** wall clock; machine-dependent *)
    }
  | Compile_rejected of {
      index : int;
      stage : string;  (** ["oracle"] or ["typecheck"] *)
      message : string;
    }
  | Symex_done of {
      index : int;
      ticks : int;  (** deterministic budget ticks; machine-independent *)
      paths_completed : int;
      paths_pruned : int;
      solver_calls : int;
      solver_decisions : int;
          (** search decisions actually executed — the one field that
              depends on the counterexample-cache toggle (environment
              data, like cache traffic) *)
      cex_hits : int;  (** deterministic, identical cache on or off *)
      model_reuses : int;  (** deterministic, identical cache on or off *)
      timed_out : bool;
    }
  | Cache_hit of { stage : string; key : string  (** hex digest *) }
  | Cache_miss of { stage : string; key : string }
  | Suite_aggregated of { draws : int; unique_tests : int }
  | Fuzz_done of {
      index : int;
      execs : int;  (** candidate executions = deterministic tick budget *)
      edges_seed : int;  (** edges covered by the symex seed suite *)
      edges_after : int;  (** edges covered after fuzzing *)
      new_tests : int;  (** coverage-increasing tests the fuzzer kept *)
    }
  | Fuzz_aggregated of { draws : int; fuzz_tests : int; combined_tests : int }
  | Difftest_done of {
      label : string;  (** model id or suite name *)
      total_tests : int;
      disagreeing_tests : int;
      tuples : int;  (** unique root-cause tuples *)
      execs : int;
          (** implementation executions recorded over the suite — a
              deterministic counter, so difftest has per-stage
              attribution like symex ticks and fuzz execs *)
    }
  | Pool_merged of {
      label : string;  (** stage name, e.g. ["draw"], ["fuzz"] *)
      tasks : int;
          (** logical units of the stage (e.g. [k] draws) —
              deterministic, cache- and jobs-invariant *)
      computed : int;
          (** units actually executed this run (cache misses);
              cache-state-dependent, like [Cache_hit]/[Cache_miss] *)
      jobs : int;  (** pool size — environment data *)
      per_worker : int list;  (** scheduling-dependent — environment *)
      queue_wait_ticks : int;  (** pool-size-dependent — environment *)
    }
      (** Emitted once per pool batch at the deterministic merge point.
          Only [label] and [tasks] are part of the deterministic event
          stream; the remaining fields describe the environment the
          batch ran in and must be normalized away when comparing runs
          across pool sizes or cache states. *)

type sink = event -> unit

val null : sink
(** Drops every event. The default everywhere. *)

val tee : sink -> sink -> sink

(** Collecting sink: remembers events in emission order and folds them
    into summary counters. Safe to share across domains (the adapters
    emit difftest events from the orchestrating domain, the pipeline
    from its merge point; a mutex guards the buffer regardless). *)
module Collector : sig
  type t

  type summary = {
    draws : int;  (** [Draw_finished] events *)
    rejected : int;  (** [Compile_rejected] events *)
    tests : int;  (** tests over finished draws, before suite dedup *)
    gen_seconds : float;
    symex_seconds : float;
    symex_ticks : int;
    paths_completed : int;
    paths_pruned : int;
    solver_calls : int;
    solver_decisions : int;  (** decisions executed (cex-cache-dependent) *)
    cex_hits : int;  (** feasibility probes answered by the sat/unsat memo *)
    model_reuses : int;  (** probes answered by the parent path's model *)
    timeouts : int;  (** draws that exhausted the tick budget *)
    cache_hits : int;
    cache_misses : int;
    unique_tests : int;  (** summed over [Suite_aggregated] events *)
    fuzz_draws : int;  (** [Fuzz_done] events *)
    fuzz_execs : int;  (** candidate executions, a deterministic counter *)
    fuzz_new_tests : int;
    fuzz_edges_gained : int;
        (** coverage gain summed over draws:
            [max 0 (edges_after - edges_seed)] *)
    difftests : int;
    difftest_execs : int;  (** implementation executions over all suites *)
    disagreeing_tests : int;
    pool_batches : int;  (** [Pool_merged] events *)
    pool_tasks : int;  (** logical units summed over batches *)
  }

  val create : unit -> t
  val sink : t -> sink
  val events : t -> event list
  (** In emission order. *)

  val summary : t -> summary
  val clear : t -> unit

  val pp_summary : Format.formatter -> summary -> unit
  (** Human-readable multi-line rendering, one stage per line. *)
end
