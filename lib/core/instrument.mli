(** Per-stage instrumentation for the pipeline engine.

    Every stage of {!Pipeline} reports what it did through a [sink] —
    a plain event callback. The default sink drops everything at zero
    cost; {!Collector} accumulates events for the bench's timing
    stage, the CLI [stats] subcommand, and tests.

    Determinism contract: parallel pipeline units stay pure, so stage
    events are {e replayed} at the deterministic merge point in input
    (model-index) order, never from inside pool workers. Hence the
    event sequence a run emits is — modulo the two wall-clock fields
    of [Draw_finished] — bit-for-bit independent of [jobs] and of the
    cache state; a cache hit replays even the wall-clock fields the
    stored run measured, so only the [Cache_hit]/[Cache_miss] events
    themselves distinguish a warm run from the cold run that filled
    the cache. *)

type event =
  | Draw_started of { index : int }
  | Draw_finished of {
      index : int;
      tests : int;
      gen_seconds : float;  (** wall clock; machine-dependent *)
      symex_seconds : float;  (** wall clock; machine-dependent *)
    }
  | Compile_rejected of {
      index : int;
      stage : string;  (** ["oracle"] or ["typecheck"] *)
      message : string;
    }
  | Symex_done of {
      index : int;
      ticks : int;  (** deterministic budget ticks; machine-independent *)
      paths_completed : int;
      paths_pruned : int;
      solver_calls : int;
      timed_out : bool;
    }
  | Cache_hit of { stage : string; key : string  (** hex digest *) }
  | Cache_miss of { stage : string; key : string }
  | Suite_aggregated of { draws : int; unique_tests : int }
  | Fuzz_done of {
      index : int;
      execs : int;  (** candidate executions = deterministic tick budget *)
      edges_seed : int;  (** edges covered by the symex seed suite *)
      edges_after : int;  (** edges covered after fuzzing *)
      new_tests : int;  (** coverage-increasing tests the fuzzer kept *)
    }
  | Fuzz_aggregated of { draws : int; fuzz_tests : int; combined_tests : int }
  | Difftest_done of {
      label : string;  (** model id or suite name *)
      total_tests : int;
      disagreeing_tests : int;
      tuples : int;  (** unique root-cause tuples *)
    }

type sink = event -> unit

val null : sink
(** Drops every event. The default everywhere. *)

val tee : sink -> sink -> sink

(** Collecting sink: remembers events in emission order and folds them
    into summary counters. Safe to share across domains (the adapters
    emit difftest events from the orchestrating domain, the pipeline
    from its merge point; a mutex guards the buffer regardless). *)
module Collector : sig
  type t

  type summary = {
    draws : int;  (** [Draw_finished] events *)
    rejected : int;  (** [Compile_rejected] events *)
    tests : int;  (** tests over finished draws, before suite dedup *)
    gen_seconds : float;
    symex_seconds : float;
    symex_ticks : int;
    paths_completed : int;
    paths_pruned : int;
    solver_calls : int;
    timeouts : int;  (** draws that exhausted the tick budget *)
    cache_hits : int;
    cache_misses : int;
    unique_tests : int;  (** summed over [Suite_aggregated] events *)
    fuzz_draws : int;  (** [Fuzz_done] events *)
    fuzz_execs : int;  (** candidate executions, a deterministic counter *)
    fuzz_new_tests : int;
    difftests : int;
    disagreeing_tests : int;
  }

  val create : unit -> t
  val sink : t -> sink
  val events : t -> event list
  (** In emission order. *)

  val summary : t -> summary
  val clear : t -> unit

  val pp_summary : Format.formatter -> summary -> unit
  (** Human-readable multi-line rendering, one stage per line. *)
end
