(** Content-addressed cache for pipeline stage results.

    A stage result is keyed by a hash of {e everything it depends on}:
    the exact prompt texts, the effective sampling seed, the
    temperature, and every symex budget (ticks, paths, steps, solver
    decisions) — see {!Pipeline} for the exact part list. The key must
    never cover wall time, machine identity, or pool size: a key is a
    promise that equal keys denote byte-identical results on any host
    at any [jobs].

    Payloads are opaque strings (the stage's serialized artifact).
    Lookups hit an in-memory table first; with a [dir], entries also
    persist to disk ([<dir>/<stage>-<digest>.eywa]) and survive across
    processes — a bench rerun or a CLI [--cache-dir] session starts
    warm. Disk entries embed the full canonical key, so a digest
    collision is detected on load and treated as a miss rather than
    returning the wrong artifact.

    All operations are mutex-guarded; hit/miss counters are exact even
    when several domains share one cache. *)

module Key : sig
  type t

  val v : stage:string -> (string * string) list -> t
  (** [v ~stage parts] builds a key from named dependency parts. The
      encoding is injective: part order, names, and values all
      distinguish keys (["k", "10"] vs ["k", "1"; "", "0"] collide on
      concatenation but not here). *)

  val stage : t -> string
  val digest : t -> string
  (** 16 hex chars (FNV-1a 64 of the canonical encoding) — stable
      across OCaml versions and architectures. *)

  val canonical : t -> string
  (** The full canonical encoding the digest summarizes. *)

  val equal : t -> t -> bool
end

type t

val create : ?dir:string -> unit -> t
(** In-memory cache; with [dir], also persisted there (the directory
    is created on first store). *)

val dir : t -> string option

val find : ?sink:Instrument.sink -> t -> Key.t -> string option
(** Memory first, then disk (a disk hit is promoted to memory).
    Counts a hit or a miss and, given [sink], emits the matching
    {!Instrument.Cache_hit}/[Cache_miss] event. *)

val store : t -> Key.t -> string -> unit
(** Insert (and persist, with a [dir]). Overwrites silently: equal
    keys must mean equal payloads, so an overwrite is a no-op in
    content terms. Disk write failures degrade to memory-only. *)

val hits : t -> int
val misses : t -> int

val to_list : t -> (string * string) list
(** [(stage ^ "-" ^ digest, payload)] pairs of the in-memory table,
    sorted by key — for comparing cache contents across runs. *)
