type event =
  | Draw_started of { index : int }
  | Draw_finished of {
      index : int;
      tests : int;
      gen_seconds : float;
      symex_seconds : float;
    }
  | Compile_rejected of { index : int; stage : string; message : string }
  | Symex_done of {
      index : int;
      ticks : int;
      paths_completed : int;
      paths_pruned : int;
      solver_calls : int;
      solver_decisions : int;
      cex_hits : int;
      model_reuses : int;
      timed_out : bool;
    }
  | Cache_hit of { stage : string; key : string }
  | Cache_miss of { stage : string; key : string }
  | Suite_aggregated of { draws : int; unique_tests : int }
  | Fuzz_done of {
      index : int;
      execs : int;
      edges_seed : int;
      edges_after : int;
      new_tests : int;
    }
  | Fuzz_aggregated of { draws : int; fuzz_tests : int; combined_tests : int }
  | Difftest_done of {
      label : string;
      total_tests : int;
      disagreeing_tests : int;
      tuples : int;
      execs : int;
    }
  | Pool_merged of {
      label : string;
      tasks : int;
      computed : int;
      jobs : int;
      per_worker : int list;
      queue_wait_ticks : int;
    }

type sink = event -> unit

let null : sink = fun _ -> ()
let tee a b : sink = fun e -> a e; b e

module Collector = struct
  type t = { mutex : Mutex.t; mutable events : event list (* newest first *) }

  type summary = {
    draws : int;
    rejected : int;
    tests : int;
    gen_seconds : float;
    symex_seconds : float;
    symex_ticks : int;
    paths_completed : int;
    paths_pruned : int;
    solver_calls : int;
    solver_decisions : int;
    cex_hits : int;
    model_reuses : int;
    timeouts : int;
    cache_hits : int;
    cache_misses : int;
    unique_tests : int;
    fuzz_draws : int;
    fuzz_execs : int;
    fuzz_new_tests : int;
    fuzz_edges_gained : int;
    difftests : int;
    difftest_execs : int;
    disagreeing_tests : int;
    pool_batches : int;
    pool_tasks : int;
  }

  let create () = { mutex = Mutex.create (); events = [] }

  let sink t : sink =
    fun e ->
      Mutex.lock t.mutex;
      t.events <- e :: t.events;
      Mutex.unlock t.mutex

  let events t =
    Mutex.lock t.mutex;
    let es = List.rev t.events in
    Mutex.unlock t.mutex;
    es

  let clear t =
    Mutex.lock t.mutex;
    t.events <- [];
    Mutex.unlock t.mutex

  let empty_summary =
    {
      draws = 0; rejected = 0; tests = 0; gen_seconds = 0.0;
      symex_seconds = 0.0; symex_ticks = 0; paths_completed = 0;
      paths_pruned = 0; solver_calls = 0; solver_decisions = 0; cex_hits = 0;
      model_reuses = 0; timeouts = 0; cache_hits = 0;
      cache_misses = 0; unique_tests = 0; fuzz_draws = 0; fuzz_execs = 0;
      fuzz_new_tests = 0; fuzz_edges_gained = 0; difftests = 0;
      difftest_execs = 0; disagreeing_tests = 0; pool_batches = 0;
      pool_tasks = 0;
    }

  let summary t =
    List.fold_left
      (fun s -> function
        | Draw_started _ -> s
        | Draw_finished { tests; gen_seconds; symex_seconds; _ } ->
            { s with draws = s.draws + 1; tests = s.tests + tests;
              gen_seconds = s.gen_seconds +. gen_seconds;
              symex_seconds = s.symex_seconds +. symex_seconds }
        | Compile_rejected _ -> { s with rejected = s.rejected + 1 }
        | Symex_done
            { ticks; paths_completed; paths_pruned; solver_calls;
              solver_decisions; cex_hits; model_reuses; timed_out; _ }
          ->
            { s with symex_ticks = s.symex_ticks + ticks;
              paths_completed = s.paths_completed + paths_completed;
              paths_pruned = s.paths_pruned + paths_pruned;
              solver_calls = s.solver_calls + solver_calls;
              solver_decisions = s.solver_decisions + solver_decisions;
              cex_hits = s.cex_hits + cex_hits;
              model_reuses = s.model_reuses + model_reuses;
              timeouts = (s.timeouts + if timed_out then 1 else 0) }
        | Cache_hit _ -> { s with cache_hits = s.cache_hits + 1 }
        | Cache_miss _ -> { s with cache_misses = s.cache_misses + 1 }
        | Suite_aggregated { unique_tests; _ } ->
            { s with unique_tests = s.unique_tests + unique_tests }
        | Fuzz_done { execs; new_tests; edges_seed; edges_after; _ } ->
            { s with fuzz_draws = s.fuzz_draws + 1;
              fuzz_execs = s.fuzz_execs + execs;
              fuzz_new_tests = s.fuzz_new_tests + new_tests;
              fuzz_edges_gained =
                s.fuzz_edges_gained + max 0 (edges_after - edges_seed) }
        | Fuzz_aggregated _ -> s
        | Difftest_done { total_tests = _; disagreeing_tests; execs; _ } ->
            { s with difftests = s.difftests + 1;
              difftest_execs = s.difftest_execs + execs;
              disagreeing_tests = s.disagreeing_tests + disagreeing_tests }
        | Pool_merged { tasks; _ } ->
            { s with pool_batches = s.pool_batches + 1;
              pool_tasks = s.pool_tasks + tasks })
      empty_summary (events t)

  let pp_summary ppf (s : summary) =
    Format.fprintf ppf
      "draws        %d finished, %d rejected, %d raw tests@\n\
       generation   %.2f s wall@\n\
       symex        %.2f s wall, %d ticks (deterministic), %d paths (+%d \
       pruned), %d solver calls, %d timeouts@\n\
       solver       %d decisions executed, %d cex hits, %d model reuses@\n\
       cache        %d hits, %d misses@\n\
       aggregation  %d unique tests@\n\
       fuzz         %d draws, %d execs (deterministic ticks), %d new tests, \
       +%d edges@\n\
       difftest     %d runs, %d executions, %d disagreeing tests@\n\
       pool         %d batches, %d tasks"
      s.draws s.rejected s.tests s.gen_seconds s.symex_seconds s.symex_ticks
      s.paths_completed s.paths_pruned s.solver_calls s.timeouts
      s.solver_decisions s.cex_hits s.model_reuses s.cache_hits
      s.cache_misses s.unique_tests s.fuzz_draws s.fuzz_execs s.fuzz_new_tests
      s.fuzz_edges_gained s.difftests s.difftest_execs s.disagreeing_tests
      s.pool_batches s.pool_tasks
end
