(* A fixed-size domain work-pool. Workers are spawned once at [create]
   and consume closures from a Mutex/Condition-protected queue; [map]
   fans a list out to the pool and merges results back **by input
   index**, never by completion order, so callers observe byte-identical
   output at any pool size. *)

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* Which worker of the pool the calling domain is (-1 outside a pool);
   only used to attribute task counts in [map_stats]. *)
let worker_index_key = Domain.DLS.new_key (fun () -> -1)

let env_jobs () =
  match Sys.getenv_opt "EYWA_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let size pool = pool.size

let worker pool index () =
  Domain.DLS.set in_worker_key true;
  Domain.DLS.set worker_index_key index;
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec take () =
      match Queue.take_opt pool.queue with
      | Some task -> Some task
      | None ->
          if pool.closed then None
          else begin
            Condition.wait pool.nonempty pool.mutex;
            take ()
          end
    in
    let task = take () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some f ->
        (* tasks enqueued by [map] never raise; this is a backstop so a
           misbehaving closure cannot kill the worker *)
        (try f () with _ -> ());
        loop ()
  in
  loop ()

let create ~jobs =
  (* A pool created from inside another pool's worker is degenerate:
     its [map] would run inline anyway, so don't spawn idle domains. *)
  let jobs = if in_worker () then 1 else max 1 jobs in
  let pool =
    {
      size = jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    pool.workers <- List.init jobs (fun i -> Domain.spawn (worker pool i));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  if not pool.closed then begin
    pool.closed <- true;
    Condition.broadcast pool.nonempty
  end;
  Mutex.unlock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type map_stats = {
  tasks : int;
  jobs : int;
  per_worker : int list;
  queue_wait_ticks : int;
}

let map_stats pool f xs =
  if pool.size <= 1 || in_worker () then
    let results = List.map f xs in
    ( results,
      {
        tasks = List.length results;
        jobs = pool.size;
        per_worker = [ List.length results ];
        queue_wait_ticks = 0;
      } )
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n = 0 then
      ( [],
        {
          tasks = 0;
          jobs = pool.size;
          per_worker = List.init pool.size (fun _ -> 0);
          queue_wait_ticks = 0;
        } )
    else begin
      let results = Array.make n None in
      (* the smallest failing index wins, matching what a sequential
         left-to-right traversal would raise *)
      let first_error = ref None in
      let remaining = ref n in
      let done_mutex = Mutex.create () in
      let all_done = Condition.create () in
      let worker_tasks = Array.make pool.size 0 in
      let task i () =
        let outcome = try Ok (f arr.(i)) with e -> Error e in
        let w = Domain.DLS.get worker_index_key in
        Mutex.lock done_mutex;
        if w >= 0 && w < pool.size then
          worker_tasks.(w) <- worker_tasks.(w) + 1;
        (match outcome with
        | Ok r -> results.(i) <- Some r
        | Error e -> (
            match !first_error with
            | Some (j, _) when j < i -> ()
            | Some _ | None -> first_error := Some (i, e)));
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock done_mutex
      in
      (* queue-wait ticks: backlog length each task sees as it is
         enqueued — a deterministic proxy for queue pressure (the whole
         batch is added under the queue mutex, so task i waits behind
         exactly the tasks already queued, never behind a wall clock) *)
      let queue_wait = ref 0 in
      Mutex.lock pool.mutex;
      if pool.closed then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.map: pool is shut down"
      end;
      for i = 0 to n - 1 do
        queue_wait := !queue_wait + Queue.length pool.queue;
        Queue.add (task i) pool.queue
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      Mutex.lock done_mutex;
      while !remaining > 0 do
        Condition.wait all_done done_mutex
      done;
      Mutex.unlock done_mutex;
      match !first_error with
      | Some (_, e) -> raise e
      | None ->
          ( Array.to_list
              (Array.map
                 (function Some r -> r | None -> assert false)
                 results),
            {
              tasks = n;
              jobs = pool.size;
              per_worker = Array.to_list worker_tasks;
              queue_wait_ticks = !queue_wait;
            } )
    end
  end

let map pool f xs = fst (map_stats pool f xs)
