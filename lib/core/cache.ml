module Key = struct
  type t = { stage : string; canonical : string; digest : string }

  (* FNV-1a, 64-bit: simple, fast, and — unlike [Hashtbl.hash] — a
     documented constant across OCaml versions, so on-disk entries
     written by one build stay addressable by the next. *)
  let fnv1a_64 s =
    let offset_basis = 0xcbf29ce484222325L in
    let prime = 0x100000001b3L in
    let h = ref offset_basis in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h prime)
      s;
    !h

  let v ~stage parts =
    let buf = Buffer.create 256 in
    (* length-prefixed fields make the encoding injective *)
    let add s =
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s;
      Buffer.add_char buf '\n'
    in
    add stage;
    List.iter
      (fun (name, value) ->
        add name;
        add value)
      parts;
    let canonical = Buffer.contents buf in
    { stage; canonical; digest = Printf.sprintf "%016Lx" (fnv1a_64 canonical) }

  let stage t = t.stage
  let digest t = t.digest
  let canonical t = t.canonical
  let equal a b = a.stage = b.stage && a.canonical = b.canonical
end

type t = {
  dir : string option;
  mutex : Mutex.t;
  table : (string, string * string) Hashtbl.t;
      (* stage-digest -> (canonical key, payload) *)
  mutable hits : int;
  mutable misses : int;
}

let create ?dir () =
  { dir; mutex = Mutex.create (); table = Hashtbl.create 64; hits = 0;
    misses = 0 }

let dir t = t.dir

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let slot (key : Key.t) = Key.stage key ^ "-" ^ Key.digest key

let path_of t key =
  match t.dir with
  | None -> None
  | Some d -> Some (Filename.concat d (slot key ^ ".eywa"))

(* Disk format: the canonical key (so collisions are detectable), a
   separator line, then the payload verbatim. *)
let disk_read t (key : Key.t) =
  match path_of t key with
  | None -> None
  | Some path -> (
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic ->
          let len = in_channel_length ic in
          let content = really_input_string ic len in
          close_in ic;
          let expected = Key.canonical key in
          let header = String.length expected in
          if
            String.length content >= header + 1
            && String.sub content 0 header = expected
            && content.[header] = '\n'
          then Some (String.sub content (header + 1) (len - header - 1))
          else None)

let disk_write t (key : Key.t) payload =
  match path_of t key with
  | None -> ()
  | Some path -> (
      try
        (match t.dir with
        | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
        | _ -> ());
        (* write-then-rename so a concurrent reader never sees a torn
           entry *)
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        output_string oc (Key.canonical key);
        output_char oc '\n';
        output_string oc payload;
        close_out oc;
        Sys.rename tmp path
      with Sys_error _ -> ())

let find ?(sink = Instrument.null) t (key : Key.t) =
  let result =
    locked t (fun () ->
        match Hashtbl.find_opt t.table (slot key) with
        | Some (canonical, payload) when canonical = Key.canonical key ->
            t.hits <- t.hits + 1;
            Some payload
        | Some _ | None -> (
            match disk_read t key with
            | Some payload ->
                Hashtbl.replace t.table (slot key)
                  (Key.canonical key, payload);
                t.hits <- t.hits + 1;
                Some payload
            | None ->
                t.misses <- t.misses + 1;
                None))
  in
  (match result with
  | Some _ ->
      sink (Instrument.Cache_hit { stage = Key.stage key; key = Key.digest key })
  | None ->
      sink
        (Instrument.Cache_miss { stage = Key.stage key; key = Key.digest key }));
  result

let store t (key : Key.t) payload =
  locked t (fun () ->
      Hashtbl.replace t.table (slot key) (Key.canonical key, payload);
      disk_write t key payload)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)

let to_list t =
  locked t (fun () ->
      Hashtbl.fold (fun k (_, payload) acc -> (k, payload) :: acc) t.table []
      |> List.sort compare)
