(** The staged pipeline engine.

    Eywa's pipeline — prompt generation, k LLM draws, compilation,
    symbolic execution, unique-test aggregation — used to exist only
    implicitly inside [Synthesis.run], with every driver (bench, CLI,
    examples) re-wiring the stages ad hoc. This module makes each
    stage a pure function between explicit artifacts:

    {v
    prompt_parts   : graph/main        -> canonical prompt texts
    generate       : oracle/index      -> generated   (per-draw source)
    compile        : generated         -> Ast.program (or tagged rejection)
    symex          : program           -> paths + stats
    tests_of_paths : paths             -> Testcase.t list
    run_draw       : index             -> model_result (stages 2-5 composed)
    aggregate      : model_result list -> t            (the unique suite)
    v}

    {!run} composes them with three cross-cutting services:

    - {b Parallelism}: the k draws fan out over {!Pool} and merge by
      index, so results are bit-for-bit independent of [jobs].
    - {b Caching}: each draw result is content-addressed in a
      {!Cache} under a key covering {e everything} the draw depends
      on — oracle name, exact prompt texts, pipe structure, effective
      seed, temperature, every budget, alphabet, sampling count — and
      {e nothing} machine- or time-dependent. A cache hit is
      byte-identical to a miss (wall-clock fields are stored in the
      artifact, so even they replay). Because a draw's key excludes
      [k], a k=12 run reuses every artifact a k=3 run stored: the
      bench's k-sweep stops recomputing shared prefixes.
    - {b Instrumentation}: stage events are replayed to the
      {!Instrument.sink} at the merge point in index order (workers
      stay pure), so the event log is deterministic too.

    [Synthesis] re-exports the result types and wraps {!run}; drivers
    that want caching or instrumentation call this module directly. *)

type config = {
  k : int;  (** number of model implementations to draw (paper: 10) *)
  temperature : float;  (** tau (paper: 0.6) *)
  timeout : float;
      (** per-model symbolic execution budget in "budget seconds" — a
          deterministic tick budget (see {!Eywa_symex.Exec.config}) *)
  max_paths : int;
  max_steps : int;
  max_solver_decisions : int;
  alphabet : char list;  (** character domain for string/char atoms *)
  base_seed : int;
  samples_per_path : int;
      (** concrete tests drawn per symbolic path (distinct solver value
          rotations) *)
  cex_cache : bool;
      (** let symex feasibility probes short-circuit through the
          per-draw counterexample cache (see {!Eywa_symex.Exec.config};
          tests are byte-identical either way) *)
}

val default_config : config

type model_result = {
  index : int;
  c_source : string;  (** the generated module implementations *)
  c_loc : int;
  compile_error : string option;
      (** set when this model was skipped; prefixed with the failing
          stage (["oracle: "], ["typecheck: "]) *)
  tests : Testcase.t list;
  stats : Eywa_symex.Exec.stats option;
  gen_seconds : float;
  symex_seconds : float;
}

type t = {
  main : Emodule.func;
  results : model_result list;
  unique_tests : Testcase.t list;
  loc_min : int;  (** over models that compiled; 0 if none *)
  loc_max : int;
  programs : Eywa_minic.Ast.program list;  (** one per compiled model *)
}

(** {1 Stage functions} *)

type generated = {
  gen_index : int;
  source : string;  (** concatenated module sources, the draw artifact *)
  funcs : Eywa_minic.Ast.func list;
      (** the selected function per Func module, plus Custom functions *)
}

val prompt_parts :
  Graph.t -> order:Emodule.t list -> main:Emodule.func -> (string * string) list
(** Stage-0 artifact: one canonical (name, text) pair per dependency a
    draw sees — the full system+user prompt per [Func] module, the
    source per [Custom], the pattern per [Regex], and the pipe-guard
    structure feeding each module. These are exactly the prompt-side
    inputs of a cache key. *)

val generate :
  oracle:Oracle.t ->
  config:config ->
  Graph.t ->
  order:Emodule.t list ->
  index:int ->
  (generated, string) result
(** One LLM draw: prompt the oracle per module (callees first) at seed
    [config.base_seed + index]. [Error] messages carry no stage tag;
    {!run_draw} adds ["oracle: "]. *)

val compile :
  Graph.t ->
  main:Emodule.func ->
  generated ->
  (Eywa_minic.Ast.program, string) result
(** Assemble the harness program and typecheck it. Untagged [Error];
    {!run_draw} adds ["typecheck: "]. *)

val symex :
  config:config ->
  Graph.t ->
  main:Emodule.func ->
  Eywa_minic.Ast.program ->
  (string * Eywa_symex.Sv.t) list
  * Eywa_symex.Exec.path list
  * Eywa_symex.Exec.stats
(** Explore the compiled program on symbolic inputs; returns the named
    inputs alongside the completed paths and stats. *)

val tests_of_paths :
  config:config ->
  inputs:(string * Eywa_symex.Sv.t) list ->
  Eywa_symex.Exec.path list ->
  Testcase.t list
(** Solve each path into [samples_per_path] concrete tests and dedup. *)

val run_draw :
  oracle:Oracle.t ->
  config:config ->
  Graph.t ->
  main:Emodule.func ->
  order:Emodule.t list ->
  int ->
  model_result * Eywa_minic.Ast.program option
(** Stages 2-5 for one index, under a fresh term-id scope — the pure
    parallel unit {!run} fans out. *)

val aggregate :
  main:Emodule.func ->
  (model_result * Eywa_minic.Ast.program option) list ->
  t
(** Union the per-draw tests into the unique suite with min/max LoC. *)

(** {1 Cache keys and artifacts} *)

val draw_key_parts :
  oracle_name:string ->
  config:config ->
  prompts:(string * string) list ->
  index:int ->
  (string * string) list
(** The (name, value) pairs {!draw_key} hashes, exposed so stages
    layered on a draw (e.g. [Eywa_fuzz]) can extend the exact same
    inputs with their own parameters instead of re-deriving them. *)

val draw_key :
  oracle_name:string ->
  config:config ->
  prompts:(string * string) list ->
  index:int ->
  Cache.Key.t
(** The content address of one draw: oracle name, prompt parts,
    effective seed ([base_seed + index]), temperature, all budgets,
    alphabet, and samples per path. Deliberately excludes [k] (a
    draw's result does not depend on how many siblings it has), wall
    time, machine, and pool size. *)

val artifact_to_string : model_result * Eywa_minic.Ast.program option -> string
(** Serialize a draw result — tests via {!Serialize.test_to_line},
    strings via {!Serialize.quote}, floats as hex literals (exact),
    the compiled program pretty-printed. *)

val artifact_of_string :
  Graph.t ->
  main:Emodule.func ->
  string ->
  (model_result * Eywa_minic.Ast.program option, string) result
(** Exact inverse given the same graph and main module:
    [artifact_of_string g ~main (artifact_to_string a) = Ok a]. The
    compiled program is reconstructed by re-parsing the stored source
    and re-running {!Harness.build} — the identical pure construction
    the cold path used — rather than trusting the stored text to
    round-trip doc comments the parser drops. *)

(** {1 The composed engine} *)

val run :
  ?cache:Cache.t ->
  ?sink:Instrument.sink ->
  ?config:config ->
  ?jobs:int ->
  oracle:Oracle.t ->
  Graph.t ->
  main:Emodule.t ->
  (t, string) result
(** [Error _] only for structural problems (cyclic call edges, main
    not a Func module); per-draw failures are recorded in [results].

    With a [cache], draw results are looked up before computing and
    stored after; hits decode to byte-identical results (and emit
    [Cache_hit] instead of [Cache_miss], the only event difference).
    With a [sink], every stage reports: cache probes in index order,
    then per-draw events replayed in index order at the merge point,
    then the aggregation event. *)
