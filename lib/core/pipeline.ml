module Ast = Eywa_minic.Ast
module Parser = Eywa_minic.Parser
module Typecheck = Eywa_minic.Typecheck
module Pretty = Eywa_minic.Pretty
module Value = Eywa_minic.Value
module Interp = Eywa_minic.Interp
module Exec = Eywa_symex.Exec
module Sv = Eywa_symex.Sv

type config = {
  k : int;
  temperature : float;
  timeout : float;
  max_paths : int;
  max_steps : int;
  max_solver_decisions : int;
  alphabet : char list;
  base_seed : int;
  samples_per_path : int;
  cex_cache : bool;
}

let default_config =
  {
    k = 10;
    temperature = 0.6;
    timeout = 5.0;
    max_paths = 4096;
    max_steps = 20_000;
    max_solver_decisions = 200_000;
    alphabet = [ 'a'; 'b'; '.'; '*' ];
    base_seed = 42;
    samples_per_path = 4;
    cex_cache = true;
  }

type model_result = {
  index : int;
  c_source : string;
  c_loc : int;
  compile_error : string option;
  tests : Testcase.t list;
  stats : Exec.stats option;
  gen_seconds : float;
  symex_seconds : float;
}

type t = {
  main : Emodule.func;
  results : model_result list;
  unique_tests : Testcase.t list;
  loc_min : int;
  loc_max : int;
  programs : Ast.program list;
}

type generated = { gen_index : int; source : string; funcs : Ast.func list }

let now () = Unix.gettimeofday ()

(* ----- stage 0: prompt artifacts ----- *)

let module_text g m =
  match m with
  | Emodule.Func f ->
      let p = Prompt.for_module g f in
      p.Prompt.system ^ "\x00" ^ p.Prompt.user
  | Emodule.Custom c -> c.source
  | Emodule.Regex r -> r.pattern

(* The pipe guards feeding a module shape the harness (Fig. 1b) even
   though no prompt mentions them; a cache key that skipped them would
   alias models that differ only in validity structure. *)
let pipe_text g m =
  String.concat "|"
    (List.map
       (fun src ->
         match src with
         | Emodule.Regex r ->
             Printf.sprintf "regex:%s=%s@%s" r.rname r.pattern
               r.target.Etype.Arg.name
         | other -> "mod:" ^ Emodule.name other)
       (Graph.pipes_into g m))

let prompt_parts g ~order ~main =
  ("main", main.Emodule.name)
  :: List.concat_map
       (fun m ->
         [
           ("module:" ^ Emodule.name m, module_text g m);
           ("pipes:" ^ Emodule.name m, pipe_text g m);
         ])
       order

(* ----- stage 1: one LLM draw ----- *)

(* Obtain the implementation of one module for model index [i]:
   prompt the oracle for Func modules, parse Custom sources directly. *)
let generate_module oracle config g index m :
    (Ast.func list * string, string) result =
  match m with
  | Emodule.Func f -> (
      let prompt = Prompt.for_module g f in
      let completion =
        oracle.Oracle.complete
          {
            Oracle.system = prompt.Prompt.system;
            user = prompt.Prompt.user;
            temperature = config.temperature;
            seed = config.base_seed + index;
          }
      in
      match Parser.parse_result completion with
      | Error msg -> Error (Printf.sprintf "module %s: %s" f.name msg)
      | Ok parsed -> (
          match Ast.find_func parsed f.name with
          | None ->
              Error
                (Printf.sprintf "module %s: completion does not define %s" f.name
                   f.name)
          | Some fn -> Ok ([ fn ], completion)))
  | Emodule.Custom c -> (
      match Parser.parse_result c.source with
      | Error msg -> Error (Printf.sprintf "custom module %s: %s" c.cname msg)
      | Ok parsed -> Ok (parsed.Ast.funcs, c.source))
  | Emodule.Regex _ -> Ok ([], "")

let generate ~oracle ~config g ~order ~index =
  let rec gen acc_funcs acc_src = function
    | [] ->
        Ok
          {
            gen_index = index;
            source = String.concat "\n\n" (List.rev acc_src);
            funcs = List.rev acc_funcs;
          }
    | m :: rest -> (
        match generate_module oracle config g index m with
        | Error e -> Error e
        | Ok (fns, src) ->
            gen (List.rev_append fns acc_funcs)
              (if src = "" then acc_src else src :: acc_src)
              rest)
  in
  gen [] [] order

(* ----- stage 2: compile ----- *)

let compile g ~main (gen : generated) =
  let program = Harness.build g ~main ~funcs:gen.funcs in
  match Typecheck.check program with Error e -> Error e | Ok () -> Ok program

(* ----- stage 3: symbolic execution ----- *)

let symex ~config g ~main program =
  let inputs = Harness.symbolic_inputs ~alphabet:config.alphabet main in
  let natives = Harness.natives_symbolic g main in
  let exec_config =
    {
      Exec.max_paths = config.max_paths;
      max_steps = config.max_steps;
      timeout = config.timeout;
      max_solver_decisions = config.max_solver_decisions;
      string_bound = 8;
      cex_cache = config.cex_cache;
    }
  in
  let paths, stats =
    Exec.run ~config:exec_config ~natives program ~entry:Harness.entry_name
      ~args:(List.map snd inputs) ~assumes:[]
  in
  (inputs, paths, stats)

(* ----- stage 4: paths to tests ----- *)

let path_to_test ~rotate ~model inputs (path : Exec.path) : Testcase.t =
  let concrete_inputs =
    List.map (fun (name, sv) -> (name, Sv.concretize ~rotate model sv)) inputs
  in
  match path.error with
  | Some e ->
      { Testcase.inputs = concrete_inputs; result = None; bad_input = false;
        error = Some e }
  | None -> (
      match Sv.concretize ~rotate model path.ret with
      | Value.Vstruct (_, fields) ->
          let bad_input =
            match List.assoc_opt "bad_input" fields with
            | Some (Value.Vbool b) -> b
            | _ -> false
          in
          let result = List.assoc_opt "result" fields in
          { Testcase.inputs = concrete_inputs; result; bad_input; error = None }
      | v ->
          { Testcase.inputs = concrete_inputs; result = Some v; bad_input = false;
            error = None })

(* One test per (path, sample): re-solving the path condition under
   different value rotations yields several concrete witnesses of the
   same path, the way Klee's test generation covers bounded input
   spaces far more densely than one-per-path (cf. the Table 2 counts). *)
let path_to_tests config (path : Exec.path) inputs : Testcase.t list =
  let samples = max 1 config.samples_per_path in
  List.init samples (fun s ->
      let model =
        if s = 0 then path.Exec.model
        else
          match
            Eywa_solver.Solve.solve ~max_decisions:config.max_solver_decisions
              ~rotate:s path.Exec.pc
          with
          | Eywa_solver.Solve.Sat m -> m
          | Eywa_solver.Solve.Unsat | Eywa_solver.Solve.Unknown -> path.Exec.model
      in
      path_to_test ~rotate:s ~model inputs path)

let tests_of_paths ~config ~inputs paths =
  Testcase.dedup (List.concat_map (fun p -> path_to_tests config p inputs) paths)

(* ----- stages 1-4 composed: one draw ----- *)

let run_draw ~oracle ~config g ~main ~order index :
    model_result * Ast.program option =
  (* fresh atom ids per run — scoped to this job, so parallel draws on
     a pool never share a counter and identical generated code yields
     identical paths, rotations and tests (tau = 0 determinism) *)
  Eywa_solver.Term.with_fresh_ids @@ fun () ->
  let gen_start = now () in
  match generate ~oracle ~config g ~order ~index with
  | Error e ->
      (* stage-tagged so parallel failure logs are attributable: this
         branch covers oracle completions that do not parse or do not
         define the requested function *)
      ( { index; c_source = ""; c_loc = 0; compile_error = Some ("oracle: " ^ e);
          tests = []; stats = None; gen_seconds = now () -. gen_start;
          symex_seconds = 0.0 },
        None )
  | Ok gen -> (
      let gen_seconds = now () -. gen_start in
      let c_loc =
        List.fold_left (fun acc f -> acc + Pretty.loc (Pretty.func f)) 0 gen.funcs
      in
      match compile g ~main gen with
      | Error e ->
          ( { index; c_source = gen.source; c_loc;
              compile_error = Some ("typecheck: " ^ e); tests = []; stats = None;
              gen_seconds; symex_seconds = 0.0 },
            None )
      | Ok program ->
          let sym_start = now () in
          let inputs, paths, stats = symex ~config g ~main program in
          let symex_seconds = now () -. sym_start in
          let tests = tests_of_paths ~config ~inputs paths in
          ( { index; c_source = gen.source; c_loc; compile_error = None; tests;
              stats = Some stats; gen_seconds; symex_seconds },
            Some program ))

(* ----- stage 5: aggregation ----- *)

let aggregate ~main draws =
  let results = List.map fst draws in
  let programs = List.filter_map snd draws in
  let compiled = List.filter (fun r -> r.compile_error = None) results in
  let locs = List.map (fun r -> r.c_loc) compiled in
  let loc_min = List.fold_left min max_int locs in
  let loc_max = List.fold_left max 0 locs in
  let unique_tests =
    Testcase.dedup (List.concat_map (fun r -> r.tests) results)
  in
  {
    main;
    results;
    unique_tests;
    loc_min = (if locs = [] then 0 else loc_min);
    loc_max;
    programs;
  }

(* ----- cache keys ----- *)

let draw_key_parts ~oracle_name ~config ~prompts ~index =
  ("oracle", oracle_name)
  :: prompts
  @ [
        (* the effective seed, so a draw is shared between any two runs
           whose base_seed + index coincide — in particular between
           k-sweep prefixes *)
        ("seed", string_of_int (config.base_seed + index));
        ("temperature", Printf.sprintf "%h" config.temperature);
        ("timeout", Printf.sprintf "%h" config.timeout);
        ("max_paths", string_of_int config.max_paths);
        ("max_steps", string_of_int config.max_steps);
        ("max_solver_decisions", string_of_int config.max_solver_decisions);
        ("alphabet", String.init (List.length config.alphabet)
                       (List.nth config.alphabet));
      ("samples_per_path", string_of_int config.samples_per_path);
      (* tests are byte-identical either way, but the stored
         [solver_decisions] stat measures executed work and so depends
         on the toggle *)
      ("cex_cache", (if config.cex_cache then "1" else "0"));
    ]

let draw_key ~oracle_name ~config ~prompts ~index =
  Cache.Key.v ~stage:"draw" (draw_key_parts ~oracle_name ~config ~prompts ~index)

(* ----- the draw artifact codec ----- *)

let artifact_to_string ((r : model_result), program) =
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "eywa-draw 2";
  line "index %d" r.index;
  line "gen %h" r.gen_seconds;
  line "sym %h" r.symex_seconds;
  line "loc %d" r.c_loc;
  (match r.compile_error with
  | None -> line "err -"
  | Some e -> line "err %s" (Serialize.quote e));
  (match r.stats with
  | None -> line "stats -"
  | Some (st : Exec.stats) ->
      line "stats %d %d %d %d %d %d %d %d" st.paths_completed st.paths_pruned
        st.solver_calls st.solver_decisions st.cex_hits st.model_reuses
        (if st.timed_out then 1 else 0)
        st.ticks_used);
  line "src %s" (Serialize.quote r.c_source);
  (match program with
  | None -> line "prog -"
  | Some p -> line "prog %s" (Serialize.quote (Pretty.program ~headers:false p)));
  line "tests %d" (List.length r.tests);
  List.iter (fun t -> line "%s" (Serialize.test_to_line t)) r.tests;
  Buffer.contents buf

let artifact_of_string g ~main s =
  let ( let* ) = Result.bind in
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> Error "truncated artifact"
    | l :: rest ->
        lines := rest;
        Ok l
  in
  let field name =
    let* l = next () in
    let p = name ^ " " in
    let pl = String.length p in
    if String.length l >= pl && String.sub l 0 pl = p then
      Ok (String.sub l pl (String.length l - pl))
    else Error (Printf.sprintf "expected %S line, found %S" name l)
  in
  let int_field name =
    let* v = field name in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "bad %s count %S" name v)
  in
  let float_field name =
    let* v = field name in
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad %s value %S" name v)
  in
  let opt_quoted name =
    let* v = field name in
    if v = "-" then Ok None
    else
      let* decoded = Serialize.unquote v in
      Ok (Some decoded)
  in
  let* header = next () in
  (* version-bumped when the stats line grew solver fields: a v1 entry
     fails to parse and is recomputed, which is the intended
     invalidation path *)
  if header <> "eywa-draw 2" then Error "not a draw artifact"
  else
    let* index = int_field "index" in
    let* gen_seconds = float_field "gen" in
    let* symex_seconds = float_field "sym" in
    let* c_loc = int_field "loc" in
    let* compile_error = opt_quoted "err" in
    let* stats_line = field "stats" in
    let* stats =
      if stats_line = "-" then Ok None
      else
        match
          String.split_on_char ' ' stats_line |> List.map int_of_string_opt
        with
        | [
            Some completed;
            Some pruned;
            Some calls;
            Some decisions;
            Some cex_hits;
            Some model_reuses;
            Some timed;
            Some ticks;
          ] ->
            Ok
              (Some
                 {
                   Exec.paths_completed = completed;
                   paths_pruned = pruned;
                   solver_calls = calls;
                   solver_decisions = decisions;
                   cex_hits;
                   model_reuses;
                   timed_out = timed <> 0;
                   ticks_used = ticks;
                 })
        | _ -> Error (Printf.sprintf "bad stats line %S" stats_line)
    in
    let* src_quoted = field "src" in
    let* c_source = Serialize.unquote src_quoted in
    let* program_text = opt_quoted "prog" in
    let* program =
      match program_text with
      | None -> Ok None
      | Some text -> (
          match Parser.parse_result text with
          | Error e -> Error ("stored program: " ^ e)
          | Ok parsed ->
              (* rebuild through the same pure construction as the cold
                 path: the parser drops doc comments, Harness.build
                 restores them along with everything else *)
              let funcs =
                List.filter
                  (fun (f : Ast.func) -> f.fname <> Harness.entry_name)
                  parsed.Ast.funcs
              in
              Ok (Some (Harness.build g ~main ~funcs)))
    in
    let* n_tests = int_field "tests" in
    let rec read_tests acc = function
      | 0 -> Ok (List.rev acc)
      | n ->
          let* l = next () in
          let* t = Serialize.test_of_line l in
          read_tests (t :: acc) (n - 1)
    in
    let* tests = read_tests [] n_tests in
    Ok
      ( { index; c_source; c_loc; compile_error; tests; stats; gen_seconds;
          symex_seconds },
        program )

(* ----- the composed engine ----- *)

(* Replay one draw's stage events at the merge point. Workers stay
   pure (no sink calls off the orchestrating domain), and a cache hit
   replays exactly what the miss computed, so the event log is a
   deterministic function of the inputs. *)
let emit_draw_events sink (r : model_result) =
  sink (Instrument.Draw_started { index = r.index });
  (match r.compile_error with
  | Some tagged ->
      let stage, message =
        match String.index_opt tagged ':' with
        | Some i ->
            ( String.sub tagged 0 i,
              String.trim
                (String.sub tagged (i + 1) (String.length tagged - i - 1)) )
        | None -> ("compile", tagged)
      in
      sink (Instrument.Compile_rejected { index = r.index; stage; message })
  | None -> ());
  (match r.stats with
  | Some (st : Exec.stats) ->
      sink
        (Instrument.Symex_done
           {
             index = r.index;
             ticks = st.ticks_used;
             paths_completed = st.paths_completed;
             paths_pruned = st.paths_pruned;
             solver_calls = st.solver_calls;
             solver_decisions = st.solver_decisions;
             cex_hits = st.cex_hits;
             model_reuses = st.model_reuses;
             timed_out = st.timed_out;
           })
  | None -> ());
  sink
    (Instrument.Draw_finished
       {
         index = r.index;
         tests = List.length r.tests;
         gen_seconds = r.gen_seconds;
         symex_seconds = r.symex_seconds;
       })

let run ?cache ?(sink = Instrument.null) ?(config = default_config) ?jobs
    ~oracle g ~main =
  match main with
  | Emodule.Regex _ | Emodule.Custom _ ->
      Error "Pipeline.run: main must be a Func module"
  | Emodule.Func main_f -> (
      match Graph.synthesis_order g ~main with
      | Error e -> Error e
      | Ok order ->
          let jobs =
            match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
          in
          let prompts = prompt_parts g ~order ~main:main_f in
          let key_of index =
            draw_key ~oracle_name:oracle.Oracle.name ~config ~prompts ~index
          in
          (* probe the cache sequentially, in index order *)
          let cached =
            List.init config.k (fun index ->
                match cache with
                | None -> (index, None)
                | Some c -> (
                    let key = key_of index in
                    match Cache.find ~sink c key with
                    | None -> (index, None)
                    | Some payload -> (
                        match artifact_of_string g ~main:main_f payload with
                        | Ok draw -> (index, Some draw)
                        | Error _ ->
                            (* corrupt entry: fall back to computing *)
                            (index, None))))
          in
          let missing =
            List.filter_map
              (fun (i, d) -> if d = None then Some i else None)
              cached
          in
          (* the misses are independent; fan them out and merge by
             model index, so the result is identical at any [jobs] *)
          let computed, pool_stats =
            Pool.with_pool ~jobs (fun pool ->
                Pool.map_stats pool
                  (fun i -> (i, run_draw ~oracle ~config g ~main:main_f ~order i))
                  missing)
          in
          sink
            (Instrument.Pool_merged
               {
                 label = "draw";
                 tasks = config.k;
                 computed = pool_stats.Pool.tasks;
                 jobs = pool_stats.Pool.jobs;
                 per_worker = pool_stats.Pool.per_worker;
                 queue_wait_ticks = pool_stats.Pool.queue_wait_ticks;
               });
          (match cache with
          | None -> ()
          | Some c ->
              List.iter
                (fun (i, draw) -> Cache.store c (key_of i) (artifact_to_string draw))
                computed);
          let draws =
            List.map
              (fun (i, d) ->
                match d with
                | Some draw -> draw
                | None -> List.assoc i computed)
              cached
          in
          List.iter (fun (r, _) -> emit_draw_events sink r) draws;
          let result = aggregate ~main:main_f draws in
          sink
            (Instrument.Suite_aggregated
               {
                 draws = List.length draws;
                 unique_tests = List.length result.unique_tests;
               });
          Ok result)
