(** Fixed-size domain work-pool for the synthesis pipeline.

    The three hot loops of the pipeline — the per-model-index loop in
    {!Synthesis.run}, the per-test loop of differential testing, and
    the per-model loop of the benchmark harness — are embarrassingly
    parallel. This pool runs them across OCaml domains while keeping
    the pipeline's determinism invariant: {!map} merges results by
    input index, never by completion order, so output is bit-for-bit
    independent of the pool size. *)

type t

val default_jobs : unit -> int
(** The [EYWA_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] worker domains ([jobs <= 1] spawns
    none and makes {!map} run inline). Creating a pool from inside a
    pool worker yields a degenerate inline pool — nested parallelism
    would oversubscribe the machine and risk deadlock. *)

val size : t -> int

val shutdown : t -> unit
(** Drain the queue, stop and join the workers. Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: [map pool f xs] equals
    [List.map f xs] for deterministic [f], whatever the pool size.
    On failure the exception belonging to the {e smallest} failing
    index is re-raised — the same exception a sequential left-to-right
    run surfaces first (the parallel path may have attempted the
    remaining elements, the inline path stops early; with a
    deterministic [f] the observable result is identical). Calls from
    inside a pool worker run inline sequentially. *)

type map_stats = {
  tasks : int;  (** elements mapped — equals [List.length xs] *)
  jobs : int;  (** the pool's size, 1 when the map ran inline *)
  per_worker : int list;
      (** tasks each worker executed, by worker index ([[tasks]] for an
          inline run). Scheduling-dependent: which worker grabs which
          task varies run to run — environment data, never part of a
          deterministic trace/cache key. *)
  queue_wait_ticks : int;
      (** sum over tasks of the queue backlog at enqueue time — a
          deterministic function of batch size and queue state, but
          pool-size-dependent (0 inline), so environment data too. *)
}
(** Utilization stats of one {!map_stats} batch, for the observability
    layer. Only [tasks] is invariant across pool sizes. *)

val map_stats : t -> ('a -> 'b) -> 'a list -> 'b list * map_stats
(** {!map} plus the batch's utilization stats. The result list obeys
    the same determinism contract as {!map}; the stats do not (see
    {!type:map_stats}). *)

val in_worker : unit -> bool
(** Whether the calling domain is one of a pool's workers. *)
