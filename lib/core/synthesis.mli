(** End-to-end model synthesis and test generation (§3.1, §4.1).

    For each of [k] model indices, Eywa prompts the oracle once per
    module (callees first), parses and typechecks the completions —
    skipping the model on any compilation error, as the paper does —
    assembles the harness, runs symbolic execution, and converts every
    completed path into a test case. Results are aggregated into the
    union of unique tests, with the min/max generated-code LoC that
    Table 2 reports.

    This module is a thin facade over {!Pipeline}, which exposes the
    individual stages plus caching ({!Pipeline.run}'s [?cache]) and
    instrumentation ([?sink]). The types below are re-exported
    equalities, so values flow freely between the two. *)

type config = Pipeline.config = {
  k : int;  (** number of model implementations to draw (paper: 10) *)
  temperature : float;  (** tau (paper: 0.6) *)
  timeout : float;
      (** per-model symbolic execution budget in "budget seconds" — a
          deterministic tick budget (see {!Eywa_symex.Exec.config}),
          so a cut-off model's tests don't depend on machine speed *)
  max_paths : int;
  max_steps : int;
  max_solver_decisions : int;
  alphabet : char list;  (** character domain for string/char atoms *)
  base_seed : int;
  samples_per_path : int;
      (** concrete tests drawn per symbolic path (distinct solver value
          rotations); Klee-style dense coverage of bounded inputs *)
  cex_cache : bool;
      (** let symex feasibility probes short-circuit through the
          per-draw counterexample cache (tests are byte-identical
          either way) *)
}

val default_config : config
(** k = 10, temperature = 0.6, timeout = 5 s, alphabet [a b . *],
    4 samples per path. *)

type model_result = Pipeline.model_result = {
  index : int;
  c_source : string;  (** the generated module implementations *)
  c_loc : int;
  compile_error : string option;
      (** set when this model was skipped; prefixed with the failing
          stage (["oracle: "] for completions that do not parse or do
          not define the requested function, ["typecheck: "] for
          assembled programs the checker rejects) so parallel failure
          logs are attributable *)
  tests : Testcase.t list;
  stats : Eywa_symex.Exec.stats option;
  gen_seconds : float;
  symex_seconds : float;
}

type t = Pipeline.t = {
  main : Emodule.func;
  results : model_result list;
  unique_tests : Testcase.t list;
  loc_min : int;  (** over models that compiled; 0 if none *)
  loc_max : int;
  programs : Eywa_minic.Ast.program list;  (** one per compiled model *)
}

val run :
  ?config:config ->
  ?jobs:int ->
  oracle:Oracle.t ->
  Graph.t ->
  main:Emodule.t ->
  (t, string) result
(** [Error _] only for structural problems (cyclic call edges, main not
    a Func module); per-model compile errors are recorded in
    [results].

    [jobs] is the number of pool domains the [k] independent draws fan
    out over (default {!Pool.default_jobs}, i.e. [EYWA_JOBS] or the
    core count). Results are merged by model index, so the returned
    {!t} is bit-for-bit independent of [jobs] — provided the oracle is
    a pure function of its request, which the simulated LLM is. *)

val replay :
  ?string_bound:int ->
  Graph.t ->
  main:Emodule.func ->
  Eywa_minic.Ast.program ->
  Testcase.t ->
  (Eywa_minic.Value.t, string) result
(** Re-run one test concretely against a synthesized model program
    (through the same harness entry), returning the model's output
    struct. Used by tests to validate that symbolic and concrete
    executions agree. *)
