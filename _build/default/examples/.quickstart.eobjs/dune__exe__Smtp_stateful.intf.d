examples/smtp_stateful.mli:
