examples/bgp_policy.ml: Eywa_bgp Eywa_difftest Eywa_llm Eywa_models List Printf
