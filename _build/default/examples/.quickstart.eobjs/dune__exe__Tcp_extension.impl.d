examples/tcp_extension.ml: Eywa_difftest Eywa_llm Eywa_models Eywa_stategraph Eywa_tcp List Printf String
