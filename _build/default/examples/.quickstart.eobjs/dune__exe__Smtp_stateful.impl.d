examples/smtp_stateful.ml: Eywa_core Eywa_difftest Eywa_llm Eywa_models Eywa_smtp Eywa_stategraph List Printf String
