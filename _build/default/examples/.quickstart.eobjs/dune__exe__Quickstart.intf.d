examples/quickstart.mli:
