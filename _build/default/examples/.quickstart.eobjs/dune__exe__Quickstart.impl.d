examples/quickstart.ml: Emodule Etype Eywa_core Eywa_llm Graph List Printf Prompt Synthesis Testcase
