examples/dns_bughunt.ml: Eywa_core Eywa_difftest Eywa_dns Eywa_llm Eywa_models List Printf
