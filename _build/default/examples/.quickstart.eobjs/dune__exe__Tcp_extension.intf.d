examples/tcp_extension.mli:
