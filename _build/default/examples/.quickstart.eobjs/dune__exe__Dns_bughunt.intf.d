examples/dns_bughunt.mli:
