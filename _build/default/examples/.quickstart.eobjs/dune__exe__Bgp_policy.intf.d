examples/bgp_policy.mli:
