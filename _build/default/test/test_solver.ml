module Term = Eywa_solver.Term
module Solve = Eywa_solver.Solve

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bvar name = Term.fresh_var ~name Term.Sbool [| 0; 1 |]
let ivar ?(domain = Array.init 8 (fun i -> i)) name =
  Term.fresh_var ~name (Term.Sint 3) domain

(* ----- smart constructors ----- *)

let test_const_folding () =
  check "and ff" true (Term.is_false (Term.and_ Term.ff Term.tt));
  check "and tt" true (Term.is_true (Term.and_ Term.tt Term.tt));
  check "or tt" true (Term.is_true (Term.or_ Term.ff Term.tt));
  check "not" true (Term.is_false (Term.not_ Term.tt));
  check "eq fold" true (Term.is_true (Term.eq (Term.const 3) (Term.const 3)));
  check "lt fold" true (Term.is_false (Term.lt (Term.const 3) (Term.const 3)));
  check "add fold" true (Term.add (Term.const 2) (Term.const 3) = Term.const 5);
  check "mul zero" true (Term.mul (Term.const 0) (Term.var (bvar "b")) = Term.const 0);
  check "div fold" true (Term.div (Term.const 7) (Term.const 2) = Term.const 3);
  check "div by zero is total" true (Term.div (Term.const 7) (Term.const 0) = Term.const 0);
  check "mod fold" true (Term.mod_ (Term.const 7) (Term.const 2) = Term.const 1)

let test_var_identities () =
  let v = Term.var (ivar "x") in
  check "x = x folds" true (Term.is_true (Term.eq v v));
  check "x < x folds" true (Term.is_false (Term.lt v v));
  check "x <= x folds" true (Term.is_true (Term.le v v));
  check "x + 0" true (Term.add v (Term.const 0) = v);
  check "x * 1" true (Term.mul v (Term.const 1) = v);
  check "x / 1" true (Term.div v (Term.const 1) = v)

let test_ite () =
  let v = Term.var (ivar "x") in
  check "ite true" true (Term.ite Term.tt v (Term.const 0) = v);
  check "ite false" true (Term.ite Term.ff v (Term.const 9) = Term.const 9);
  check "ite same" true (Term.ite (Term.var (bvar "c")) v v = v)

let test_vars_order () =
  let a = ivar "a" and b = ivar "b" in
  let t = Term.and_ (Term.eq (Term.var a) (Term.const 1))
            (Term.eq (Term.var b) (Term.var a)) in
  let vs = Term.vars t in
  check_int "two vars" 2 (List.length vs);
  check "first occurrence order" true
    ((List.hd vs).Term.vid = a.Term.vid)

let test_eval () =
  let a = ivar "a" and b = ivar "b" in
  let env vid = if vid = a.Term.vid then 3 else if vid = b.Term.vid then 5 else 0 in
  let t = Term.add (Term.var a) (Term.mul (Term.var b) (Term.const 2)) in
  check_int "3 + 5*2" 13 (Term.eval env t);
  check_int "lt" 1 (Term.eval env (Term.lt (Term.var a) (Term.var b)));
  check_int "not" 0 (Term.eval env (Term.not_ (Term.lt (Term.var a) (Term.var b))))

let test_peval_short_circuit () =
  let a = bvar "a" in
  (* one side unknown, the other determines the result *)
  let env _ = None in
  check "and with ff" true
    (Term.peval env (Term.And (Term.var a, Term.ff)) = Some 0);
  check "or with tt" true
    (Term.peval env (Term.Or (Term.var a, Term.tt)) = Some 1);
  check "unknown stays unknown" true (Term.peval env (Term.var a) = None)

(* ----- solver ----- *)

let test_solve_simple () =
  let x = ivar "x" in
  let c = Term.eq (Term.var x) (Term.const 5) in
  match Solve.solve [ c ] with
  | Solve.Sat m -> check_int "x = 5" 5 (Solve.value m x)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

let test_solve_unsat () =
  let x = ivar "x" in
  let cs = [ Term.lt (Term.var x) (Term.const 3); Term.gt (Term.var x) (Term.const 5) ] in
  check "unsat" true (Solve.solve cs = Solve.Unsat)

let test_solve_multi_var () =
  let x = ivar "x" and y = ivar "y" in
  let cs =
    [
      Term.eq (Term.add (Term.var x) (Term.var y)) (Term.const 9);
      Term.lt (Term.var x) (Term.var y);
      Term.gt (Term.var x) (Term.const 2);
    ]
  in
  match Solve.solve cs with
  | Solve.Sat m ->
      let vx = Solve.value m x and vy = Solve.value m y in
      check_int "sum" 9 (vx + vy);
      check "x < y" true (vx < vy);
      check "x > 2" true (vx > 2)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

let test_solve_respects_domain () =
  let x = ivar ~domain:[| 2; 4; 6 |] "x" in
  let cs = [ Term.gt (Term.var x) (Term.const 4) ] in
  match Solve.solve cs with
  | Solve.Sat m -> check_int "only 6 fits" 6 (Solve.value m x)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

let test_solve_budget () =
  (* tiny budget forces Unknown on a search that needs backtracking *)
  let vars = List.init 6 (fun i -> ivar (Printf.sprintf "v%d" i)) in
  let sum =
    List.fold_left (fun acc v -> Term.add acc (Term.var v)) (Term.const 0) vars
  in
  let cs = [ Term.eq sum (Term.const 42) ] in
  match Solve.solve ~max_decisions:3 cs with
  | Solve.Unknown -> ()
  | Solve.Sat _ | Solve.Unsat -> Alcotest.fail "expected unknown under tiny budget"

let test_empty_constraints () =
  match Solve.solve [] with
  | Solve.Sat _ -> ()
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "empty set is sat"

let test_constant_false () =
  check "constant false is unsat" true (Solve.solve [ Term.ff ] = Solve.Unsat)

let test_div_constraint () =
  let x = ivar ~domain:(Array.init 16 (fun i -> i)) "x" in
  let cs =
    [
      Term.eq (Term.div (Term.var x) (Term.const 4)) (Term.const 2);
      Term.eq (Term.mod_ (Term.var x) (Term.const 4)) (Term.const 3);
    ]
  in
  match Solve.solve cs with
  | Solve.Sat m -> check_int "x = 11" 11 (Solve.value m x)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

(* ----- properties ----- *)

(* Random terms over a fixed set of variables. *)
let gen_term vars =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map Term.const (int_range (-4) 12);
            map (fun i -> Term.var (List.nth vars (i mod List.length vars)))
              (int_range 0 (List.length vars - 1)) ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Term.not_ sub;
            map2 Term.and_ sub sub;
            map2 Term.or_ sub sub;
            map2 Term.eq sub sub;
            map2 Term.lt sub sub;
            map2 Term.le sub sub;
            map2 Term.add sub sub;
            map2 Term.sub sub sub;
            map2 Term.mul sub sub;
          ])

let shared_vars = List.init 3 (fun i -> ivar (Printf.sprintf "q%d" i))

let prop_solve_sound =
  QCheck2.Test.make ~count:200 ~name:"models returned by solve satisfy the constraints"
    (gen_term shared_vars)
    (fun t ->
      match Solve.solve ~max_decisions:100_000 [ t ] with
      | Solve.Sat m -> Solve.check m [ t ]
      | Solve.Unsat | Solve.Unknown -> true)

let prop_peval_agrees_with_eval =
  QCheck2.Test.make ~count:200 ~name:"peval under a total env agrees with eval"
    (gen_term shared_vars)
    (fun t ->
      let env vid = (vid * 7 mod 5) + 1 in
      let penv vid = Some (env vid) in
      Term.peval penv t = Some (Term.eval env t))

let prop_unsat_means_no_assignment =
  QCheck2.Test.make ~count:100
    ~name:"when solve says unsat, exhaustive enumeration agrees (1 var)"
    (gen_term [ List.hd shared_vars ])
    (fun t ->
      let v = List.hd shared_vars in
      match Solve.solve [ t ] with
      | Solve.Unsat ->
          Array.for_all
            (fun value -> Term.eval (fun _ -> value) t = 0)
            v.Term.domain
      | Solve.Sat _ | Solve.Unknown -> true)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_const_folding;
    Alcotest.test_case "variable identities" `Quick test_var_identities;
    Alcotest.test_case "ite simplification" `Quick test_ite;
    Alcotest.test_case "vars in first-occurrence order" `Quick test_vars_order;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "peval short circuits" `Quick test_peval_short_circuit;
    Alcotest.test_case "solve a simple equation" `Quick test_solve_simple;
    Alcotest.test_case "detect unsat" `Quick test_solve_unsat;
    Alcotest.test_case "solve multi-variable constraints" `Quick test_solve_multi_var;
    Alcotest.test_case "solution drawn from the domain" `Quick test_solve_respects_domain;
    Alcotest.test_case "decision budget yields Unknown" `Quick test_solve_budget;
    Alcotest.test_case "empty constraint set is sat" `Quick test_empty_constraints;
    Alcotest.test_case "constant false is unsat" `Quick test_constant_false;
    Alcotest.test_case "div/mod constraints solve" `Quick test_div_constraint;
    QCheck_alcotest.to_alcotest prop_solve_sound;
    QCheck_alcotest.to_alcotest prop_peval_agrees_with_eval;
    QCheck_alcotest.to_alcotest prop_unsat_means_no_assignment;
  ]
