open Eywa_smtp
module Stategraph = Eywa_stategraph.Stategraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ----- the reference machine ----- *)

let test_happy_path () =
  let replies =
    Machine.run_session
      [ Machine.Helo; Machine.Mail_from; Machine.Rcpt_to; Machine.Data;
        Machine.End_data; Machine.Quit ]
  in
  Alcotest.(check (list string)) "full transaction"
    [ "250"; "250"; "250"; "354"; "250"; "221" ] replies

let test_bad_sequences () =
  check_str "MAIL before HELO" "503"
    (List.hd (Machine.run_session [ Machine.Mail_from ]));
  check_str "RCPT before MAIL" "503"
    (List.nth (Machine.run_session [ Machine.Helo; Machine.Rcpt_to ]) 1);
  check_str "DATA before RCPT" "503"
    (List.nth (Machine.run_session [ Machine.Helo; Machine.Mail_from; Machine.Data ]) 2)

let test_multiple_recipients () =
  let replies =
    Machine.run_session
      [ Machine.Helo; Machine.Mail_from; Machine.Rcpt_to; Machine.Rcpt_to;
        Machine.Data ]
  in
  Alcotest.(check (list string)) "extra RCPT allowed"
    [ "250"; "250"; "250"; "250"; "354" ] replies

let test_data_consumes_anything () =
  let reply, state =
    Machine.handle Machine.Data_received (Machine.Other "random body line")
  in
  check_str "body line gets 354" "354" reply;
  check "stays collecting" true (state = Machine.Data_received)

let test_end_data_resets () =
  let _, state = Machine.handle Machine.Data_received Machine.End_data in
  check "back to INITIAL" true (state = Machine.Initial)

let test_quit_everywhere () =
  List.iter
    (fun s ->
      let reply, state = Machine.handle s Machine.Quit in
      check_str "221 on quit" "221" reply;
      check "quitted" true (state = Machine.Quitted))
    [ Machine.Initial; Machine.Helo_sent; Machine.Ehlo_sent;
      Machine.Mail_from_received; Machine.Rcpt_to_received ]

let test_letters_roundtrip () =
  List.iter
    (fun c ->
      check "letter round trip" true
        (Machine.command_of_letter (Machine.command_to_letter c) = c))
    [ Machine.Helo; Machine.Ehlo; Machine.Mail_from; Machine.Rcpt_to;
      Machine.Data; Machine.End_data; Machine.Quit ]

let test_state_names_roundtrip () =
  List.iter
    (fun s ->
      check "state name round trip" true
        (Machine.state_of_string (Machine.state_to_string s) = Some s))
    [ Machine.Initial; Machine.Helo_sent; Machine.Ehlo_sent;
      Machine.Mail_from_received; Machine.Rcpt_to_received;
      Machine.Data_received; Machine.Quitted ]

let test_reference_transitions_consistent () =
  (* each declared transition is reproduced by the machine *)
  List.iter
    (fun ((s, letter), s') ->
      match Machine.state_of_string s with
      | None -> Alcotest.failf "bad state %s" s
      | Some state ->
          let _, next = Machine.handle state (Machine.command_of_letter letter) in
          check_str "transition agrees" s' (Machine.state_to_string next))
    Machine.reference_transitions

(* ----- the aiosmtpd quirk ----- *)

let test_quirk_accepts_mail_without_helo () =
  let reply, state =
    Machine.handle ~quirks:[ Machine.Accept_mail_without_helo ] Machine.Initial
      Machine.Mail_from
  in
  check_str "accepted" "250" reply;
  check "jumped ahead" true (state = Machine.Mail_from_received);
  (* the reference rejects the same input *)
  let reply, state = Machine.handle Machine.Initial Machine.Mail_from in
  check_str "reference rejects" "503" reply;
  check "reference stays" true (state = Machine.Initial)

(* ----- implementations and driving ----- *)

let reference_graph = Stategraph.of_list Machine.reference_transitions

let test_impls_roster () =
  check_int "three servers" 3 (List.length Impls.all);
  check "aiosmtpd has the bug" true
    (match Impls.find "aiosmtpd" with
    | Some impl -> Impls.quirks impl <> []
    | None -> false);
  check "opensmtpd clean" true
    (match Impls.find "opensmtpd" with
    | Some impl -> Impls.quirks impl = []
    | None -> false)

let test_drive_and_probe () =
  match Impls.find "smtpd" with
  | None -> Alcotest.fail "smtpd missing"
  | Some impl -> (
      match
        Impls.drive_and_probe impl reference_graph ~state:"RCPT_TO_RECEIVED"
          ~input:"D"
      with
      | Ok reply -> check_str "DATA from RCPT state" "354" reply
      | Error m -> Alcotest.fail m)

let test_drive_unreachable () =
  let tiny = Stategraph.of_list [ (("INITIAL", "H"), "HELO_SENT") ] in
  match Impls.find "smtpd" with
  | None -> Alcotest.fail "smtpd missing"
  | Some impl ->
      check "unreachable state reported" true
        (Result.is_error
           (Impls.drive_and_probe impl tiny ~state:"DATA_RECEIVED" ~input:"."))

let test_drive_difference_between_impls () =
  (* the (INITIAL, M) probe distinguishes aiosmtpd from the others *)
  let probe impl_name =
    match Impls.find impl_name with
    | None -> Alcotest.fail "missing impl"
    | Some impl -> (
        match Impls.drive_and_probe impl reference_graph ~state:"INITIAL" ~input:"M" with
        | Ok r -> r
        | Error m -> Alcotest.fail m)
  in
  check_str "aiosmtpd accepts" "250" (probe "aiosmtpd");
  check_str "smtpd rejects" "503" (probe "smtpd");
  check_str "opensmtpd rejects" "503" (probe "opensmtpd")

(* property: any command sequence keeps every implementation in sync
   with the reference except at the documented quirk point *)
let prop_sessions_agree_modulo_quirk =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200
       ~name:"smtpd/opensmtpd replies equal the reference on random sessions"
       QCheck2.Gen.(list_size (int_range 0 8)
                      (oneofl [ "H"; "E"; "M"; "R"; "D"; "."; "Q"; "x" ]))
       (fun letters ->
         let commands = List.map Machine.command_of_letter letters in
         let reference = Machine.run_session commands in
         List.for_all
           (fun name ->
             match Impls.find name with
             | Some impl -> Impls.run_session impl commands = reference
             | None -> false)
           [ "smtpd"; "opensmtpd" ]))

let suite =
  [
    Alcotest.test_case "machine: happy path" `Quick test_happy_path;
    Alcotest.test_case "machine: bad sequences" `Quick test_bad_sequences;
    Alcotest.test_case "machine: multiple recipients" `Quick test_multiple_recipients;
    Alcotest.test_case "machine: data body collected" `Quick test_data_consumes_anything;
    Alcotest.test_case "machine: end-of-data resets" `Quick test_end_data_resets;
    Alcotest.test_case "machine: quit from any state" `Quick test_quit_everywhere;
    Alcotest.test_case "machine: command letters round trip" `Quick test_letters_roundtrip;
    Alcotest.test_case "machine: state names round trip" `Quick test_state_names_roundtrip;
    Alcotest.test_case "machine: declared transitions agree" `Quick
      test_reference_transitions_consistent;
    Alcotest.test_case "quirk: MAIL without HELO" `Quick test_quirk_accepts_mail_without_helo;
    Alcotest.test_case "impls: roster" `Quick test_impls_roster;
    Alcotest.test_case "impls: drive and probe" `Quick test_drive_and_probe;
    Alcotest.test_case "impls: unreachable state" `Quick test_drive_unreachable;
    Alcotest.test_case "impls: probe distinguishes aiosmtpd" `Quick
      test_drive_difference_between_impls;
    prop_sessions_agree_modulo_quirk;
  ]
