(* Additional edge cases across the substrate: symbolic strcpy and
   aggregates, parser corner forms, harness guard composition. *)

module Term = Eywa_solver.Term
module Sv = Eywa_symex.Sv
module Exec = Eywa_symex.Exec
module Parser = Eywa_minic.Parser
module Value = Eywa_minic.Value
open Eywa_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok src =
  match Parser.parse_result src with
  | Ok p ->
      Eywa_minic.Typecheck.check_exn p;
      p
  | Error m -> Alcotest.failf "parse failed: %s" m

let sym_int ?(width = 3) name =
  Sv.fresh_scalar ~name (Eywa_minic.Ast.Tint width)
    ~domain:(Array.init (1 lsl width) (fun i -> i))

(* ----- symbolic strcpy ----- *)

let test_symex_strcpy_of_symbolic () =
  let alphabet = [| 0; Char.code 'a'; Char.code 'b' |] in
  let s = Sv.symbolic_string ~alphabet ~name:"s" 2 in
  let p =
    parse_ok
      "bool f(char* s) { char buf[4]; strcpy(buf, s); return strcmp(buf, \"ab\") == 0; }"
  in
  let paths, _ = Exec.run p ~entry:"f" ~args:[ s ] ~assumes:[] in
  let hits =
    List.filter
      (fun (pr : Exec.path) -> Value.truthy (Sv.concretize pr.model pr.ret))
      paths
  in
  check_int "one matching class" 1 (List.length hits);
  Alcotest.(check string) "copied string solved" "ab"
    (Value.cstring (Sv.concretize (List.hd hits).model s))

let test_symex_struct_field_string () =
  (* strings inside structs flow through field reads and strlen *)
  let alphabet = [| 0; Char.code 'a' |] in
  let name_sv = Sv.symbolic_string ~alphabet ~name:"nm" 2 in
  let box = Sv.Sstruct ("Box", [ ("nm", name_sv) ]) in
  let p =
    parse_ok
      "typedef struct { char* nm; } Box;\nint f(Box b) { return strlen(b.nm); }"
  in
  let paths, _ = Exec.run p ~entry:"f" ~args:[ box ] ~assumes:[] in
  check_int "one path per length" 3 (List.length paths)

let test_symex_array_write_fork () =
  (* writing through a symbolic index forks per cell *)
  let idx = sym_int ~width:2 "i" in
  let p =
    parse_ok
      "int f(uint8_t i) { uint8_t xs[3]; xs[0] = 1; xs[1] = 2; xs[2] = 3; \
       xs[i] = 9; return xs[0] + xs[1] + xs[2]; }"
  in
  let paths, _ = Exec.run p ~entry:"f" ~args:[ idx ] ~assumes:[] in
  let ok = List.filter (fun (pr : Exec.path) -> pr.error = None) paths in
  let err = List.filter (fun (pr : Exec.path) -> pr.error <> None) paths in
  check_int "three in-bounds writes" 3 (List.length ok);
  check_int "one out-of-bounds (i = 3)" 1 (List.length err);
  (* each in-bounds path replaces exactly one element *)
  let sums =
    List.map
      (fun (pr : Exec.path) -> Value.to_int (Sv.concretize pr.model pr.ret))
      ok
    |> List.sort compare
  in
  check "sums are 6 with one element swapped for 9" true
    (sums = [ 6 - 1 + 9; 6 - 2 + 9; 6 - 3 + 9 ] || sums = [ 12; 13; 14 ])

let test_symex_recursion_forks () =
  let x = sym_int "x" in
  let p =
    parse_ok
      "int count(uint8_t x) { if (x == 0) { return 0; } return 1 + count(x - 1); }"
  in
  let paths, _ = Exec.run p ~entry:"count" ~args:[ x ] ~assumes:[] in
  check_int "one path per recursion depth" 8 (List.length paths)

(* ----- parser corner forms ----- *)

let test_parser_else_if_chain () =
  let p =
    parse_ok
      "int f(int a) { if (a == 1) { return 1; } else if (a == 2) { return 2; } \
       else { return 3; } }"
  in
  match Eywa_minic.Interp.run p "f" [ Value.Vint 2 ] with
  | Ok v -> check_int "middle branch" 2 (Value.to_int v)
  | Error e -> Alcotest.failf "%s" (Eywa_minic.Interp.error_to_string e)

let test_parser_empty_for_clauses () =
  let p =
    parse_ok
      "int f() { int acc = 0; for (;;) { acc += 1; if (acc > 4) { break; } } return acc; }"
  in
  match Eywa_minic.Interp.run p "f" [] with
  | Ok v -> check_int "bare for" 5 (Value.to_int v)
  | Error e -> Alcotest.failf "%s" (Eywa_minic.Interp.error_to_string e)

let test_parser_nested_struct_access () =
  let p =
    parse_ok
      "typedef struct { int x; } Inner;\n\
       typedef struct { Inner a; Inner b; } Outer;\n\
       int f(Outer o) { o.a.x = o.b.x + 1; return o.a.x; }"
  in
  let inner v = Value.Vstruct ("Inner", [ ("x", Value.Vint v) ]) in
  let outer = Value.Vstruct ("Outer", [ ("a", inner 0); ("b", inner 41) ]) in
  match Eywa_minic.Interp.run p "f" [ outer ] with
  | Ok v -> check_int "nested field update" 42 (Value.to_int v)
  | Error e -> Alcotest.failf "%s" (Eywa_minic.Interp.error_to_string e)

let test_parser_comment_only_body () =
  let p = parse_ok "void f() { // nothing to do\n }" in
  check "parses empty body" true ((List.hd p.Eywa_minic.Ast.funcs).body = [])

(* ----- harness: func guard composed with regex guard ----- *)

let test_harness_func_guard_gates_main () =
  let sarg = Etype.Arg.v "s" (Etype.string_ ~maxsize:3) "input" in
  let main =
    Emodule.func_module "target_fn" "target" [ sarg; Etype.Arg.v "r" Etype.bool_ "out" ]
  in
  let guard =
    Emodule.func_module "guard_fn" "validity"
      [ sarg; Etype.Arg.v "valid" Etype.bool_ "ok" ]
  in
  let g = Graph.create () in
  Graph.pipe g guard main;
  let oracle =
    Oracle.make ~name:"canned" (fun req ->
        let has needle =
          let nl = String.length needle and hl = String.length req.Oracle.user in
          let rec go i =
            i + nl <= hl && (String.sub req.user i nl = needle || go (i + 1))
          in
          go 0
        in
        if has "bool guard_fn" then
          "bool guard_fn(char* s) { return strlen(s) > 1; }"
        else "bool target_fn(char* s) { return s[0] == 'a'; }")
  in
  let config = { Synthesis.default_config with k = 1; alphabet = [ 'a'; 'b' ] } in
  match Synthesis.run ~config ~oracle g ~main with
  | Error e -> Alcotest.fail e
  | Ok result ->
      (* every short input must be flagged bad_input by the func guard *)
      List.iter
        (fun (t : Testcase.t) ->
          let s = Testcase.input_string t "s" in
          if String.length s <= 1 && t.error = None then
            check (Printf.sprintf "%S flagged" s) true t.bad_input)
        result.unique_tests;
      check "some valid tests too" true
        (List.exists (fun (t : Testcase.t) -> not t.bad_input) result.unique_tests)

(* ----- adapters: decoding robustness ----- *)

let test_dns_adapter_skips_error_tests () =
  let t =
    { Testcase.inputs = [ ("query", Value.of_cstring "a") ];
      result = None; bad_input = false; error = Some "division by zero" }
  in
  check "crash-path tests not replayed" true
    (Eywa_models.Dns_adapter.artifacts_for ~model_id:"DNAME" t = None)

let test_bgp_adapter_handles_missing_inputs () =
  let t =
    { Testcase.inputs = []; result = Some (Value.Vbool true); bad_input = false;
      error = None }
  in
  (* CONFED treats absent scalars as zero rather than crashing *)
  check "confed observation built" true
    (Eywa_models.Bgp_adapter.observations_for ~model_id:"CONFED" t <> None);
  check "rmap-pl needs its structs" true
    (Eywa_models.Bgp_adapter.observations_for ~model_id:"RMAP-PL" t = None)

let suite =
  [
    Alcotest.test_case "symex: strcpy of symbolic strings" `Quick
      test_symex_strcpy_of_symbolic;
    Alcotest.test_case "symex: strings inside structs" `Quick
      test_symex_struct_field_string;
    Alcotest.test_case "symex: array writes fork per index" `Quick
      test_symex_array_write_fork;
    Alcotest.test_case "symex: recursion forks per depth" `Quick
      test_symex_recursion_forks;
    Alcotest.test_case "parser: else-if chains" `Quick test_parser_else_if_chain;
    Alcotest.test_case "parser: bare for(;;)" `Quick test_parser_empty_for_clauses;
    Alcotest.test_case "parser: nested struct access" `Quick
      test_parser_nested_struct_access;
    Alcotest.test_case "parser: comment-only body" `Quick test_parser_comment_only_body;
    Alcotest.test_case "harness: func guards gate the main module" `Quick
      test_harness_func_guard_gates_main;
    Alcotest.test_case "adapters: crash tests skipped" `Quick
      test_dns_adapter_skips_error_tests;
    Alcotest.test_case "adapters: missing inputs tolerated" `Quick
      test_bgp_adapter_handles_missing_inputs;
  ]
