(* Markdown bug-report rendering. *)

module Report = Eywa_models.Report
module Difftest = Eywa_difftest.Difftest

let check = Alcotest.(check bool)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_generic_rendering () =
  let acc = Difftest.create () in
  ignore
    (Difftest.record acc
       [
         { Difftest.impl = "a"; fields = [ ("rcode", "NOERROR") ] };
         { Difftest.impl = "b"; fields = [ ("rcode", "NOERROR") ] };
         { Difftest.impl = "c"; fields = [ ("rcode", "NXDOMAIN") ] };
       ]);
  let text = Report.render_generic ~title:"Findings" (Difftest.report acc) in
  check "title" true (contains ~needle:"# Findings" text);
  check "dissenter section" true (contains ~needle:"## c" text);
  check "table row" true (contains ~needle:"| rcode | `NXDOMAIN` | `NOERROR` | 1 |" text);
  check "only dissenters get sections" false (contains ~needle:"## a" text)

let test_dns_report_end_to_end () =
  let oracle = Eywa_llm.Gpt.oracle () in
  match
    Eywa_models.Model_def.synthesize ~k:3 ~timeout:2.0 ~oracle
      Eywa_models.Dns_models.dname
  with
  | Error e -> Alcotest.fail e
  | Ok synth ->
      let text =
        Report.dns ~model_id:"DNAME" ~version:Eywa_dns.Impls.Old
          synth.unique_tests
      in
      check "has a title" true (contains ~needle:"# Eywa findings: DNS DNAME model" text);
      check "knot section present" true (contains ~needle:"## knot" text);
      check "reproduction zone included" true (contains ~needle:"$ORIGIN test." text);
      check "query line included" true (contains ~needle:"Query: `" text)

let suite =
  [
    Alcotest.test_case "generic rendering" `Quick test_generic_rendering;
    Alcotest.test_case "dns report end to end" `Slow test_dns_report_end_to_end;
  ]
