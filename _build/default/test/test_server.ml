(* The loopback UDP nameserver: real sockets over the wire codec. *)

open Eywa_dns

let check = Alcotest.(check bool)
let n = Name.of_string

let test_zone =
  Zone.v (n "test.")
    [
      Rr.v (n "test.") Rr.SOA Rr.Soa_data;
      Rr.v (n "test.") Rr.NS (Rr.Target (n "ns1.outside.edu."));
      Rr.v (n "a.test.") Rr.A (Rr.Address "10.0.0.1");
      Rr.v (n "c.test.") Rr.CNAME (Rr.Target (n "a.test."));
    ]

let with_server handler f =
  match Server.start handler with
  | Error m -> Alcotest.fail m
  | Ok server ->
      Fun.protect ~finally:(fun () -> Server.stop server) (fun () ->
          f (Server.port server))

let test_udp_roundtrip () =
  with_server (Lookup.lookup test_zone) (fun port ->
      match Server.query ~port { Message.qname = n "a.test."; qtype = Rr.A } with
      | Error m -> Alcotest.fail m
      | Ok r ->
          check "noerror" true (r.Message.rcode = Message.NOERROR);
          check "aa" true r.Message.aa;
          check "answer over the wire" true
            (List.exists
               (fun (rr : Rr.t) -> rr.rdata = Rr.Address "10.0.0.1")
               r.Message.answer))

let test_udp_cname_chain () =
  with_server (Lookup.lookup test_zone) (fun port ->
      match Server.query ~port { Message.qname = n "c.test."; qtype = Rr.A } with
      | Error m -> Alcotest.fail m
      | Ok r -> check "two records" true (List.length r.Message.answer = 2))

let test_udp_nxdomain () =
  with_server (Lookup.lookup test_zone) (fun port ->
      match Server.query ~port { Message.qname = n "zz.test."; qtype = Rr.A } with
      | Error m -> Alcotest.fail m
      | Ok r -> check "nxdomain" true (r.Message.rcode = Message.NXDOMAIN))

let test_crash_becomes_servfail () =
  with_server (fun _ -> Message.Crash "boom") (fun port ->
      match Server.query ~port { Message.qname = n "a.test."; qtype = Rr.A } with
      | Error m -> Alcotest.fail m
      | Ok r -> check "servfail" true (r.Message.rcode = Message.SERVFAIL))

let test_query_timeout () =
  (* nothing listens on this port; expect a timeout error, not a hang *)
  match
    Server.query ~timeout:0.2 ~port:1 { Message.qname = n "a.test."; qtype = Rr.A }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a timeout"

let test_two_servers_differ () =
  (* the socket path preserves the differential signal *)
  let quirky =
    Lookup.lookup ~quirks:[ Lookup.Cname_chain_not_followed ] test_zone
  in
  with_server (Lookup.lookup test_zone) (fun port_ref ->
      with_server quirky (fun port_quirk ->
          let q = { Message.qname = n "c.test."; qtype = Rr.A } in
          match (Server.query ~port:port_ref q, Server.query ~port:port_quirk q) with
          | Ok a, Ok b ->
              check "answers differ over the wire" false
                (Message.equal_response a b)
          | _ -> Alcotest.fail "query failed"))

let suite =
  [
    Alcotest.test_case "udp round trip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp CNAME chain" `Quick test_udp_cname_chain;
    Alcotest.test_case "udp NXDOMAIN" `Quick test_udp_nxdomain;
    Alcotest.test_case "crash answered as SERVFAIL" `Quick test_crash_becomes_servfail;
    Alcotest.test_case "client timeout" `Quick test_query_timeout;
    Alcotest.test_case "differential signal over sockets" `Quick
      test_two_servers_differ;
  ]
