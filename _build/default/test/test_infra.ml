(* State graphs and the differential-testing harness. *)

module Stategraph = Eywa_stategraph.Stategraph
module Difftest = Eywa_difftest.Difftest

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- state graphs ----- *)

let linear =
  Stategraph.of_list
    [ (("A", "x"), "B"); (("B", "y"), "C"); (("C", "z"), "D") ]

let branching =
  Stategraph.of_list
    [
      (("S", "a"), "T"); (("S", "b"), "U"); (("T", "c"), "V"); (("U", "d"), "V");
      (("V", "e"), "S");
    ]

let test_graph_step () =
  check "edge" true (Stategraph.step linear ~state:"A" ~input:"x" = Some "B");
  check "missing" true (Stategraph.step linear ~state:"A" ~input:"y" = None)

let test_graph_states () =
  check_int "four states" 4 (List.length (Stategraph.states linear))

let test_graph_bfs_shortest () =
  check "trivial" true (Stategraph.path_to linear ~start:"A" ~goal:"A" = Some []);
  check "one hop" true (Stategraph.path_to linear ~start:"A" ~goal:"B" = Some [ "x" ]);
  check "full chain" true
    (Stategraph.path_to linear ~start:"A" ~goal:"D" = Some [ "x"; "y"; "z" ]);
  check "unreachable" true (Stategraph.path_to linear ~start:"D" ~goal:"A" = None)

let test_graph_bfs_is_shortest () =
  let g =
    Stategraph.of_list
      [
        (("A", "long1"), "M"); (("M", "long2"), "Z"); (("A", "short"), "Z");
      ]
  in
  check "shortest wins" true (Stategraph.path_to g ~start:"A" ~goal:"Z" = Some [ "short" ])

let test_graph_cycles_terminate () =
  check "cycle handled" true
    (Stategraph.path_to branching ~start:"S" ~goal:"V" <> None);
  check_int "reachable set" 4 (List.length (Stategraph.reachable branching ~start:"S"))

let test_graph_duplicate_keys () =
  let g = Stategraph.of_list [ (("A", "x"), "B"); (("A", "x"), "C") ] in
  check "first binding wins" true (Stategraph.step g ~state:"A" ~input:"x" = Some "B")

(* ----- difftest ----- *)

let obs impl fields = { Difftest.impl; fields }

let test_majority () =
  check "plain majority" true
    (Difftest.field_majority [ ("a", "x"); ("b", "x"); ("c", "y") ] = "x");
  check "tie breaks to smaller" true
    (Difftest.field_majority [ ("a", "x"); ("b", "y") ] = "x")

let test_compare_all () =
  let observations =
    [
      obs "a" [ ("rcode", "NOERROR"); ("aa", "true") ];
      obs "b" [ ("rcode", "NOERROR"); ("aa", "true") ];
      obs "c" [ ("rcode", "NXDOMAIN"); ("aa", "true") ];
    ]
  in
  match Difftest.compare_all observations with
  | [ d ] ->
      check "dissenter named" true (d.Difftest.d_impl = "c");
      check "field named" true (d.Difftest.d_field = "rcode");
      check "got" true (d.Difftest.d_got = "NXDOMAIN");
      check "majority" true (d.Difftest.d_majority = "NOERROR")
  | ds -> Alcotest.failf "expected one disagreement, got %d" (List.length ds)

let test_compare_all_agreement () =
  let observations = [ obs "a" [ ("f", "1") ]; obs "b" [ ("f", "1") ] ] in
  check "no disagreements" true (Difftest.compare_all observations = [])

let test_compare_single_observation () =
  check "single observation vacuous" true
    (Difftest.compare_all [ obs "a" [ ("f", "1") ] ] = [])

let test_accum_and_report () =
  let acc = Difftest.create () in
  (* same root cause twice, plus one clean test *)
  let bad () =
    [ obs "a" [ ("f", "1") ]; obs "b" [ ("f", "1") ]; obs "c" [ ("f", "2") ] ]
  in
  ignore (Difftest.record acc (bad ()));
  ignore (Difftest.record acc (bad ()));
  ignore
    (Difftest.record acc [ obs "a" [ ("f", "1") ]; obs "b" [ ("f", "1") ] ]);
  let report = Difftest.report acc in
  check_int "three tests" 3 report.Difftest.total_tests;
  check_int "two disagreeing" 2 report.Difftest.disagreeing_tests;
  check_int "one unique tuple" 1 (List.length report.Difftest.tuples);
  (match report.Difftest.tuples with
  | [ (_, n) ] -> check_int "seen twice" 2 n
  | _ -> Alcotest.fail "tuple counts wrong");
  check "impl list" true (Difftest.impls_in_report report = [ "c" ]);
  check_int "tuples for c" 1 (List.length (Difftest.tuples_for report "c"))

let test_report_ordering () =
  let acc = Difftest.create () in
  let mk impl v = obs impl [ ("f", v) ] in
  (* tuple (c,2) appears twice, (c,3) once *)
  ignore (Difftest.record acc [ mk "a" "1"; mk "b" "1"; mk "c" "2" ]);
  ignore (Difftest.record acc [ mk "a" "1"; mk "b" "1"; mk "c" "2" ]);
  ignore (Difftest.record acc [ mk "a" "1"; mk "b" "1"; mk "c" "3" ]);
  let report = Difftest.report acc in
  match report.Difftest.tuples with
  | (first, n1) :: (_, n2) :: _ ->
      check "most frequent first" true (n1 >= n2);
      check "frequent tuple is the x2" true (first.Difftest.d_got = "2")
  | _ -> Alcotest.fail "expected two tuples"

let prop_majority_is_a_value =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"majority is one of the observed values"
       QCheck2.Gen.(list_size (int_range 1 6) (oneofl [ "x"; "y"; "z" ]))
       (fun values ->
         let pairs = List.mapi (fun i v -> (Printf.sprintf "i%d" i, v)) values in
         List.mem (Difftest.field_majority pairs) values))

let prop_dissenters_disagree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200
       ~name:"every reported dissenter's value differs from the majority"
       QCheck2.Gen.(list_size (int_range 2 6) (oneofl [ "x"; "y"; "z" ]))
       (fun values ->
         let observations =
           List.mapi (fun i v -> obs (Printf.sprintf "i%d" i) [ ("f", v) ]) values
         in
         List.for_all
           (fun d -> d.Difftest.d_got <> d.Difftest.d_majority)
           (Difftest.compare_all observations)))

let suite =
  [
    Alcotest.test_case "stategraph: step" `Quick test_graph_step;
    Alcotest.test_case "stategraph: states" `Quick test_graph_states;
    Alcotest.test_case "stategraph: BFS paths" `Quick test_graph_bfs_shortest;
    Alcotest.test_case "stategraph: BFS is shortest" `Quick test_graph_bfs_is_shortest;
    Alcotest.test_case "stategraph: cycles" `Quick test_graph_cycles_terminate;
    Alcotest.test_case "stategraph: duplicate keys" `Quick test_graph_duplicate_keys;
    Alcotest.test_case "difftest: majority" `Quick test_majority;
    Alcotest.test_case "difftest: disagreements" `Quick test_compare_all;
    Alcotest.test_case "difftest: agreement" `Quick test_compare_all_agreement;
    Alcotest.test_case "difftest: single observation" `Quick test_compare_single_observation;
    Alcotest.test_case "difftest: accumulate and report" `Quick test_accum_and_report;
    Alcotest.test_case "difftest: report ordering" `Quick test_report_ordering;
    prop_majority_is_a_value;
    prop_dissenters_disagree;
  ]
