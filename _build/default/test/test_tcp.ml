(* The §6 TCP extension: machine semantics and the stateful pipeline. *)

open Eywa_tcp
module Stategraph = Eywa_stategraph.Stategraph

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_handshake () =
  Alcotest.(check (list string)) "three-way handshake + data"
    [ "SA"; "-"; "A" ]
    (Machine.run_connection [ Machine.Syn; Machine.Ack; Machine.Data ])

let test_teardown () =
  Alcotest.(check (list string)) "passive close"
    [ "SA"; "-"; "A"; "FA"; "-" ]
    (Machine.run_connection
       [ Machine.Syn; Machine.Ack; Machine.Fin; Machine.Ack; Machine.Ack ])

let test_data_before_handshake_rejected () =
  let reply, state = Machine.handle Machine.Syn_rcvd Machine.Data in
  check_str "RST for early data" "R" reply;
  check "state unchanged" true (state = Machine.Syn_rcvd)

let test_quirk_fast_open () =
  let reply, _ =
    Machine.handle ~quirks:[ Machine.Data_before_established ] Machine.Syn_rcvd
      Machine.Data
  in
  check_str "quirk ACKs early data" "A" reply

let test_quirk_quiet () =
  let reply, _ =
    Machine.handle ~quirks:[ Machine.No_rst_on_bad_segment ] Machine.Listen
      Machine.Ack
  in
  check_str "quirk stays silent" "-" reply;
  let reply, _ = Machine.handle Machine.Listen Machine.Ack in
  check_str "reference sends RST" "R" reply

let test_rst_resets () =
  let _, state = Machine.handle Machine.Established Machine.Rst in
  check "RST closes" true (state = Machine.Closed);
  let _, state = Machine.handle Machine.Syn_rcvd Machine.Rst in
  check "RST in SYN_RCVD returns to LISTEN" true (state = Machine.Listen)

let test_reference_transitions () =
  List.iter
    (fun ((s, letter), s') ->
      match Machine.state_of_string s with
      | None -> Alcotest.failf "bad state %s" s
      | Some state ->
          let _, next = Machine.handle state (Machine.segment_of_letter letter) in
          check_str "transition agrees" s' (Machine.state_to_string next))
    Machine.reference_transitions

let test_letters_roundtrip () =
  List.iter
    (fun seg ->
      check "letter round trip" true
        (Machine.segment_of_letter (Machine.segment_to_letter seg) = seg))
    [ Machine.Syn; Machine.Ack; Machine.Fin; Machine.Rst; Machine.Data ]

let reference_graph = Stategraph.of_list Machine.reference_transitions

let test_drive_and_probe () =
  match Impls.find "refstack" with
  | None -> Alcotest.fail "refstack missing"
  | Some impl -> (
      match
        Impls.drive_and_probe impl reference_graph ~state:"ESTABLISHED" ~input:"D"
      with
      | Ok reply -> check_str "data ACKed when established" "A" reply
      | Error m -> Alcotest.fail m)

let test_probe_distinguishes_fastopend () =
  let probe name =
    match Impls.find name with
    | None -> Alcotest.fail "missing impl"
    | Some impl -> (
        match
          Impls.drive_and_probe impl reference_graph ~state:"SYN_RCVD" ~input:"D"
        with
        | Ok r -> r
        | Error m -> Alcotest.fail m)
  in
  check_str "refstack resets" "R" (probe "refstack");
  check_str "fastopend acknowledges" "A" (probe "fastopend")

let test_pipeline_end_to_end () =
  let oracle = Eywa_llm.Gpt.oracle () in
  match
    Eywa_models.Model_def.synthesize ~k:3 ~timeout:2.0 ~oracle
      Eywa_models.Tcp_models.server
  with
  | Error e -> Alcotest.fail e
  | Ok synth -> (
      check "tests produced" true (synth.unique_tests <> []);
      match Eywa_models.Tcp_adapter.state_graph_for synth with
      | Error m -> Alcotest.fail m
      | Ok graph ->
          check "all six states in the graph" true
            (List.length (Stategraph.states graph) >= 6);
          let found =
            Eywa_models.Tcp_adapter.quirks_triggered ~graph synth.unique_tests
          in
          check "handshake-bypass bug found" true
            (List.mem ("fastopend", Machine.Data_before_established) found);
          check "missing-RST bug found" true
            (List.mem ("quietstack", Machine.No_rst_on_bad_segment) found))

let prop_connections_agree_without_quirks =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200
       ~name:"quirk-free stacks replay the reference on random connections"
       QCheck2.Gen.(list_size (int_range 0 10)
                      (oneofl [ "S"; "A"; "F"; "R"; "D"; "x" ]))
       (fun letters ->
         let segments = List.map Machine.segment_of_letter letters in
         match Impls.find "refstack" with
         | Some impl ->
             Machine.run_connection ~quirks:(Impls.quirks impl) segments
             = Machine.run_connection segments
         | None -> false))

let suite =
  [
    Alcotest.test_case "machine: handshake" `Quick test_handshake;
    Alcotest.test_case "machine: teardown" `Quick test_teardown;
    Alcotest.test_case "machine: early data rejected" `Quick
      test_data_before_handshake_rejected;
    Alcotest.test_case "quirk: handshake bypass" `Quick test_quirk_fast_open;
    Alcotest.test_case "quirk: silent drops" `Quick test_quirk_quiet;
    Alcotest.test_case "machine: RST handling" `Quick test_rst_resets;
    Alcotest.test_case "machine: declared transitions agree" `Quick
      test_reference_transitions;
    Alcotest.test_case "machine: segment letters round trip" `Quick
      test_letters_roundtrip;
    Alcotest.test_case "impls: drive and probe" `Quick test_drive_and_probe;
    Alcotest.test_case "impls: probe distinguishes fastopend" `Quick
      test_probe_distinguishes_fastopend;
    Alcotest.test_case "pipeline: TCP end to end" `Slow test_pipeline_end_to_end;
    prop_connections_agree_without_quirks;
  ]
