test/test_edge.ml: Alcotest Array Char Emodule Etype Eywa_core Eywa_minic Eywa_models Eywa_solver Eywa_symex Graph List Oracle Printf String Synthesis Testcase
