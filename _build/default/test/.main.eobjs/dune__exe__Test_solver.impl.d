test/test_solver.ml: Alcotest Array Eywa_solver List Printf QCheck2 QCheck_alcotest
