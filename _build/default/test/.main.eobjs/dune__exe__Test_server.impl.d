test/test_server.ml: Alcotest Eywa_dns Fun List Lookup Message Name Rr Server Zone
