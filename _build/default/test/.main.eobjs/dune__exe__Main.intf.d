test/main.mli:
