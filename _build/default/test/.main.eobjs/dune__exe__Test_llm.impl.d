test/test_llm.ml: Alcotest Eywa_core Eywa_llm Eywa_minic Eywa_smtp Eywa_stategraph List Printf Result String
