test/test_models.ml: Alcotest Eywa_bgp Eywa_core Eywa_difftest Eywa_dns Eywa_llm Eywa_models Eywa_smtp Eywa_stategraph Lazy List Result
