test/test_report.ml: Alcotest Eywa_difftest Eywa_dns Eywa_llm Eywa_models String
