test/test_infra.ml: Alcotest Eywa_difftest Eywa_stategraph List Printf QCheck2 QCheck_alcotest
