test/test_bgp.ml: Alcotest Aspath Confed Eywa_bgp Impls Int32 List Network Policy Prefix QCheck2 QCheck_alcotest Quirks Reflect Result Route
