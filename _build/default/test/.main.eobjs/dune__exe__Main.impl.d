test/main.ml: Alcotest Test_bgp Test_core Test_dns Test_edge Test_infra Test_llm Test_minic Test_models Test_report Test_server Test_smtp Test_smtp_wire Test_solver Test_symex Test_tcp Test_wire
