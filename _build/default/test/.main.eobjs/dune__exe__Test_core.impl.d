test/test_core.ml: Alcotest Emodule Etype Eywa_core Eywa_minic Eywa_symex Graph Harness List Oracle Prompt Result String Synthesis Testcase
