test/test_smtp.ml: Alcotest Eywa_smtp Eywa_stategraph Impls List Machine QCheck2 QCheck_alcotest Result
