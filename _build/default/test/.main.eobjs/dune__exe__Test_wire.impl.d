test/test_wire.ml: Alcotest Array Buffer Char Eywa_bgp Eywa_core Eywa_dns Eywa_minic Filename Int32 List QCheck2 QCheck_alcotest Result String Sys
