test/test_minic.ml: Alcotest Eywa_minic List Printf QCheck2 QCheck_alcotest Result
