test/test_smtp_wire.ml: Alcotest Eywa_smtp List Machine QCheck2 QCheck_alcotest Result Wire
