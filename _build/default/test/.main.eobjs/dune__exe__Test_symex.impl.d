test/test_symex.ml: Alcotest Array Char Eywa_minic Eywa_solver Eywa_symex Hashtbl List QCheck2 QCheck_alcotest String
