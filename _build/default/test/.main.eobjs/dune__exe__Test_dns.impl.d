test/test_dns.ml: Alcotest Eywa_dns Impls List Lookup Message Name Printf QCheck2 QCheck_alcotest Result Rr Zone Zonefile
