test/test_tcp.ml: Alcotest Eywa_llm Eywa_models Eywa_stategraph Eywa_tcp Impls List Machine QCheck2 QCheck_alcotest
