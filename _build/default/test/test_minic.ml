module Ast = Eywa_minic.Ast
module Lexer = Eywa_minic.Lexer
module Parser = Eywa_minic.Parser
module Pretty = Eywa_minic.Pretty
module Typecheck = Eywa_minic.Typecheck
module Value = Eywa_minic.Value
module Interp = Eywa_minic.Interp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse_ok src =
  match Parser.parse_result src with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse failed: %s" m

let run ?natives p fn args =
  match Interp.run ?natives p fn args with
  | Ok v -> v
  | Error e -> Alcotest.failf "run failed: %s" (Interp.error_to_string e)

(* ----- lexer ----- *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "int x = 42; // comment\nif (x >= 2) { x++; }" in
  let kinds = List.map fst toks in
  check "has ident int" true (List.mem (Lexer.IDENT "int") kinds);
  check "has 42" true (List.mem (Lexer.INT 42) kinds);
  check "has GE" true (List.mem Lexer.GE kinds);
  check "has PLUSPLUS" true (List.mem Lexer.PLUSPLUS kinds);
  check "comment skipped" false
    (List.exists (function Lexer.IDENT "comment" -> true | _ -> false) kinds);
  check "ends with EOF" true (fst (List.nth toks (List.length toks - 1)) = Lexer.EOF)

let test_lexer_literals () =
  let toks = Lexer.tokenize {|'a' '\n' '\0' "hi\n" "with \"quote\""|} in
  let kinds = List.map fst toks in
  check "char a" true (List.mem (Lexer.CHARLIT 'a') kinds);
  check "newline" true (List.mem (Lexer.CHARLIT '\n') kinds);
  check "nul" true (List.mem (Lexer.CHARLIT '\000') kinds);
  check "string" true (List.mem (Lexer.STRLIT "hi\n") kinds);
  check "escaped quote" true (List.mem (Lexer.STRLIT {|with "quote"|}) kinds)

let test_lexer_preprocessor_skipped () =
  let toks = Lexer.tokenize "#include <stdio.h>\nint x;" in
  check "include line dropped" false
    (List.exists (function Lexer.IDENT "include" -> true | _ -> false)
       (List.map fst toks))

let test_lexer_block_comment () =
  let toks = Lexer.tokenize "/* multi\nline */ int y;" in
  check_int "three tokens + eof" 4 (List.length toks)

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string"
    (Lexer.Error ("unterminated string literal", 1))
    (fun () -> ignore (Lexer.tokenize "\"abc"));
  check "bad char" true
    (match Lexer.tokenize "int @ x;" with
    | exception Lexer.Error _ -> true
    | _ -> false)

(* ----- parser ----- *)

let test_parse_typedefs () =
  let p = parse_ok
    "typedef enum { A, B, C } Kind;\n\
     typedef struct { Kind k; char* name; uint8_t tags[3]; } Item;"
  in
  check_int "one enum" 1 (List.length p.Ast.enums);
  check_int "one struct" 1 (List.length p.Ast.structs);
  let s = List.hd p.Ast.structs in
  check "array field" true
    (List.exists (fun (t, n) -> n = "tags" && t = Ast.Tarray (Ast.Tint 8, 3)) s.fields);
  check "string field" true
    (List.exists (fun (t, n) -> n = "name" && t = Ast.Tstring) s.fields)

let test_parse_precedence () =
  let p = parse_ok "int f(int a, int b) { return a + b * 2 == 7 && !(a < b) || false; }" in
  let f = List.hd p.Ast.funcs in
  (match f.body with
  | [ Ast.Sreturn (Some (Ast.Ebinop (Ast.Lor, Ast.Ebinop (Ast.Land, _, _), Ast.Ebool false))) ] -> ()
  | _ -> Alcotest.fail "wrong precedence structure");
  check_str "pretty round" "a + b * 2 == 7 && !(a < b) || false"
    (match f.body with
    | [ Ast.Sreturn (Some e) ] -> Pretty.expr e
    | _ -> "?")

let test_parse_control_flow () =
  let p = parse_ok
    "int f(int n) {\n\
    \  int acc = 0;\n\
    \  for (int i = 0; i < n; i++) {\n\
    \    if (i % 2 == 0) { continue; }\n\
    \    acc += i;\n\
    \    if (acc > 100) break;\n\
    \  }\n\
    \  while (acc > 10) { acc -= 10; }\n\
    \  return acc;\n\
     }"
  in
  check_int "parsed one function" 1 (List.length p.Ast.funcs)

let test_parse_ternary () =
  let p = parse_ok "int f(int a) { return a > 0 ? a : -a; }" in
  match (List.hd p.Ast.funcs).body with
  | [ Ast.Sreturn (Some (Ast.Econd (_, _, _))) ] -> ()
  | _ -> Alcotest.fail "expected ternary"

let test_parse_prototypes () =
  let p = parse_ok "bool helper(char* s);\nbool main_fn(char* s) { return helper(s); }" in
  check_int "one proto" 1 (List.length p.Ast.protos);
  check_int "one func" 1 (List.length p.Ast.funcs)

let test_parse_errors () =
  check "missing semi" true (Result.is_error (Parser.parse_result "int f() { return 1 }"));
  check "unknown type" true (Result.is_error (Parser.parse_result "foo f() { return 1; }"));
  check "unbalanced brace" true (Result.is_error (Parser.parse_result "int f() { return 1;"));
  check "pointer to struct rejected" true
    (Result.is_error
       (Parser.parse_result
          "typedef struct { int x; } S;\nint f(S* s) { return 0; }"))

(* pretty -> parse round trip on a hand-built AST *)
let test_pretty_roundtrip () =
  let src =
    "typedef enum { RED, GREEN } Color;\n\
     typedef struct { Color c; char* label; } Tag;\n\
     bool is_red(Tag t) {\n\
    \  if (t.c == RED) { return true; }\n\
    \  int n = strlen(t.label);\n\
    \  for (int i = 0; i < n; i++) { if (t.label[i] == 'r') { return true; } }\n\
    \  return false;\n\
     }"
  in
  let p1 = parse_ok src in
  let p2 = parse_ok (Pretty.program p1) in
  check "same after round trip" true (p1 = p2)

let test_loc () =
  check_int "counts non-blank lines" 3 (Pretty.loc "a\n\n b\n\nc\n")

(* ----- typechecker ----- *)

let tc src = Typecheck.check (parse_ok src)

let test_typecheck_accepts () =
  check "simple" true (Result.is_ok (tc "int f(int a) { return a + 1; }"));
  check "struct access" true
    (Result.is_ok
       (tc "typedef struct { int x; } P;\nint f(P p) { return p.x; }"));
  check "string builtins" true
    (Result.is_ok (tc "int f(char* s) { return strlen(s) + strcmp(s, \"a\"); }"));
  check "strcpy statement" true
    (Result.is_ok (tc "void f(char* s) { strcpy(s, \"ab\"); }"));
  check "enum comparisons" true
    (Result.is_ok
       (tc "typedef enum { A, B } E;\nbool f(E e) { return e == B; }"))

let test_typecheck_rejects () =
  check "unbound var" true (Result.is_error (tc "int f() { return y; }"));
  check "banned strtok" true
    (Result.is_error (tc "void f(char* s) { strtok(s, \".\"); }"));
  check "string equality operator" true
    (Result.is_error (tc "bool f(char* a, char* b) { return a == b; }"));
  check "string assignment" true
    (Result.is_error (tc "void f(char* a, char* b) { a = b; }"));
  check "arity mismatch" true
    (Result.is_error (tc "int g(int a) { return a; }\nint f() { return g(1, 2); }"));
  check "missing return value" true
    (Result.is_error (tc "int f() { return; }"));
  check "break outside loop" true (Result.is_error (tc "void f() { break; }"));
  check "redeclaration" true
    (Result.is_error (tc "int f() { int x = 1; int x = 2; return x; }"));
  check "undefined function" true
    (Result.is_error (tc "int f() { return mystery(); }"));
  check "field of non-struct" true
    (Result.is_error (tc "int f(int a) { return a.x; }"))

let test_typecheck_shadowing_in_blocks () =
  check "inner scope may shadow" true
    (Result.is_ok
       (tc "int f() { int x = 1; if (x > 0) { int x = 2; return x; } return x; }"))

(* ----- interpreter ----- *)

let test_interp_arith () =
  let p = parse_ok "int f(int a, int b) { return (a + b) * 2 - a % b; }" in
  check_int "(3+4)*2 - 3%4" 11 (Value.to_int (run p "f" [ Value.Vint 3; Value.Vint 4 ]))

let test_interp_strings () =
  let p = parse_ok
    "int f(char* s) { return strlen(s); }\n\
     int g(char* a, char* b) { return strcmp(a, b); }\n\
     bool h(char* a) { return strncmp(a, \"ab\", 2) == 0; }"
  in
  check_int "strlen" 3 (Value.to_int (run p "f" [ Value.of_cstring "abc" ]));
  check "strcmp equal" true
    (Value.to_int (run p "g" [ Value.of_cstring "x"; Value.of_cstring "x" ]) = 0);
  check "strcmp less" true
    (Value.to_int (run p "g" [ Value.of_cstring "a"; Value.of_cstring "b" ]) < 0);
  check "strncmp prefix" true
    (Value.truthy (run p "h" [ Value.of_cstring "abz" ]))

let test_interp_strcpy () =
  let p = parse_ok
    "char* f() { char buf[8]; strcpy(buf, \"hey\"); return buf; }"
  in
  check_str "copied" "hey" (Value.cstring (run p "f" []))

let test_interp_struct_mutation () =
  let p = parse_ok
    "typedef struct { int x; int y; } P;\n\
     int f(P p) { p.x = p.x + 10; return p.x + p.y; }"
  in
  let pv = Value.Vstruct ("P", [ ("x", Value.Vint 1); ("y", Value.Vint 2) ]) in
  check_int "10+1+2" 13 (Value.to_int (run p "f" [ pv ]))

let test_interp_array () =
  let p = parse_ok
    "int f() { uint8_t xs[4]; xs[0] = 3; xs[1] = xs[0] + 1; return xs[0] + xs[1]; }"
  in
  check_int "3+4" 7 (Value.to_int (run p "f" []))

let test_interp_loops () =
  let p = parse_ok
    "int f(int n) { int acc = 0; for (int i = 1; i <= n; i++) { acc += i; } return acc; }"
  in
  check_int "sum 1..10" 55 (Value.to_int (run p "f" [ Value.Vint 10 ]))

let test_interp_recursion () =
  let p = parse_ok "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }" in
  check_int "fib 10" 55 (Value.to_int (run p "fib" [ Value.Vint 10 ]))

let test_interp_fuel () =
  let p = parse_ok "int f() { while (true) { } return 0; }" in
  check "runs out of fuel" true
    (Interp.run ~fuel:1000 p "f" [] = Error Interp.Out_of_fuel)

let test_interp_oob () =
  let p = parse_ok "char f(char* s) { return s[100]; }" in
  check "out of bounds" true
    (match Interp.run p "f" [ Value.of_cstring "a" ] with
    | Error (Interp.Runtime _) -> true
    | _ -> false)

let test_interp_division_by_zero () =
  let p = parse_ok "int f(int a) { return 10 / a; }" in
  check "div by zero" true
    (match Interp.run p "f" [ Value.Vint 0 ] with
    | Error (Interp.Runtime _) -> true
    | _ -> false)

let test_interp_enum_fallback () =
  let p = parse_ok
    "typedef enum { LOW, HIGH } Level;\nbool f(Level l) { return l == HIGH; }"
  in
  check "enum member resolves" true
    (Value.truthy (run p "f" [ Value.Venum ("Level", 1) ]))

let test_interp_natives () =
  let p = parse_ok "bool f(char* s); bool g(char* s) { return f(s); }" in
  let natives = [ ("f", fun _ -> Value.Vbool true) ] in
  check "native hook used" true (Value.truthy (run ~natives p "g" [ Value.of_cstring "x" ]))

let test_interp_break_continue () =
  let p = parse_ok
    "int f() { int acc = 0; for (int i = 0; i < 10; i++) {\n\
    \  if (i == 3) { continue; } if (i == 6) { break; } acc += i; } return acc; }"
  in
  (* 0+1+2+4+5 = 12 *)
  check_int "break/continue" 12 (Value.to_int (run p "f" []))

let test_interp_ternary () =
  let p = parse_ok "int f(int a) { return a > 5 ? 1 : 0; }" in
  check_int "true side" 1 (Value.to_int (run p "f" [ Value.Vint 9 ]));
  check_int "false side" 0 (Value.to_int (run p "f" [ Value.Vint 1 ]))

(* property: pretty/parse round trip on random straight-line programs *)
let gen_expr_src =
  let open QCheck2.Gen in
  let atom = oneof [ map string_of_int (int_range 0 99); pure "a"; pure "b" ] in
  let op = oneofl [ "+"; "-"; "*"; "=="; "<"; "&&"; "||" ] in
  sized @@ fix (fun self n ->
      if n <= 0 then atom
      else
        map3 (fun a o b -> Printf.sprintf "(%s %s %s)" a o b)
          (self (n / 2)) op (self (n / 2)))

let prop_roundtrip =
  QCheck2.Test.make ~count:150 ~name:"pretty . parse = id on random expressions"
    gen_expr_src
    (fun src ->
      let full = Printf.sprintf "int f(int a, int b) { return %s; }" src in
      match Parser.parse_result full with
      | Error _ -> false
      | Ok p1 -> (
          match Parser.parse_result (Pretty.program p1) with
          | Error _ -> false
          | Ok p2 -> p1 = p2))

let prop_interp_deterministic =
  QCheck2.Test.make ~count:60 ~name:"interpreting twice gives the same value"
    QCheck2.Gen.(pair (int_range 0 20) (int_range 1 20))
    (fun (a, b) ->
      let p = parse_ok "int f(int a, int b) { int acc = 0; for (int i = 0; i < a; i++) { acc += i % b; } return acc; }" in
      run p "f" [ Value.Vint a; Value.Vint b ]
      = run p "f" [ Value.Vint a; Value.Vint b ])

let suite =
  [
    Alcotest.test_case "lexer: basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer: literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer: preprocessor skipped" `Quick test_lexer_preprocessor_skipped;
    Alcotest.test_case "lexer: block comments" `Quick test_lexer_block_comment;
    Alcotest.test_case "lexer: errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser: typedefs" `Quick test_parse_typedefs;
    Alcotest.test_case "parser: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser: control flow" `Quick test_parse_control_flow;
    Alcotest.test_case "parser: ternary" `Quick test_parse_ternary;
    Alcotest.test_case "parser: prototypes" `Quick test_parse_prototypes;
    Alcotest.test_case "parser: errors" `Quick test_parse_errors;
    Alcotest.test_case "pretty: round trip" `Quick test_pretty_roundtrip;
    Alcotest.test_case "pretty: loc" `Quick test_loc;
    Alcotest.test_case "typecheck: accepts valid programs" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck: rejects invalid programs" `Quick test_typecheck_rejects;
    Alcotest.test_case "typecheck: block shadowing" `Quick test_typecheck_shadowing_in_blocks;
    Alcotest.test_case "interp: arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp: strings" `Quick test_interp_strings;
    Alcotest.test_case "interp: strcpy" `Quick test_interp_strcpy;
    Alcotest.test_case "interp: struct mutation is local" `Quick test_interp_struct_mutation;
    Alcotest.test_case "interp: arrays" `Quick test_interp_array;
    Alcotest.test_case "interp: loops" `Quick test_interp_loops;
    Alcotest.test_case "interp: recursion" `Quick test_interp_recursion;
    Alcotest.test_case "interp: fuel bound" `Quick test_interp_fuel;
    Alcotest.test_case "interp: out of bounds" `Quick test_interp_oob;
    Alcotest.test_case "interp: division by zero" `Quick test_interp_division_by_zero;
    Alcotest.test_case "interp: enum member fallback" `Quick test_interp_enum_fallback;
    Alcotest.test_case "interp: native hooks" `Quick test_interp_natives;
    Alcotest.test_case "interp: break and continue" `Quick test_interp_break_continue;
    Alcotest.test_case "interp: ternary" `Quick test_interp_ternary;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_interp_deterministic;
  ]
