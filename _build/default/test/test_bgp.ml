open Eywa_bgp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let pfx s = match Prefix.of_string s with Ok p -> p | Error m -> Alcotest.fail m

(* ----- prefixes ----- *)

let test_prefix_parse_print () =
  check_str "round" "10.0.0.0/8" (Prefix.to_string (pfx "10.0.0.0/8"));
  check_str "host bits masked" "10.0.0.0/8" (Prefix.to_string (pfx "10.1.2.3/8"));
  check "bad text" true (Result.is_error (Prefix.of_string "10.0.0.0"));
  check "bad octet" true (Result.is_error (Prefix.of_string "300.0.0.0/8"));
  check "bad length" true (Result.is_error (Prefix.of_string "10.0.0.0/40"))

let test_prefix_contains () =
  check "super contains sub" true (Prefix.contains (pfx "10.0.0.0/8") (pfx "10.1.0.0/16"));
  check "not the other way" false (Prefix.contains (pfx "10.1.0.0/16") (pfx "10.0.0.0/8"));
  check "disjoint" false (Prefix.contains (pfx "10.0.0.0/8") (pfx "11.0.0.0/16"));
  check "self" true (Prefix.contains (pfx "10.0.0.0/8") (pfx "10.0.0.0/8"));
  check "default contains all" true (Prefix.contains (pfx "0.0.0.0/0") (pfx "192.168.1.0/24"))

let test_prefix_member () =
  check "member" true (Prefix.member (pfx "10.0.0.0/8") 0x0A0B0C0Dl);
  check "not member" false (Prefix.member (pfx "10.0.0.0/8") 0x0B000000l)

let prop_prefix_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"prefix to_string . of_string round trips"
       QCheck2.Gen.(pair (map Int32.of_int (int_range 0 0x3FFFFFFF)) (int_range 0 32))
       (fun (addr, len) ->
         let p = Prefix.v addr len in
         match Prefix.of_string (Prefix.to_string p) with
         | Ok p' -> Prefix.equal p p'
         | Error _ -> false))

(* ----- AS paths ----- *)

let test_aspath_ops () =
  let p = Aspath.prepend 30 (Aspath.prepend 20 (Aspath.prepend 10 Aspath.empty)) in
  check_int "seq length" 3 (Aspath.length p);
  check "contains" true (Aspath.contains 20 p);
  check "not contains" false (Aspath.contains 99 p);
  check_str "render" "30 20 10" (Aspath.to_string p)

let test_aspath_confed () =
  let p = Aspath.prepend_confed 65001 (Aspath.prepend 10 Aspath.empty) in
  check "has confed segments" true (Aspath.has_confed_segments p);
  check_int "confed does not count" 1 (Aspath.length p);
  let stripped = Aspath.strip_confed p in
  check "stripped" false (Aspath.has_confed_segments stripped);
  check_int "seq kept" 1 (Aspath.length stripped)

let test_aspath_replace () =
  let p = Aspath.prepend 10 (Aspath.prepend 20 Aspath.empty) in
  let p' = Aspath.replace_as ~old_as:20 ~new_as:65000 p in
  check "replaced" true (Aspath.contains 65000 p');
  check "old gone" false (Aspath.contains 20 p')

let test_aspath_set_counts_one () =
  let p = [ Aspath.Seq [ 1; 2 ]; Aspath.Set [ 3; 4; 5 ] ] in
  check_int "set counts one" 3 (Aspath.length p)

(* ----- routes ----- *)

let test_route_decision () =
  let r ~lp ~path = Route.v ~local_pref:lp ~as_path:path (pfx "10.0.0.0/8") in
  let short = Aspath.prepend 1 Aspath.empty in
  let long = Aspath.prepend 2 (Aspath.prepend 1 Aspath.empty) in
  check "higher local-pref wins" true (Route.better (r ~lp:200 ~path:long) (r ~lp:100 ~path:short));
  check "shorter path wins at equal lp" true
    (Route.better (r ~lp:100 ~path:short) (r ~lp:100 ~path:long));
  check "igp beats incomplete" true
    (Route.better
       (Route.v ~origin:Route.Igp (pfx "10.0.0.0/8"))
       (Route.v ~origin:Route.Incomplete (pfx "10.0.0.0/8")));
  check "lower med wins" true
    (Route.better (Route.v ~med:5 (pfx "10.0.0.0/8")) (Route.v ~med:9 (pfx "10.0.0.0/8")))

(* ----- policy ----- *)

let entry ?(permit = true) ?(ge = None) ?(le = None) p =
  { Policy.seq = 10; permit; prefix = pfx p; ge; le }

let test_prefix_list_exact () =
  check "exact match" true (Policy.entry_matches (entry "10.0.0.0/8") (pfx "10.0.0.0/8"));
  check "longer no match without le" false
    (Policy.entry_matches (entry "10.0.0.0/8") (pfx "10.1.0.0/16"))

let test_prefix_list_le_ge () =
  let e = entry ~ge:(Some 16) ~le:(Some 24) "10.0.0.0/8" in
  check "inside range" true (Policy.entry_matches e (pfx "10.1.0.0/20"));
  check "below ge" false (Policy.entry_matches e (pfx "10.0.0.0/12"));
  check "above le" false (Policy.entry_matches e (pfx "10.1.1.0/28"));
  check "outside prefix" false (Policy.entry_matches e (pfx "11.0.0.0/20"))

let test_prefix_list_first_match () =
  let pl =
    {
      Policy.pl_name = "pl";
      entries =
        [
          { (entry ~permit:false "10.0.0.0/8") with Policy.seq = 5 };
          { (entry "10.0.0.0/8") with Policy.seq = 10 };
        ];
    }
  in
  check "first (deny) entry wins" false (Policy.prefix_list_permits pl (pfx "10.0.0.0/8"));
  check "no match denies" false (Policy.prefix_list_permits pl (pfx "11.0.0.0/8"))

let test_policy_quirk_ge_match () =
  (* FRR: an exact entry behaves as >= *)
  let e = entry "10.0.0.0/8" in
  check "reference exact only" false (Policy.entry_matches e (pfx "10.1.0.0/16"));
  check "frr quirk matches longer" true
    (Policy.entry_matches ~quirks:[ Quirks.Prefix_list_ge_match ] e (pfx "10.1.0.0/16"))

let test_policy_quirk_zero_masklength () =
  let e = entry ~ge:(Some 8) ~le:(Some 24) "0.0.0.0/0" in
  (* gobgp quirk: such an entry matches everything, even shorter than ge *)
  check "reference respects ge" false (Policy.entry_matches e (pfx "10.0.0.0/4"));
  check "gobgp quirk matches all" true
    (Policy.entry_matches ~quirks:[ Quirks.Prefix_set_zero_masklength ] e (pfx "10.0.0.0/4"))

let test_route_map () =
  let pl = { Policy.pl_name = "pl"; entries = [ entry "10.0.0.0/8" ] } in
  let rm =
    {
      Policy.rm_name = "rm";
      stanzas =
        [
          { Policy.stanza_seq = 10; stanza_permit = true;
            matches = [ Policy.Match_prefix_list "pl" ];
            sets = [ Policy.Set_local_pref 250; Policy.Set_community (65000, 1) ] };
        ];
    }
  in
  (match Policy.apply_route_map ~prefix_lists:[ pl ] rm (Route.v (pfx "10.0.0.0/8")) with
  | Some r ->
      check_int "local pref set" 250 r.Route.local_pref;
      check "community added" true (List.mem (65000, 1) r.Route.communities)
  | None -> Alcotest.fail "expected permit");
  check "non-matching route denied" true
    (Policy.apply_route_map ~prefix_lists:[ pl ] rm (Route.v (pfx "11.0.0.0/8")) = None)

let test_route_map_deny_stanza () =
  let pl = { Policy.pl_name = "pl"; entries = [ entry "10.0.0.0/8" ] } in
  let rm =
    {
      Policy.rm_name = "rm";
      stanzas =
        [
          { Policy.stanza_seq = 5; stanza_permit = false;
            matches = [ Policy.Match_prefix_list "pl" ]; sets = [] };
          { Policy.stanza_seq = 10; stanza_permit = true;
            matches = [ Policy.Match_any ]; sets = [] };
        ];
    }
  in
  check "deny stanza stops" true
    (Policy.apply_route_map ~prefix_lists:[ pl ] rm (Route.v (pfx "10.0.0.0/8")) = None);
  check "others fall through to permit any" true
    (Policy.apply_route_map ~prefix_lists:[ pl ] rm (Route.v (pfx "11.0.0.0/8")) <> None)

(* ----- confederations ----- *)

let confed = Some { Confed.confed_id = 100; sub_as = 65001; members = [ 65001; 65002 ] }

let test_confed_classify () =
  let c ?quirks peer_as peer_in_confed =
    Confed.classify ?quirks confed ~local_as:65001 ~peer_as ~peer_in_confed
  in
  check "same sub-as ibgp" true (c 65001 true = Confed.Ibgp);
  check "other sub-as confed-ebgp" true (c 65002 true = Confed.Ebgp_confed);
  check "external ebgp" true (c 200 false = Confed.Ebgp);
  check "collision is still ebgp in reference" true (c 65001 false = Confed.Ebgp);
  check "collision becomes ibgp under the quirk" true
    (c ~quirks:[ Quirks.Confed_sub_as_eq_peer ] 65001 false = Confed.Ibgp)

let test_confed_agree_mismatch () =
  check "quirk causes a session mismatch" true
    (Confed.agree ~quirks:[ Quirks.Confed_sub_as_eq_peer ] confed ~local_as:65001
       ~peer_as:65001 ~peer_in_confed:false
    = Confed.Session_mismatch);
  check "reference agrees ebgp" true
    (Confed.agree confed ~local_as:65001 ~peer_as:65001 ~peer_in_confed:false
    = Confed.Ebgp)

let test_confed_export_paths () =
  let path = Aspath.prepend 10 Aspath.empty in
  let over_confed =
    Confed.export_path confed Confed.Ebgp_confed ~local_as:65001 path
  in
  check "confed segment added" true (Aspath.has_confed_segments over_confed);
  let out = Confed.export_path confed Confed.Ebgp ~local_as:65001 over_confed in
  check "confed stripped on true eBGP" false (Aspath.has_confed_segments out);
  check "confed id shown" true (Aspath.contains 100 out);
  let ibgp = Confed.export_path confed Confed.Ibgp ~local_as:65001 path in
  check "ibgp unchanged" true (Aspath.equal ibgp path)

let test_confed_replace_as () =
  let path = Aspath.prepend 65001 Aspath.empty in
  let out =
    Confed.export_path None Confed.Ebgp ~local_as:65001 ~replace_as:(600, true) path
  in
  check "replaced" true (Aspath.contains 600 out && not (Aspath.contains 65001 out));
  let broken =
    Confed.export_path ~quirks:[ Quirks.Replace_as_confed_broken ] confed Confed.Ebgp
      ~local_as:65001 ~replace_as:(600, true) path
  in
  check "quirk ignores replace-as with confeds" true (Aspath.contains 65001 broken)

(* ----- route reflection ----- *)

let test_reflect_rules () =
  let t from_ to_ = Reflect.should_reflect ~from_ ~to_ in
  check "ebgp to all" true (t Reflect.External Reflect.Non_client);
  check "client to all" true (t Reflect.Client Reflect.Non_client);
  check "non-client to client" true (t Reflect.Non_client Reflect.Client);
  check "non-client to external" true (t Reflect.Non_client Reflect.External);
  check "non-client to non-client blocked" false (t Reflect.Non_client Reflect.Non_client)

let test_reflect_cluster_loop () =
  let route = Route.v (pfx "10.0.0.0/8") in
  match Reflect.reflect ~cluster_id:7 ~from_:Reflect.Client ~to_:Reflect.Non_client route with
  | None -> Alcotest.fail "should reflect"
  | Some tagged -> (
      check "cluster tag added" true (List.mem (7, 7) tagged.Route.communities);
      (* reflecting the tagged route again through the same cluster drops it *)
      match Reflect.reflect ~cluster_id:7 ~from_:Reflect.Client ~to_:Reflect.Non_client tagged with
      | None -> ()
      | Some _ -> Alcotest.fail "cluster loop not detected")

(* ----- network chain ----- *)

let plain_router name asn =
  { Network.rname = name; asn; confed = None; cluster_id = 1;
    prefix_lists = []; route_maps = [] }

let neighbor ?(kind = Reflect.External) ?(import_map = None) ?(export_map = None)
    ?(replace_as = None) peer_as =
  { Network.peer_as; peer_in_confed = false; peer_kind = kind;
    import_map; export_map; replace_as }

let test_chain_basic () =
  let r2 = plain_router "r2" 2 and r3 = plain_router "r3" 3 in
  let injected = [ Route.v ~as_path:(Aspath.prepend 1 Aspath.empty) (pfx "10.0.0.0/8") ] in
  let r2_rib, r3_rib =
    Network.run_chain ~r2 ~r2_in:(neighbor 1) ~r2_out:(neighbor 3) ~r3
      ~r3_in:(neighbor 2) ~injected ()
  in
  check_int "r2 learned it" 1 (List.length r2_rib);
  check_int "r3 learned it" 1 (List.length r3_rib);
  let r3_route = List.hd r3_rib in
  check "path prepended at r2" true (Aspath.contains 2 r3_route.Route.as_path)

let test_chain_loop_detection () =
  let r2 = plain_router "r2" 2 and r3 = plain_router "r3" 3 in
  (* the injected route already carries AS 2 *)
  let injected = [ Route.v ~as_path:(Aspath.prepend 2 Aspath.empty) (pfx "10.0.0.0/8") ] in
  let r2_rib, _ =
    Network.run_chain ~r2 ~r2_in:(neighbor 1) ~r2_out:(neighbor 3) ~r3
      ~r3_in:(neighbor 2) ~injected ()
  in
  check "looped route dropped" true (r2_rib = [])

let test_chain_local_pref_reset () =
  let r2 = plain_router "r2" 2 and r3 = plain_router "r3" 3 in
  let injected = [ Route.v ~local_pref:250 ~as_path:(Aspath.prepend 1 Aspath.empty) (pfx "10.0.0.0/8") ] in
  let run quirks =
    Network.run_chain ~quirks ~r2 ~r2_in:(neighbor 1) ~r2_out:(neighbor 3) ~r3
      ~r3_in:(neighbor 2) ~injected ()
  in
  let reference, _ = run [] in
  let batfish, _ = run [ Quirks.Local_pref_not_reset_ebgp ] in
  check_int "reference resets to 100" 100 (List.hd reference).Route.local_pref;
  check_int "quirk keeps 250" 250 (List.hd batfish).Route.local_pref

let test_chain_session_mismatch_blocks () =
  let r2 =
    { (plain_router "r2" 65001) with
      Network.confed = Some { Confed.confed_id = 100; sub_as = 65001; members = [ 65001 ] } }
  in
  let r3 = plain_router "r3" 9 in
  let injected = [ Route.v ~as_path:(Aspath.prepend 7 Aspath.empty) (pfx "10.0.0.0/8") ] in
  (* the in-neighbor is external but its AS collides with our sub-AS *)
  let collide = { (neighbor 65001) with Network.peer_in_confed = false } in
  let r2_rib, _ =
    Network.run_chain ~quirks:[ Quirks.Confed_sub_as_eq_peer ] ~r2 ~r2_in:collide
      ~r2_out:(neighbor 9) ~r3 ~r3_in:(neighbor 100) ~injected ()
  in
  check "nothing received over a mismatched session" true (r2_rib = []);
  let healthy, _ =
    Network.run_chain ~r2 ~r2_in:collide ~r2_out:(neighbor 9) ~r3
      ~r3_in:(neighbor 100) ~injected ()
  in
  check "reference receives the route" true (healthy <> [])

let test_best_rib () =
  let good = Route.v ~local_pref:200 (pfx "10.0.0.0/8") in
  let bad = Route.v ~local_pref:100 (pfx "10.0.0.0/8") in
  let other = Route.v (pfx "11.0.0.0/8") in
  let rib = Network.best_rib [ bad; other; good ] in
  check_int "one per prefix" 2 (List.length rib);
  check "best kept" true (List.exists (fun (r : Route.t) -> r.local_pref = 200) rib)

let test_impls_catalog () =
  check_int "three implementations" 3 (List.length Impls.all);
  check_int "seven Table 3 BGP rows" 7 (List.length Impls.bug_catalog);
  check "frr has replace-as bug" true
    (match Impls.find "frr" with
    | Some impl -> List.mem Quirks.Replace_as_confed_broken (Impls.quirks impl)
    | None -> false)

let suite =
  [
    Alcotest.test_case "prefix: parse and print" `Quick test_prefix_parse_print;
    Alcotest.test_case "prefix: containment" `Quick test_prefix_contains;
    Alcotest.test_case "prefix: membership" `Quick test_prefix_member;
    prop_prefix_roundtrip;
    Alcotest.test_case "aspath: sequence operations" `Quick test_aspath_ops;
    Alcotest.test_case "aspath: confederation segments" `Quick test_aspath_confed;
    Alcotest.test_case "aspath: replace-as" `Quick test_aspath_replace;
    Alcotest.test_case "aspath: AS_SET length" `Quick test_aspath_set_counts_one;
    Alcotest.test_case "route: decision process" `Quick test_route_decision;
    Alcotest.test_case "policy: exact prefix-list entries" `Quick test_prefix_list_exact;
    Alcotest.test_case "policy: le/ge ranges" `Quick test_prefix_list_le_ge;
    Alcotest.test_case "policy: first-match" `Quick test_prefix_list_first_match;
    Alcotest.test_case "policy: FRR ge-match quirk" `Quick test_policy_quirk_ge_match;
    Alcotest.test_case "policy: GoBGP zero-masklength quirk" `Quick
      test_policy_quirk_zero_masklength;
    Alcotest.test_case "policy: route maps apply sets" `Quick test_route_map;
    Alcotest.test_case "policy: deny stanzas" `Quick test_route_map_deny_stanza;
    Alcotest.test_case "confed: session classification" `Quick test_confed_classify;
    Alcotest.test_case "confed: §4.3 session mismatch" `Quick test_confed_agree_mismatch;
    Alcotest.test_case "confed: export path updates" `Quick test_confed_export_paths;
    Alcotest.test_case "confed: replace-as and its quirk" `Quick test_confed_replace_as;
    Alcotest.test_case "reflect: propagation rules" `Quick test_reflect_rules;
    Alcotest.test_case "reflect: cluster loop protection" `Quick test_reflect_cluster_loop;
    Alcotest.test_case "network: basic chain" `Quick test_chain_basic;
    Alcotest.test_case "network: AS-path loop detection" `Quick test_chain_loop_detection;
    Alcotest.test_case "network: eBGP local-pref reset" `Quick test_chain_local_pref_reset;
    Alcotest.test_case "network: mismatched sessions block routes" `Quick
      test_chain_session_mismatch_blocks;
    Alcotest.test_case "network: best rib" `Quick test_best_rib;
    Alcotest.test_case "impls: catalog" `Quick test_impls_catalog;
  ]
