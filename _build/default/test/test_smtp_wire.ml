(* SMTP wire grammar. *)

open Eywa_smtp

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_parse_commands () =
  check "HELO" true (Wire.parse_command "HELO mail.example" = Machine.Helo);
  check "helo lowercase" true (Wire.parse_command "helo x" = Machine.Helo);
  check "EHLO" true (Wire.parse_command "EHLO x" = Machine.Ehlo);
  check "MAIL FROM" true
    (Wire.parse_command "MAIL FROM:<alice@test>" = Machine.Mail_from);
  check "mail from case-insensitive" true
    (Wire.parse_command "mail from:<a@b>" = Machine.Mail_from);
  check "RCPT TO" true (Wire.parse_command "RCPT TO:<bob@test>" = Machine.Rcpt_to);
  check "DATA" true (Wire.parse_command "DATA" = Machine.Data);
  check "dot" true (Wire.parse_command "." = Machine.End_data);
  check "QUIT" true (Wire.parse_command "QUIT" = Machine.Quit)

let test_parse_malformed () =
  check "MAIL FROM without brackets" true
    (match Wire.parse_command "MAIL FROM:alice" with
    | Machine.Other _ -> true
    | _ -> false);
  check "RCPT TO empty" true
    (match Wire.parse_command "RCPT TO:" with Machine.Other _ -> true | _ -> false);
  check "garbage" true
    (match Wire.parse_command "FROBNICATE" with Machine.Other _ -> true | _ -> false)

let test_command_roundtrip () =
  List.iter
    (fun c ->
      check "wire round trip" true (Wire.parse_command (Wire.format_command c) = c))
    [ Machine.Helo; Machine.Ehlo; Machine.Mail_from; Machine.Rcpt_to;
      Machine.Data; Machine.End_data; Machine.Quit ]

let test_replies () =
  check_str "250" "250 OK" (Wire.format_reply "250");
  check_str "354" "354 End data with <CR><LF>.<CR><LF>" (Wire.format_reply "354");
  check "parse code" true (Wire.parse_reply "250 OK" = Ok "250");
  check "parse rejects garbage" true (Result.is_error (Wire.parse_reply "hello"))

let test_wire_session () =
  let replies =
    Wire.run_wire_session
      [ "HELO client.test"; "MAIL FROM:<a@test>"; "RCPT TO:<b@test>"; "DATA";
        "."; "QUIT" ]
  in
  Alcotest.(check (list string)) "full wire transaction"
    [ "250 OK"; "250 OK"; "250 OK"; "354 End data with <CR><LF>.<CR><LF>";
      "250 OK"; "221 Bye" ]
    replies

let test_wire_session_rejects_bad_path () =
  (* a missing bracket makes MAIL FROM unrecognisable -> 503 *)
  let replies = Wire.run_wire_session [ "HELO x"; "MAIL FROM:alice" ] in
  check_str "bad path rejected" "503 Bad sequence of commands" (List.nth replies 1)

let prop_reply_codes_parse_back =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"formatted replies parse back to their code"
       (QCheck2.Gen.oneofl [ "220"; "221"; "250"; "354"; "500"; "503" ])
       (fun code -> Wire.parse_reply (Wire.format_reply code) = Ok code))

let suite =
  [
    Alcotest.test_case "parse commands" `Quick test_parse_commands;
    Alcotest.test_case "parse malformed lines" `Quick test_parse_malformed;
    Alcotest.test_case "command round trip" `Quick test_command_roundtrip;
    Alcotest.test_case "reply formatting" `Quick test_replies;
    Alcotest.test_case "wire session" `Quick test_wire_session;
    Alcotest.test_case "bad reverse-path rejected" `Quick
      test_wire_session_rejects_bad_path;
    prop_reply_codes_parse_back;
  ]
