module Term = Eywa_solver.Term
module Solve = Eywa_solver.Solve
module Regex = Eywa_symex.Regex
module Sv = Eywa_symex.Sv
module Exec = Eywa_symex.Exec
module Parser = Eywa_minic.Parser
module Value = Eywa_minic.Value
module Interp = Eywa_minic.Interp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok src =
  match Parser.parse_result src with
  | Ok p ->
      Eywa_minic.Typecheck.check_exn p;
      p
  | Error m -> Alcotest.failf "parse failed: %s" m

(* ----- regex: parsing and concrete matching ----- *)

let m pat s = Regex.matches_pattern pat s

let test_regex_literals () =
  check "abc matches" true (m "abc" "abc");
  check "abc vs abd" false (m "abc" "abd");
  check "empty pattern, empty string" true (m "" "");
  check "empty pattern, non-empty" false (m "" "a")

let test_regex_star () =
  check "a* empty" true (m "a*" "");
  check "a* many" true (m "a*" "aaaa");
  check "a* wrong char" false (m "a*" "ab");
  check "(ab)* pairs" true (m "(ab)*" "abab");
  check "(ab)* odd" false (m "(ab)*" "aba")

let test_regex_alt_plus_opt () =
  check "a|b left" true (m "a|b" "a");
  check "a|b right" true (m "a|b" "b");
  check "a|b neither" false (m "a|b" "c");
  check "a+ one" true (m "a+" "a");
  check "a+ none" false (m "a+" "");
  check "ab? without" true (m "ab?" "a");
  check "ab? with" true (m "ab?" "ab")

let test_regex_class_and_any () =
  check "[a-c] in range" true (m "[a-c]" "b");
  check "[a-c] out of range" false (m "[a-c]" "d");
  check "[a-c*] star member" true (m "[a-c*]" "*");
  check ". matches" true (m "." "x");
  check ". not empty" false (m "." "");
  check ". not nul" false (m "." "\000")

let test_regex_domain_pattern () =
  let pat = {|[a*](\.[a*])*|} in
  check "single label" true (m pat "a");
  check "two labels" true (m pat "a.a");
  check "star label" true (m pat "*.a");
  check "trailing dot invalid" false (m pat "a.");
  check "leading dot invalid" false (m pat ".a");
  check "empty invalid" false (m pat "");
  check "double dot invalid" false (m pat "a..a")

let test_regex_parse_errors () =
  let fails pat =
    match Regex.parse pat with
    | exception Regex.Parse_error _ -> true
    | _ -> false
  in
  check "unbalanced paren" true (fails "(ab");
  check "leading star" true (fails "*a");
  check "unterminated class" true (fails "[ab");
  check "trailing backslash" true (fails "ab\\")

let test_regex_alphabet () =
  check "alphabet of class" true
    (Regex.alphabet_of (Regex.parse "[a-c]x") = [ 'a'; 'b'; 'c'; 'x' ])

(* symbolic compile_term vs concrete matcher on concrete cells *)
let cells_of_string bound s =
  Array.init (bound + 1) (fun i ->
      if i < String.length s then Term.const (Char.code s.[i]) else Term.const 0)

let test_compile_term_concrete () =
  let patterns = [ "a*"; "a|b"; {|[a*](\.[a*])*|}; "(ab)*"; "a+b?" ] in
  let strings = [ ""; "a"; "b"; "ab"; "a.a"; "aaa"; "abab"; "*.a"; "a." ] in
  List.iter
    (fun pat ->
      let re = Regex.parse pat in
      List.iter
        (fun s ->
          let t = Regex.compile_term re (cells_of_string 6 s) in
          let expected = Regex.matches re s in
          match t with
          | Term.Const n -> check (pat ^ " vs " ^ s) expected (n <> 0)
          | _ -> Alcotest.failf "term not constant for concrete cells")
        strings)
    patterns

(* property: the symbolic term solved for symbolic cells only admits
   matching strings *)
let prop_compile_term_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50
       ~name:"solver models of compile_term are strings the regex matches"
       (QCheck2.Gen.oneofl [ "a*"; {|[a*](\.[a*])*|}; "a(b|c)*"; "[ab]+" ])
       (fun pat ->
         let re = Regex.parse pat in
         let alphabet = [| 0; Char.code 'a'; Char.code 'b'; Char.code 'c';
                           Char.code '.'; Char.code '*' |] in
         let sv = Sv.symbolic_string ~alphabet 4 in
         let cells = match sv with Sv.Sstring c -> c | _ -> assert false in
         let t = Regex.compile_term re cells in
         match Solve.solve [ t ] with
         | Solve.Sat model ->
             let s = Value.cstring (Sv.concretize model sv) in
             Regex.matches re s
         | Solve.Unsat ->
             (* the pattern admits no string over this alphabet/bound *)
             not (Regex.matches re "")
         | Solve.Unknown -> true))

(* ----- symbolic values ----- *)

let test_sv_concretize () =
  let alphabet = [| 0; Char.code 'a'; Char.code 'b' |] in
  let s = Sv.symbolic_string ~alphabet ~name:"s" 3 in
  let atoms = Sv.atoms s in
  check_int "three atoms (NUL cell pinned)" 3 (List.length atoms);
  let model = Hashtbl.create 4 in
  List.iteri (fun i v -> Hashtbl.replace model v.Term.vid
                 (if i < 2 then Char.code 'a' else 0)) atoms;
  let v = Sv.concretize model s in
  Alcotest.(check string) "aa" "aa" (Value.cstring v)

let test_sv_of_value_roundtrip () =
  let v =
    Value.Vstruct
      ("P", [ ("x", Value.Vint 3); ("s", Value.of_cstring "hi");
              ("a", Value.Varray [| Value.Vbool true; Value.Vbool false |]) ])
  in
  let sv = Sv.of_value v in
  check "no atoms in embedded concrete value" true (Sv.atoms sv = []);
  check "concretizes back" true (Value.equal v (Sv.concretize (Hashtbl.create 1) sv))

(* ----- executor ----- *)

let sym_int ?(width = 4) name =
  Sv.fresh_scalar ~name (Eywa_minic.Ast.Tint width)
    ~domain:(Array.init (1 lsl width) (fun i -> i))

let run_paths ?config ?natives src entry args assumes =
  let p = parse_ok src in
  Exec.run ?config ?natives p ~entry ~args ~assumes

let test_exec_branch_coverage () =
  let paths, stats =
    run_paths "int f(uint8_t x) { if (x > 7) { return 1; } return 0; }" "f"
      [ sym_int "x" ] []
  in
  check_int "two paths" 2 (List.length paths);
  check_int "completed" 2 stats.Exec.paths_completed;
  (* each path's model satisfies its path condition *)
  List.iter
    (fun (p : Exec.path) -> check "model satisfies pc" true (Solve.check p.model p.pc))
    paths

let test_exec_nested_branches () =
  let paths, _ =
    run_paths
      "int f(uint8_t x) { if (x > 7) { if (x > 11) { return 2; } return 1; } return 0; }"
      "f" [ sym_int "x" ] []
  in
  check_int "three paths" 3 (List.length paths);
  let rets =
    List.map (fun (p : Exec.path) ->
        Value.to_int (Sv.concretize p.model p.ret))
      paths
    |> List.sort_uniq compare
  in
  check "all outcomes reached" true (rets = [ 0; 1; 2 ])

let test_exec_assume () =
  let x = sym_int "x" in
  let assume = Term.gt (Sv.scalar_term x) (Term.const 11) in
  let paths, _ =
    run_paths "int f(uint8_t x) { if (x > 7) { return 1; } return 0; }" "f" [ x ]
      [ assume ]
  in
  check_int "only the high branch is feasible" 1 (List.length paths)

let test_exec_strlen_forks () =
  let alphabet = [| 0; Char.code 'a' |] in
  let s = Sv.symbolic_string ~alphabet ~name:"s" 3 in
  let paths, _ = run_paths "int f(char* s) { return strlen(s); }" "f" [ s ] [] in
  (* lengths 0..3 *)
  check_int "one path per length" 4 (List.length paths);
  let lens =
    List.map (fun (p : Exec.path) -> Value.to_int (Sv.concretize p.model p.ret)) paths
    |> List.sort_uniq compare
  in
  check "lengths 0..3" true (lens = [ 0; 1; 2; 3 ])

let test_exec_strcmp_paths () =
  let alphabet = [| 0; Char.code 'a'; Char.code 'b' |] in
  let s = Sv.symbolic_string ~alphabet ~name:"s" 2 in
  let paths, _ =
    run_paths "bool f(char* s) { return strcmp(s, \"ab\") == 0; }" "f" [ s ] []
  in
  let eq_paths =
    List.filter
      (fun (p : Exec.path) -> Value.truthy (Sv.concretize p.model p.ret))
      paths
  in
  check_int "exactly one equality class" 1 (List.length eq_paths);
  let s_val =
    Value.cstring (Sv.concretize (List.hd eq_paths).model s)
  in
  Alcotest.(check string) "solved to ab" "ab" s_val

let test_exec_loop_unrolling () =
  let paths, _ =
    run_paths
      "int f(uint8_t n) { int acc = 0; for (uint8_t i = 0; i < n; i++) { acc += 1; } return acc; }"
      "f"
      [ sym_int ~width:2 "n" ] []
  in
  (* n in 0..3 -> four distinct iteration counts *)
  check_int "path per loop count" 4 (List.length paths)

let test_exec_error_paths () =
  let paths, _ =
    run_paths "int f(uint8_t x) { return 10 / x; }" "f" [ sym_int "x" ] []
  in
  let errors = List.filter (fun (p : Exec.path) -> p.error <> None) paths in
  check_int "division-by-zero path reported" 1 (List.length errors)

let test_exec_symbolic_index () =
  let paths, _ =
    run_paths "char f(char* s, uint8_t i) { return s[i]; }" "f"
      [ Sv.concrete_string "ab"; sym_int ~width:2 "i" ] []
  in
  (* buffer size 3: in-bounds 0,1,2 plus one out-of-bounds error path *)
  let ok = List.filter (fun (p : Exec.path) -> p.error = None) paths in
  let err = List.filter (fun (p : Exec.path) -> p.error <> None) paths in
  check_int "three in-bounds cells" 3 (List.length ok);
  check_int "one out-of-bounds path" 1 (List.length err)

let test_exec_budget_max_paths () =
  let config = { Exec.default_config with max_paths = 2 } in
  let paths, stats =
    run_paths ~config
      "int f(uint8_t x) { if (x > 1) { if (x > 2) { if (x > 3) { return 3; } return 2; } return 1; } return 0; }"
      "f" [ sym_int "x" ] []
  in
  check "stopped at cap" true (List.length paths <= 2);
  check "completed count matches" true (stats.Exec.paths_completed <= 2)

let test_exec_step_budget () =
  let config = { Exec.default_config with max_steps = 50 } in
  let paths, _ =
    run_paths ~config "int f() { int x = 0; while (true) { x += 1; } return x; }"
      "f" [] []
  in
  check "step-budget error path" true
    (List.exists (fun (p : Exec.path) -> p.error <> None) paths)

let test_exec_call_and_return () =
  let src =
    "int helper(int a) { if (a > 3) { return 10; } return 20; }\n\
     int f(uint8_t x) { return helper(x) + 1; }"
  in
  let paths, _ = run_paths src "f" [ sym_int "x" ] [] in
  check_int "callee forks propagate" 2 (List.length paths);
  let rets =
    List.map (fun (p : Exec.path) -> Value.to_int (Sv.concretize p.model p.ret)) paths
    |> List.sort_uniq compare
  in
  check "11 and 21" true (rets = [ 11; 21 ])

let test_exec_native () =
  let natives =
    [ ("oracle_fn", fun _ -> Sv.Sscalar (Eywa_minic.Ast.Tbool, Term.tt)) ]
  in
  let paths, _ =
    run_paths ~natives "bool oracle_fn(char* s);\nbool f(char* s) { return oracle_fn(s); }"
      "f" [ Sv.concrete_string "x" ] []
  in
  check_int "one path" 1 (List.length paths);
  check "native result" true
    (Value.truthy (Sv.concretize (List.hd paths).model (List.hd paths).ret))

(* soundness: replaying each symbolic path's model concretely
   reproduces the symbolic return value *)
let test_exec_concolic_agreement () =
  let src =
    "int classify(uint8_t x, uint8_t y) {\n\
    \  if (x > y) { return 1; }\n\
    \  if (x == y) { if (x > 7) { return 2; } return 3; }\n\
    \  if (y - x > 4) { return 4; }\n\
    \  return 5;\n\
     }"
  in
  let p = parse_ok src in
  let x = sym_int "x" and y = sym_int "y" in
  let paths, _ = Exec.run p ~entry:"classify" ~args:[ x; y ] ~assumes:[] in
  check "several paths" true (List.length paths >= 4);
  List.iter
    (fun (path : Exec.path) ->
      let cx = Sv.concretize path.model x and cy = Sv.concretize path.model y in
      match Interp.run p "classify" [ cx; cy ] with
      | Ok v ->
          check "symbolic = concrete" true
            (Value.equal v (Sv.concretize path.model path.ret))
      | Error e -> Alcotest.failf "concrete replay failed: %s" (Interp.error_to_string e))
    paths

let suite =
  [
    Alcotest.test_case "regex: literals" `Quick test_regex_literals;
    Alcotest.test_case "regex: star" `Quick test_regex_star;
    Alcotest.test_case "regex: alternation, plus, option" `Quick test_regex_alt_plus_opt;
    Alcotest.test_case "regex: classes and dot" `Quick test_regex_class_and_any;
    Alcotest.test_case "regex: the DNS domain pattern" `Quick test_regex_domain_pattern;
    Alcotest.test_case "regex: parse errors" `Quick test_regex_parse_errors;
    Alcotest.test_case "regex: alphabet extraction" `Quick test_regex_alphabet;
    Alcotest.test_case "regex: compile_term on concrete cells" `Quick test_compile_term_concrete;
    prop_compile_term_sound;
    Alcotest.test_case "sv: concretize strings" `Quick test_sv_concretize;
    Alcotest.test_case "sv: of_value round trip" `Quick test_sv_of_value_roundtrip;
    Alcotest.test_case "exec: branch coverage" `Quick test_exec_branch_coverage;
    Alcotest.test_case "exec: nested branches" `Quick test_exec_nested_branches;
    Alcotest.test_case "exec: assumes prune" `Quick test_exec_assume;
    Alcotest.test_case "exec: strlen forks per length" `Quick test_exec_strlen_forks;
    Alcotest.test_case "exec: strcmp equality class" `Quick test_exec_strcmp_paths;
    Alcotest.test_case "exec: loop unrolling" `Quick test_exec_loop_unrolling;
    Alcotest.test_case "exec: error paths reported" `Quick test_exec_error_paths;
    Alcotest.test_case "exec: symbolic index concretized" `Quick test_exec_symbolic_index;
    Alcotest.test_case "exec: max-paths budget" `Quick test_exec_budget_max_paths;
    Alcotest.test_case "exec: step budget" `Quick test_exec_step_budget;
    Alcotest.test_case "exec: calls fork and return" `Quick test_exec_call_and_return;
    Alcotest.test_case "exec: native hooks" `Quick test_exec_native;
    Alcotest.test_case "exec: symbolic agrees with concrete replay" `Quick
      test_exec_concolic_agreement;
  ]
