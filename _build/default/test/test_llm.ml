module Gpt = Eywa_llm.Gpt
module Mutate = Eywa_llm.Mutate
module Rng = Eywa_llm.Rng
module Extract = Eywa_llm.Extract
module Prompt_parse = Eywa_llm.Prompt_parse
module Ast = Eywa_minic.Ast
module Parser = Eywa_minic.Parser
module Stategraph = Eywa_stategraph.Stategraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ----- rng ----- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  check "same seed, same stream" true
    (List.init 20 (fun _ -> Rng.next a) = List.init 20 (fun _ -> Rng.next b));
  let c = Rng.create 8 in
  check "different seed, different stream" false
    (List.init 20 (fun _ -> Rng.next (Rng.create 7)) = [] @ List.init 20 (fun _ -> Rng.next c))

let test_rng_string_seed () =
  let a = Rng.of_string 1 "dname_applies" and b = Rng.of_string 1 "cname_applies" in
  check "prompt-dependent streams differ" false (Rng.next a = Rng.next b && Rng.next a = Rng.next b)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 200 do
    let v = Rng.int r 7 in
    check "in range" true (v >= 0 && v < 7);
    let f = Rng.float r in
    check "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_pick () =
  let r = Rng.create 4 in
  check "picks a member" true (List.mem (Rng.pick r [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  check "empty pick raises" true
    (match Rng.pick r [] with exception Invalid_argument _ -> true | _ -> false)

(* ----- prompt parsing ----- *)

let sample_prompt =
  "#include <stdint.h>\n\n\
   typedef enum { A, B } Kind;\n\
   typedef struct { Kind k; char* s; } Box;\n\n\
   // helper\n\
   bool helper(Box b);\n\n\
   // the target\n\
   bool target_fn(char* q, Box b) {\n\
  \  // implement me\n"

let test_prompt_parse () =
  match Prompt_parse.parse sample_prompt with
  | Error m -> Alcotest.fail m
  | Ok task ->
      Alcotest.(check string) "target name" "target_fn" task.target.Ast.fname;
      check_int "one enum" 1 (List.length task.enums);
      check_int "one struct" 1 (List.length task.structs);
      check_int "one helper" 1 (List.length task.helpers);
      check "target params recovered" true
        (task.target.Ast.params
        = [ (Ast.Tstring, "q"); (Ast.Tstruct "Box", "b") ])

let test_prompt_parse_garbage () =
  check "garbage rejected" true (Result.is_error (Prompt_parse.parse "??? not C"))

(* ----- mutations ----- *)

let sample_func () =
  let src =
    "typedef enum { LOW, HIGH } Level;\n\
     bool f(int a, int b, Level l) {\n\
    \  if (a > b && l == HIGH) { return true; }\n\
    \  if (a + 3 < b) { return false; }\n\
    \  return b >= 2;\n\
     }"
  in
  match Parser.parse_result src with
  | Ok p -> (List.hd p.Ast.funcs, p.Ast.enums)
  | Error m -> Alcotest.failf "parse: %s" m

let test_mutation_sites () =
  let f, enums = sample_func () in
  let sites = Mutate.candidate_sites ~enums f in
  check "has relax-compare sites" true
    (List.exists (fun (_, k) -> k = Mutate.Relax_compare) sites);
  check "has off-by-one sites" true
    (List.exists (fun (_, k) -> k = Mutate.Off_by_one) sites);
  check "has enum sites" true
    (List.exists (fun (_, k) -> k = Mutate.Wrong_enum) sites);
  check "has and/or sites" true
    (List.exists (fun (_, k) -> k = Mutate.Swap_and_or) sites)

let test_mutation_zero_temperature_is_identity () =
  let f, enums = sample_func () in
  let rng = Rng.create 1 in
  let f', applied = Mutate.mutate ~enums ~rng ~temperature:0.0 f in
  check "no mutations at tau=0" true (applied = []);
  check "function unchanged" true (f = f')

let test_mutation_apply_changes_one_site () =
  let f, enums = sample_func () in
  let sites = Mutate.candidate_sites ~enums f in
  let site, kind = List.find (fun (_, k) -> k = Mutate.Relax_compare) sites in
  let rng = Rng.create 1 in
  let f' = Mutate.apply ~enums ~rng ~site ~kind f in
  check "function changed" false (f = f');
  (* same shape: pretty-printed loc unchanged by a comparison flip *)
  check_int "same line count"
    (Eywa_minic.Pretty.loc (Eywa_minic.Pretty.func f))
    (Eywa_minic.Pretty.loc (Eywa_minic.Pretty.func f'))

let test_mutation_deterministic () =
  let f, enums = sample_func () in
  let go seed =
    Mutate.mutate ~enums ~rng:(Rng.create seed) ~temperature:0.8 f
  in
  check "same seed, same mutant" true (go 5 = go 5);
  (* different seeds usually differ; check over several *)
  let distinct =
    List.sort_uniq compare (List.map (fun s -> fst (go s)) [ 1; 2; 3; 4; 5; 6 ])
  in
  check "seeds diversify" true (List.length distinct > 1)

let test_mutation_wrong_enum_stays_in_enum () =
  let f, enums = sample_func () in
  let sites = Mutate.candidate_sites ~enums f in
  match List.find_opt (fun (_, k) -> k = Mutate.Wrong_enum) sites with
  | None -> Alcotest.fail "no enum site"
  | Some (site, kind) ->
      let f' = Mutate.apply ~enums ~rng:(Rng.create 2) ~site ~kind f in
      (* the result still typechecks in its enum context *)
      let p = { Ast.empty_program with Ast.enums; funcs = [ f' ] } in
      check "mutant typechecks" true (Result.is_ok (Eywa_minic.Typecheck.check p))

(* ----- the knowledge base ----- *)

let test_kb_covers_all_models () =
  let expected =
    [
      "cname_applies"; "dname_applies"; "wildcard_applies"; "ipv4_applies";
      "is_valid_ipv4"; "record_matches_name"; "full_lookup"; "rcode_lookup";
      "auth_lookup"; "loop_count"; "prefixLengthToSubnetMask"; "isValidRoute";
      "isValidPrefixList"; "checkValidInputs"; "isMatchPrefixListEntry";
      "isMatchRouteMapStanza"; "confed_action"; "rr_action"; "rr_rmap_action";
      "smtp_server_response";
    ]
  in
  List.iter
    (fun name ->
      check ("kb knows " ^ name) true (Gpt.knows Gpt.default_config name))
    expected

(* ----- oracle behaviour ----- *)

let dname_prompt =
  "typedef enum { A, AAAA, NS, TXT, CNAME, DNAME, SOA } RecordType;\n\
   typedef struct { RecordType rtyp; char* name; char* rdat; } Record;\n\n\
   // If a DNAME record matches a query.\n\
   bool dname_applies(char* query, Record record) {\n\
  \  // implement me\n"

let complete ?(temperature = 0.6) ?(seed = 1) prompt =
  Gpt.complete Gpt.default_config
    { Eywa_core.Oracle.system = ""; user = prompt; temperature; seed }

let test_oracle_known_function () =
  let out = complete dname_prompt in
  check "echoes typedefs" true (contains ~needle:"typedef enum" out);
  check "implements the function" true
    (contains ~needle:"bool dname_applies(char* query, Record record) {" out);
  (* the completion parses and typechecks *)
  match Parser.parse_result out with
  | Error m -> Alcotest.failf "completion does not parse: %s" m
  | Ok p -> check "typechecks" true (Result.is_ok (Eywa_minic.Typecheck.check p))

let test_oracle_deterministic () =
  check "same (seed, prompt) same completion" true
    (complete ~seed:3 dname_prompt = complete ~seed:3 dname_prompt);
  check "different seeds can differ" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun s -> complete ~seed:s dname_prompt) [ 1; 2; 3; 4; 5 ]))
    > 1)

let test_oracle_zero_temperature_stable () =
  let outs = List.map (fun s -> complete ~temperature:0.0 ~seed:s dname_prompt) [ 1; 2; 3 ] in
  (* tau = 0: no mutations, no commentary, identical code across seeds *)
  check "tau=0 collapses to one completion" true
    (List.length (List.sort_uniq compare outs) = 1)

let test_oracle_unknown_function_stub () =
  let prompt =
    "// a protocol the model has never seen\n\
     bool frobnicate_quux(char* data) {\n\
    \  // implement me\n"
  in
  let out = complete prompt in
  check "stub still defines the function" true
    (contains ~needle:"bool frobnicate_quux(char* data) {" out);
  match Parser.parse_result out with
  | Error m -> Alcotest.failf "stub does not parse: %s" m
  | Ok p -> check "stub typechecks" true (Result.is_ok (Eywa_minic.Typecheck.check p))

let test_oracle_failure_rate () =
  (* with fail_rate 1.0 every completion uses strtok and is rejected by
     the typechecker — the compile-error path of §4.1 *)
  let config = { Gpt.default_config with fail_rate = 1.0 } in
  let out =
    Gpt.complete config
      { Eywa_core.Oracle.system = ""; user = dname_prompt; temperature = 0.5; seed = 1 }
  in
  check "mentions strtok" true (contains ~needle:"strtok" out);
  match Parser.parse_result out with
  | Error _ -> Alcotest.fail "sabotaged completion should parse"
  | Ok p ->
      check "but fails to compile" true
        (Result.is_error (Eywa_minic.Typecheck.check p))

(* ----- state graph extraction (Fig. 8) ----- *)

let smtp_prompt =
  "typedef enum { INITIAL, HELO_SENT, EHLO_SENT, MAIL_FROM_RECEIVED, \
   RCPT_TO_RECEIVED, DATA_RECEIVED, QUITTED } State;\n\n\
   // SMTP server response\n\
   char* smtp_server_response(State state, char* input) {\n\
  \  // implement me\n"

let test_stategraph_roundtrip () =
  let code = complete ~temperature:0.0 smtp_prompt in
  let response = Gpt.complete_stategraph code in
  check "response is a python dict" true (contains ~needle:"state_transitions = {" response);
  match Extract.parse_pydict response with
  | Error m -> Alcotest.fail m
  | Ok transitions ->
      check "nontrivial" true (List.length transitions >= 8);
      (* extraction agrees with the SMTP reference machine *)
      List.iter
        (fun ((s, i), s') ->
          check
            (Printf.sprintf "(%s, %s) -> %s is a real transition" s i s')
            true
            (List.assoc_opt (s, i) Eywa_smtp.Machine.reference_transitions = Some s'))
        transitions

let test_stategraph_reaches_all_states () =
  let code = complete ~temperature:0.0 smtp_prompt in
  match Extract.state_graph code with
  | Error m -> Alcotest.fail m
  | Ok graph ->
      List.iter
        (fun goal ->
          check ("reach " ^ goal) true
            (Stategraph.path_to graph ~start:"INITIAL" ~goal <> None))
        [ "HELO_SENT"; "EHLO_SENT"; "MAIL_FROM_RECEIVED"; "RCPT_TO_RECEIVED";
          "DATA_RECEIVED"; "QUITTED" ]

let test_pydict_parser () =
  let text = "x = {\n  (\"A\", \"i\"): \"B\",\n  (\"B\", \"j\"): \"C\",\n}" in
  match Extract.parse_pydict text with
  | Error m -> Alcotest.fail m
  | Ok ts -> check "two entries" true (ts = [ (("A", "i"), "B"); (("B", "j"), "C") ])

let test_pydict_parser_errors () =
  check "no brace" true (Result.is_error (Extract.parse_pydict "nothing here"));
  check "malformed tuple" true (Result.is_error (Extract.parse_pydict "{(\"A\"): \"B\"}"))

let test_extract_no_machine () =
  check "non-state-machine code rejected" true
    (Result.is_error (Extract.transitions_of_code "int f(int a) { return a; }"))

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: string seeding" `Quick test_rng_string_seed;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: pick" `Quick test_rng_pick;
    Alcotest.test_case "prompt parse: recovers the task" `Quick test_prompt_parse;
    Alcotest.test_case "prompt parse: rejects garbage" `Quick test_prompt_parse_garbage;
    Alcotest.test_case "mutate: candidate sites" `Quick test_mutation_sites;
    Alcotest.test_case "mutate: tau=0 is identity" `Quick test_mutation_zero_temperature_is_identity;
    Alcotest.test_case "mutate: apply rewrites one site" `Quick test_mutation_apply_changes_one_site;
    Alcotest.test_case "mutate: deterministic per seed" `Quick test_mutation_deterministic;
    Alcotest.test_case "mutate: wrong-enum stays well typed" `Quick test_mutation_wrong_enum_stays_in_enum;
    Alcotest.test_case "kb: covers all Table 2 modules" `Quick test_kb_covers_all_models;
    Alcotest.test_case "oracle: known function" `Quick test_oracle_known_function;
    Alcotest.test_case "oracle: deterministic" `Quick test_oracle_deterministic;
    Alcotest.test_case "oracle: tau=0 collapses" `Quick test_oracle_zero_temperature_stable;
    Alcotest.test_case "oracle: unknown function stub" `Quick test_oracle_unknown_function_stub;
    Alcotest.test_case "oracle: sabotage fails to compile" `Quick test_oracle_failure_rate;
    Alcotest.test_case "stategraph: Fig. 8 round trip" `Quick test_stategraph_roundtrip;
    Alcotest.test_case "stategraph: all states reachable" `Quick test_stategraph_reaches_all_states;
    Alcotest.test_case "pydict: parser" `Quick test_pydict_parser;
    Alcotest.test_case "pydict: parser errors" `Quick test_pydict_parser_errors;
    Alcotest.test_case "extract: requires a state machine" `Quick test_extract_no_machine;
  ]
