open Eywa_dns

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let n = Name.of_string

(* ----- names ----- *)

let test_name_parse () =
  check "labels" true (n "a.b.test." = [ "a"; "b"; "test" ]);
  check "no trailing dot needed" true (n "a.b" = [ "a"; "b" ]);
  check "empty labels dropped" true (n "a..b." = [ "a"; "b" ]);
  check "root" true (n "." = []);
  check_str "to_string" "a.b." (Name.to_string [ "a"; "b" ]);
  check_str "root prints as dot" "." (Name.to_string [])

let test_name_suffix () =
  check "suffix" true (Name.is_suffix ~suffix:(n "test.") (n "a.test."));
  check "equal counts" true (Name.is_suffix ~suffix:(n "a.test.") (n "a.test."));
  check "not proper when equal" false
    (Name.is_proper_suffix ~suffix:(n "a.test.") (n "a.test."));
  check "proper" true (Name.is_proper_suffix ~suffix:(n "test.") (n "a.test."));
  check "non-suffix" false (Name.is_suffix ~suffix:(n "other.") (n "a.test."))

let test_name_strip_append () =
  check "strip" true (Name.strip_suffix ~suffix:(n "test.") (n "a.b.test.") = Some [ "a"; "b" ]);
  check "strip non-suffix" true (Name.strip_suffix ~suffix:(n "x.") (n "a.test.") = None);
  check "append" true (Name.append [ "a" ] (n "test.") = n "a.test.")

let test_name_wildcard () =
  check "is wildcard" true (Name.is_wildcard (n "*.test."));
  check "bare star" true (Name.is_wildcard (n "*"));
  check "plain not" false (Name.is_wildcard (n "a.test."));
  check "matches deeper" true (Name.wildcard_matches ~wildcard:(n "*.test.") (n "a.test."));
  check "matches much deeper" true
    (Name.wildcard_matches ~wildcard:(n "*.test.") (n "a.b.test."));
  check "does not match base" false
    (Name.wildcard_matches ~wildcard:(n "*.test.") (n "test."));
  check "does not match self" false
    (Name.wildcard_matches ~wildcard:(n "*.test.") (n "*.test."))

let test_name_substitute () =
  check "dname rewrite" true
    (Name.substitute_suffix ~old_suffix:(n "b.test.") ~new_suffix:(n "c.test.")
       (n "a.b.test.")
    = Some (n "a.c.test."));
  check "not applicable at owner" true
    (Name.substitute_suffix ~old_suffix:(n "b.test.") ~new_suffix:(n "c.test.")
       (n "b.test.")
    = None)

let prop_name_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"name of_string . to_string round trips"
       QCheck2.Gen.(list_size (int_range 0 5) (oneofl [ "a"; "b"; "abc"; "*" ]))
       (fun labels -> Name.of_string (Name.to_string labels) = labels))

let prop_strip_append =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"strip_suffix inverts append"
       QCheck2.Gen.(pair
          (list_size (int_range 0 3) (oneofl [ "a"; "b" ]))
          (list_size (int_range 0 3) (oneofl [ "c"; "d" ])))
       (fun (prefix, suffix) ->
         Name.strip_suffix ~suffix (Name.append prefix suffix) = Some prefix))

(* ----- zones ----- *)

let soa = Rr.v (n "test.") Rr.SOA Rr.Soa_data
let apex_ns = Rr.v (n "test.") Rr.NS (Rr.Target (n "ns1.outside.edu."))

let zone records = Zone.v (n "test.") ([ soa; apex_ns ] @ records)

let test_zone_basics () =
  let z = zone [ Rr.v (n "a.test.") Rr.A (Rr.Address "10.0.0.1") ] in
  check_int "records at a.test." 1 (List.length (Zone.records_at z (n "a.test.")));
  check "in zone" true (Zone.in_zone z (n "b.a.test."));
  check "out of zone" false (Zone.in_zone z (n "a.example."));
  check "node exists" true (Zone.node_exists z (n "a.test."));
  check "ent exists" false (Zone.node_exists z (n "b.test."))

let test_zone_ent () =
  let z = zone [ Rr.v (n "a.b.test.") Rr.A (Rr.Address "10.0.0.1") ] in
  check "b.test. is an empty non-terminal" true (Zone.node_exists z (n "b.test."))

let test_zone_delegation () =
  let z =
    zone
      [
        Rr.v (n "child.test.") Rr.NS (Rr.Target (n "ns.child.test."));
        Rr.v (n "ns.child.test.") Rr.A (Rr.Address "10.0.0.53");
      ]
  in
  (match Zone.delegation_of z (n "x.child.test.") with
  | Some (cut, ns_rrs) ->
      check "cut owner" true (Name.equal cut (n "child.test."));
      check_int "one NS" 1 (List.length ns_rrs)
  | None -> Alcotest.fail "expected a delegation");
  check "no delegation above the cut" true (Zone.delegation_of z (n "a.test.") = None);
  check "apex NS is not a delegation" true (Zone.delegation_of z (n "test.") = None)

let test_zone_glue () =
  let z =
    zone
      [
        Rr.v (n "child.test.") Rr.NS (Rr.Target (n "ns.sib.test."));
        Rr.v (n "ns.sib.test.") Rr.A (Rr.Address "10.0.0.53");
      ]
  in
  let glue = Zone.glue_for z [ n "ns.sib.test." ] in
  check_int "sibling glue found" 1 (List.length glue)

let test_zone_wildcard_ordering () =
  let z =
    zone
      [
        Rr.v (n "*.test.") Rr.TXT (Rr.Text "shallow");
        Rr.v (n "*.a.test.") Rr.TXT (Rr.Text "deep");
      ]
  in
  match Zone.wildcards_matching z (n "x.a.test.") with
  | first :: _ :: _ -> check "deepest first" true (Name.equal first.Rr.owner (n "*.a.test."))
  | _ -> Alcotest.fail "expected two wildcard matches"

let test_zone_validate () =
  check "valid" true (Result.is_ok (Zone.validate (zone [])));
  check "no soa" true
    (Result.is_error (Zone.validate (Zone.v (n "test.") [ apex_ns ])));
  check "no apex ns" true
    (Result.is_error (Zone.validate (Zone.v (n "test.") [ soa ])));
  check "out of zone record" true
    (Result.is_error
       (Zone.validate (zone [ Rr.v (n "a.example.") Rr.A (Rr.Address "1.1.1.1") ])));
  check "duplicates" true
    (Result.is_error
       (Zone.validate
          (zone
             [
               Rr.v (n "a.test.") Rr.A (Rr.Address "1.1.1.1");
               Rr.v (n "a.test.") Rr.A (Rr.Address "1.1.1.1");
             ])))

(* ----- zone files ----- *)

let test_zonefile_roundtrip () =
  let z =
    zone
      [
        Rr.v (n "a.test.") Rr.A (Rr.Address "10.0.0.1");
        Rr.v (n "*.test.") Rr.DNAME (Rr.Target (n "a.a.test."));
        Rr.v (n "t.test.") Rr.TXT (Rr.Text "hello");
      ]
  in
  match Zonefile.parse (Zonefile.print z) with
  | Ok z' -> check "round trip" true (z = z')
  | Error m -> Alcotest.fail m

let test_zonefile_parse_errors () =
  check "no origin" true (Result.is_error (Zonefile.parse "a.test. A 1.2.3.4"));
  check "bad rtype" true
    (Result.is_error (Zonefile.parse "$ORIGIN test.\na.test. BOGUS x"))

let test_build_zone () =
  let z =
    Zonefile.build_zone
      [ { Zonefile.rname = "*"; rtype = Rr.DNAME; rdata = "a.a" } ]
  in
  check "zone validates" true (Result.is_ok (Zone.validate z));
  check "has the suffixed record" true
    (List.exists
       (fun (r : Rr.t) ->
         Name.equal r.owner (n "*.test.") && r.rtype = Rr.DNAME
         && Rr.target r = Some (n "a.a.test."))
       z.Zone.records)

let test_build_zone_delegation () =
  let z = Zonefile.build_zone ~extra_delegation:true [] in
  check "has a cut" true (Zone.delegation_of z (n "x.b.test.") <> None);
  check "has sibling glue" true (Zone.glue_for z [ n "ns.a.test." ] <> [])

let test_build_zone_out_of_zone_target () =
  let z =
    Zonefile.build_zone
      [ { Zonefile.rname = "a"; rtype = Rr.CNAME; rdata = "*" } ]
  in
  check "star rdata maps out of zone" true
    (List.exists
       (fun (r : Rr.t) ->
         r.rtype = Rr.CNAME
         && (match Rr.target r with
            | Some t -> not (Zone.in_zone z t)
            | None -> false))
       z.Zone.records)

(* ----- reference lookup semantics ----- *)

let lookup ?quirks z q = Lookup.lookup ?quirks z q

let reply z qname qtype =
  match lookup z { Message.qname = n qname; qtype } with
  | Message.Reply r -> r
  | Message.Crash m -> Alcotest.failf "unexpected crash: %s" m

let test_lookup_exact_match () =
  let z = zone [ Rr.v (n "a.test.") Rr.A (Rr.Address "10.0.0.1") ] in
  let r = reply z "a.test." Rr.A in
  check "noerror" true (r.rcode = Message.NOERROR);
  check "aa" true r.aa;
  check_int "one answer" 1 (List.length r.answer)

let test_lookup_nodata () =
  let z = zone [ Rr.v (n "a.test.") Rr.A (Rr.Address "10.0.0.1") ] in
  let r = reply z "a.test." Rr.TXT in
  check "noerror" true (r.rcode = Message.NOERROR);
  check "empty answer" true (r.answer = []);
  check "soa in authority" true
    (List.exists (fun (rr : Rr.t) -> rr.rtype = Rr.SOA) r.authority)

let test_lookup_nxdomain () =
  let r = reply (zone []) "missing.test." Rr.A in
  check "nxdomain" true (r.rcode = Message.NXDOMAIN)

let test_lookup_refused () =
  match lookup (zone []) { Message.qname = n "a.example."; qtype = Rr.A } with
  | Message.Reply r -> check "refused out of zone" true (r.rcode = Message.REFUSED)
  | Message.Crash _ -> Alcotest.fail "crash"

let test_lookup_ent () =
  let z = zone [ Rr.v (n "a.b.test.") Rr.A (Rr.Address "10.0.0.1") ] in
  let r = reply z "b.test." Rr.A in
  check "ENT is NOERROR, not NXDOMAIN" true (r.rcode = Message.NOERROR);
  check "empty answer" true (r.answer = [])

let test_lookup_cname_chain () =
  let z =
    zone
      [
        Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "b.test."));
        Rr.v (n "b.test.") Rr.CNAME (Rr.Target (n "c.test."));
        Rr.v (n "c.test.") Rr.A (Rr.Address "10.0.0.1");
      ]
  in
  let r = reply z "a.test." Rr.A in
  check "noerror" true (r.rcode = Message.NOERROR);
  check_int "two CNAMEs + A" 3 (List.length r.answer)

let test_lookup_cname_exact_qtype () =
  let z = zone [ Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "b.test.")) ] in
  let r = reply z "a.test." Rr.CNAME in
  check_int "CNAME itself returned" 1 (List.length r.answer);
  check "no chain for CNAME queries" true
    (match r.answer with [ rr ] -> rr.Rr.rtype = Rr.CNAME | _ -> false)

let test_lookup_cname_loop () =
  let z =
    zone
      [
        Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "b.test."));
        Rr.v (n "b.test.") Rr.CNAME (Rr.Target (n "a.test."));
      ]
  in
  let r = reply z "a.test." Rr.A in
  check "loop terminates NOERROR" true (r.rcode = Message.NOERROR);
  check "whole loop returned once" true (List.length r.answer >= 2)

let test_lookup_cname_dangling_target () =
  let z = zone [ Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "gone.test.")) ] in
  let r = reply z "a.test." Rr.A in
  check "NXDOMAIN for missing target" true (r.rcode = Message.NXDOMAIN);
  check "cname still in answer" true (List.length r.answer = 1)

let test_lookup_dname () =
  let z =
    zone
      [
        Rr.v (n "b.test.") Rr.DNAME (Rr.Target (n "c.test."));
        Rr.v (n "a.c.test.") Rr.A (Rr.Address "10.0.0.1");
      ]
  in
  let r = reply z "a.b.test." Rr.A in
  check "noerror" true (r.rcode = Message.NOERROR);
  (* DNAME + synthesized CNAME + final A *)
  check_int "three records" 3 (List.length r.answer);
  check "synthesized CNAME present" true
    (List.exists
       (fun (rr : Rr.t) ->
         rr.rtype = Rr.CNAME
         && Name.equal rr.owner (n "a.b.test.")
         && Rr.target rr = Some (n "a.c.test."))
       r.answer)

let test_lookup_dname_at_owner_is_not_rewritten () =
  let z = zone [ Rr.v (n "b.test.") Rr.DNAME (Rr.Target (n "c.test.")) ] in
  let r = reply z "b.test." Rr.A in
  check "NODATA at the DNAME owner" true (r.rcode = Message.NOERROR && r.answer = [])

let test_lookup_wildcard () =
  let z = zone [ Rr.v (n "*.test.") Rr.A (Rr.Address "10.0.0.7") ] in
  let r = reply z "x.y.test." Rr.A in
  check_int "one synthesized answer" 1 (List.length r.answer);
  check "owner is the query name" true
    (match r.answer with
    | [ rr ] -> Name.equal rr.Rr.owner (n "x.y.test.")
    | _ -> false)

let test_lookup_wildcard_no_match_at_base () =
  let z = zone [ Rr.v (n "*.test.") Rr.A (Rr.Address "10.0.0.7") ] in
  let r = reply z "test." Rr.A in
  check "base name not matched by wildcard" true (r.answer = [])

let test_lookup_delegation_with_glue () =
  let z =
    zone
      [
        Rr.v (n "child.test.") Rr.NS (Rr.Target (n "ns.sib.test."));
        Rr.v (n "ns.sib.test.") Rr.A (Rr.Address "10.0.0.53");
      ]
  in
  let r = reply z "deep.child.test." Rr.A in
  check "not authoritative" false r.aa;
  check "NS in authority" true
    (List.exists (fun (rr : Rr.t) -> rr.rtype = Rr.NS) r.authority);
  check "glue in additional" true
    (List.exists (fun (rr : Rr.t) -> rr.rtype = Rr.A) r.additional)

let test_lookup_dname_fig2_example () =
  (* the §2.3 Knot scenario: *.test. DNAME a.a.test., query a.*.test. *)
  let z = zone [ Rr.v (n "*.test.") Rr.DNAME (Rr.Target (n "a.a.test.")) ] in
  let r = reply z "a.*.test." Rr.CNAME in
  check "DNAME with original owner" true
    (List.exists
       (fun (rr : Rr.t) -> rr.rtype = Rr.DNAME && Name.equal rr.owner (n "*.test."))
       r.answer);
  check "synthesized CNAME at the query name" true
    (List.exists
       (fun (rr : Rr.t) ->
         rr.rtype = Rr.CNAME
         && Name.equal rr.owner (n "a.*.test.")
         && Rr.target rr = Some (n "a.a.a.test."))
       r.answer)

(* ----- quirks: each one changes behaviour on a witness scenario ----- *)

let responses_differ z qname qtype quirk =
  let q = { Message.qname = n qname; qtype } in
  lookup z q <> lookup ~quirks:[ quirk ] z q

let test_quirk_witnesses () =
  let glue_zone =
    zone
      [
        Rr.v (n "child.test.") Rr.NS (Rr.Target (n "ns.sib.test."));
        Rr.v (n "ns.sib.test.") Rr.A (Rr.Address "10.0.0.53");
        Rr.v (n "*.test.") Rr.TXT (Rr.Text "w");
      ]
  in
  let loop_zone =
    zone
      [
        Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "b.test."));
        Rr.v (n "b.test.") Rr.CNAME (Rr.Target (n "a.test."));
      ]
  in
  let dname_zone =
    zone
      [
        Rr.v (n "b.test.") Rr.DNAME (Rr.Target (n "c.test."));
        Rr.v (n "c.test.") Rr.DNAME (Rr.Target (n "d.test."));
        Rr.v (n "a.d.test.") Rr.A (Rr.Address "10.0.0.1");
      ]
  in
  let wildcard_zone = zone [ Rr.v (n "*.test.") Rr.A (Rr.Address "10.0.0.7") ] in
  let star_rdata_zone =
    zone [ Rr.v (n "a.test.") Rr.TXT (Rr.Text "has * inside") ]
  in
  let ent_wild_zone = zone [ Rr.v (n "a.*.b.test.") Rr.A (Rr.Address "10.0.0.1") ] in
  let nested_wild_zone =
    zone
      [
        Rr.v (n "*.test.") Rr.TXT (Rr.Text "shallow");
        Rr.v (n "*.a.test.") Rr.TXT (Rr.Text "deep");
      ]
  in
  let out_of_zone_cname =
    zone [ Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "x.example.")) ] in
  let cases =
    [
      (Lookup.Sibling_glue_missing, glue_zone, "x.child.test.", Rr.A);
      (Lookup.Sibling_glue_missing_wildcard, glue_zone, "x.child.test.", Rr.A);
      (Lookup.Servfail_with_answer, loop_zone, "a.test.", Rr.A);
      (Lookup.Missing_cname_loop_record, loop_zone, "a.test.", Rr.A);
      (Lookup.Out_of_zone_record_returned, out_of_zone_cname, "a.test.", Rr.A);
      (Lookup.Out_of_zone_mishandled, out_of_zone_cname, "a.test.", Rr.A);
      (Lookup.Wrong_rcode_star_rdata, star_rdata_zone, "a.test.", Rr.TXT);
      (Lookup.Wrong_rcode_ent_wildcard, ent_wild_zone, "b.test.", Rr.A);
      (Lookup.Dname_name_replaced_by_query, dname_zone, "a.b.test.", Rr.A);
      (Lookup.Dname_not_recursive, dname_zone, "a.b.test.", Rr.A);
      (Lookup.Wildcard_one_label, wildcard_zone, "x.y.test.", Rr.A);
      (Lookup.Glue_aa_flag, glue_zone, "x.child.test.", Rr.A);
      (Lookup.Aa_zone_cut_ns, glue_zone, "x.child.test.", Rr.A);
      ( Lookup.Invalid_wildcard_match,
        zone [ Rr.v (n "*.a.test.") Rr.A (Rr.Address "10.0.0.7") ],
        "a.test.", Rr.A );
      (Lookup.Nested_wildcards_broken, nested_wild_zone, "x.a.test.", Rr.TXT);
      (Lookup.Duplicate_answer_records, wildcard_zone, "x.test.", Rr.A);
      (Lookup.Cname_chain_not_followed, loop_zone, "a.test.", Rr.A);
      (Lookup.Empty_answer_wildcard, wildcard_zone, "x.test.", Rr.A);
      (Lookup.Missing_aa_flag, wildcard_zone, "x.test.", Rr.A);
      ( Lookup.Inconsistent_loop_unroll,
        zone
          [
            Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "b.test."));
            Rr.v (n "b.test.") Rr.CNAME (Rr.Target (n "c.test."));
            Rr.v (n "c.test.") Rr.CNAME (Rr.Target (n "d.test."));
            Rr.v (n "d.test.") Rr.CNAME (Rr.Target (n "e.test."));
            Rr.v (n "e.test.") Rr.A (Rr.Address "10.0.0.5");
          ],
        "a.test.", Rr.A );
    ]
  in
  List.iter
    (fun (quirk, z, qname, qtype) ->
      check
        (Printf.sprintf "%s has a witness" (Lookup.quirk_to_string quirk))
        true
        (responses_differ z qname qtype quirk))
    cases

let test_quirk_wrong_rcode_cname_target () =
  let z = zone [ Rr.v (n "a.test.") Rr.CNAME (Rr.Target (n "gone.test.")) ] in
  check "witness" true (responses_differ z "a.test." Rr.A Lookup.Wrong_rcode_cname_target)

let test_quirk_dname_replaced_by_query_fig2 () =
  let z = zone [ Rr.v (n "*.test.") Rr.DNAME (Rr.Target (n "a.a.test.")) ] in
  let q = { Message.qname = n "a.*.test."; qtype = Rr.CNAME } in
  match lookup ~quirks:[ Lookup.Dname_name_replaced_by_query ] z q with
  | Message.Reply r ->
      (* the bug: owner of the returned DNAME is the query name *)
      check "owner replaced" true
        (List.exists
           (fun (rr : Rr.t) ->
             rr.rtype = Rr.DNAME && Name.equal rr.owner (n "a.*.test."))
           r.answer)
  | Message.Crash _ -> Alcotest.fail "crash"

let test_quirk_wildcard_loop_crash () =
  let z = zone [ Rr.v (n "*.test.") Rr.CNAME (Rr.Target (n "x.y.test.")) ] in
  let q = { Message.qname = n "a.test."; qtype = Rr.A } in
  (match lookup ~quirks:[ Lookup.Wildcard_loop_crash ] z q with
  | Message.Crash _ -> ()
  | Message.Reply _ -> Alcotest.fail "expected a crash");
  (* the reference engine survives the same zone *)
  match lookup z q with
  | Message.Reply _ -> ()
  | Message.Crash _ -> Alcotest.fail "reference must not crash"

let test_quirk_star_query_synthesis () =
  let z = zone [ Rr.v (n "*.test.") Rr.A (Rr.Address "10.0.0.7") ] in
  let q = { Message.qname = n "a.*.test."; qtype = Rr.A } in
  match (lookup z q, lookup ~quirks:[ Lookup.Star_query_synthesis ] z q) with
  | Message.Reply ok, Message.Reply bad ->
      check "reference synthesizes at the query name" true
        (List.exists (fun (rr : Rr.t) -> Name.equal rr.owner (n "a.*.test.")) ok.answer);
      check "quirk keeps the wildcard owner" true
        (List.exists (fun (rr : Rr.t) -> Name.equal rr.owner (n "*.test.")) bad.answer)
  | _ -> Alcotest.fail "crash"

(* ----- implementations ----- *)

let test_impls_roster () =
  check_int "ten implementations" 10 (List.length Impls.all);
  check "bind exists" true (Impls.find "bind" <> None);
  check "unknown absent" true (Impls.find "nginx" = None)

let test_impls_versions () =
  match Impls.find "coredns" with
  | None -> Alcotest.fail "coredns missing"
  | Some impl ->
      let old_q = Impls.quirks impl Impls.Old in
      let cur_q = Impls.quirks impl Impls.Current in
      check "old has all bugs" true (List.length old_q > List.length cur_q);
      check "current keeps only new bugs" true
        (List.for_all
           (fun q ->
             List.exists
               (fun (b : Impls.bug) -> b.quirk = q && b.new_bug)
               impl.Impls.bugs)
           cur_q)

let test_impls_bug_catalog_counts () =
  (* Table 3 has 38 DNS rows; the "Faulty Knot Test" row concerns
     Knot's own test suite, not server behaviour, so 37 are in scope *)
  check_int "catalog rows" 37 (List.length Impls.bug_catalog);
  let uniq =
    List.sort_uniq compare (List.map (fun (_, b : string * Impls.bug) -> b.quirk)
                              Impls.bug_catalog)
  in
  check "several shared root causes" true (List.length uniq < 38)

let test_impls_reference_disagreement () =
  (* a bug-flagged implementation answers differently from the quirk-free
     engine on its witness, while a clean version agrees *)
  let z = zone [ Rr.v (n "*.test.") Rr.A (Rr.Address "10.0.0.7") ] in
  let q = { Message.qname = n "x.test."; qtype = Rr.A } in
  let reference = Lookup.lookup z q in
  match Impls.find "twisted" with
  | None -> Alcotest.fail "twisted missing"
  | Some impl ->
      check "twisted deviates (empty answer bug)" false
        (Impls.serve impl Impls.Old z q = reference)

let suite =
  [
    Alcotest.test_case "name: parsing" `Quick test_name_parse;
    Alcotest.test_case "name: suffix tests" `Quick test_name_suffix;
    Alcotest.test_case "name: strip and append" `Quick test_name_strip_append;
    Alcotest.test_case "name: wildcards" `Quick test_name_wildcard;
    Alcotest.test_case "name: DNAME substitution" `Quick test_name_substitute;
    prop_name_roundtrip;
    prop_strip_append;
    Alcotest.test_case "zone: basics" `Quick test_zone_basics;
    Alcotest.test_case "zone: empty non-terminals" `Quick test_zone_ent;
    Alcotest.test_case "zone: delegations" `Quick test_zone_delegation;
    Alcotest.test_case "zone: sibling glue" `Quick test_zone_glue;
    Alcotest.test_case "zone: wildcard ordering" `Quick test_zone_wildcard_ordering;
    Alcotest.test_case "zone: validation" `Quick test_zone_validate;
    Alcotest.test_case "zonefile: round trip" `Quick test_zonefile_roundtrip;
    Alcotest.test_case "zonefile: parse errors" `Quick test_zonefile_parse_errors;
    Alcotest.test_case "zonefile: §2.3 post-processing" `Quick test_build_zone;
    Alcotest.test_case "zonefile: delegation setup" `Quick test_build_zone_delegation;
    Alcotest.test_case "zonefile: out-of-zone targets" `Quick
      test_build_zone_out_of_zone_target;
    Alcotest.test_case "lookup: exact match" `Quick test_lookup_exact_match;
    Alcotest.test_case "lookup: NODATA" `Quick test_lookup_nodata;
    Alcotest.test_case "lookup: NXDOMAIN" `Quick test_lookup_nxdomain;
    Alcotest.test_case "lookup: REFUSED out of zone" `Quick test_lookup_refused;
    Alcotest.test_case "lookup: empty non-terminal" `Quick test_lookup_ent;
    Alcotest.test_case "lookup: CNAME chains" `Quick test_lookup_cname_chain;
    Alcotest.test_case "lookup: CNAME query type" `Quick test_lookup_cname_exact_qtype;
    Alcotest.test_case "lookup: CNAME loops" `Quick test_lookup_cname_loop;
    Alcotest.test_case "lookup: dangling CNAME target" `Quick test_lookup_cname_dangling_target;
    Alcotest.test_case "lookup: DNAME rewriting" `Quick test_lookup_dname;
    Alcotest.test_case "lookup: DNAME owner not rewritten" `Quick
      test_lookup_dname_at_owner_is_not_rewritten;
    Alcotest.test_case "lookup: wildcard synthesis" `Quick test_lookup_wildcard;
    Alcotest.test_case "lookup: wildcard base not matched" `Quick
      test_lookup_wildcard_no_match_at_base;
    Alcotest.test_case "lookup: delegation with glue" `Quick test_lookup_delegation_with_glue;
    Alcotest.test_case "lookup: the §2.3 DNAME example" `Quick test_lookup_dname_fig2_example;
    Alcotest.test_case "quirks: every quirk has a witness" `Quick test_quirk_witnesses;
    Alcotest.test_case "quirk: wrong rcode for CNAME target" `Quick
      test_quirk_wrong_rcode_cname_target;
    Alcotest.test_case "quirk: Knot DNAME owner replacement" `Quick
      test_quirk_dname_replaced_by_query_fig2;
    Alcotest.test_case "quirk: wildcard loop crash" `Quick test_quirk_wildcard_loop_crash;
    Alcotest.test_case "quirk: star-in-query synthesis" `Quick test_quirk_star_query_synthesis;
    Alcotest.test_case "impls: roster" `Quick test_impls_roster;
    Alcotest.test_case "impls: old vs current versions" `Quick test_impls_versions;
    Alcotest.test_case "impls: bug catalog" `Quick test_impls_bug_catalog_counts;
    Alcotest.test_case "impls: deviation from reference" `Quick
      test_impls_reference_disagreement;
  ]
