type token =
  | IDENT of string
  | INT of int
  | CHARLIT of char
  | STRLIT of string
  | KW_TYPEDEF | KW_ENUM | KW_STRUCT
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_TRUE | KW_FALSE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA | DOT | QUESTION | COLON
  | STAR | PLUS | MINUS | SLASH | PERCENT
  | AMPAMP | BARBAR | BANG
  | ASSIGN | EQEQ | NE | LT | LE | GT | GE
  | PLUSEQ | MINUSEQ | PLUSPLUS | MINUSMINUS
  | EOF

exception Error of string * int

let keyword = function
  | "typedef" -> Some KW_TYPEDEF
  | "enum" -> Some KW_ENUM
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let unescape line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> raise (Error (Printf.sprintf "unknown escape '\\%c'" c, line))

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* skip preprocessor line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Error ("unterminated comment", !line))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      match keyword word with
      | Some kw -> emit kw
      | None -> emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      if !i + 2 >= n then raise (Error ("unterminated char literal", !line));
      let ch, len =
        if src.[!i + 1] = '\\' then (unescape !line src.[!i + 2], 4)
        else (src.[!i + 1], 3)
      in
      if !i + len - 1 >= n || src.[!i + len - 1] <> '\'' then
        raise (Error ("unterminated char literal", !line));
      emit (CHARLIT ch);
      i := !i + len
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '"' then begin closed := true; incr i end
        else if src.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf (unescape !line src.[!i + 1]);
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then incr line;
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then raise (Error ("unterminated string literal", !line));
      emit (STRLIT (Buffer.contents buf))
    end
    else begin
      let two t = emit t; i := !i + 2 in
      let one t = emit t; incr i in
      match (c, peek 1) with
      | '&', Some '&' -> two AMPAMP
      | '|', Some '|' -> two BARBAR
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '+', Some '=' -> two PLUSEQ
      | '-', Some '=' -> two MINUSEQ
      | '+', Some '+' -> two PLUSPLUS
      | '-', Some '-' -> two MINUSMINUS
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACK
      | ']', _ -> one RBRACK
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | '?', _ -> one QUESTION
      | ':', _ -> one COLON
      | '*', _ -> one STAR
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '!', _ -> one BANG
      | '=', _ -> one ASSIGN
      | '<', _ -> one LT
      | '>', _ -> one GT
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit EOF;
  List.rev !toks

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | CHARLIT c -> Printf.sprintf "char %C" c
  | STRLIT s -> Printf.sprintf "string %S" s
  | KW_TYPEDEF -> "'typedef'" | KW_ENUM -> "'enum'" | KW_STRUCT -> "'struct'"
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'" | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'" | KW_BREAK -> "'break'" | KW_CONTINUE -> "'continue'"
  | KW_TRUE -> "'true'" | KW_FALSE -> "'false'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACK -> "'['" | RBRACK -> "']'"
  | SEMI -> "';'" | COMMA -> "','" | DOT -> "'.'" | QUESTION -> "'?'" | COLON -> "':'"
  | STAR -> "'*'" | PLUS -> "'+'" | MINUS -> "'-'" | SLASH -> "'/'" | PERCENT -> "'%'"
  | AMPAMP -> "'&&'" | BARBAR -> "'||'" | BANG -> "'!'"
  | ASSIGN -> "'='" | EQEQ -> "'=='" | NE -> "'!='"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | PLUSEQ -> "'+='" | MINUSEQ -> "'-='" | PLUSPLUS -> "'++'" | MINUSMINUS -> "'--'"
  | EOF -> "end of input"
