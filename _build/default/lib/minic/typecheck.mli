(** Static checker for MiniC programs.

    Plays the role of clang in the paper's pipeline: a program that
    fails here counts as a compilation failure and the synthesis loop
    skips that model (§4.1). Also enforces the system prompt's rules —
    notably the ban on [strtok] and friends. *)

val check : Ast.program -> (unit, string) result
(** Check every function of the program; [Error msg] carries the first
    failure, rendered for user feedback. *)

val check_exn : Ast.program -> unit
(** @raise Failure when {!check} returns an error. *)

val expr_ty :
  Ast.program -> (string * Ast.ty) list -> Ast.expr -> (Ast.ty, string) result
(** Type of an expression under the given variable environment; exposed
    for the symbolic compiler and for tests. *)
