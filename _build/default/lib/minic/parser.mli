(** Recursive-descent parser for MiniC.

    Accepts the C subset described in {!Ast}: typedef'd enums and
    structs, function prototypes and definitions, structured control
    flow, and expressions up to ternary conditionals. [char*] and
    [String] both denote the bounded string type; [char buf[N]]
    declares a local string buffer.

    The parser is how "LLM output" enters the pipeline: anything it
    rejects is a compilation failure, which the synthesis loop skips
    exactly as the paper skips clang failures. *)

exception Error of string * int
(** Message and line number. *)

val program : string -> Ast.program
(** Parse a full translation unit.
    @raise Error on syntax errors.
    @raise Lexer.Error on lexical errors. *)

val parse_result : string -> (Ast.program, string) result
(** Like {!program} but catches both error exceptions and renders them
    as a message, the form the synthesis loop consumes. *)
