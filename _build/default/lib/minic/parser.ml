exception Error of string * int

type state = {
  mutable toks : (Lexer.token * int) list;
  mutable type_names : (string * Ast.ty) list;
      (* typedef'd names in scope, plus builtin spellings *)
  mutable enums : Ast.enum_def list;
  mutable structs : Ast.struct_def list;
  mutable protos : Ast.proto list;
  mutable funcs : Ast.func list;
}

let builtin_types =
  [
    ("void", Ast.Tvoid);
    ("bool", Ast.Tbool);
    ("char", Ast.Tchar);
    ("int", Ast.Tint 32);
    ("uint8_t", Ast.Tint 8);
    ("uint16_t", Ast.Tint 16);
    ("uint32_t", Ast.Tint 32);
    ("size_t", Ast.Tint 32);
    ("String", Ast.Tstring);
  ]

let make src =
  {
    toks = Lexer.tokenize src;
    type_names = builtin_types;
    enums = [];
    structs = [];
    protos = [];
    funcs = [];
  }

let line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.toks with
  | (t, _) :: rest ->
      st.toks <- rest;
      t
  | [] -> Lexer.EOF

let fail st msg = raise (Error (msg, line st))

let expect st tok =
  let got = advance st in
  if got <> tok then
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string got))

let expect_ident st =
  match advance st with
  | Lexer.IDENT s -> s
  | t -> fail st (Printf.sprintf "expected an identifier, found %s" (Lexer.token_to_string t))

let is_type_name st name = List.mem_assoc name st.type_names

(* type := name '*'? — a trailing star only applies to char (yielding
   the bounded string type); other pointer types are out of subset. *)
let parse_ty st =
  let name = expect_ident st in
  let base =
    match List.assoc_opt name st.type_names with
    | Some t -> t
    | None -> fail st (Printf.sprintf "unknown type name %S" name)
  in
  if peek st = Lexer.STAR then begin
    ignore (advance st);
    match base with
    | Ast.Tchar -> Ast.Tstring
    | _ -> fail st (Printf.sprintf "pointer to %s is outside the MiniC subset" name)
  end
  else base

(* Applied after a declarator name: char buf[6] declares a string
   buffer; T xs[n] declares a fixed array. *)
let apply_array_suffix st ty =
  if peek st = Lexer.LBRACK then begin
    ignore (advance st);
    let n = match advance st with
      | Lexer.INT n -> n
      | t -> fail st (Printf.sprintf "expected array size, found %s" (Lexer.token_to_string t))
    in
    expect st Lexer.RBRACK;
    match ty with
    | Ast.Tchar -> Ast.Tstring
    | t -> Ast.Tarray (t, n)
  end
  else ty

(* ----- expressions ----- *)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_or st in
  if peek st = Lexer.QUESTION then begin
    ignore (advance st);
    let a = parse_expr st in
    expect st Lexer.COLON;
    let b = parse_ternary st in
    Ast.Econd (c, a, b)
  end
  else c

and parse_or st =
  let rec loop acc =
    if peek st = Lexer.BARBAR then begin
      ignore (advance st);
      let rhs = parse_and st in
      loop (Ast.Ebinop (Ast.Lor, acc, rhs))
    end
    else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if peek st = Lexer.AMPAMP then begin
      ignore (advance st);
      let rhs = parse_equality st in
      loop (Ast.Ebinop (Ast.Land, acc, rhs))
    end
    else acc
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop acc =
    match peek st with
    | Lexer.EQEQ ->
        ignore (advance st);
        loop (Ast.Ebinop (Ast.Eq, acc, parse_relational st))
    | Lexer.NE ->
        ignore (advance st);
        loop (Ast.Ebinop (Ast.Ne, acc, parse_relational st))
    | _ -> acc
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop acc =
    match peek st with
    | Lexer.LT -> ignore (advance st); loop (Ast.Ebinop (Ast.Lt, acc, parse_additive st))
    | Lexer.LE -> ignore (advance st); loop (Ast.Ebinop (Ast.Le, acc, parse_additive st))
    | Lexer.GT -> ignore (advance st); loop (Ast.Ebinop (Ast.Gt, acc, parse_additive st))
    | Lexer.GE -> ignore (advance st); loop (Ast.Ebinop (Ast.Ge, acc, parse_additive st))
    | _ -> acc
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS -> ignore (advance st); loop (Ast.Ebinop (Ast.Add, acc, parse_multiplicative st))
    | Lexer.MINUS -> ignore (advance st); loop (Ast.Ebinop (Ast.Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR -> ignore (advance st); loop (Ast.Ebinop (Ast.Mul, acc, parse_unary st))
    | Lexer.SLASH -> ignore (advance st); loop (Ast.Ebinop (Ast.Div, acc, parse_unary st))
    | Lexer.PERCENT -> ignore (advance st); loop (Ast.Ebinop (Ast.Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.BANG ->
      ignore (advance st);
      Ast.Eunop (Ast.Lnot, parse_unary st)
  | Lexer.MINUS ->
      ignore (advance st);
      Ast.Eunop (Ast.Neg, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop acc =
    match peek st with
    | Lexer.DOT ->
        ignore (advance st);
        let field = expect_ident st in
        loop (Ast.Efield (acc, field))
    | Lexer.LBRACK ->
        ignore (advance st);
        let idx = parse_expr st in
        expect st Lexer.RBRACK;
        loop (Ast.Eindex (acc, idx))
    | _ -> acc
  in
  loop (parse_primary st)

and parse_primary st =
  match advance st with
  | Lexer.INT n -> Ast.Eint n
  | Lexer.CHARLIT c -> Ast.Echar c
  | Lexer.STRLIT s -> Ast.Estr s
  | Lexer.KW_TRUE -> Ast.Ebool true
  | Lexer.KW_FALSE -> Ast.Ebool false
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT name ->
      if peek st = Lexer.LPAREN then begin
        ignore (advance st);
        let args = parse_args st in
        Ast.Ecall (name, args)
      end
      else Ast.Evar name
  | t -> fail st (Printf.sprintf "unexpected %s in expression" (Lexer.token_to_string t))

and parse_args st =
  if peek st = Lexer.RPAREN then begin
    ignore (advance st);
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expr st in
      match advance st with
      | Lexer.COMMA -> loop (e :: acc)
      | Lexer.RPAREN -> List.rev (e :: acc)
      | t -> fail st (Printf.sprintf "expected ',' or ')' in call, found %s" (Lexer.token_to_string t))
    in
    loop []
  end

(* ----- statements ----- *)

let expr_to_lvalue st e =
  let rec go = function
    | Ast.Evar x -> Ast.Lvar x
    | Ast.Efield (b, f) -> Ast.Lfield (go b, f)
    | Ast.Eindex (b, i) -> Ast.Lindex (go b, i)
    | _ -> fail st "left-hand side of assignment is not assignable"
  in
  go e

let lvalue_to_expr lv =
  let rec go = function
    | Ast.Lvar x -> Ast.Evar x
    | Ast.Lfield (b, f) -> Ast.Efield (go b, f)
    | Ast.Lindex (b, i) -> Ast.Eindex (go b, i)
  in
  go lv

(* A "simple statement" is a declaration, assignment or expression,
   without the trailing semicolon; used in for-headers and bodies. *)
let rec parse_simple st =
  match peek st with
  | Lexer.IDENT name when is_type_name st name && (match peek2 st with
      | Lexer.IDENT _ | Lexer.STAR -> true
      | _ -> false) ->
      let ty = parse_ty st in
      let name = expect_ident st in
      let ty = apply_array_suffix st ty in
      let init =
        if peek st = Lexer.ASSIGN then begin
          ignore (advance st);
          Some (parse_expr st)
        end
        else None
      in
      Ast.Sdecl (ty, name, init)
  | _ ->
      let e = parse_expr st in
      (match peek st with
      | Lexer.ASSIGN ->
          ignore (advance st);
          let rhs = parse_expr st in
          Ast.Sassign (expr_to_lvalue st e, rhs)
      | Lexer.PLUSEQ ->
          ignore (advance st);
          let rhs = parse_expr st in
          let lv = expr_to_lvalue st e in
          Ast.Sassign (lv, Ast.Ebinop (Ast.Add, lvalue_to_expr lv, rhs))
      | Lexer.MINUSEQ ->
          ignore (advance st);
          let rhs = parse_expr st in
          let lv = expr_to_lvalue st e in
          Ast.Sassign (lv, Ast.Ebinop (Ast.Sub, lvalue_to_expr lv, rhs))
      | Lexer.PLUSPLUS ->
          ignore (advance st);
          let lv = expr_to_lvalue st e in
          Ast.Sassign (lv, Ast.Ebinop (Ast.Add, lvalue_to_expr lv, Ast.Eint 1))
      | Lexer.MINUSMINUS ->
          ignore (advance st);
          let lv = expr_to_lvalue st e in
          Ast.Sassign (lv, Ast.Ebinop (Ast.Sub, lvalue_to_expr lv, Ast.Eint 1))
      | _ -> Ast.Sexpr e)

and parse_stmt st =
  match peek st with
  | Lexer.KW_IF ->
      ignore (advance st);
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_block_or_stmt st in
      let else_ =
        if peek st = Lexer.KW_ELSE then begin
          ignore (advance st);
          if peek st = Lexer.KW_IF then [ parse_stmt st ] else parse_block_or_stmt st
        end
        else []
      in
      Ast.Sif (cond, then_, else_)
  | Lexer.KW_WHILE ->
      ignore (advance st);
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      Ast.Swhile (cond, parse_block_or_stmt st)
  | Lexer.KW_FOR ->
      ignore (advance st);
      expect st Lexer.LPAREN;
      let init = if peek st = Lexer.SEMI then None else Some (parse_simple st) in
      expect st Lexer.SEMI;
      let cond = if peek st = Lexer.SEMI then Ast.Ebool true else parse_expr st in
      expect st Lexer.SEMI;
      let step = if peek st = Lexer.RPAREN then None else Some (parse_simple st) in
      expect st Lexer.RPAREN;
      Ast.Sfor (init, cond, step, parse_block_or_stmt st)
  | Lexer.KW_RETURN ->
      ignore (advance st);
      if peek st = Lexer.SEMI then begin
        ignore (advance st);
        Ast.Sreturn None
      end
      else begin
        let e = parse_expr st in
        expect st Lexer.SEMI;
        Ast.Sreturn (Some e)
      end
  | Lexer.KW_BREAK ->
      ignore (advance st);
      expect st Lexer.SEMI;
      Ast.Sbreak
  | Lexer.KW_CONTINUE ->
      ignore (advance st);
      expect st Lexer.SEMI;
      Ast.Scontinue
  | _ ->
      let s = parse_simple st in
      expect st Lexer.SEMI;
      s

and parse_block_or_stmt st =
  if peek st = Lexer.LBRACE then parse_block st else [ parse_stmt st ]

and parse_block st =
  expect st Lexer.LBRACE;
  let rec loop acc =
    if peek st = Lexer.RBRACE then begin
      ignore (advance st);
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ----- top level ----- *)

let parse_enum_typedef st =
  expect st Lexer.LBRACE;
  let rec members acc =
    match advance st with
    | Lexer.IDENT m -> (
        match advance st with
        | Lexer.COMMA ->
            if peek st = Lexer.RBRACE then begin
              ignore (advance st);
              List.rev (m :: acc)
            end
            else members (m :: acc)
        | Lexer.RBRACE -> List.rev (m :: acc)
        | t -> fail st (Printf.sprintf "expected ',' or '}' in enum, found %s" (Lexer.token_to_string t)))
    | t -> fail st (Printf.sprintf "expected enum member, found %s" (Lexer.token_to_string t))
  in
  let members = members [] in
  let name = expect_ident st in
  expect st Lexer.SEMI;
  let def = { Ast.ename = name; members } in
  st.enums <- st.enums @ [ def ];
  st.type_names <- (name, Ast.Tenum name) :: st.type_names

let parse_struct_typedef st =
  expect st Lexer.LBRACE;
  let rec fields acc =
    if peek st = Lexer.RBRACE then begin
      ignore (advance st);
      List.rev acc
    end
    else begin
      let ty = parse_ty st in
      let name = expect_ident st in
      let ty = apply_array_suffix st ty in
      expect st Lexer.SEMI;
      fields ((ty, name) :: acc)
    end
  in
  let fields = fields [] in
  let name = expect_ident st in
  expect st Lexer.SEMI;
  let def = { Ast.sname = name; fields } in
  st.structs <- st.structs @ [ def ];
  st.type_names <- (name, Ast.Tstruct name) :: st.type_names

let parse_params st =
  expect st Lexer.LPAREN;
  if peek st = Lexer.RPAREN then begin
    ignore (advance st);
    []
  end
  else begin
    let rec loop acc =
      let ty = parse_ty st in
      let name = expect_ident st in
      let ty = apply_array_suffix st ty in
      match advance st with
      | Lexer.COMMA -> loop ((ty, name) :: acc)
      | Lexer.RPAREN -> List.rev ((ty, name) :: acc)
      | t -> fail st (Printf.sprintf "expected ',' or ')' in parameters, found %s" (Lexer.token_to_string t))
    in
    loop []
  end

let parse_func_or_proto st =
  let ret = parse_ty st in
  let name = expect_ident st in
  let params = parse_params st in
  match peek st with
  | Lexer.SEMI ->
      ignore (advance st);
      st.protos <- st.protos @ [ { Ast.pname = name; pret = ret; pparams = params; pdoc = [] } ]
  | Lexer.LBRACE ->
      let body = parse_block st in
      st.funcs <- st.funcs @ [ { Ast.fname = name; ret; params; body; doc = [] } ]
  | t -> fail st (Printf.sprintf "expected ';' or '{' after signature, found %s" (Lexer.token_to_string t))

let program src =
  let st = make src in
  let rec loop () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW_TYPEDEF ->
        ignore (advance st);
        (match advance st with
        | Lexer.KW_ENUM -> parse_enum_typedef st
        | Lexer.KW_STRUCT -> parse_struct_typedef st
        | t -> fail st (Printf.sprintf "expected 'enum' or 'struct' after typedef, found %s" (Lexer.token_to_string t)));
        loop ()
    | Lexer.SEMI ->
        ignore (advance st);
        loop ()
    | _ ->
        parse_func_or_proto st;
        loop ()
  in
  loop ();
  { Ast.enums = st.enums; structs = st.structs; protos = st.protos; funcs = st.funcs }

let parse_result src =
  match program src with
  | p -> Ok p
  | exception Error (msg, l) -> Error (Printf.sprintf "parse error at line %d: %s" l msg)
  | exception Lexer.Error (msg, l) -> Error (Printf.sprintf "lexical error at line %d: %s" l msg)
