(** C-syntax pretty-printer for MiniC.

    Output round-trips through {!Parser} (property-tested), and is what
    the prompt generator embeds in prompts and what the simulated LLM
    returns as its "completion". *)

val ty : Ast.ty -> string

val expr : Ast.expr -> string

val stmt : ?indent:int -> Ast.stmt -> string

val enum_def : Ast.enum_def -> string

val struct_def : Ast.struct_def -> string

val signature : Ast.func -> string
(** [bool f(char* q, Record r)] — no body, no trailing [;]. *)

val proto : Ast.proto -> string
(** Signature with doc comment lines and a trailing [;]. *)

val func : Ast.func -> string
(** Full definition with doc comment lines. *)

val program : ?headers:bool -> Ast.program -> string
(** Whole translation unit; [headers] (default [true]) prepends the
    [#include] lines the paper's prompts carry. *)

val loc : string -> int
(** Count non-blank lines, the unit of the paper's "LOC (C)" column. *)
