let ty = Ast.ty_to_string

let escape_char = function
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c -> String.make 1 c

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let binop_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/" | Ast.Mod -> "%"
  | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">="
  | Ast.Land -> "&&" | Ast.Lor -> "||"

(* Precedence levels for minimal parenthesisation; higher binds
   tighter. Mirrors the parser's grammar. *)
let binop_prec = function
  | Ast.Lor -> 1
  | Ast.Land -> 2
  | Ast.Eq | Ast.Ne -> 3
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Add | Ast.Sub -> 5
  | Ast.Mul | Ast.Div | Ast.Mod -> 6

let rec expr_prec prec e =
  match e with
  | Ast.Ebool b -> if b then "true" else "false"
  | Ast.Echar c -> Printf.sprintf "'%s'" (escape_char c)
  | Ast.Eint n -> string_of_int n
  | Ast.Eenum m -> m
  | Ast.Estr s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Ast.Evar x -> x
  | Ast.Efield (b, f) -> Printf.sprintf "%s.%s" (expr_prec 9 b) f
  | Ast.Eindex (b, i) -> Printf.sprintf "%s[%s]" (expr_prec 9 b) (expr_prec 0 i)
  | Ast.Eunop (Ast.Lnot, a) -> Printf.sprintf "!%s" (expr_prec 8 a)
  | Ast.Eunop (Ast.Neg, a) -> Printf.sprintf "-%s" (expr_prec 8 a)
  | Ast.Ebinop (op, a, b) ->
      let p = binop_prec op in
      let s =
        Printf.sprintf "%s %s %s" (expr_prec p a) (binop_str op) (expr_prec (p + 1) b)
      in
      if p < prec then "(" ^ s ^ ")" else s
  | Ast.Econd (c, a, b) ->
      let s =
        Printf.sprintf "%s ? %s : %s" (expr_prec 1 c) (expr_prec 0 a) (expr_prec 0 b)
      in
      if prec > 0 then "(" ^ s ^ ")" else s
  | Ast.Ecall (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr_prec 0) args))

let expr e = expr_prec 0 e

let rec lvalue = function
  | Ast.Lvar x -> x
  | Ast.Lfield (b, f) -> Printf.sprintf "%s.%s" (lvalue b) f
  | Ast.Lindex (b, i) -> Printf.sprintf "%s[%s]" (lvalue b) (expr i)

let decl_str ty_ name =
  match ty_ with
  | Ast.Tarray (t, n) -> Printf.sprintf "%s %s[%d]" (ty t) name n
  | t -> Printf.sprintf "%s %s" (ty t) name

let rec stmt ?(indent = 0) s =
  let pad = String.make (indent * 2) ' ' in
  let block body = stmts ~indent:(indent + 1) body in
  match s with
  | Ast.Sdecl (t, x, None) -> Printf.sprintf "%s%s;" pad (decl_str t x)
  | Ast.Sdecl (t, x, Some e) -> Printf.sprintf "%s%s = %s;" pad (decl_str t x) (expr e)
  | Ast.Sassign (lv, e) -> Printf.sprintf "%s%s = %s;" pad (lvalue lv) (expr e)
  | Ast.Sif (c, t, []) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (expr c) (block t) pad
  | Ast.Sif (c, t, e) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (expr c) (block t) pad
        (block e) pad
  | Ast.Swhile (c, body) ->
      Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (expr c) (block body) pad
  | Ast.Sfor (init, c, step, body) ->
      let simple = function
        | None -> ""
        | Some s -> (
            let text = stmt ~indent:0 s in
            (* strip the trailing semicolon a simple statement carries *)
            match String.rindex_opt text ';' with
            | Some i -> String.sub text 0 i
            | None -> text)
      in
      Printf.sprintf "%sfor (%s; %s; %s) {\n%s\n%s}" pad (simple init) (expr c)
        (simple step) (block body) pad
  | Ast.Sreturn None -> Printf.sprintf "%sreturn;" pad
  | Ast.Sreturn (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr e)
  | Ast.Sexpr e -> Printf.sprintf "%s%s;" pad (expr e)
  | Ast.Sbreak -> Printf.sprintf "%sbreak;" pad
  | Ast.Scontinue -> Printf.sprintf "%scontinue;" pad

and stmts ~indent body = String.concat "\n" (List.map (stmt ~indent) body)

let enum_def (e : Ast.enum_def) =
  Printf.sprintf "typedef enum {\n  %s\n} %s;" (String.concat ", " e.members) e.ename

let struct_def (s : Ast.struct_def) =
  let field (t, name) = Printf.sprintf "  %s;" (decl_str t name) in
  Printf.sprintf "typedef struct {\n%s\n} %s;"
    (String.concat "\n" (List.map field s.fields))
    s.sname

let params_str ps =
  String.concat ", " (List.map (fun (t, name) -> decl_str t name) ps)

let signature (f : Ast.func) =
  Printf.sprintf "%s %s(%s)" (ty f.ret) f.fname (params_str f.params)

let doc_lines doc =
  String.concat "" (List.map (fun l -> Printf.sprintf "// %s\n" l) doc)

let proto (p : Ast.proto) =
  Printf.sprintf "%s%s %s(%s);" (doc_lines p.pdoc) (ty p.pret) p.pname (params_str p.pparams)

let func (f : Ast.func) =
  Printf.sprintf "%s%s {\n%s\n}" (doc_lines f.doc) (signature f) (stmts ~indent:1 f.body)

let default_headers =
  [ "#include <stdint.h>"; "#include <stdbool.h>"; "#include <string.h>" ]

let program ?(headers = true) (p : Ast.program) =
  let parts =
    (if headers then [ String.concat "\n" default_headers ] else [])
    @ List.map enum_def p.enums
    @ List.map struct_def p.structs
    @ List.map proto p.protos
    @ List.map func p.funcs
  in
  String.concat "\n\n" parts ^ "\n"

let loc text =
  let count = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun l -> if String.trim l <> "" then incr count);
  !count
