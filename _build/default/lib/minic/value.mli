(** Concrete MiniC runtime values.

    Values are immutable; the interpreter implements assignment by
    functional update of the enclosing variable. Strings are fixed-size
    buffers represented as OCaml strings that contain their NUL bytes
    explicitly (buffer size = [String.length]). *)

type t =
  | Vunit
  | Vbool of bool
  | Vchar of char
  | Vint of int
  | Venum of string * int  (** enum type name, member index *)
  | Vstring of string  (** raw buffer, NULs included *)
  | Vstruct of string * (string * t) list
  | Varray of t array

val equal : t -> t -> bool

val truthy : t -> bool
(** C truthiness of a scalar. @raise Invalid_argument on aggregates. *)

val to_int : t -> int
(** Scalar to integer (bool as 0/1, char as code, enum as index).
    @raise Invalid_argument on aggregates. *)

val of_int : Ast.ty -> int -> t
(** Rebuild a scalar of type [ty] from an integer. *)

val default : ?string_bound:int -> Ast.program -> Ast.ty -> t
(** Zero value of a type: [false], ['\000'], [0], first enum member,
    all-NUL buffer of [string_bound] bytes, zeroed struct/array. *)

val cstring : t -> string
(** Contents of a string buffer up to its first NUL.
    @raise Invalid_argument if not a string. *)

val of_cstring : ?bound:int -> string -> t
(** Buffer of size [max bound (length+1)] holding the given contents
    and a terminating NUL. Default bound 0 (exact fit). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val enum_member : Ast.program -> t -> string option
(** Member name of an enum value, when the program declares it. *)
