(* Abstract syntax of MiniC, the C subset that the (simulated) LLM emits
   and that the symbolic executor analyses. The subset is chosen to
   cover what protocol models in the paper actually use: scalars,
   enums, structs, bounded strings ([char*] with a harness-supplied
   bound), fixed arrays, structured control flow, and a handful of
   string.h builtins. There are no pointers beyond [char*], no casts,
   no gotos, and no [strtok] (the paper's system prompt bans it). *)

type ty =
  | Tvoid
  | Tbool
  | Tchar
  | Tint of int  (* unsigned, width in bits *)
  | Tenum of string
  | Tstring  (* char*; the buffer bound comes from the harness *)
  | Tstruct of string
  | Tarray of ty * int

type unop = Neg | Lnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type expr =
  | Ebool of bool
  | Echar of char
  | Eint of int
  | Eenum of string  (* enum member by name *)
  | Estr of string  (* string literal *)
  | Evar of string
  | Efield of expr * string
  | Eindex of expr * expr
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Econd of expr * expr * expr  (* c ? a : b *)
  | Ecall of string * expr list

type lvalue =
  | Lvar of string
  | Lfield of lvalue * string
  | Lindex of lvalue * expr

type stmt =
  | Sdecl of ty * string * expr option
  | Sassign of lvalue * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr * stmt option * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Sbreak
  | Scontinue

type func = {
  fname : string;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
  doc : string list;  (* leading // comment lines, kept for prompts *)
}

type proto = { pname : string; pret : ty; pparams : (ty * string) list; pdoc : string list }

type enum_def = { ename : string; members : string list }

type struct_def = { sname : string; fields : (ty * string) list }

type program = {
  enums : enum_def list;
  structs : struct_def list;
  protos : proto list;
  funcs : func list;
}

let empty_program = { enums = []; structs = []; protos = []; funcs = [] }

(* Builtins modelled by the interpreter and the symbolic executor.
   [strcpy] returns void in our subset (its C return value is never
   used by generated models). *)
let builtins = [ "strlen"; "strcmp"; "strncmp"; "strcpy" ]

(* Functions the system prompt forbids; the typechecker rejects them,
   which is how a "bad completion" fails to compile. *)
let banned = [ "strtok"; "malloc"; "free"; "printf"; "sprintf"; "memcpy" ]

let is_builtin name = List.mem name builtins

let rec ty_equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tbool, Tbool | Tchar, Tchar | Tstring, Tstring -> true
  | Tint x, Tint y -> x = y
  | Tenum x, Tenum y -> x = y
  | Tstruct x, Tstruct y -> x = y
  | Tarray (t, n), Tarray (u, m) -> n = m && ty_equal t u
  | (Tvoid | Tbool | Tchar | Tint _ | Tenum _ | Tstring | Tstruct _ | Tarray _), _ ->
      false

(* Scalar types interoperate as in C (comparisons, arithmetic,
   truthiness). *)
let is_scalar = function
  | Tbool | Tchar | Tint _ | Tenum _ -> true
  | Tvoid | Tstring | Tstruct _ | Tarray _ -> false

let rec pp_ty ppf = function
  | Tvoid -> Format.fprintf ppf "void"
  | Tbool -> Format.fprintf ppf "bool"
  | Tchar -> Format.fprintf ppf "char"
  | Tint w -> if w <= 8 then Format.fprintf ppf "uint8_t"
              else if w <= 16 then Format.fprintf ppf "uint16_t"
              else Format.fprintf ppf "uint32_t"
  | Tenum n -> Format.fprintf ppf "%s" n
  | Tstring -> Format.fprintf ppf "char*"
  | Tstruct n -> Format.fprintf ppf "%s" n
  | Tarray (t, n) -> Format.fprintf ppf "%a[%d]" pp_ty t n

let ty_to_string t = Format.asprintf "%a" pp_ty t

let find_enum program name = List.find_opt (fun e -> e.ename = name) program.enums

let find_struct program name = List.find_opt (fun s -> s.sname = name) program.structs

let find_func program name = List.find_opt (fun f -> f.fname = name) program.funcs

let find_proto program name = List.find_opt (fun p -> p.pname = name) program.protos

(* Index of an enum member across all enums of the program; enums have
   globally unique member names in our models, as in the paper's. *)
let enum_member_index program member =
  let rec go = function
    | [] -> None
    | e :: rest -> (
        let rec idx i = function
          | [] -> None
          | m :: _ when m = member -> Some (e.ename, i)
          | _ :: ms -> idx (i + 1) ms
        in
        match idx 0 e.members with Some r -> Some r | None -> go rest)
  in
  go program.enums
