exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* Assignment/argument compatibility: exact for aggregates, loose for
   scalars (C-style integer promotions). *)
let compatible expected actual =
  Ast.ty_equal expected actual
  || (Ast.is_scalar expected && Ast.is_scalar actual)

type env = {
  program : Ast.program;
  mutable scopes : (string * Ast.ty) list list;
}

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with Some t -> Some t | None -> go rest)
  in
  go env.scopes

let declare env name ty =
  match env.scopes with
  | scope :: rest ->
      if List.mem_assoc name scope then err "variable %S redeclared" name;
      env.scopes <- ((name, ty) :: scope) :: rest
  | [] -> assert false

let push_scope env = env.scopes <- [] :: env.scopes

let pop_scope env =
  match env.scopes with _ :: rest -> env.scopes <- rest | [] -> assert false

let string_like = function
  | Ast.Tstring -> true
  | Ast.Tarray (Ast.Tchar, _) -> true
  | _ -> false

let builtin_result name args =
  match (name, args) with
  | "strlen", [ s ] when string_like s -> Ast.Tint 32
  | "strcmp", [ a; b ] when string_like a && string_like b -> Ast.Tint 32
  | "strncmp", [ a; b; n ] when string_like a && string_like b && Ast.is_scalar n ->
      Ast.Tint 32
  | "strcpy", [ a; b ] when string_like a && string_like b -> Ast.Tvoid
  | _, _ -> err "bad arguments to builtin %s" name

let rec ty_of env e =
  match e with
  | Ast.Ebool _ -> Ast.Tbool
  | Ast.Echar _ -> Ast.Tchar
  | Ast.Eint _ -> Ast.Tint 32
  | Ast.Estr _ -> Ast.Tstring
  | Ast.Eenum m -> (
      match Ast.enum_member_index env.program m with
      | Some (ename, _) -> Ast.Tenum ename
      | None -> err "unknown enum member %S" m)
  | Ast.Evar x -> (
      match lookup_var env x with
      | Some t -> t
      | None -> (
          (* bare identifiers may be enum members (the parser cannot
             tell without the merged program context) *)
          match Ast.enum_member_index env.program x with
          | Some (ename, _) -> Ast.Tenum ename
          | None -> err "unbound variable %S" x))
  | Ast.Efield (b, f) -> (
      match ty_of env b with
      | Ast.Tstruct sname -> (
          match Ast.find_struct env.program sname with
          | None -> err "unknown struct %S" sname
          | Some s -> (
              match List.find_opt (fun (_, n) -> n = f) (List.map (fun (t, n) -> (t, n)) s.fields) with
              | Some (t, _) -> t
              | None -> err "struct %s has no field %S" sname f))
      | t -> err "field access on non-struct value of type %s" (Ast.ty_to_string t))
  | Ast.Eindex (b, i) -> (
      let it = ty_of env i in
      if not (Ast.is_scalar it) then err "array index must be scalar";
      match ty_of env b with
      | Ast.Tstring -> Ast.Tchar
      | Ast.Tarray (t, _) -> t
      | t -> err "indexing non-array value of type %s" (Ast.ty_to_string t))
  | Ast.Eunop (Ast.Lnot, a) ->
      let t = ty_of env a in
      if Ast.is_scalar t then Ast.Tbool else err "'!' applied to non-scalar"
  | Ast.Eunop (Ast.Neg, a) ->
      let t = ty_of env a in
      if Ast.is_scalar t then Ast.Tint 32 else err "unary '-' applied to non-scalar"
  | Ast.Ebinop (op, a, b) -> (
      let ta = ty_of env a and tb = ty_of env b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          if Ast.is_scalar ta && Ast.is_scalar tb then Ast.Tint 32
          else err "arithmetic on non-scalar operands"
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          if Ast.is_scalar ta && Ast.is_scalar tb then Ast.Tbool
          else if string_like ta || string_like tb then
            err "strings must be compared with strcmp, not operators"
          else err "comparison on non-scalar operands"
      | Ast.Land | Ast.Lor ->
          if Ast.is_scalar ta && Ast.is_scalar tb then Ast.Tbool
          else err "logical operator on non-scalar operands")
  | Ast.Econd (c, a, b) ->
      let tc = ty_of env c in
      if not (Ast.is_scalar tc) then err "ternary condition must be scalar";
      let ta = ty_of env a and tb = ty_of env b in
      if compatible ta tb then ta else err "ternary branches have incompatible types"
  | Ast.Ecall (name, args) ->
      if List.mem name Ast.banned then
        err "call to %s, which the system prompt forbids" name
      else begin
        let arg_tys = List.map (ty_of env) args in
        if Ast.is_builtin name then builtin_result name arg_tys
        else begin
          let sig_ =
            match Ast.find_func env.program name with
            | Some f -> Some (f.ret, f.params)
            | None -> (
                match Ast.find_proto env.program name with
                | Some p -> Some (p.pret, p.pparams)
                | None -> None)
          in
          match sig_ with
          | None -> err "call to undefined function %S" name
          | Some (ret, params) ->
              if List.length params <> List.length args then
                err "%s expects %d arguments, got %d" name (List.length params)
                  (List.length args);
              List.iter2
                (fun (pt, pn) at ->
                  if not (compatible pt at) then
                    err "argument %S of %s: expected %s, got %s" pn name
                      (Ast.ty_to_string pt) (Ast.ty_to_string at))
                params arg_tys;
              ret
        end
      end

let rec lvalue_ty env = function
  | Ast.Lvar x -> (
      match lookup_var env x with
      | Some t -> t
      | None -> err "assignment to unbound variable %S" x)
  | Ast.Lfield (b, f) -> (
      match lvalue_ty env b with
      | Ast.Tstruct sname -> (
          match Ast.find_struct env.program sname with
          | None -> err "unknown struct %S" sname
          | Some s -> (
              match List.find_opt (fun (_, n) -> n = f) s.fields with
              | Some (t, _) -> t
              | None -> err "struct %s has no field %S" sname f))
      | t -> err "field assignment on non-struct of type %s" (Ast.ty_to_string t))
  | Ast.Lindex (b, i) -> (
      let it = ty_of env i in
      if not (Ast.is_scalar it) then err "array index must be scalar";
      match lvalue_ty env b with
      | Ast.Tstring -> Ast.Tchar
      | Ast.Tarray (t, _) -> t
      | t -> err "index assignment on non-array of type %s" (Ast.ty_to_string t))

let check_ty_known env ty =
  let rec go = function
    | Ast.Tenum n ->
        if Ast.find_enum env.program n = None then err "unknown enum type %S" n
    | Ast.Tstruct n ->
        if Ast.find_struct env.program n = None then err "unknown struct type %S" n
    | Ast.Tarray (t, n) ->
        if n <= 0 then err "array size must be positive";
        go t
    | Ast.Tvoid | Ast.Tbool | Ast.Tchar | Ast.Tint _ | Ast.Tstring -> ()
  in
  go ty

let rec check_stmt env ~ret ~in_loop s =
  match s with
  | Ast.Sdecl (ty, name, init) ->
      check_ty_known env ty;
      if ty = Ast.Tvoid then err "variable %S declared void" name;
      (match init with
      | None -> ()
      | Some e ->
          let t = ty_of env e in
          if not (compatible ty t) then
            err "initialiser of %S: expected %s, got %s" name (Ast.ty_to_string ty)
              (Ast.ty_to_string t));
      declare env name ty
  | Ast.Sassign (lv, e) ->
      let lt = lvalue_ty env lv in
      let rt = ty_of env e in
      if string_like lt && string_like rt then
        err "strings must be copied with strcpy, not assignment"
      else if not (compatible lt rt) then
        err "assignment: expected %s, got %s" (Ast.ty_to_string lt) (Ast.ty_to_string rt)
  | Ast.Sif (c, t, e) ->
      let ct = ty_of env c in
      if not (Ast.is_scalar ct) then err "if condition must be scalar";
      check_block env ~ret ~in_loop t;
      check_block env ~ret ~in_loop e
  | Ast.Swhile (c, body) ->
      let ct = ty_of env c in
      if not (Ast.is_scalar ct) then err "while condition must be scalar";
      check_block env ~ret ~in_loop:true body
  | Ast.Sfor (init, c, step, body) ->
      push_scope env;
      (match init with None -> () | Some s -> check_stmt env ~ret ~in_loop s);
      let ct = ty_of env c in
      if not (Ast.is_scalar ct) then err "for condition must be scalar";
      (match step with None -> () | Some s -> check_stmt env ~ret ~in_loop:true s);
      check_block env ~ret ~in_loop:true body;
      pop_scope env
  | Ast.Sreturn None ->
      if ret <> Ast.Tvoid then err "missing return value in non-void function"
  | Ast.Sreturn (Some e) ->
      let t = ty_of env e in
      if ret = Ast.Tvoid then err "returning a value from a void function";
      if not (compatible ret t) then
        err "return type mismatch: expected %s, got %s" (Ast.ty_to_string ret)
          (Ast.ty_to_string t)
  | Ast.Sexpr e -> ignore (ty_of env e)
  | Ast.Sbreak -> if not in_loop then err "break outside of a loop"
  | Ast.Scontinue -> if not in_loop then err "continue outside of a loop"

and check_block env ~ret ~in_loop body =
  push_scope env;
  List.iter (check_stmt env ~ret ~in_loop) body;
  pop_scope env

let check_func program (f : Ast.func) =
  let env = { program; scopes = [ [] ] } in
  List.iter
    (fun (t, name) ->
      check_ty_known env t;
      if t = Ast.Tvoid then err "parameter %S declared void" name;
      declare env name t)
    f.params;
  check_ty_known env f.ret;
  check_block env ~ret:f.ret ~in_loop:false f.body

let check program =
  try
    List.iter
      (fun (f : Ast.func) ->
        try check_func program f
        with Type_error m -> err "in function %s: %s" f.fname m)
      program.Ast.funcs;
    Ok ()
  with Type_error m -> Error m

let check_exn program =
  match check program with Ok () -> () | Error m -> failwith m

let expr_ty program vars e =
  let env = { program; scopes = [ vars ] } in
  try Ok (ty_of env e) with Type_error m -> Error m
