lib/minic/value.ml: Array Ast Bytes Char Format List Printf String
