lib/minic/lexer.mli:
