lib/minic/typecheck.ml: Ast List Printf
