lib/minic/interp.mli: Ast Value
