lib/minic/interp.ml: Array Ast Bytes Char List Printf String Value
