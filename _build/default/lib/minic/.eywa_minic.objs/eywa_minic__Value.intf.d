lib/minic/value.mli: Ast Format
