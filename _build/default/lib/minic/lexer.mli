(** Hand-written lexer for MiniC source text.

    Preprocessor lines ([#include ...]) and comments are skipped, so
    LLM-style completions with headers and doc comments lex cleanly. *)

type token =
  | IDENT of string
  | INT of int
  | CHARLIT of char
  | STRLIT of string
  | KW_TYPEDEF | KW_ENUM | KW_STRUCT
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_TRUE | KW_FALSE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA | DOT | QUESTION | COLON
  | STAR | PLUS | MINUS | SLASH | PERCENT
  | AMPAMP | BARBAR | BANG
  | ASSIGN | EQEQ | NE | LT | LE | GT | GE
  | PLUSEQ | MINUSEQ | PLUSPLUS | MINUSMINUS
  | EOF

exception Error of string * int
(** Message and line number. *)

val tokenize : string -> (token * int) list
(** [tokenize src] lexes the whole input, pairing each token with its
    line number. Always ends with [EOF].
    @raise Error on an unrecognised character or unterminated literal. *)

val token_to_string : token -> string
