(** Concrete interpreter for MiniC.

    Executes a function of a typechecked program on concrete argument
    values. Loops and recursion are bounded by [fuel] (decremented per
    statement), so any input terminates — the property differential
    testing needs when replaying tests against the model. *)

type error =
  | Out_of_fuel
  | Runtime of string  (** out-of-bounds access, missing return, ... *)

val error_to_string : error -> string

val run :
  ?fuel:int ->
  ?string_bound:int ->
  ?natives:(string * (Value.t list -> Value.t)) list ->
  Ast.program ->
  string ->
  Value.t list ->
  (Value.t, error) result
(** [run program fname args] calls [fname] with [args]. Default fuel is
    [100_000]; [string_bound] sizes locally declared string buffers
    (default [16]). [natives] supplies pure host-implemented functions
    (the harness's regex guards) looked up before program functions.
    Falling off the end of a non-void function is a [Runtime] error;
    for a void function it yields [Vunit]. *)

val call_count : unit -> int
(** Total number of function calls executed since start-up; used by the
    benchmarks as a cheap work counter. *)
