type t =
  | Vunit
  | Vbool of bool
  | Vchar of char
  | Vint of int
  | Venum of string * int
  | Vstring of string
  | Vstruct of string * (string * t) list
  | Varray of t array

let rec equal a b =
  match (a, b) with
  | Vunit, Vunit -> true
  | Vbool x, Vbool y -> x = y
  | Vchar x, Vchar y -> x = y
  | Vint x, Vint y -> x = y
  | Venum (e, i), Venum (f, j) -> e = f && i = j
  | Vstring x, Vstring y -> x = y
  | Vstruct (n, fs), Vstruct (m, gs) ->
      n = m
      && List.length fs = List.length gs
      && List.for_all2 (fun (f, v) (g, w) -> f = g && equal v w) fs gs
  | Varray x, Varray y ->
      Array.length x = Array.length y
      && Array.for_all2 (fun v w -> equal v w) x y
  | (Vunit | Vbool _ | Vchar _ | Vint _ | Venum _ | Vstring _ | Vstruct _ | Varray _), _
    ->
      false

let truthy = function
  | Vbool b -> b
  | Vchar c -> c <> '\000'
  | Vint n -> n <> 0
  | Venum (_, i) -> i <> 0
  | Vunit | Vstring _ | Vstruct _ | Varray _ ->
      invalid_arg "Value.truthy: not a scalar"

let to_int = function
  | Vbool b -> if b then 1 else 0
  | Vchar c -> Char.code c
  | Vint n -> n
  | Venum (_, i) -> i
  | Vunit | Vstring _ | Vstruct _ | Varray _ ->
      invalid_arg "Value.to_int: not a scalar"

let of_int ty n =
  match ty with
  | Ast.Tbool -> Vbool (n <> 0)
  | Ast.Tchar -> Vchar (Char.chr (n land 0xff))
  | Ast.Tint _ -> Vint n
  | Ast.Tenum e -> Venum (e, n)
  | Ast.Tvoid | Ast.Tstring | Ast.Tstruct _ | Ast.Tarray _ ->
      invalid_arg "Value.of_int: not a scalar type"

let rec default ?(string_bound = 16) program = function
  | Ast.Tvoid -> Vunit
  | Ast.Tbool -> Vbool false
  | Ast.Tchar -> Vchar '\000'
  | Ast.Tint _ -> Vint 0
  | Ast.Tenum e -> Venum (e, 0)
  | Ast.Tstring -> Vstring (String.make string_bound '\000')
  | Ast.Tstruct sname -> (
      match Ast.find_struct program sname with
      | None -> invalid_arg (Printf.sprintf "Value.default: unknown struct %s" sname)
      | Some s ->
          Vstruct
            (sname, List.map (fun (t, f) -> (f, default ~string_bound program t)) s.fields))
  | Ast.Tarray (t, n) ->
      Varray (Array.init n (fun _ -> default ~string_bound program t))

let cstring = function
  | Vstring raw -> (
      match String.index_opt raw '\000' with
      | Some i -> String.sub raw 0 i
      | None -> raw)
  | _ -> invalid_arg "Value.cstring: not a string"

let of_cstring ?(bound = 0) s =
  let size = max bound (String.length s + 1) in
  let buf = Bytes.make size '\000' in
  Bytes.blit_string s 0 buf 0 (String.length s);
  Vstring (Bytes.to_string buf)

let rec pp ppf = function
  | Vunit -> Format.fprintf ppf "()"
  | Vbool b -> Format.fprintf ppf "%b" b
  | Vchar c -> Format.fprintf ppf "%C" c
  | Vint n -> Format.fprintf ppf "%d" n
  | Venum (e, i) -> Format.fprintf ppf "%s#%d" e i
  | Vstring _ as v -> Format.fprintf ppf "%S" (cstring v)
  | Vstruct (n, fs) ->
      Format.fprintf ppf "%s{%a}" n
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           (fun ppf (f, v) -> Format.fprintf ppf "%s=%a" f pp v))
        fs
  | Varray vs ->
      Format.fprintf ppf "[|%a|]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           pp)
        (Array.to_list vs)

let to_string v = Format.asprintf "%a" pp v

let enum_member program = function
  | Venum (ename, i) -> (
      match Ast.find_enum program ename with
      | Some e -> List.nth_opt e.members i
      | None -> None)
  | _ -> None
