type config = { confed_id : int; sub_as : int; members : int list }

type session = Ibgp | Ebgp_confed | Ebgp | Session_mismatch

let session_to_string = function
  | Ibgp -> "ibgp"
  | Ebgp_confed -> "ebgp-confed"
  | Ebgp -> "ebgp"
  | Session_mismatch -> "session-mismatch"

let classify ?(quirks = []) config ~local_as ~peer_as ~peer_in_confed =
  let has q = List.mem q quirks in
  match config with
  | None -> if peer_as = local_as then Ibgp else Ebgp
  | Some c ->
      if peer_in_confed then
        if peer_as = c.sub_as then Ibgp else Ebgp_confed
      else if has Quirks.Confed_sub_as_eq_peer && peer_as = c.sub_as then
        (* the bug: an external peer whose AS collides with our sub-AS
           is taken for an intra-confederation iBGP neighbour *)
        Ibgp
      else Ebgp

let agree ?(quirks = []) config ~local_as ~peer_as ~peer_in_confed =
  let ours = classify ~quirks config ~local_as ~peer_as ~peer_in_confed in
  (* the peer's view of the session, computed without our quirks: for a
     peer outside the confederation the session is plain eBGP against
     our confederation id (or local AS) *)
  let theirs =
    match config with
    | None -> if peer_as = local_as then Ibgp else Ebgp
    | Some c ->
        if peer_in_confed then if peer_as = c.sub_as then Ibgp else Ebgp_confed
        else if peer_as = c.confed_id then Ibgp
        else Ebgp
  in
  if ours = theirs then ours else Session_mismatch

let export_path ?(quirks = []) config session ~local_as ?replace_as path =
  let has q = List.mem q quirks in
  (* [local-as N replace-as]: the AS this router just prepended (its
     confederation id, or its own AS) is presented as N instead. *)
  let apply_replace ~presented path =
    match replace_as with
    | Some (new_as, true) ->
        if config <> None && has Quirks.Replace_as_confed_broken then path
        else Aspath.replace_as ~old_as:presented ~new_as path
    | Some (_, false) | None -> path
  in
  match session with
  | Ibgp -> path
  | Ebgp_confed -> (
      match config with
      | Some c -> Aspath.prepend_confed c.sub_as path
      | None -> path)
  | Ebgp -> (
      let stripped = Aspath.strip_confed path in
      match config with
      | Some c ->
          apply_replace ~presented:c.confed_id (Aspath.prepend c.confed_id stripped)
      | None -> apply_replace ~presented:local_as (Aspath.prepend local_as stripped))
  | Session_mismatch -> path
