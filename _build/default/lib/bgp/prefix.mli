(** IPv4 prefixes. *)

type t = private { addr : int32; len : int }

val v : int32 -> int -> t
(** Host bits are masked off. @raise Invalid_argument if [len] is
    outside 0..32. *)

val of_string : string -> (t, string) result
(** ["10.0.0.0/8"]. *)

val to_string : t -> string

val mask : int -> int32
(** Network mask for a prefix length. *)

val contains : t -> t -> bool
(** [contains super sub]: every address of [sub] is in [super] (and
    [sub] is at least as long). *)

val member : t -> int32 -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
