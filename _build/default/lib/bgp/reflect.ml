type peer_type = Client | Non_client | External

let peer_type_to_string = function
  | Client -> "client"
  | Non_client -> "non-client"
  | External -> "external"

let should_reflect ~from_ ~to_ =
  match from_ with
  | External | Client -> true
  | Non_client -> (
      match to_ with Client | External -> true | Non_client -> false)

let reflect ~cluster_id ~from_ ~to_ (route : Route.t) =
  if not (should_reflect ~from_ ~to_) then None
  else begin
    let tag = (cluster_id, cluster_id) in
    let internal = function Client | Non_client -> true | External -> false in
    if internal from_ && internal to_ then
      if List.mem tag route.Route.communities then None
      else Some { route with Route.communities = route.Route.communities @ [ tag ] }
    else Some route
  end
