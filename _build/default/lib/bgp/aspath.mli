(** AS paths with confederation segments (RFC 5065). *)

type segment =
  | Seq of int list
  | Set of int list
  | Confed_seq of int list
  | Confed_set of int list

type t = segment list

val empty : t

val prepend : int -> t -> t
(** Prepend an AS to the leading [Seq] segment (creating one if
    needed); used when exporting over eBGP. *)

val prepend_confed : int -> t -> t
(** Prepend a sub-AS to the leading [Confed_seq] segment; used inside a
    confederation. *)

val strip_confed : t -> t
(** Remove confederation segments — what a router must do before
    announcing to a true external peer. *)

val replace_as : old_as:int -> new_as:int -> t -> t
(** The [neighbor ... local-as ... replace-as] transformation. *)

val length : t -> int
(** Path-selection length: [Seq] counts its ASes, [Set] counts 1,
    confederation segments count 0. *)

val contains : int -> t -> bool
(** Loop detection. *)

val has_confed_segments : t -> bool

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
