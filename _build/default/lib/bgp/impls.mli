(** The three BGP implementations of Table 1 (FRR, GoBGP, Batfish) as
    quirk sets over the reference engine, with their Table 3 bug
    catalog. *)

type bug = {
  quirk : Quirks.t;
  description : string;
  bug_type : string;
  new_bug : bool;  (** not found by MESSI *)
}

type t = { name : string; bugs : bug list }

val all : t list
val find : string -> t option
val quirks : t -> Quirks.t list
val bug_catalog : (string * bug) list
