type origin = Igp | Egp | Incomplete

type t = {
  prefix : Prefix.t;
  next_hop : int32;
  as_path : Aspath.t;
  local_pref : int;
  med : int;
  origin : origin;
  communities : (int * int) list;
}

let v ?(next_hop = 0l) ?(as_path = Aspath.empty) ?(local_pref = 100) ?(med = 0)
    ?(origin = Igp) ?(communities = []) prefix =
  { prefix; next_hop; as_path; local_pref; med; origin; communities }

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let better a b =
  if a.local_pref <> b.local_pref then a.local_pref > b.local_pref
  else begin
    let la = Aspath.length a.as_path and lb = Aspath.length b.as_path in
    if la <> lb then la < lb
    else if origin_rank a.origin <> origin_rank b.origin then
      origin_rank a.origin < origin_rank b.origin
    else if a.med <> b.med then a.med < b.med
    else Int32.unsigned_compare a.next_hop b.next_hop < 0
  end

let equal a b = a = b

let origin_to_string = function Igp -> "i" | Egp -> "e" | Incomplete -> "?"

let to_string t =
  Printf.sprintf "%s lp=%d med=%d %s path=[%s]%s"
    (Prefix.to_string t.prefix) t.local_pref t.med (origin_to_string t.origin)
    (Aspath.to_string t.as_path)
    (match t.communities with
    | [] -> ""
    | cs ->
        " comm="
        ^ String.concat ","
            (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) cs))

let pp ppf t = Format.fprintf ppf "%s" (to_string t)
