(** BGP route advertisements. *)

type origin = Igp | Egp | Incomplete

type t = {
  prefix : Prefix.t;
  next_hop : int32;
  as_path : Aspath.t;
  local_pref : int;
  med : int;
  origin : origin;
  communities : (int * int) list;
}

val v :
  ?next_hop:int32 ->
  ?as_path:Aspath.t ->
  ?local_pref:int ->
  ?med:int ->
  ?origin:origin ->
  ?communities:(int * int) list ->
  Prefix.t ->
  t
(** Defaults: next hop 0, empty path, local-pref 100, med 0, Igp, no
    communities. *)

val better : t -> t -> bool
(** BGP decision process, abbreviated: higher local-pref, then shorter
    AS path, then lower origin, then lower MED, then lower next hop.
    [better a b] means [a] wins. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
