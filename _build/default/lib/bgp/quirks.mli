(** Implementation-specific BGP deviations (Table 3, BGP rows). *)

type t =
  | Prefix_list_ge_match
      (** FRR: a prefix-list entry without le/ge matches mask lengths
          greater than or equal to its own, not just equal *)
  | Prefix_set_zero_masklength
      (** GoBGP: an entry with mask length 0 but a non-zero le/ge range
          matches nothing as intended, yet matches everything here *)
  | Confed_sub_as_eq_peer
      (** a true-external peer whose AS number equals the local sub-AS
          is treated as intra-confederation (iBGP attempted) *)
  | Replace_as_confed_broken
      (** [local-as ... replace-as] silently ignored when
          confederations are configured *)
  | Local_pref_not_reset_ebgp
      (** local preference is carried over an eBGP session instead of
          being reset to the default *)

val to_string : t -> string
val all : t list
