type segment =
  | Seq of int list
  | Set of int list
  | Confed_seq of int list
  | Confed_set of int list

type t = segment list

let empty = []

let prepend asn = function
  | Seq asns :: rest -> Seq (asn :: asns) :: rest
  | path -> Seq [ asn ] :: path

let prepend_confed asn = function
  | Confed_seq asns :: rest -> Confed_seq (asn :: asns) :: rest
  | path -> Confed_seq [ asn ] :: path

let strip_confed path =
  List.filter
    (function Confed_seq _ | Confed_set _ -> false | Seq _ | Set _ -> true)
    path

let replace_as ~old_as ~new_as path =
  let swap asns = List.map (fun a -> if a = old_as then new_as else a) asns in
  List.map
    (function
      | Seq asns -> Seq (swap asns)
      | Set asns -> Set (swap asns)
      | Confed_seq asns -> Confed_seq (swap asns)
      | Confed_set asns -> Confed_set (swap asns))
    path

let length path =
  List.fold_left
    (fun acc seg ->
      match seg with
      | Seq asns -> acc + List.length asns
      | Set _ -> acc + 1
      | Confed_seq _ | Confed_set _ -> acc)
    0 path

let contains asn path =
  List.exists
    (function
      | Seq asns | Set asns | Confed_seq asns | Confed_set asns ->
          List.mem asn asns)
    path

let has_confed_segments path =
  List.exists
    (function Confed_seq _ | Confed_set _ -> true | Seq _ | Set _ -> false)
    path

let equal a b = a = b

let seg_to_string = function
  | Seq asns -> String.concat " " (List.map string_of_int asns)
  | Set asns -> "{" ^ String.concat "," (List.map string_of_int asns) ^ "}"
  | Confed_seq asns -> "(" ^ String.concat " " (List.map string_of_int asns) ^ ")"
  | Confed_set asns -> "[" ^ String.concat "," (List.map string_of_int asns) ^ "]"

let to_string path = String.concat " " (List.map seg_to_string path)

let pp ppf path = Format.fprintf ppf "%s" (to_string path)
