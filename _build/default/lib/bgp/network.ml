type neighbor = {
  peer_as : int;
  peer_in_confed : bool;
  peer_kind : Reflect.peer_type;
  import_map : string option;
  export_map : string option;
  replace_as : (int * bool) option;
}

type router = {
  rname : string;
  asn : int;
  confed : Confed.config option;
  cluster_id : int;
  prefix_lists : Policy.prefix_list list;
  route_maps : Policy.route_map list;
}

type rib = Route.t list

let find_map router name =
  List.find_opt (fun (rm : Policy.route_map) -> rm.Policy.rm_name = name)
    router.route_maps

let apply_named_map ?quirks router map_name routes =
  match map_name with
  | None -> routes
  | Some name -> (
      match find_map router name with
      | None -> routes (* an undefined map permits everything *)
      | Some rm ->
          List.filter_map
            (fun r ->
              Policy.apply_route_map ?quirks ~prefix_lists:router.prefix_lists rm r)
            routes)

let session ?quirks router (n : neighbor) =
  Confed.agree ?quirks router.confed ~local_as:router.asn ~peer_as:n.peer_as
    ~peer_in_confed:n.peer_in_confed

let receive ?(quirks = []) router ~from_ routes =
  match session ~quirks router from_ with
  | Confed.Session_mismatch -> []
  | sess ->
      let has q = List.mem q quirks in
      routes
      (* AS-path loop detection: drop routes already carrying our AS
         (or confederation id) *)
      |> List.filter (fun (r : Route.t) ->
             let own =
               match router.confed with
               | Some c -> [ c.Confed.confed_id; c.Confed.sub_as ]
               | None -> [ router.asn ]
             in
             not (List.exists (fun a -> Aspath.contains a r.Route.as_path) own))
      |> apply_named_map ~quirks router from_.import_map
      |> List.map (fun (r : Route.t) ->
             match sess with
             | Confed.Ebgp ->
                 if has Quirks.Local_pref_not_reset_ebgp then r
                 else { r with Route.local_pref = 100 }
             | Confed.Ibgp | Confed.Ebgp_confed | Confed.Session_mismatch -> r)

let advertise ?(quirks = []) router ~to_ ~learned_from routes =
  match session ~quirks router to_ with
  | Confed.Session_mismatch -> []
  | sess ->
      routes
      |> List.filter_map (fun (r : Route.t) ->
             Reflect.reflect ~cluster_id:router.cluster_id ~from_:learned_from
               ~to_:to_.peer_kind r)
      |> apply_named_map ~quirks router to_.export_map
      |> List.map (fun (r : Route.t) ->
             {
               r with
               Route.as_path =
                 Confed.export_path ~quirks router.confed sess ~local_as:router.asn
                   ?replace_as:to_.replace_as r.Route.as_path;
             })

let best_rib routes =
  let by_prefix = Hashtbl.create 8 in
  List.iter
    (fun (r : Route.t) ->
      match Hashtbl.find_opt by_prefix r.Route.prefix with
      | None -> Hashtbl.replace by_prefix r.Route.prefix r
      | Some (cur : Route.t) ->
          if Route.better r cur then Hashtbl.replace by_prefix r.Route.prefix r)
    routes;
  Hashtbl.fold (fun _ r acc -> r :: acc) by_prefix []
  |> List.sort (fun (a : Route.t) (b : Route.t) ->
         Prefix.compare a.Route.prefix b.Route.prefix)

let run_chain ?(quirks = []) ~r2 ~r2_in ~r2_out ~r3 ~r3_in ~injected () =
  let imported = receive ~quirks r2 ~from_:r2_in injected in
  let r2_rib = best_rib imported in
  let exported =
    advertise ~quirks r2 ~to_:r2_out ~learned_from:r2_in.peer_kind r2_rib
  in
  let r3_routes = receive ~quirks r3 ~from_:r3_in exported in
  let r3_rib = best_rib r3_routes in
  (r2_rib, r3_rib)
