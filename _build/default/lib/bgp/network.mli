(** The three-node test network of §4.2: R1 (an ExaBGP-style injector)
    feeds routes into R2; R2 runs the implementation under test and
    propagates to R3; differential testing compares the resulting
    routing tables on R2 and R3 across implementations. *)

type neighbor = {
  peer_as : int;
  peer_in_confed : bool;
  peer_kind : Reflect.peer_type;
  import_map : string option;
  export_map : string option;
  replace_as : (int * bool) option;  (** local-as N [replace-as] *)
}

type router = {
  rname : string;
  asn : int;
  confed : Confed.config option;
  cluster_id : int;
  prefix_lists : Policy.prefix_list list;
  route_maps : Policy.route_map list;
}

type rib = Route.t list
(** Best route per prefix, sorted by prefix. *)

val receive :
  ?quirks:Quirks.t list ->
  router ->
  from_:neighbor ->
  Route.t list ->
  Route.t list
(** Import processing at a router: session agreement (a mismatched
    confederation session drops everything), AS-path loop detection,
    per-neighbor import route map, eBGP local-pref reset. *)

val advertise :
  ?quirks:Quirks.t list ->
  router ->
  to_:neighbor ->
  learned_from:Reflect.peer_type ->
  Route.t list ->
  Route.t list
(** Export processing: reflection rules (when this router has clients),
    export route map, confederations/AS-path updates. *)

val best_rib : Route.t list -> rib

val run_chain :
  ?quirks:Quirks.t list ->
  r2:router ->
  r2_in:neighbor ->
  r2_out:neighbor ->
  r3:router ->
  r3_in:neighbor ->
  injected:Route.t list ->
  unit ->
  rib * rib
(** Full pipeline: inject at R2 via [r2_in], install, advertise to R3
    via [r2_out], install at R3 via [r3_in]. Returns both RIBs. *)
