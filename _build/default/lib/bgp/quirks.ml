type t =
  | Prefix_list_ge_match
  | Prefix_set_zero_masklength
  | Confed_sub_as_eq_peer
  | Replace_as_confed_broken
  | Local_pref_not_reset_ebgp

let to_string = function
  | Prefix_list_ge_match -> "prefix-list-ge-match"
  | Prefix_set_zero_masklength -> "prefix-set-zero-masklength"
  | Confed_sub_as_eq_peer -> "confed-sub-as-eq-peer"
  | Replace_as_confed_broken -> "replace-as-confed-broken"
  | Local_pref_not_reset_ebgp -> "local-pref-not-reset-ebgp"

let all =
  [
    Prefix_list_ge_match;
    Prefix_set_zero_masklength;
    Confed_sub_as_eq_peer;
    Replace_as_confed_broken;
    Local_pref_not_reset_ebgp;
  ]
