(** Route reflection (RFC 4456). *)

type peer_type = Client | Non_client | External

val peer_type_to_string : peer_type -> string

val should_reflect : from_:peer_type -> to_:peer_type -> bool
(** Whether a route reflector propagates a route learned [from_] to a
    neighbour of kind [to_]: routes from external peers and clients go
    to everyone; routes from non-clients only to clients and external
    peers. *)

val reflect :
  cluster_id:int -> from_:peer_type -> to_:peer_type -> Route.t -> Route.t option
(** {!should_reflect} plus cluster-list loop protection, encoded as a
    community [(cluster_id, cluster_id)] standing in for the
    CLUSTER_LIST attribute: a route already carrying this router's
    cluster id is dropped when reflected between internal peers. *)
