type t = { addr : int32; len : int }

let mask len =
  if len <= 0 then 0l
  else if len >= 32 then 0xFFFFFFFFl
  else Int32.shift_left 0xFFFFFFFFl (32 - len)

let v addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.v: length outside 0..32";
  { addr = Int32.logand addr (mask len); len }

let octets_to_addr a b c d =
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let of_string s =
  match String.split_on_char '/' s with
  | [ addr; len ] -> (
      match
        ( String.split_on_char '.' addr |> List.map int_of_string_opt,
          int_of_string_opt len )
      with
      | [ Some a; Some b; Some c; Some d ], Some len
        when a land 0xff = a && b land 0xff = b && c land 0xff = c
             && d land 0xff = d && len >= 0 && len <= 32 ->
          Ok (v (octets_to_addr a b c d) len)
      | _, _ -> Error (Printf.sprintf "malformed prefix %S" s))
  | _ -> Error (Printf.sprintf "malformed prefix %S" s)

let to_string t =
  let byte i =
    Int32.to_int (Int32.logand (Int32.shift_right_logical t.addr i) 0xFFl)
  in
  Printf.sprintf "%d.%d.%d.%d/%d" (byte 24) (byte 16) (byte 8) (byte 0) t.len

let contains super sub =
  super.len <= sub.len
  && Int32.logand sub.addr (mask super.len) = super.addr

let member t addr = Int32.logand addr (mask t.len) = t.addr

let equal a b = a = b
let compare = compare
let pp ppf t = Format.fprintf ppf "%s" (to_string t)
