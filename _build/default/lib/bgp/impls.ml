type bug = {
  quirk : Quirks.t;
  description : string;
  bug_type : string;
  new_bug : bool;
}

type t = { name : string; bugs : bug list }

let bug quirk description bug_type new_bug = { quirk; description; bug_type; new_bug }

let all =
  [
    {
      name = "frr";
      bugs =
        [
          bug Quirks.Prefix_list_ge_match
            "Prefix list matches mask greater than or equals." "Wrong Policy" false;
          bug Quirks.Confed_sub_as_eq_peer
            "Confederation sub AS equal to peer AS." "Wrong Policy" true;
          bug Quirks.Replace_as_confed_broken
            "Replace-AS not working with confederations." "Wrong Policy" true;
        ];
    };
    {
      name = "gobgp";
      bugs =
        [
          bug Quirks.Prefix_set_zero_masklength
            "Prefix set match with zero masklength but nonzero range."
            "Wrong Policy" false;
          bug Quirks.Confed_sub_as_eq_peer
            "Confederation sub AS equal to peer AS." "Wrong Policy" true;
        ];
    };
    {
      name = "batfish";
      bugs =
        [
          bug Quirks.Local_pref_not_reset_ebgp
            "Local preference not reset for EBGP neighbor." "Wrong Policy" true;
          bug Quirks.Confed_sub_as_eq_peer
            "Confederation sub AS same as peer AS." "Wrong Policy" true;
        ];
    };
  ]

let find name = List.find_opt (fun impl -> impl.name = name) all

let quirks impl = List.map (fun b -> b.quirk) impl.bugs

let bug_catalog =
  List.concat_map (fun impl -> List.map (fun b -> (impl.name, b)) impl.bugs) all
