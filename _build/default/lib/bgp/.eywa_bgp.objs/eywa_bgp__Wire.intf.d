lib/bgp/wire.mli: Prefix Route
