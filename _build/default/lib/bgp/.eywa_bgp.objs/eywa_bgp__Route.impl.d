lib/bgp/route.ml: Aspath Format Int32 List Prefix Printf String
