lib/bgp/confed.mli: Aspath Quirks
