lib/bgp/aspath.mli: Format
