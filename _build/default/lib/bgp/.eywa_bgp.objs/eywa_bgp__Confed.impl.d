lib/bgp/confed.ml: Aspath List Quirks
