lib/bgp/aspath.ml: Format List String
