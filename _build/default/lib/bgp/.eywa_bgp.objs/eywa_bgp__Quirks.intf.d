lib/bgp/quirks.mli:
