lib/bgp/wire.ml: Aspath Buffer Char Int32 List Prefix Printf Route String
