lib/bgp/policy.mli: Prefix Quirks Route
