lib/bgp/impls.mli: Quirks
