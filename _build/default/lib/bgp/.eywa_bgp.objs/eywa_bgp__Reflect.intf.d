lib/bgp/reflect.mli: Route
