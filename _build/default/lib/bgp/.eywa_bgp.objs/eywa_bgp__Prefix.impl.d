lib/bgp/prefix.ml: Format Int32 List Printf String
