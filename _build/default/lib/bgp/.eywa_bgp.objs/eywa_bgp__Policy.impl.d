lib/bgp/policy.ml: Aspath List Prefix Quirks Route
