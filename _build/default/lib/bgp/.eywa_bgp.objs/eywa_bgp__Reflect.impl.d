lib/bgp/reflect.ml: List Route
