lib/bgp/quirks.ml:
