lib/bgp/network.mli: Confed Policy Quirks Reflect Route
