lib/bgp/route.mli: Aspath Format Prefix
