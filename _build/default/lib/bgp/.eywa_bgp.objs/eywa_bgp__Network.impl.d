lib/bgp/network.ml: Aspath Confed Hashtbl List Policy Prefix Quirks Reflect Route
