lib/bgp/impls.ml: List Quirks
