(** BGP-4 UPDATE message wire format (RFC 4271 §4.3, RFC 5065 for
    confederation segment types).

    Encodes and decodes UPDATE messages carrying withdrawn routes, the
    standard path attributes (ORIGIN, AS_PATH with confederation
    segments, NEXT_HOP, MED, LOCAL_PREF, COMMUNITIES) and IPv4 NLRI.
    The 19-byte header carries the all-ones marker. As with
    {!Eywa_dns.Wire}, the reproduction's differential testing runs
    in-process, but the codec is what a deployment would put on the
    session socket, and it is property-tested for round-tripping. *)

type update = {
  withdrawn : Prefix.t list;
  route : Route.t option;  (** attributes + NLRI, when announcing *)
  nlri : Prefix.t list;
}

val encode : update -> string
(** @raise Invalid_argument on AS numbers or attribute sizes that do
    not fit their fields. *)

val decode : string -> (update, string) result

val encode_route : Route.t -> string
(** An UPDATE announcing exactly this route. *)

val decode_route : string -> (Route.t, string) result
(** The announced route of an UPDATE; [Error _] if it carries none. *)
