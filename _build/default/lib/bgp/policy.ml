type prefix_list_entry = {
  seq : int;
  permit : bool;
  prefix : Prefix.t;
  ge : int option;
  le : int option;
}

type prefix_list = { pl_name : string; entries : prefix_list_entry list }

type match_clause =
  | Match_prefix_list of string
  | Match_community of (int * int)
  | Match_any

type set_clause =
  | Set_local_pref of int
  | Set_med of int
  | Set_community of (int * int)
  | Prepend_as of int

type stanza = {
  stanza_seq : int;
  stanza_permit : bool;
  matches : match_clause list;
  sets : set_clause list;
}

type route_map = { rm_name : string; stanzas : stanza list }

let entry_matches ?(quirks = []) entry (p : Prefix.t) =
  let has q = List.mem q quirks in
  let plen = p.Prefix.len in
  if
    has Quirks.Prefix_set_zero_masklength
    && entry.prefix.Prefix.len = 0
    && (entry.ge <> None || entry.le <> None)
  then true
  else if not (Prefix.contains entry.prefix p) then false
  else begin
    match (entry.ge, entry.le) with
    | None, None ->
        if has Quirks.Prefix_list_ge_match then plen >= entry.prefix.Prefix.len
        else plen = entry.prefix.Prefix.len
    | Some ge, None -> plen >= ge
    | None, Some le -> plen >= entry.prefix.Prefix.len && plen <= le
    | Some ge, Some le -> plen >= ge && plen <= le
  end

let prefix_list_permits ?quirks pl (p : Prefix.t) =
  let entries =
    List.stable_sort (fun a b -> compare a.seq b.seq) pl.entries
  in
  let rec first = function
    | [] -> false
    | e :: rest -> if entry_matches ?quirks e p then e.permit else first rest
  in
  first entries

let clause_matches ?quirks ~prefix_lists clause (route : Route.t) =
  match clause with
  | Match_any -> true
  | Match_prefix_list name -> (
      match List.find_opt (fun pl -> pl.pl_name = name) prefix_lists with
      | None -> false
      | Some pl -> prefix_list_permits ?quirks pl route.Route.prefix)
  | Match_community c -> List.mem c route.Route.communities

let apply_sets sets (route : Route.t) =
  List.fold_left
    (fun (r : Route.t) set ->
      match set with
      | Set_local_pref lp -> { r with Route.local_pref = lp }
      | Set_med med -> { r with Route.med = med }
      | Set_community c ->
          if List.mem c r.Route.communities then r
          else { r with Route.communities = r.Route.communities @ [ c ] }
      | Prepend_as asn -> { r with Route.as_path = Aspath.prepend asn r.Route.as_path })
    route sets

let apply_route_map ?quirks ~prefix_lists rm route =
  let stanzas =
    List.stable_sort (fun a b -> compare a.stanza_seq b.stanza_seq) rm.stanzas
  in
  let rec first = function
    | [] -> None
    | s :: rest ->
        if List.for_all (fun c -> clause_matches ?quirks ~prefix_lists c route) s.matches
        then if s.stanza_permit then Some (apply_sets s.sets route) else None
        else first rest
  in
  first stanzas
