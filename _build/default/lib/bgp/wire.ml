type update = {
  withdrawn : Prefix.t list;
  route : Route.t option;
  nlri : Prefix.t list;
}

(* ----- primitives ----- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf (v : int32) =
  put_u8 buf (Int32.to_int (Int32.shift_right_logical v 24));
  put_u8 buf (Int32.to_int (Int32.shift_right_logical v 16));
  put_u8 buf (Int32.to_int (Int32.shift_right_logical v 8));
  put_u8 buf (Int32.to_int v)

(* prefixes are encoded as length byte + ceil(len/8) address bytes *)
let put_prefix buf (p : Prefix.t) =
  put_u8 buf p.Prefix.len;
  let nbytes = (p.Prefix.len + 7) / 8 in
  for i = 0 to nbytes - 1 do
    put_u8 buf
      (Int32.to_int
         (Int32.logand
            (Int32.shift_right_logical p.Prefix.addr (24 - (8 * i)))
            0xFFl))
  done

(* ----- path attributes ----- *)

let origin_to_int = function Route.Igp -> 0 | Route.Egp -> 1 | Route.Incomplete -> 2

let origin_of_int = function
  | 0 -> Route.Igp
  | 1 -> Route.Egp
  | _ -> Route.Incomplete

let seg_type = function
  | Aspath.Set _ -> 1
  | Aspath.Seq _ -> 2
  | Aspath.Confed_seq _ -> 3
  | Aspath.Confed_set _ -> 4

let seg_asns = function
  | Aspath.Set asns | Aspath.Seq asns | Aspath.Confed_seq asns
  | Aspath.Confed_set asns ->
      asns

let put_attr buf ~flags ~code body =
  put_u8 buf flags;
  put_u8 buf code;
  let len = String.length body in
  if flags land 0x10 <> 0 then put_u16 buf len
  else begin
    if len > 255 then invalid_arg "Wire.encode: attribute over 255 bytes";
    put_u8 buf len
  end;
  Buffer.add_string buf body

let well_known = 0x40 (* transitive *)
let optional = 0xc0 (* optional transitive *)

let aspath_body path =
  let buf = Buffer.create 16 in
  List.iter
    (fun seg ->
      let asns = seg_asns seg in
      if List.length asns > 255 then invalid_arg "Wire.encode: segment over 255 ASes";
      put_u8 buf (seg_type seg);
      put_u8 buf (List.length asns);
      List.iter
        (fun asn ->
          if asn < 0 || asn > 0xffff then
            invalid_arg "Wire.encode: AS number outside 16 bits";
          put_u16 buf asn)
        asns)
    path;
  Buffer.contents buf

let attributes_of_route (r : Route.t) =
  let buf = Buffer.create 64 in
  let b1 v = String.make 1 (Char.chr (v land 0xff)) in
  let b4 (v : int32) =
    let t = Buffer.create 4 in
    put_u32 t v;
    Buffer.contents t
  in
  put_attr buf ~flags:well_known ~code:1 (b1 (origin_to_int r.origin));
  put_attr buf ~flags:well_known ~code:2 (aspath_body r.as_path);
  put_attr buf ~flags:well_known ~code:3 (b4 r.next_hop);
  put_attr buf ~flags:0x80 ~code:4 (b4 (Int32.of_int r.med));
  put_attr buf ~flags:well_known ~code:5 (b4 (Int32.of_int r.local_pref));
  if r.communities <> [] then begin
    let t = Buffer.create 8 in
    List.iter
      (fun (hi, lo) ->
        put_u16 t hi;
        put_u16 t lo)
      r.communities;
    put_attr buf ~flags:optional ~code:8 (Buffer.contents t)
  end;
  Buffer.contents buf

let encode u =
  let body = Buffer.create 64 in
  (* withdrawn routes *)
  let withdrawn = Buffer.create 16 in
  List.iter (put_prefix withdrawn) u.withdrawn;
  put_u16 body (Buffer.length withdrawn);
  Buffer.add_buffer body withdrawn;
  (* path attributes *)
  let attrs =
    match u.route with Some r -> attributes_of_route r | None -> ""
  in
  put_u16 body (String.length attrs);
  Buffer.add_string body attrs;
  (* NLRI *)
  (match u.route with
  | Some r -> put_prefix body r.Route.prefix
  | None -> ());
  List.iter (put_prefix body) u.nlri;
  (* header: 16-byte marker, length, type=2 (UPDATE) *)
  let total = 19 + Buffer.length body in
  let out = Buffer.create total in
  for _ = 1 to 16 do
    put_u8 out 0xff
  done;
  put_u16 out total;
  put_u8 out 2;
  Buffer.add_buffer out body;
  Buffer.contents out

let encode_route r = encode { withdrawn = []; route = Some r; nlri = [] }

(* ----- decoding ----- *)

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type cursor = { data : string; mutable pos : int; stop : int }

let u8 c =
  if c.pos >= c.stop then fail "truncated at %d" c.pos;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  (hi lsl 8) lor u8 c

let u32 c =
  let a = u8 c and b = u8 c and d = u8 c and e = u8 c in
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (d lsl 8) lor e))

let prefix c =
  let len = u8 c in
  if len > 32 then fail "prefix length %d" len;
  let nbytes = (len + 7) / 8 in
  let addr = ref 0l in
  for i = 0 to nbytes - 1 do
    addr := Int32.logor !addr (Int32.shift_left (Int32.of_int (u8 c)) (24 - (8 * i)))
  done;
  Prefix.v !addr len

let aspath_of c stop =
  let segs = ref [] in
  while c.pos < stop do
    let t = u8 c in
    let n = u8 c in
    let asns = List.init n (fun _ -> u16 c) in
    let seg =
      match t with
      | 1 -> Aspath.Set asns
      | 2 -> Aspath.Seq asns
      | 3 -> Aspath.Confed_seq asns
      | 4 -> Aspath.Confed_set asns
      | _ -> fail "unknown segment type %d" t
    in
    segs := seg :: !segs
  done;
  List.rev !segs

let decode data =
  match
    if String.length data < 19 then fail "short message";
    let c = { data; pos = 16; stop = String.length data } in
    let total = u16 c in
    if total <> String.length data then fail "length field mismatch";
    let typ = u8 c in
    if typ <> 2 then fail "not an UPDATE (type %d)" typ;
    let wlen = u16 c in
    let wstop = c.pos + wlen in
    let withdrawn = ref [] in
    while c.pos < wstop do
      withdrawn := prefix c :: !withdrawn
    done;
    let alen = u16 c in
    let astop = c.pos + alen in
    let origin = ref Route.Igp in
    let path = ref Aspath.empty in
    let next_hop = ref 0l in
    let med = ref 0 in
    let local_pref = ref 100 in
    let communities = ref [] in
    let saw_attrs = alen > 0 in
    while c.pos < astop do
      let flags = u8 c in
      let code = u8 c in
      let len = if flags land 0x10 <> 0 then u16 c else u8 c in
      let vstop = c.pos + len in
      (match code with
      | 1 -> origin := origin_of_int (u8 c)
      | 2 -> path := aspath_of c vstop
      | 3 -> next_hop := u32 c
      | 4 -> med := Int32.to_int (u32 c)
      | 5 -> local_pref := Int32.to_int (u32 c)
      | 8 ->
          while c.pos < vstop do
            let hi = u16 c in
            let lo = u16 c in
            communities := !communities @ [ (hi, lo) ]
          done
      | _ -> () (* skip unknown attributes *));
      c.pos <- vstop
    done;
    let nlri = ref [] in
    while c.pos < c.stop do
      nlri := prefix c :: !nlri
    done;
    let route =
      match (saw_attrs, List.rev !nlri) with
      | true, first :: rest ->
          ignore rest;
          Some
            {
              Route.prefix = first;
              next_hop = !next_hop;
              as_path = !path;
              local_pref = !local_pref;
              med = !med;
              origin = !origin;
              communities = !communities;
            }
      | _, _ -> None
    in
    let nlri_rest =
      match List.rev !nlri with [] -> [] | _ :: rest -> rest
    in
    { withdrawn = List.rev !withdrawn;
      route;
      nlri = (if route = None then List.rev !nlri else nlri_rest) }
  with
  | u -> Ok u
  | exception Malformed m -> Error m

let decode_route data =
  match decode data with
  | Error m -> Error m
  | Ok { route = Some r; _ } -> Ok r
  | Ok { route = None; _ } -> Error "UPDATE announces no route"
