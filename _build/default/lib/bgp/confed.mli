(** BGP confederations (RFC 5065).

    A confederation splits an AS into sub-ASes: sessions between
    members of the same sub-AS are iBGP, between different sub-ASes
    confed-eBGP, and announcements leaving the confederation drop the
    confederation segments and show the confederation identifier. *)

type config = {
  confed_id : int;  (** the AS number the outside world sees *)
  sub_as : int;  (** this router's member AS *)
  members : int list;  (** all member sub-AS numbers *)
}

type session =
  | Ibgp
  | Ebgp_confed  (** between sub-ASes of one confederation *)
  | Ebgp
  | Session_mismatch
      (** the two ends disagree about the session type; no routes flow
          (the §4.3 confederation bug scenario) *)

val session_to_string : session -> string

val classify :
  ?quirks:Quirks.t list ->
  config option ->
  local_as:int ->
  peer_as:int ->
  peer_in_confed:bool ->
  session
(** The session type this router believes it has with the peer. *)

val agree :
  ?quirks:Quirks.t list ->
  config option ->
  local_as:int ->
  peer_as:int ->
  peer_in_confed:bool ->
  session
(** Both ends' views combined: [Session_mismatch] unless the router's
    view and the (quirk-free) peer's view coincide. *)

val export_path :
  ?quirks:Quirks.t list ->
  config option ->
  session ->
  local_as:int ->
  ?replace_as:int * bool ->
  Aspath.t ->
  Aspath.t
(** Path updates applied when announcing over the session:
    iBGP leaves the path alone; confed-eBGP prepends the sub-AS as a
    confederation segment; eBGP strips confederation segments and
    prepends the confederation id (or the local AS outside a
    confederation). [replace_as = (new_as, replace)] models
    [local-as new_as replace-as]. *)
