(** Routing policy: prefix lists and route maps. *)

type prefix_list_entry = {
  seq : int;
  permit : bool;
  prefix : Prefix.t;
  ge : int option;  (** minimum mask length matched *)
  le : int option;  (** maximum mask length matched *)
}

type prefix_list = { pl_name : string; entries : prefix_list_entry list }

type match_clause =
  | Match_prefix_list of string
  | Match_community of (int * int)
  | Match_any

type set_clause =
  | Set_local_pref of int
  | Set_med of int
  | Set_community of (int * int)
  | Prepend_as of int

type stanza = {
  stanza_seq : int;
  stanza_permit : bool;
  matches : match_clause list;  (** all must match *)
  sets : set_clause list;
}

type route_map = { rm_name : string; stanzas : stanza list }

val entry_matches :
  ?quirks:Quirks.t list -> prefix_list_entry -> Prefix.t -> bool
(** One entry against a route's prefix: the entry's prefix must contain
    it and the mask length must satisfy ge/le (or equal the entry's
    length when neither is given). Quirks inject the FRR >= behaviour
    and the GoBGP zero-masklength behaviour. *)

val prefix_list_permits :
  ?quirks:Quirks.t list -> prefix_list -> Prefix.t -> bool
(** First matching entry decides; no match means deny (BGP default). *)

val apply_route_map :
  ?quirks:Quirks.t list ->
  prefix_lists:prefix_list list ->
  route_map ->
  Route.t ->
  Route.t option
(** First stanza whose matches all hold decides: [None] for deny,
    [Some route'] with set clauses applied for permit. A route matching
    no stanza is denied. *)
