lib/difftest/difftest.ml: Format Hashtbl List String
