lib/difftest/difftest.mli: Format
