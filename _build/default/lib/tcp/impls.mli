(** TCP stack variants for the §6 extension experiment. The bug catalog
    is illustrative (this protocol is beyond the paper's evaluation):
    one stack ACKs data before the handshake completes, another never
    answers RST to unacceptable segments. *)

type bug = {
  quirk : Machine.quirk;
  description : string;
  bug_type : string;
}

type t = { name : string; bugs : bug list }

val all : t list
val find : string -> t option
val quirks : t -> Machine.quirk list

val handle : t -> Machine.state -> Machine.segment -> string * Machine.state

val drive_and_probe :
  t ->
  Eywa_stategraph.Stategraph.t ->
  state:string ->
  input:string ->
  (string, string) result
(** BFS-drive a fresh connection (from LISTEN) to [state], then probe. *)

val bug_catalog : (string * bug) list
