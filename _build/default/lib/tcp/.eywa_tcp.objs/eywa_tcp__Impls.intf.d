lib/tcp/impls.mli: Eywa_stategraph Machine
