lib/tcp/machine.mli:
