lib/tcp/impls.ml: Eywa_stategraph List Machine Printf
