lib/tcp/machine.ml: List
