type state = Closed | Listen | Syn_rcvd | Established | Close_wait | Last_ack

type segment = Syn | Ack | Fin | Rst | Data | Other of string

type quirk = Data_before_established | No_rst_on_bad_segment

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"

let state_of_string = function
  | "CLOSED" -> Some Closed
  | "LISTEN" -> Some Listen
  | "SYN_RCVD" -> Some Syn_rcvd
  | "ESTABLISHED" -> Some Established
  | "CLOSE_WAIT" -> Some Close_wait
  | "LAST_ACK" -> Some Last_ack
  | _ -> None

let segment_to_letter = function
  | Syn -> "S"
  | Ack -> "A"
  | Fin -> "F"
  | Rst -> "R"
  | Data -> "D"
  | Other s -> s

let segment_of_letter = function
  | "S" -> Syn
  | "A" -> Ack
  | "F" -> Fin
  | "R" -> Rst
  | "D" -> Data
  | s -> Other s

let handle ?(quirks = []) state segment =
  let has q = List.mem q quirks in
  let rst () = if has No_rst_on_bad_segment then "-" else "R" in
  match (state, segment) with
  | Listen, Syn -> ("SA", Syn_rcvd)
  | Listen, Rst -> ("-", Listen)
  | Listen, (Ack | Fin | Data | Other _) -> (rst (), Listen)
  | Syn_rcvd, Ack -> ("-", Established)
  | Syn_rcvd, Rst -> ("-", Listen)
  | Syn_rcvd, Fin -> ("A", Close_wait)
  | Syn_rcvd, Data when has Data_before_established -> ("A", Syn_rcvd)
  | Syn_rcvd, (Syn | Data | Other _) -> (rst (), Syn_rcvd)
  | Established, Data -> ("A", Established)
  | Established, Fin -> ("A", Close_wait)
  | Established, Rst -> ("-", Closed)
  | Established, (Syn | Ack | Other _) -> ("A", Established)
  | Close_wait, Ack -> ("FA", Last_ack)
  | Close_wait, Rst -> ("-", Closed)
  | Close_wait, (Syn | Fin | Data | Other _) -> ("A", Close_wait)
  | Last_ack, Ack -> ("-", Closed)
  | Last_ack, (Syn | Fin | Rst | Data | Other _) -> (rst (), Last_ack)
  | Closed, (Syn | Ack | Fin | Rst | Data | Other _) -> (rst (), Closed)

let run_connection ?quirks segments =
  let rec go state acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let reply, state' = handle ?quirks state s in
        go state' (reply :: acc) rest
  in
  go Listen [] segments

let reference_transitions =
  let t s seg s' =
    ((state_to_string s, segment_to_letter seg), state_to_string s')
  in
  [
    t Listen Syn Syn_rcvd;
    t Syn_rcvd Ack Established;
    t Syn_rcvd Rst Listen;
    t Syn_rcvd Fin Close_wait;
    t Established Fin Close_wait;
    t Established Rst Closed;
    t Close_wait Ack Last_ack;
    t Close_wait Rst Closed;
    t Last_ack Ack Closed;
  ]
