module Stategraph = Eywa_stategraph.Stategraph

type bug = { quirk : Machine.quirk; description : string; bug_type : string }

type t = { name : string; bugs : bug list }

let all =
  [
    { name = "refstack"; bugs = [] };
    {
      name = "fastopend";
      bugs =
        [
          {
            quirk = Machine.Data_before_established;
            description = "Data acknowledged before the handshake completes";
            bug_type = "Input Validation";
          };
        ];
    };
    {
      name = "quietstack";
      bugs =
        [
          {
            quirk = Machine.No_rst_on_bad_segment;
            description = "No RST sent for unacceptable segments";
            bug_type = "Wrong Reply";
          };
        ];
    };
  ]

let find name = List.find_opt (fun impl -> impl.name = name) all

let quirks impl = List.map (fun b -> b.quirk) impl.bugs

let handle impl state segment = Machine.handle ~quirks:(quirks impl) state segment

let drive_and_probe impl graph ~state ~input =
  match Stategraph.path_to graph ~start:"LISTEN" ~goal:state with
  | None -> Error (Printf.sprintf "state %s unreachable in the extracted graph" state)
  | Some prefix ->
      let segments =
        List.map Machine.segment_of_letter (prefix @ [ input ])
      in
      let replies = Machine.run_connection ~quirks:(quirks impl) segments in
      (match List.rev replies with
      | last :: _ -> Ok last
      | [] -> Error "empty connection")

let bug_catalog =
  List.concat_map (fun impl -> List.map (fun b -> (impl.name, b)) impl.bugs) all
