(** TCP connection state machine (server view) — the extension the
    paper's §6 proposes ("we hope to explore ... more complex stateful
    protocols like TCP").

    Segments use single-letter model encoding: S=SYN, A=ACK, F=FIN,
    R=RST, D=data. Replies are the segment kinds the server sends back
    ("SA", "A", "FA", "R", or "-" for silence). *)

type state =
  | Closed
  | Listen
  | Syn_rcvd
  | Established
  | Close_wait
  | Last_ack

type segment = Syn | Ack | Fin | Rst | Data | Other of string

type quirk =
  | Data_before_established
      (** data segments accepted (ACKed) while still in SYN_RCVD — the
          handshake is not enforced *)
  | No_rst_on_bad_segment
      (** silently drops unacceptable segments instead of answering RST *)

val state_to_string : state -> string
val state_of_string : string -> state option

val segment_to_letter : segment -> string
val segment_of_letter : string -> segment

val handle : ?quirks:quirk list -> state -> segment -> string * state
(** One step: the reply ("SA", "A", "FA", "R", "-") and successor. *)

val run_connection : ?quirks:quirk list -> segment list -> string list
(** A fresh connection starts in [Listen]. *)

val reference_transitions : ((string * string) * string) list
