(** Regular expressions over bounded strings, usable both concretely
    and symbolically.

    This is the reproduction of Appendix A: the paper hand-writes a
    continuation-based C matcher whose branches Klee explores. We
    instead compile the pattern to an NFA and, for the symbolic case,
    unroll NFA reachability over the (bounded) buffer into a single
    constraint term — the exact [klee_assume(match(...))] contract of
    the paper's [RegexModule], with the path blow-up shifted into the
    solver. *)

type t =
  | Empty  (** matches the empty string *)
  | Char of char
  | Class of (char * char) list  (** union of inclusive ranges *)
  | Any  (** any non-NUL character *)
  | Seq of t * t
  | Alt of t * t
  | Star of t

exception Parse_error of string

val parse : string -> t
(** Parse a pattern. Supported syntax: literals, [.], [[a-z*]] classes
    (ranges and single chars), [( )] grouping, [*], [+], [?], [|], and
    [\ ] escapes. @raise Parse_error on malformed patterns. *)

val matches : t -> string -> bool
(** Concrete match of the whole string (anchored both ends). *)

val matches_pattern : string -> string -> bool
(** [matches_pattern pat s] parses and matches in one step. *)

val compile_term : t -> Eywa_solver.Term.t array -> Eywa_solver.Term.t
(** [compile_term re cells] is a term that is true exactly when the
    C string held in [cells] (content up to its first NUL; the final
    cell must be a constant 0) matches [re]. *)

val alphabet_of : t -> char list
(** Characters mentioned by the pattern (class ranges expanded), useful
    for choosing symbolic string domains. *)

val pp : Format.formatter -> t -> unit
