lib/symex/exec.ml: Array Char Eywa_minic Eywa_solver Format List Printf Sv Unix
