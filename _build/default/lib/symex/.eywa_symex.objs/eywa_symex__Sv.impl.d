lib/symex/sv.ml: Array Bytes Char Eywa_minic Eywa_solver Format Hashtbl List Printf String
