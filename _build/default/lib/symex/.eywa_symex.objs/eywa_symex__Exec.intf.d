lib/symex/exec.mli: Eywa_minic Eywa_solver Sv
