lib/symex/sv.mli: Eywa_minic Eywa_solver Format
