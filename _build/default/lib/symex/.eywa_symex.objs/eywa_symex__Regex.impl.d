lib/symex/regex.ml: Array Char Eywa_solver Format List Printf String
