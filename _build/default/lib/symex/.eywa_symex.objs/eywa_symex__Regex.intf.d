lib/symex/regex.mli: Eywa_solver Format
