(** Symbolic MiniC values: the shapes of {!Eywa_minic.Value} with
    constraint terms at the scalar leaves.

    Strings are buffers of char terms whose final cell is pinned to NUL,
    which bounds every string operation — mirroring how the paper's
    harness sizes Klee's symbolic buffers from the user's
    [eywa.String(maxsize=n)] hints. *)

module Term = Eywa_solver.Term

type t =
  | Sunit
  | Sscalar of Eywa_minic.Ast.ty * Term.t
  | Sstring of Term.t array  (** cell values; last cell is always 0 *)
  | Sstruct of string * (string * t) list
  | Sarray of t array

val of_value : Eywa_minic.Value.t -> t
(** Embed a concrete value (all leaves become constants). *)

val scalar_term : t -> Term.t
(** @raise Invalid_argument if the value is not a scalar. *)

val concrete_string : ?bound:int -> string -> t
(** Constant buffer with terminating NUL; [bound] pads the buffer. *)

val symbolic_string : ?name:string -> alphabet:int array -> int -> t
(** [symbolic_string ~alphabet n] is a buffer of [n] fresh char atoms
    plus the pinned NUL cell. [alphabet] is the char-code domain each
    atom may take (NUL must be included for shorter strings to exist). *)

val fresh_scalar : ?name:string -> Eywa_minic.Ast.ty -> domain:int array -> t

val concretize :
  ?rotate:int -> Eywa_solver.Solve.assignment -> t -> Eywa_minic.Value.t
(** Read the value back under a solver model; atoms the model leaves
    unassigned default to a domain element picked by [rotate]
    (0 = first element), so re-sampling with different rotations varies
    the unconstrained inputs. *)

val atoms : t -> Term.var list
(** All variables appearing in the value, in deterministic order. *)

val pp : Format.formatter -> t -> unit
