module Term = Eywa_solver.Term

type t =
  | Empty
  | Char of char
  | Class of (char * char) list
  | Any
  | Seq of t * t
  | Alt of t * t
  | Star of t

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ----- pattern parser ----- *)

type pstate = { src : string; mutable pos : int }

let peek ps = if ps.pos < String.length ps.src then Some ps.src.[ps.pos] else None

let advance ps =
  let c = ps.src.[ps.pos] in
  ps.pos <- ps.pos + 1;
  c

let parse_class ps =
  (* just past '['; no negation support *)
  let ranges = ref [] in
  let rec loop () =
    match peek ps with
    | None -> fail "unterminated character class"
    | Some ']' ->
        ignore (advance ps);
        List.rev !ranges
    | Some _ ->
        let c = advance ps in
        let c = if c = '\\' then advance ps else c in
        if peek ps = Some '-' && ps.pos + 1 < String.length ps.src
           && ps.src.[ps.pos + 1] <> ']' then begin
          ignore (advance ps);
          let hi = advance ps in
          if hi < c then fail "inverted range %c-%c" c hi;
          ranges := (c, hi) :: !ranges
        end
        else ranges := (c, c) :: !ranges;
        loop ()
  in
  match loop () with [] -> fail "empty character class" | rs -> Class rs

let rec parse_alt ps =
  let lhs = parse_seq ps in
  match peek ps with
  | Some '|' ->
      ignore (advance ps);
      Alt (lhs, parse_alt ps)
  | _ -> lhs

and parse_seq ps =
  let rec loop acc =
    match peek ps with
    | None | Some '|' | Some ')' -> acc
    | Some _ -> loop (Seq (acc, parse_postfix ps))
  in
  match peek ps with
  | None | Some '|' | Some ')' -> Empty
  | Some _ ->
      let first = parse_postfix ps in
      loop first

and parse_postfix ps =
  let atom = parse_atom ps in
  let rec loop r =
    match peek ps with
    | Some '*' -> ignore (advance ps); loop (Star r)
    | Some '+' -> ignore (advance ps); loop (Seq (r, Star r))
    | Some '?' -> ignore (advance ps); loop (Alt (r, Empty))
    | _ -> r
  in
  loop atom

and parse_atom ps =
  match advance ps with
  | '[' -> parse_class ps
  | '(' ->
      let r = parse_alt ps in
      (match peek ps with
      | Some ')' -> ignore (advance ps); r
      | _ -> fail "unterminated group")
  | '.' -> Any
  | '\\' ->
      if peek ps = None then fail "trailing backslash";
      Char (advance ps)
  | ('*' | '+' | '?' | ')' | ']' | '|') as c -> fail "misplaced %C" c
  | c -> Char c

let parse pattern =
  let ps = { src = pattern; pos = 0 } in
  let r = parse_alt ps in
  if ps.pos < String.length pattern then fail "trailing input at %d" ps.pos;
  r

(* ----- NFA (Thompson construction) ----- *)

type label = Lchar of char | Lclass of (char * char) list | Lany

type nfa = {
  states : int;
  start : int;
  accept : int;
  trans : (int * label * int) list;
  eps : (int * int) list;
}

let compile re =
  let next = ref 0 in
  let fresh () =
    let s = !next in
    incr next;
    s
  in
  let trans = ref [] and eps = ref [] in
  let edge a l b = trans := (a, l, b) :: !trans in
  let eedge a b = eps := (a, b) :: !eps in
  (* returns (in, out) state pair *)
  let rec go = function
    | Empty ->
        let a = fresh () and b = fresh () in
        eedge a b;
        (a, b)
    | Char c ->
        let a = fresh () and b = fresh () in
        edge a (Lchar c) b;
        (a, b)
    | Class rs ->
        let a = fresh () and b = fresh () in
        edge a (Lclass rs) b;
        (a, b)
    | Any ->
        let a = fresh () and b = fresh () in
        edge a Lany b;
        (a, b)
    | Seq (r1, r2) ->
        let a1, b1 = go r1 in
        let a2, b2 = go r2 in
        eedge b1 a2;
        (a1, b2)
    | Alt (r1, r2) ->
        let a = fresh () and b = fresh () in
        let a1, b1 = go r1 in
        let a2, b2 = go r2 in
        eedge a a1; eedge a a2; eedge b1 b; eedge b2 b;
        (a, b)
    | Star r ->
        let a = fresh () and b = fresh () in
        let ai, bi = go r in
        eedge a ai; eedge bi a; eedge a b;
        (a, b)
  in
  let start, accept = go re in
  { states = !next; start; accept; trans = List.rev !trans; eps = List.rev !eps }

(* Reflexive-transitive closure of epsilon edges, as a reachability
   matrix. State counts are tiny (Thompson is linear in the pattern). *)
let eps_closure_matrix nfa =
  let m = Array.make_matrix nfa.states nfa.states false in
  for i = 0 to nfa.states - 1 do m.(i).(i) <- true done;
  List.iter (fun (a, b) -> m.(a).(b) <- true) nfa.eps;
  (* Floyd-Warshall on booleans *)
  for k = 0 to nfa.states - 1 do
    for i = 0 to nfa.states - 1 do
      if m.(i).(k) then
        for j = 0 to nfa.states - 1 do
          if m.(k).(j) then m.(i).(j) <- true
        done
    done
  done;
  m

let label_matches lab c =
  match lab with
  | Lchar x -> c = x
  | Lclass rs -> List.exists (fun (lo, hi) -> lo <= c && c <= hi) rs
  | Lany -> c <> '\000'

let matches re s =
  let nfa = compile re in
  let closure = eps_closure_matrix nfa in
  let close set =
    let out = Array.make nfa.states false in
    Array.iteri (fun q v -> if v then
      for q' = 0 to nfa.states - 1 do
        if closure.(q).(q') then out.(q') <- true
      done) set;
    out
  in
  let cur = ref (close (Array.init nfa.states (fun q -> q = nfa.start))) in
  String.iter
    (fun c ->
      let next = Array.make nfa.states false in
      List.iter
        (fun (a, lab, b) -> if !cur.(a) && label_matches lab c then next.(b) <- true)
        nfa.trans;
      cur := close next)
    s;
  !cur.(nfa.accept)

let matches_pattern pat s = matches (parse pat) s

(* ----- symbolic compilation ----- *)

let label_term lab cell =
  match lab with
  | Lchar c -> Term.eq cell (Term.const (Char.code c))
  | Lclass rs ->
      List.fold_left
        (fun acc (lo, hi) ->
          Term.or_ acc
            (Term.and_
               (Term.le (Term.const (Char.code lo)) cell)
               (Term.le cell (Term.const (Char.code hi)))))
        Term.ff rs
  | Lany -> Term.neq cell (Term.const 0)

let compile_term re cells =
  let nfa = compile re in
  let closure = eps_closure_matrix nfa in
  let n = Array.length cells in
  (* reach.(q) = term: NFA is in q after consuming the prefix read so
     far, all of it non-NUL. *)
  let close raw =
    Array.init nfa.states (fun q' ->
        let sources = ref Term.ff in
        for q = 0 to nfa.states - 1 do
          if closure.(q).(q') then sources := Term.or_ !sources raw.(q)
        done;
        !sources)
  in
  let init = Array.init nfa.states (fun q -> if q = nfa.start then Term.tt else Term.ff) in
  let reach = ref (close init) in
  let result = ref Term.ff in
  for i = 0 to n - 1 do
    let cell = cells.(i) in
    (* the string may end here *)
    let ends_here = Term.eq cell (Term.const 0) in
    result := Term.or_ !result (Term.and_ (!reach).(nfa.accept) ends_here);
    if i < n - 1 then begin
      let not_nul = Term.neq cell (Term.const 0) in
      let raw =
        Array.init nfa.states (fun q' ->
            List.fold_left
              (fun acc (a, lab, b) ->
                if b = q' then
                  Term.or_ acc
                    (Term.and_ (!reach).(a) (Term.and_ not_nul (label_term lab cell)))
                else acc)
              Term.ff nfa.trans)
      in
      reach := close raw
    end
  done;
  !result

let alphabet_of re =
  let out = ref [] in
  let add c = if not (List.mem c !out) then out := c :: !out in
  let rec go = function
    | Empty | Any -> ()
    | Char c -> add c
    | Class rs -> List.iter (fun (lo, hi) ->
        for i = Char.code lo to Char.code hi do add (Char.chr i) done) rs
    | Seq (a, b) | Alt (a, b) -> go a; go b
    | Star a -> go a
  in
  go re;
  List.sort compare !out

let rec pp ppf = function
  | Empty -> Format.fprintf ppf "()"
  | Char c -> Format.fprintf ppf "%c" c
  | Class rs ->
      Format.fprintf ppf "[%s]"
        (String.concat ""
           (List.map
              (fun (lo, hi) ->
                if lo = hi then String.make 1 lo else Printf.sprintf "%c-%c" lo hi)
              rs))
  | Any -> Format.fprintf ppf "."
  | Seq (a, b) -> Format.fprintf ppf "%a%a" pp a pp b
  | Alt (a, b) -> Format.fprintf ppf "(%a|%a)" pp a pp b
  | Star a -> Format.fprintf ppf "(%a)*" pp a
