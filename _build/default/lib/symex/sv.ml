module Term = Eywa_solver.Term
module Solve = Eywa_solver.Solve
module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value

type t =
  | Sunit
  | Sscalar of Ast.ty * Term.t
  | Sstring of Term.t array
  | Sstruct of string * (string * t) list
  | Sarray of t array

let rec of_value = function
  | Value.Vunit -> Sunit
  | Value.Vbool b -> Sscalar (Ast.Tbool, Term.of_bool b)
  | Value.Vchar c -> Sscalar (Ast.Tchar, Term.const (Char.code c))
  | Value.Vint n -> Sscalar (Ast.Tint 32, Term.const n)
  | Value.Venum (e, i) -> Sscalar (Ast.Tenum e, Term.const i)
  | Value.Vstring raw ->
      Sstring (Array.init (String.length raw) (fun i -> Term.const (Char.code raw.[i])))
  | Value.Vstruct (n, fs) -> Sstruct (n, List.map (fun (f, v) -> (f, of_value v)) fs)
  | Value.Varray vs -> Sarray (Array.map of_value vs)

let scalar_term = function
  | Sscalar (_, t) -> t
  | Sunit | Sstring _ | Sstruct _ | Sarray _ ->
      invalid_arg "Sv.scalar_term: not a scalar"

let concrete_string ?(bound = 0) s =
  let size = max bound (String.length s) + 1 in
  Sstring
    (Array.init size (fun i ->
         if i < String.length s then Term.const (Char.code s.[i]) else Term.const 0))

let symbolic_string ?(name = "str") ~alphabet n =
  Sstring
    (Array.init (n + 1) (fun i ->
         if i = n then Term.const 0
         else
           Term.var
             (Term.fresh_var ~name:(Printf.sprintf "%s[%d]" name i) Term.Schar alphabet)))

let fresh_scalar ?(name = "x") ty ~domain =
  let sort =
    match ty with
    | Ast.Tbool -> Term.Sbool
    | Ast.Tchar -> Term.Schar
    | Ast.Tint w -> Term.Sint w
    | Ast.Tenum e -> Term.Senum (e, Array.length domain)
    | Ast.Tvoid | Ast.Tstring | Ast.Tstruct _ | Ast.Tarray _ ->
        invalid_arg "Sv.fresh_scalar: not a scalar type"
  in
  Sscalar (ty, Term.var (Term.fresh_var ~name sort domain))

(* Variables the solver never constrained default to a domain element;
   [rotate] picks which one, so re-sampling a path with different
   rotations diversifies the unconstrained inputs too. *)
let default_value ~rotate (v : Term.var) =
  let len = Array.length v.Term.domain in
  v.Term.domain.(Term.rotate_index ~rotate ~vid:v.Term.vid len)

let rec concretize ?(rotate = 0) model = function
  | Sunit -> Value.Vunit
  | Sscalar (ty, t) -> Value.of_int ty (eval_term ~rotate model t)
  | Sstring cells ->
      let buf = Bytes.create (Array.length cells) in
      Array.iteri
        (fun i t -> Bytes.set buf i (Char.chr (eval_term ~rotate model t land 0xff)))
        cells;
      Value.Vstring (Bytes.to_string buf)
  | Sstruct (n, fs) ->
      Value.Vstruct (n, List.map (fun (f, v) -> (f, concretize ~rotate model v)) fs)
  | Sarray vs -> Value.Varray (Array.map (concretize ~rotate model) vs)

and eval_term ~rotate model t =
  let vars = Term.vars t in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let value =
        match Hashtbl.find_opt model v.Term.vid with
        | Some x -> x
        | None -> default_value ~rotate v
      in
      Hashtbl.replace tbl v.Term.vid value)
    vars;
  Term.eval (fun vid -> Hashtbl.find tbl vid) t

let atoms v =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add t =
    List.iter
      (fun var ->
        if not (Hashtbl.mem seen var.Term.vid) then begin
          Hashtbl.add seen var.Term.vid ();
          out := var :: !out
        end)
      (Term.vars t)
  in
  let rec go = function
    | Sunit -> ()
    | Sscalar (_, t) -> add t
    | Sstring cells -> Array.iter add cells
    | Sstruct (_, fs) -> List.iter (fun (_, v) -> go v) fs
    | Sarray vs -> Array.iter go vs
  in
  go v;
  List.rev !out

let rec pp ppf = function
  | Sunit -> Format.fprintf ppf "()"
  | Sscalar (ty, t) -> Format.fprintf ppf "(%s)%a" (Ast.ty_to_string ty) Term.pp t
  | Sstring cells ->
      Format.fprintf ppf "str[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Term.pp)
        (Array.to_list cells)
  | Sstruct (n, fs) ->
      Format.fprintf ppf "%s{%a}" n
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           (fun ppf (f, v) -> Format.fprintf ppf "%s=%a" f pp v))
        fs
  | Sarray vs ->
      Format.fprintf ppf "[|%a|]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
        (Array.to_list vs)
