(** DNS domain names as label sequences.

    A name is a list of labels, leftmost (deepest) first, always
    understood as fully qualified; the root is the empty list.
    ["a.b.test."] is [["a"; "b"; "test"]]. *)

type t = string list

val root : t

val of_string : string -> t
(** Parse dotted notation; a trailing dot is optional, empty labels are
    dropped. ["a..b."] becomes [["a"; "b"]]. *)

val to_string : t -> string
(** Dotted, with trailing dot; root is ["."]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val label_count : t -> int

val parent : t -> t option
(** Drop the leftmost label; [None] for the root. *)

val is_suffix : suffix:t -> t -> bool
(** [is_suffix ~suffix n]: [n] ends with the labels of [suffix]
    (equality counts). *)

val is_proper_suffix : suffix:t -> t -> bool

val strip_suffix : suffix:t -> t -> t option
(** Labels of [n] before [suffix]; [None] if not a suffix. *)

val append : t -> t -> t
(** [append prefix suffix]. *)

val is_wildcard : t -> bool
(** Leftmost label is ["*"]. *)

val wildcard_base : t -> t option
(** For ["*.rest"], the ["rest"]; [None] if not a wildcard. *)

val wildcard_matches : wildcard:t -> t -> bool
(** RFC 4592-style: ["*.base"] matches any name strictly below [base]
    (one or more extra labels); the name itself must not equal the
    wildcard owner. A bare ["*"] matches any non-root name. *)

val substitute_suffix : old_suffix:t -> new_suffix:t -> t -> t option
(** DNAME rewriting: replace [old_suffix] by [new_suffix].
    [None] when [old_suffix] does not apply (not a proper suffix). *)

val pp : Format.formatter -> t -> unit
