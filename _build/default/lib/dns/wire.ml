type header = {
  id : int;
  qr : bool;
  opcode : int;
  aa : bool;
  tc : bool;
  rd : bool;
  ra : bool;
  rcode : int;
}

type message = {
  header : header;
  question : Message.query list;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}

let rcode_to_int = function
  | Message.NOERROR -> 0
  | Message.NXDOMAIN -> 3
  | Message.SERVFAIL -> 2
  | Message.REFUSED -> 5

let rcode_of_int = function
  | 0 -> Message.NOERROR
  | 3 -> Message.NXDOMAIN
  | 5 -> Message.REFUSED
  | _ -> Message.SERVFAIL

let rtype_to_int = function
  | Rr.A -> 1
  | Rr.NS -> 2
  | Rr.CNAME -> 5
  | Rr.SOA -> 6
  | Rr.TXT -> 16
  | Rr.AAAA -> 28
  | Rr.DNAME -> 39

let rtype_of_int = function
  | 1 -> Some Rr.A
  | 2 -> Some Rr.NS
  | 5 -> Some Rr.CNAME
  | 6 -> Some Rr.SOA
  | 16 -> Some Rr.TXT
  | 28 -> Some Rr.AAAA
  | 39 -> Some Rr.DNAME
  | _ -> None

let of_response ~id query (r : Message.response) =
  {
    header =
      { id; qr = true; opcode = 0; aa = r.aa; tc = false; rd = false; ra = false;
        rcode = rcode_to_int r.rcode };
    question = [ query ];
    answer = r.answer;
    authority = r.authority;
    additional = r.additional;
  }

let to_response m =
  {
    Message.rcode = rcode_of_int m.header.rcode;
    aa = m.header.aa;
    answer = m.answer;
    authority = m.authority;
    additional = m.additional;
  }

(* ----- encoding ----- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf (v land 0xffff)

let put_name buf name =
  List.iter
    (fun label ->
      let len = String.length label in
      if len = 0 || len > 63 then
        invalid_arg (Printf.sprintf "Wire.encode: label %S outside 1..63 bytes" label);
      put_u8 buf len;
      Buffer.add_string buf label)
    name;
  put_u8 buf 0

(* IPv4 dotted quad when well formed; otherwise a stable hash of the
   string so that opaque test addresses still round-trip as 4 bytes. *)
let address_bytes addr =
  match String.split_on_char '.' addr |> List.map int_of_string_opt with
  | [ Some a; Some b; Some c; Some d ]
    when a land 0xff = a && b land 0xff = b && c land 0xff = c && d land 0xff = d ->
    [ a; b; c; d ]
  | _ ->
      let h = Hashtbl.hash addr in
      [ (h lsr 24) land 0xff; (h lsr 16) land 0xff; (h lsr 8) land 0xff; h land 0xff ]

let put_rdata buf (r : Rr.t) =
  let start = Buffer.length buf in
  put_u16 buf 0;
  (* placeholder *)
  (match r.rdata with
  | Rr.Target n -> put_name buf n
  | Rr.Address a ->
      let bytes = address_bytes a in
      let bytes =
        if r.rtype = Rr.AAAA then bytes @ List.init 12 (fun _ -> 0) else bytes
      in
      List.iter (put_u8 buf) bytes
  | Rr.Text s ->
      if String.length s > 255 then invalid_arg "Wire.encode: TXT over 255 bytes";
      put_u8 buf (String.length s);
      Buffer.add_string buf s
  | Rr.Soa_data ->
      put_name buf (Name.of_string "ns1.test.");
      put_name buf (Name.of_string "admin.test.");
      List.iter (put_u32 buf) [ 1; 3600; 600; 86400; 3600 ]);
  (* patch the length *)
  let rdlen = Buffer.length buf - start - 2 in
  let bytes = Buffer.to_bytes buf in
  Bytes.set bytes start (Char.chr ((rdlen lsr 8) land 0xff));
  Bytes.set bytes (start + 1) (Char.chr (rdlen land 0xff));
  Buffer.clear buf;
  Buffer.add_bytes buf bytes

let put_question buf (q : Message.query) =
  put_name buf q.qname;
  put_u16 buf (rtype_to_int q.qtype);
  put_u16 buf 1 (* class IN *)

let put_rr buf (r : Rr.t) =
  put_name buf r.owner;
  put_u16 buf (rtype_to_int r.rtype);
  put_u16 buf 1;
  put_u32 buf 300 (* ttl *);
  put_rdata buf r

let check_count n =
  if n > 0xffff then invalid_arg "Wire.encode: section count over 16 bits"

let encode m =
  let buf = Buffer.create 128 in
  put_u16 buf (m.header.id land 0xffff);
  let flags =
    ((if m.header.qr then 1 else 0) lsl 15)
    lor ((m.header.opcode land 0xf) lsl 11)
    lor ((if m.header.aa then 1 else 0) lsl 10)
    lor ((if m.header.tc then 1 else 0) lsl 9)
    lor ((if m.header.rd then 1 else 0) lsl 8)
    lor ((if m.header.ra then 1 else 0) lsl 7)
    lor (m.header.rcode land 0xf)
  in
  put_u16 buf flags;
  check_count (List.length m.question);
  check_count (List.length m.answer);
  check_count (List.length m.authority);
  check_count (List.length m.additional);
  put_u16 buf (List.length m.question);
  put_u16 buf (List.length m.answer);
  put_u16 buf (List.length m.authority);
  put_u16 buf (List.length m.additional);
  List.iter (put_question buf) m.question;
  List.iter (put_rr buf) m.answer;
  List.iter (put_rr buf) m.authority;
  List.iter (put_rr buf) m.additional;
  Buffer.contents buf

(* ----- decoding ----- *)

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type cursor = { data : string; mutable pos : int }

let u8 c =
  if c.pos >= String.length c.data then fail "truncated at %d" c.pos;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  let lo = u8 c in
  (hi lsl 8) lor lo

let u32 c =
  let hi = u16 c in
  let lo = u16 c in
  (hi lsl 16) lor lo

let take c n =
  if c.pos + n > String.length c.data then fail "truncated rdata at %d" c.pos;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* names, with compression-pointer following and a hop guard *)
let name c =
  let rec go pos hops acc =
    if hops > 32 then fail "compression pointer loop";
    if pos >= String.length c.data then fail "truncated name";
    let len = Char.code c.data.[pos] in
    if len = 0 then (List.rev acc, pos + 1)
    else if len land 0xc0 = 0xc0 then begin
      if pos + 1 >= String.length c.data then fail "truncated pointer";
      let target = ((len land 0x3f) lsl 8) lor Char.code c.data.[pos + 1] in
      let labels, _ = go target (hops + 1) acc in
      (labels, pos + 2)
    end
    else begin
      if pos + 1 + len > String.length c.data then fail "truncated label";
      let label = String.sub c.data (pos + 1) len in
      go (pos + 1 + len) hops (label :: acc)
    end
  in
  let labels, next = go c.pos 0 [] in
  c.pos <- next;
  labels

let question c =
  let qname = name c in
  let t = u16 c in
  let _class = u16 c in
  match rtype_of_int t with
  | Some qtype -> { Message.qname; qtype }
  | None -> fail "unknown qtype %d" t

let rr c =
  let owner = name c in
  let t = u16 c in
  let _class = u16 c in
  let _ttl = u32 c in
  let rdlen = u16 c in
  let stop = c.pos + rdlen in
  match rtype_of_int t with
  | None -> fail "unknown rtype %d" t
  | Some rtype ->
      let rdata =
        match rtype with
        | Rr.NS | Rr.CNAME | Rr.DNAME -> Rr.Target (name c)
        | Rr.A | Rr.AAAA ->
            let bytes = take c rdlen in
            if String.length bytes < 4 then fail "short address";
            Rr.Address
              (Printf.sprintf "%d.%d.%d.%d" (Char.code bytes.[0])
                 (Char.code bytes.[1]) (Char.code bytes.[2]) (Char.code bytes.[3]))
        | Rr.TXT ->
            let len = u8 c in
            Rr.Text (take c len)
        | Rr.SOA ->
            let _mname = name c in
            let _rname = name c in
            let _ = u32 c and _ = u32 c and _ = u32 c and _ = u32 c and _ = u32 c in
            Rr.Soa_data
      in
      if c.pos <> stop then c.pos <- stop;
      Rr.v owner rtype rdata

let decode data =
  let c = { data; pos = 0 } in
  match
    let id = u16 c in
    let flags = u16 c in
    let qd = u16 c and an = u16 c and ns = u16 c and ar = u16 c in
    let header =
      {
        id;
        qr = flags land 0x8000 <> 0;
        opcode = (flags lsr 11) land 0xf;
        aa = flags land 0x0400 <> 0;
        tc = flags land 0x0200 <> 0;
        rd = flags land 0x0100 <> 0;
        ra = flags land 0x0080 <> 0;
        rcode = flags land 0xf;
      }
    in
    let question = List.init qd (fun _ -> question c) in
    let answer = List.init an (fun _ -> rr c) in
    let authority = List.init ns (fun _ -> rr c) in
    let additional = List.init ar (fun _ -> rr c) in
    { header; question; answer; authority; additional }
  with
  | m -> Ok m
  | exception Malformed msg -> Error msg
