(** Zone file rendering, parsing, and the test post-processing step of
    §2.3: turning raw Eywa test inputs into valid zones (adding the
    SOA and NS records a real server requires, and re-rooting the
    model's short names under a common suffix). *)

val print : Zone.t -> string
(** Textual master-file-style rendering (one record per line, with a
    [$ORIGIN] header). *)

val parse : string -> (Zone.t, string) result
(** Parse the output of {!print} (requires the [$ORIGIN] header). *)

val default_suffix : Name.t
(** [test.] *)

type test_record = { rname : string; rtype : Rr.rtype; rdata : string }
(** A record as it appears in an Eywa test: short relative names. *)

val build_zone :
  ?suffix:Name.t -> ?extra_delegation:bool -> test_record list -> Zone.t
(** Re-root each record under [suffix], convert name-typed rdata the
    same way, and add the apex SOA and NS (with an out-of-zone
    nameserver target, as in §2.3). [extra_delegation] additionally
    installs a child zone cut with in-zone glue — the setup that
    exercises sibling-glue behaviour. *)

val build_query : ?suffix:Name.t -> string -> Rr.rtype -> Message.query
(** Re-root a test query name the same way. *)
