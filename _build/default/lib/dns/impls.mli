(** The ten nameserver implementations of Table 1, as the reference
    {!Lookup} engine plus each implementation's documented bug
    behaviours (Table 3) behind quirk flags.

    [Old] is the pre-bug-fix version the paper also tests (for the
    seven implementations SCALE had covered, where known bugs were
    since fixed); [Current] keeps only the bugs that were still present
    — i.e. the ones Eywa found that were new. *)

type version = Old | Current

type bug = {
  quirk : Lookup.quirk;
  description : string;  (** Table 3 wording *)
  bug_type : string;  (** "Wrong Answer", "Server Crash", ... *)
  new_bug : bool;  (** not found by prior work (SCALE) *)
}

type t = {
  name : string;
  tested_by_scale : bool;
  bugs : bug list;
}

val all : t list
(** bind, coredns, gdnsd, nsd, hickory, knot, powerdns, technitium,
    yadifa, twisted. *)

val find : string -> t option

val quirks : t -> version -> Lookup.quirk list
(** [Old] enables every bug; [Current] only the new (unfixed) ones for
    SCALE-tested implementations, everything for the rest. *)

val serve : t -> version -> Zone.t -> Message.query -> Message.outcome
(** Answer one query, with this implementation's quirks applied. *)

val bug_catalog : (string * bug) list
(** Flattened (implementation, bug) rows of Table 3. *)
