type version = Old | Current

type bug = {
  quirk : Lookup.quirk;
  description : string;
  bug_type : string;
  new_bug : bool;
}

type t = { name : string; tested_by_scale : bool; bugs : bug list }

let bug quirk description bug_type new_bug = { quirk; description; bug_type; new_bug }

let all =
  [
    {
      name = "bind";
      tested_by_scale = true;
      bugs =
        [
          bug Lookup.Sibling_glue_missing "Sibling glue record not returned."
            "Wrong Additional" false;
          bug Lookup.Inconsistent_loop_unroll "Inconsistent loop unrolling."
            "Wrong Answer" true;
        ];
    };
    {
      name = "coredns";
      tested_by_scale = true;
      bugs =
        [
          bug Lookup.Wildcard_loop_crash "Wildcard CNAME and DNAME loop."
            "Server Crash" false;
          bug Lookup.Sibling_glue_missing "Sibling glue record not returned."
            "Wrong Additional" false;
          bug Lookup.Servfail_with_answer "Returns SERVFAIL yet gives an answer."
            "Wrong Answer" true;
          bug Lookup.Missing_cname_loop_record "Missing record for CNAME loop."
            "Wrong Answer" true;
          bug Lookup.Out_of_zone_record_returned
            "Returns a non-existent out-of-zone record." "Wrong Answer" true;
          bug Lookup.Wrong_rcode_star_rdata "Wrong RCODE when '*' is in RDATA."
            "Wrong Return Code" false;
          bug Lookup.Wrong_rcode_ent_wildcard
            "Wrong RCODE for empty non-terminal wildcard." "Wrong Return Code" true;
        ];
    };
    {
      name = "gdnsd";
      tested_by_scale = false;
      bugs =
        [
          bug Lookup.Sibling_glue_missing "Sibling glue record not returned."
            "Wrong Additional" false;
        ];
    };
    {
      name = "nsd";
      tested_by_scale = true;
      bugs =
        [
          bug Lookup.Dname_not_recursive "DNAME not applied recursively."
            "Wrong Answer" false;
          bug Lookup.Wrong_rcode_star_rdata "Wrong RCODE when '*' is in RDATA."
            "Wrong Return Code" false;
        ];
    };
    {
      name = "hickory";
      tested_by_scale = true;
      bugs =
        [
          bug Lookup.Wildcard_loop_crash "Wildcard CNAME and DNAME loop."
            "Server Crash" false;
          bug Lookup.Out_of_zone_mishandled
            "Incorrect handling of out-of-zone record." "Wrong Answer" true;
          bug Lookup.Wildcard_one_label "Wildcard match only one label."
            "Wrong Answer" false;
          bug Lookup.Wrong_rcode_ent_wildcard
            "Wrong RCODE for empty non-terminal wildcard." "Wrong Return Code" true;
          bug Lookup.Wrong_rcode_star_rdata "Wrong RCODE when '*' is in RDATA."
            "Wrong Return Code" true;
          bug Lookup.Glue_aa_flag "Glue records returned with authoritative flag."
            "Wrong Flags" false;
          bug Lookup.Aa_zone_cut_ns
            "Authoritative flag set for zone cut NS records." "Wrong Flags" false;
        ];
    };
    {
      name = "knot";
      tested_by_scale = true;
      bugs =
        [
          bug Lookup.Dname_name_replaced_by_query
            "DNAME record name replaced by query." "Wrong Answer" true;
          bug Lookup.Wildcard_dname_wrong "Wildcard DNAME leads to wrong answer."
            "Wrong Answer" true;
          bug Lookup.Dname_not_recursive "DNAME not applied recursively."
            "Wrong Answer" false;
          bug Lookup.Star_query_synthesis
            "Incorrect record synthesis when '*' is in query." "Wrong Answer" false;
        ];
    };
    {
      name = "powerdns";
      tested_by_scale = true;
      bugs =
        [
          bug Lookup.Sibling_glue_missing_wildcard
            "Sibling glue record not returned due to wildcard." "Wrong Additional"
            true;
        ];
    };
    {
      name = "technitium";
      tested_by_scale = false;
      bugs =
        [
          bug Lookup.Sibling_glue_missing "Sibling glue record not returned."
            "Wrong Additional" false;
          bug Lookup.Synth_wildcard_not_dname
            "Synthesized wildcard instead of applying DNAME." "Wrong Answer" true;
          bug Lookup.Invalid_wildcard_match "Invalid wildcard match." "Wrong Answer"
            false;
          bug Lookup.Nested_wildcards_broken
            "Nested wildcards not handled correctly." "Wrong Answer" true;
          bug Lookup.Duplicate_answer_records "Duplicate records in answer section."
            "Wrong Answer" false;
          bug Lookup.Wrong_rcode_ent_wildcard
            "Wrong RCODE for empty nonterminal wildcard." "Wrong Return Code" false;
        ];
    };
    {
      name = "yadifa";
      tested_by_scale = true;
      bugs =
        [
          bug Lookup.Cname_chain_not_followed "CNAME chains are not followed."
            "Wrong Answer" false;
          bug Lookup.Missing_cname_loop_record "Missing record for CNAME loop."
            "Wrong Answer" false;
          bug Lookup.Wrong_rcode_cname_target "Wrong RCODE for CNAME target."
            "Wrong Return Code" false;
        ];
    };
    {
      name = "twisted";
      tested_by_scale = false;
      bugs =
        [
          bug Lookup.Empty_answer_wildcard
            "Empty answer section with wildcard records." "Wrong Answer" false;
          bug Lookup.Missing_aa_flag
            "Missing authority flag and empty authority section." "Wrong Flags" false;
          bug Lookup.Wrong_rcode_ent_wildcard
            "Wrong RCODE for empty nonterminal wildcard." "Wrong Return Code" false;
          bug Lookup.Wrong_rcode_star_rdata "Wrong RCODE when '*' is in RDATA."
            "Wrong Return Code" false;
        ];
    };
  ]

let find name = List.find_opt (fun impl -> impl.name = name) all

let quirks impl version =
  match version with
  | Old -> List.map (fun b -> b.quirk) impl.bugs
  | Current ->
      if impl.tested_by_scale then
        (* previously known bugs were fixed upstream *)
        List.filter_map (fun b -> if b.new_bug then Some b.quirk else None) impl.bugs
      else List.map (fun b -> b.quirk) impl.bugs

let serve impl version zone q = Lookup.lookup ~quirks:(quirks impl version) zone q

let bug_catalog =
  List.concat_map (fun impl -> List.map (fun b -> (impl.name, b)) impl.bugs) all
