(** Authoritative zones. *)

type t = { origin : Name.t; records : Rr.t list }

val v : Name.t -> Rr.t list -> t

val records_at : t -> Name.t -> Rr.t list
(** Records whose owner equals the name exactly. *)

val node_exists : t -> Name.t -> bool
(** The name owns records, or is an empty non-terminal (a proper
    ancestor of some owner within the zone). *)

val in_zone : t -> Name.t -> bool
(** The name is at or below the origin. *)

val delegation_of : t -> Name.t -> (Name.t * Rr.t list) option
(** The closest zone cut strictly between origin and the name: an owner
    [< name], below origin, with NS records, that is an ancestor of (or
    equal to) the name and is not the origin. Returns the cut owner and
    its NS records. *)

val glue_for : t -> Name.t list -> Rr.t list
(** A/AAAA records in the zone for the given nameserver targets,
    including "sibling glue" (glue living beside, not below, the
    cut). *)

val wildcards_matching : t -> Name.t -> Rr.t list
(** Wildcard-owned records matching the name (RFC 4592 semantics),
    deepest wildcard first. *)

val validate : t -> (unit, string) result
(** Paper-style validity: a SOA at the apex, at least one NS at the
    apex, every record in-zone, no duplicate records. *)

val pp : Format.formatter -> t -> unit
