(** Authoritative DNS lookup.

    [lookup] with no quirks is the reference engine: RFC 1034 lookup
    with zone cuts and glue, RFC 4592 wildcards (deepest wildcard,
    whole-label matching), RFC 6672 DNAME rewriting with CNAME
    synthesis, chain following with loop detection, and correct
    NOERROR/NXDOMAIN/empty-non-terminal distinctions.

    Each {!quirk} injects one deviation observed in a real
    implementation (Table 3); the named implementations in {!Impls} are
    the reference engine plus their quirk sets. This mirrors how the
    paper's differential testing surface actually behaves without
    shipping ten third-party nameservers. *)

type quirk =
  | Sibling_glue_missing  (** glue records omitted from referrals *)
  | Sibling_glue_missing_wildcard  (** glue omitted when the zone has a wildcard *)
  | Wildcard_loop_crash  (** crash on wildcard CNAME/DNAME self-loops *)
  | Servfail_with_answer  (** SERVFAIL on loops but with a non-empty answer *)
  | Missing_cname_loop_record  (** drops the closing record of a CNAME loop *)
  | Out_of_zone_record_returned  (** fabricates a record for an out-of-zone target *)
  | Out_of_zone_mishandled  (** NXDOMAIN when a chain leaves the zone *)
  | Wrong_rcode_star_rdata  (** NXDOMAIN when an answer's rdata contains '*' *)
  | Wrong_rcode_ent_wildcard  (** NXDOMAIN for empty non-terminals owning wildcards *)
  | Dname_name_replaced_by_query  (** returned DNAME owner rewritten to the query *)
  | Wildcard_dname_wrong  (** wildcard-owned DNAME answered as a plain wildcard *)
  | Dname_not_recursive  (** only the first DNAME of a chain applied *)
  | Wildcard_one_label  (** wildcards match exactly one extra label *)
  | Glue_aa_flag  (** glue records promoted into the answer section *)
  | Aa_zone_cut_ns  (** aa set on referrals *)
  | Invalid_wildcard_match  (** wildcard also matches its own base name *)
  | Nested_wildcards_broken  (** shallowest wildcard chosen instead of deepest *)
  | Duplicate_answer_records  (** answer records duplicated *)
  | Synth_wildcard_not_dname  (** wildcard preferred over an applicable DNAME *)
  | Cname_chain_not_followed  (** chains truncated after the first CNAME *)
  | Wrong_rcode_cname_target  (** NOERROR when a chain target does not exist *)
  | Empty_answer_wildcard  (** wildcard matches yield an empty answer section *)
  | Missing_aa_flag  (** aa never set, authority section dropped *)
  | Inconsistent_loop_unroll  (** chains truncated after two hops *)
  | Star_query_synthesis  (** synthesis keeps the wildcard owner when '*' is in the query *)

val quirk_to_string : quirk -> string
val all_quirks : quirk list

val lookup : ?quirks:quirk list -> Zone.t -> Message.query -> Message.outcome
