(** A UDP nameserver speaking the {!Wire} format.

    The paper runs each implementation in a Docker container and
    queries it with dnspython over the network; this module provides
    the same deployment surface for the in-process implementations: a
    loopback UDP server wrapping any lookup function, plus a blocking
    client. Differential testing itself stays in-process for speed, but
    the socket path is exercised end to end by the test suite. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  (Message.query -> Message.outcome) ->
  (t, string) result
(** Bind (default 127.0.0.1, port 0 = ephemeral) and serve in a
    background thread. A [Crash] outcome answers SERVFAIL — observable,
    like a supervisor restarting the dead server. *)

val port : t -> int

val stop : t -> unit
(** Idempotent; joins the service thread. *)

val query :
  ?host:string ->
  ?timeout:float ->
  port:int ->
  Message.query ->
  (Message.response, string) result
(** One blocking wire query (default timeout 2 s). *)
