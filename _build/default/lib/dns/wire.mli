(** DNS wire format (RFC 1035 §4): encoding and decoding of messages.

    This is the layer a real deployment of the test harness speaks to
    nameservers over UDP sockets; the reproduction's differential
    testing drives the in-process implementations directly, but the
    codec is exercised by round-trip tests and lets the harness
    serialise its queries and parse real responses unchanged.

    Supported: the 12-byte header, QD/AN/NS/AR sections, uncompressed
    and compressed (pointer) names on decode, A/AAAA/NS/TXT/CNAME/
    DNAME/SOA RDATA. Encoding never emits compression pointers (legal,
    if larger). *)

type header = {
  id : int;  (** 16-bit query identifier *)
  qr : bool;  (** response flag *)
  opcode : int;
  aa : bool;
  tc : bool;
  rd : bool;
  ra : bool;
  rcode : int;
}

type message = {
  header : header;
  question : Message.query list;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}

val of_response : id:int -> Message.query -> Message.response -> message
(** Wrap a lookup response as a wire message. *)

val to_response : message -> Message.response
(** Project the sections back; unknown rcodes map to SERVFAIL. *)

val encode : message -> string
(** Serialise to wire bytes. @raise Invalid_argument on labels over 63
    bytes or counts over 16 bits. *)

val decode : string -> (message, string) result
(** Parse wire bytes, following compression pointers (with a loop
    guard). *)

val rcode_to_int : Message.rcode -> int
val rcode_of_int : int -> Message.rcode
