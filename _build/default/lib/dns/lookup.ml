type quirk =
  | Sibling_glue_missing
  | Sibling_glue_missing_wildcard
  | Wildcard_loop_crash
  | Servfail_with_answer
  | Missing_cname_loop_record
  | Out_of_zone_record_returned
  | Out_of_zone_mishandled
  | Wrong_rcode_star_rdata
  | Wrong_rcode_ent_wildcard
  | Dname_name_replaced_by_query
  | Wildcard_dname_wrong
  | Dname_not_recursive
  | Wildcard_one_label
  | Glue_aa_flag
  | Aa_zone_cut_ns
  | Invalid_wildcard_match
  | Nested_wildcards_broken
  | Duplicate_answer_records
  | Synth_wildcard_not_dname
  | Cname_chain_not_followed
  | Wrong_rcode_cname_target
  | Empty_answer_wildcard
  | Missing_aa_flag
  | Inconsistent_loop_unroll
  | Star_query_synthesis

let quirk_to_string = function
  | Sibling_glue_missing -> "sibling-glue-missing"
  | Sibling_glue_missing_wildcard -> "sibling-glue-missing-wildcard"
  | Wildcard_loop_crash -> "wildcard-loop-crash"
  | Servfail_with_answer -> "servfail-with-answer"
  | Missing_cname_loop_record -> "missing-cname-loop-record"
  | Out_of_zone_record_returned -> "out-of-zone-record-returned"
  | Out_of_zone_mishandled -> "out-of-zone-mishandled"
  | Wrong_rcode_star_rdata -> "wrong-rcode-star-rdata"
  | Wrong_rcode_ent_wildcard -> "wrong-rcode-ent-wildcard"
  | Dname_name_replaced_by_query -> "dname-name-replaced-by-query"
  | Wildcard_dname_wrong -> "wildcard-dname-wrong"
  | Dname_not_recursive -> "dname-not-recursive"
  | Wildcard_one_label -> "wildcard-one-label"
  | Glue_aa_flag -> "glue-aa-flag"
  | Aa_zone_cut_ns -> "aa-zone-cut-ns"
  | Invalid_wildcard_match -> "invalid-wildcard-match"
  | Nested_wildcards_broken -> "nested-wildcards-broken"
  | Duplicate_answer_records -> "duplicate-answer-records"
  | Synth_wildcard_not_dname -> "synth-wildcard-not-dname"
  | Cname_chain_not_followed -> "cname-chain-not-followed"
  | Wrong_rcode_cname_target -> "wrong-rcode-cname-target"
  | Empty_answer_wildcard -> "empty-answer-wildcard"
  | Missing_aa_flag -> "missing-aa-flag"
  | Inconsistent_loop_unroll -> "inconsistent-loop-unroll"
  | Star_query_synthesis -> "star-query-synthesis"

let all_quirks =
  [
    Sibling_glue_missing; Sibling_glue_missing_wildcard; Wildcard_loop_crash;
    Servfail_with_answer; Missing_cname_loop_record; Out_of_zone_record_returned;
    Out_of_zone_mishandled; Wrong_rcode_star_rdata; Wrong_rcode_ent_wildcard;
    Dname_name_replaced_by_query; Wildcard_dname_wrong; Dname_not_recursive;
    Wildcard_one_label; Glue_aa_flag; Aa_zone_cut_ns; Invalid_wildcard_match;
    Nested_wildcards_broken; Duplicate_answer_records; Synth_wildcard_not_dname;
    Cname_chain_not_followed; Wrong_rcode_cname_target; Empty_answer_wildcard;
    Missing_aa_flag; Inconsistent_loop_unroll; Star_query_synthesis;
  ]

exception Crashed of string

let name_has_star n = List.exists (fun l -> String.contains l '*') n

let rdata_has_star (r : Rr.t) =
  match r.rdata with
  | Rr.Target n -> name_has_star n
  | Rr.Address s | Rr.Text s -> String.contains s '*'
  | Rr.Soa_data -> false

let remove_last xs =
  match List.rev xs with [] -> [] | _ :: rev_rest -> List.rev rev_rest

let lookup ?(quirks = []) zone (q : Message.query) =
  let has qk = List.mem qk quirks in
  let max_chain = if has Inconsistent_loop_unroll then 2 else 8 in
  let soa_rrs =
    List.filter (fun (r : Rr.t) -> r.rtype = Rr.SOA) (Zone.records_at zone zone.origin)
  in
  let zone_has_wildcard =
    List.exists (fun (r : Rr.t) -> Name.is_wildcard r.owner) zone.Zone.records
  in
  let respond ?(aa = true) ?(answer = []) ?(authority = []) ?(additional = []) rcode
      =
    { Message.rcode; aa; answer; authority; additional }
  in
  let positive answer = respond Message.NOERROR ~answer in
  let nodata answer = respond Message.NOERROR ~answer ~authority:soa_rrs in
  let nxdomain answer =
    let rcode =
      if answer <> [] && has Wrong_rcode_cname_target then Message.NOERROR
      else Message.NXDOMAIN
    in
    respond rcode ~answer ~authority:soa_rrs
  in
  let referral cut ns_rrs answer =
    let glue =
      if has Sibling_glue_missing then []
      else if has Sibling_glue_missing_wildcard && zone_has_wildcard then []
      else
        Zone.glue_for zone (List.filter_map Rr.target ns_rrs)
    in
    let aa = has Aa_zone_cut_ns in
    ignore cut;
    if has Glue_aa_flag && glue <> [] then
      (* glue promoted to authoritative data: it lands in the answer
         section rather than additional *)
      respond Message.NOERROR ~aa ~answer:(answer @ glue) ~authority:ns_rrs
    else respond Message.NOERROR ~aa ~answer ~authority:ns_rrs ~additional:glue
  in
  (* Chain resolution. [acc] carries records already placed in the
     answer section; [visited] the owner names already expanded. *)
  let rec resolve qname qtype acc visited depth : Message.response =
    if not (Zone.in_zone zone qname) then out_of_zone qname acc
    else if List.exists (Name.equal qname) visited then loop_detected acc
    else if depth > max_chain then positive acc
    else begin
      match Zone.delegation_of zone qname with
      | Some (cut, ns_rrs) -> referral cut ns_rrs acc
      | None ->
          let at = Zone.records_at zone qname in
          if at <> [] then exact_match qname qtype at acc visited depth
          else try_dname qname qtype acc visited depth
    end
  and out_of_zone qname acc =
    if has Out_of_zone_record_returned then
      positive (acc @ [ Rr.v qname Rr.A (Rr.Address "10.0.0.99") ])
    else if has Out_of_zone_mishandled then
      respond Message.NXDOMAIN ~answer:acc ~authority:soa_rrs
    else positive acc
  and loop_detected acc =
    (* the two loop quirks compose: an implementation can both drop the
       closing record and mislabel the response code *)
    let answer = if has Missing_cname_loop_record then remove_last acc else acc in
    if has Servfail_with_answer then respond Message.SERVFAIL ~answer
    else positive answer
  and exact_match qname qtype at acc visited depth =
    let cnames = List.filter (fun (r : Rr.t) -> r.rtype = Rr.CNAME) at in
    if qtype <> Rr.CNAME && cnames <> [] then begin
      let rr = List.hd cnames in
      let acc = acc @ [ rr ] in
      if has Cname_chain_not_followed then positive acc
      else
        match Rr.target rr with
        | None -> positive acc
        | Some target -> resolve target qtype acc (qname :: visited) (depth + 1)
    end
    else begin
      let matches = List.filter (fun (r : Rr.t) -> r.rtype = qtype) at in
      if matches <> [] then positive (acc @ matches) else nodata acc
    end
  and try_dname qname qtype acc visited depth =
    let dnames =
      List.filter
        (fun (r : Rr.t) ->
          r.rtype = Rr.DNAME && Name.is_proper_suffix ~suffix:r.owner qname)
        zone.Zone.records
    in
    let deepest =
      List.fold_left
        (fun best (r : Rr.t) ->
          match best with
          | None -> Some r
          | Some (b : Rr.t) ->
              if Name.label_count r.owner > Name.label_count b.owner then Some r
              else best)
        None dnames
    in
    let wildcard_available = Zone.wildcards_matching zone qname <> [] in
    match deepest with
    | Some rr when not (has Synth_wildcard_not_dname && wildcard_available) -> (
        match Rr.target rr with
        | None -> nodata acc
        | Some dname_target -> (
            match
              Name.substitute_suffix ~old_suffix:rr.owner ~new_suffix:dname_target
                qname
            with
            | None -> nodata acc
            | Some new_name ->
                let shown =
                  if has Dname_name_replaced_by_query then { rr with Rr.owner = qname }
                  else rr
                in
                let synth = Rr.v qname Rr.CNAME (Rr.Target new_name) in
                let acc = acc @ [ shown; synth ] in
                if qtype = Rr.CNAME then positive acc
                else if has Dname_not_recursive && depth > 0 then positive acc
                else resolve new_name qtype acc (qname :: visited) (depth + 1)))
    | Some _ | None -> try_wildcard qname qtype acc visited depth
  and try_wildcard qname qtype acc visited depth =
    let matching = Zone.wildcards_matching zone qname in
    let matching =
      if has Wildcard_one_label then
        List.filter
          (fun (r : Rr.t) ->
            match Name.wildcard_base r.owner with
            | Some base -> Name.label_count qname = Name.label_count base + 1
            | None -> false)
          matching
      else matching
    in
    let matching =
      if has Nested_wildcards_broken then List.rev matching else matching
    in
    let matching =
      if matching = [] && has Invalid_wildcard_match then
        (* also match the wildcard's own base name *)
        List.filter
          (fun (r : Rr.t) ->
            match Name.wildcard_base r.owner with
            | Some base -> Name.equal base qname
            | None -> false)
          zone.Zone.records
      else matching
    in
    match matching with
    | [] -> ent_check qname acc
    | w :: _ -> wildcard_expand qname qtype w acc visited depth
  and wildcard_expand qname qtype (w : Rr.t) acc visited depth =
    let group = Zone.records_at zone w.owner in
    let synth_owner =
      if has Star_query_synthesis && name_has_star qname then w.owner else qname
    in
    let synthesize (r : Rr.t) = { r with Rr.owner = synth_owner } in
    let cnames = List.filter (fun (r : Rr.t) -> r.rtype = Rr.CNAME) group in
    let dnames = List.filter (fun (r : Rr.t) -> r.rtype = Rr.DNAME) group in
    if qtype <> Rr.CNAME && cnames <> [] then begin
      let rr = synthesize (List.hd cnames) in
      let acc = acc @ [ rr ] in
      match Rr.target rr with
      | None -> positive acc
      | Some target ->
          if
            has Wildcard_loop_crash
            && Name.wildcard_matches ~wildcard:w.owner target
          then raise (Crashed "wildcard CNAME loop")
          else if has Cname_chain_not_followed then positive acc
          else resolve target qtype acc (qname :: visited) (depth + 1)
    end
    else if qtype <> Rr.DNAME && dnames <> [] && qtype <> Rr.CNAME then begin
      (* wildcard-owned DNAME: the match behaves like a rewrite of the
         whole query name *)
      let rr = List.hd dnames in
      if has Wildcard_dname_wrong then positive (acc @ [ synthesize rr ])
      else
        match Rr.target rr with
        | None -> nodata acc
        | Some target ->
            if
              has Wildcard_loop_crash
              && Name.wildcard_matches ~wildcard:w.owner target
            then raise (Crashed "wildcard DNAME loop")
            else begin
              let shown =
                if has Dname_name_replaced_by_query then { rr with Rr.owner = qname }
                else rr
              in
              let synth = Rr.v qname Rr.CNAME (Rr.Target target) in
              let acc = acc @ [ shown; synth ] in
              resolve target qtype acc (qname :: visited) (depth + 1)
            end
    end
    else begin
      let matches = List.filter (fun (r : Rr.t) -> r.rtype = qtype) group in
      if matches <> [] then
        if has Empty_answer_wildcard then positive acc
        else positive (acc @ List.map synthesize matches)
      else nodata acc
    end
  and ent_check qname acc =
    if Zone.node_exists zone qname then begin
      let below_has_star =
        List.exists
          (fun (r : Rr.t) ->
            Name.is_proper_suffix ~suffix:qname r.owner && name_has_star r.owner)
          zone.Zone.records
      in
      if has Wrong_rcode_ent_wildcard && below_has_star then
        respond Message.NXDOMAIN ~answer:acc ~authority:soa_rrs
      else nodata acc
    end
    else nxdomain acc
  in
  let finalize (r : Message.response) =
    let r =
      if has Wrong_rcode_star_rdata && List.exists rdata_has_star r.answer then
        { r with Message.rcode = Message.NXDOMAIN }
      else r
    in
    let r =
      if has Duplicate_answer_records && r.answer <> [] then
        { r with Message.answer = r.answer @ r.answer }
      else r
    in
    if has Missing_aa_flag then { r with Message.aa = false; authority = [] } else r
  in
  if not (Zone.in_zone zone q.qname) then
    Message.Reply (respond Message.REFUSED ~aa:false)
  else
    match resolve q.qname q.qtype [] [] 0 with
    | r -> Message.Reply (finalize r)
    | exception Crashed m -> Message.Crash m
