type t = { origin : Name.t; records : Rr.t list }

let v origin records = { origin; records }

let records_at zone name =
  List.filter (fun (r : Rr.t) -> Name.equal r.owner name) zone.records

let in_zone zone name = Name.is_suffix ~suffix:zone.origin name

let node_exists zone name =
  List.exists
    (fun (r : Rr.t) ->
      Name.equal r.owner name || Name.is_proper_suffix ~suffix:name r.owner)
    zone.records

let delegation_of zone name =
  (* candidate cuts: NS owners strictly below origin that are ancestors
     of (or equal to) the name; choose the shallowest (closest to the
     root of the zone), which is the cut a resolver would hit first *)
  let cuts =
    List.filter
      (fun (r : Rr.t) ->
        r.rtype = Rr.NS
        && (not (Name.equal r.owner zone.origin))
        && Name.is_suffix ~suffix:r.owner name
        && Name.is_proper_suffix ~suffix:zone.origin r.owner)
      zone.records
  in
  match cuts with
  | [] -> None
  | _ ->
      let owners = List.sort_uniq Name.compare (List.map (fun (r : Rr.t) -> r.owner) cuts) in
      let shallowest =
        List.fold_left
          (fun best o ->
            if Name.label_count o < Name.label_count best then o else best)
          (List.hd owners) owners
      in
      Some
        ( shallowest,
          List.filter (fun (r : Rr.t) -> Name.equal r.owner shallowest) cuts )

let glue_for zone targets =
  List.filter
    (fun (r : Rr.t) ->
      (r.rtype = Rr.A || r.rtype = Rr.AAAA)
      && List.exists (Name.equal r.owner) targets)
    zone.records

let wildcards_matching zone name =
  let matching =
    List.filter
      (fun (r : Rr.t) ->
        Name.is_wildcard r.owner && Name.wildcard_matches ~wildcard:r.owner name)
      zone.records
  in
  List.stable_sort
    (fun (a : Rr.t) (b : Rr.t) ->
      compare (Name.label_count b.owner) (Name.label_count a.owner))
    matching

let validate zone =
  let apex = records_at zone zone.origin in
  if not (List.exists (fun (r : Rr.t) -> r.rtype = Rr.SOA) apex) then
    Error "no SOA record at the zone apex"
  else if not (List.exists (fun (r : Rr.t) -> r.rtype = Rr.NS) apex) then
    Error "no NS record at the zone apex"
  else if List.exists (fun (r : Rr.t) -> not (in_zone zone r.owner)) zone.records
  then Error "record owner outside the zone"
  else begin
    let rec dup = function
      | [] -> false
      | r :: rest -> List.exists (Rr.equal r) rest || dup rest
    in
    if dup zone.records then Error "duplicate records" else Ok ()
  end

let pp ppf zone =
  Format.fprintf ppf "$ORIGIN %s@." (Name.to_string zone.origin);
  List.iter (fun r -> Format.fprintf ppf "%a@." Rr.pp r) zone.records
