lib/dns/server.mli: Message
