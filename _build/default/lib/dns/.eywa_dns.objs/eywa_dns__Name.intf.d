lib/dns/name.mli: Format
