lib/dns/rr.ml: Format Name Printf
