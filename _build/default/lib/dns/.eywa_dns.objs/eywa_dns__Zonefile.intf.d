lib/dns/zonefile.mli: Message Name Rr Zone
