lib/dns/impls.mli: Lookup Message Zone
