lib/dns/lookup.mli: Message Zone
