lib/dns/server.ml: Bytes Hashtbl Message String Thread Unix Wire
