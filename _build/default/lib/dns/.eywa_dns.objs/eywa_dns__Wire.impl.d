lib/dns/wire.ml: Buffer Bytes Char Hashtbl List Message Name Printf Rr String
