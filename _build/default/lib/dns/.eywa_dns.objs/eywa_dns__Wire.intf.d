lib/dns/wire.mli: Message Rr
