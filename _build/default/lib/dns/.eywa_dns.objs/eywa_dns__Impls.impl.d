lib/dns/impls.ml: List Lookup
