lib/dns/zonefile.ml: Buffer Fun List Message Name Printf Rr Scanf String Zone
