lib/dns/name.ml: Format List String
