lib/dns/lookup.ml: List Message Name Rr String Zone
