let print (zone : Zone.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "$ORIGIN %s\n" (Name.to_string zone.origin));
  List.iter
    (fun (r : Rr.t) -> Buffer.add_string buf (Rr.to_string r ^ "\n"))
    zone.records;
  Buffer.contents buf

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = ';'))
  in
  let words l =
    String.split_on_char ' ' l |> List.filter (fun w -> w <> "")
  in
  match lines with
  | [] -> Error "empty zone file"
  | origin_line :: record_lines -> (
      match words origin_line with
      | [ "$ORIGIN"; origin ] ->
          let origin = Name.of_string origin in
          let parse_record l =
            match words l with
            | owner :: rtype :: rest -> (
                match Rr.rtype_of_string rtype with
                | None -> Error (Printf.sprintf "unknown record type %S" rtype)
                | Some rtype ->
                    let owner = Name.of_string owner in
                    let rdata =
                      match (rtype, rest) with
                      | (Rr.NS | Rr.CNAME | Rr.DNAME), target :: _ ->
                          Rr.Target (Name.of_string target)
                      | (Rr.A | Rr.AAAA), addr :: _ -> Rr.Address addr
                      | Rr.TXT, text :: _ -> Rr.Text (Scanf.sscanf text "%S" Fun.id)
                      | Rr.SOA, _ -> Rr.Soa_data
                      | _, [] -> Rr.Text ""
                    in
                    Ok (Rr.v owner rtype rdata))
            | _ -> Error (Printf.sprintf "malformed record line %S" l)
          in
          let rec go acc = function
            | [] -> Ok (Zone.v origin (List.rev acc))
            | l :: rest -> (
                match parse_record l with
                | Ok r -> go (r :: acc) rest
                | Error e -> Error e)
          in
          go [] record_lines
      | _ -> Error "missing $ORIGIN header")

let default_suffix = Name.of_string "test."

type test_record = { rname : string; rtype : Rr.rtype; rdata : string }

(* Re-root a model-level short name ("a.*", "", ".") under the suffix.
   Empty content maps to the suffix itself. *)
let reroot suffix short = Name.append (Name.of_string short) suffix

(* The distinguished rdata "*" denotes a target outside the zone, so
   generated tests can exercise out-of-zone chain handling (coredns and
   hickory both mishandle it, Table 3). *)
let out_of_zone_target = Name.of_string "outside.example."

let reroot_target suffix short =
  if short = "*" then out_of_zone_target else reroot suffix short

let build_zone ?(suffix = default_suffix) ?(extra_delegation = false) records =
  let apex =
    [
      Rr.v suffix Rr.SOA Rr.Soa_data;
      Rr.v suffix Rr.NS (Rr.Target (Name.of_string "ns1.outside.edu."));
    ]
  in
  let delegation =
    if extra_delegation then begin
      (* the cut lives at "b.<suffix>" — 'b' is in the lookup models'
         query alphabet, so generated queries can land under the cut —
         and its nameserver's glue is a sibling of the cut *)
      let child = Name.append (Name.of_string "b") suffix in
      let ns_target = Name.append (Name.of_string "ns.a") suffix in
      [
        Rr.v child Rr.NS (Rr.Target ns_target);
        Rr.v ns_target Rr.A (Rr.Address "10.0.0.53");
      ]
    end
    else []
  in
  let converted =
    List.map
      (fun r ->
        let owner = reroot suffix r.rname in
        let rdata =
          match r.rtype with
          | Rr.NS | Rr.CNAME | Rr.DNAME -> Rr.Target (reroot_target suffix r.rdata)
          | Rr.A | Rr.AAAA -> Rr.Address (if r.rdata = "" then "10.0.0.1" else r.rdata)
          | Rr.TXT -> Rr.Text r.rdata
          | Rr.SOA -> Rr.Soa_data
        in
        Rr.v owner r.rtype rdata)
      records
  in
  (* model tests may repeat records or regenerate the apex SOA; keep
     the first occurrence of each so the zone stays valid *)
  let all = apex @ delegation @ converted in
  let dedup =
    List.fold_left
      (fun acc r -> if List.exists (Rr.equal r) acc then acc else acc @ [ r ])
      [] all
  in
  Zone.v suffix dedup

let build_query ?(suffix = default_suffix) qname qtype =
  { Message.qname = reroot suffix qname; qtype }
