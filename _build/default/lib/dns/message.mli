(** DNS queries and responses (the fields differential testing
    compares: answer, authority, additional, flags, return code). *)

type rcode = NOERROR | NXDOMAIN | SERVFAIL | REFUSED

type query = { qname : Name.t; qtype : Rr.rtype }

type response = {
  rcode : rcode;
  aa : bool;  (** authoritative-answer flag *)
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}

type outcome =
  | Reply of response
  | Crash of string  (** the server died on this query *)

val rcode_to_string : rcode -> string

val empty_response : response
(** NOERROR, aa set, all sections empty. *)

val normalize : response -> response
(** Sort each section, for order-insensitive comparison. *)

val equal_response : response -> response -> bool
(** Equality modulo record order. *)

val pp_response : Format.formatter -> response -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string
