type rcode = NOERROR | NXDOMAIN | SERVFAIL | REFUSED

type query = { qname : Name.t; qtype : Rr.rtype }

type response = {
  rcode : rcode;
  aa : bool;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}

type outcome = Reply of response | Crash of string

let rcode_to_string = function
  | NOERROR -> "NOERROR"
  | NXDOMAIN -> "NXDOMAIN"
  | SERVFAIL -> "SERVFAIL"
  | REFUSED -> "REFUSED"

let empty_response =
  { rcode = NOERROR; aa = true; answer = []; authority = []; additional = [] }

let normalize r =
  {
    r with
    answer = List.sort_uniq Rr.compare r.answer;
    authority = List.sort_uniq Rr.compare r.authority;
    additional = List.sort_uniq Rr.compare r.additional;
  }

let equal_response a b = normalize a = normalize b

let pp_section ppf (label, rrs) =
  if rrs <> [] then begin
    Format.fprintf ppf "  %s:@." label;
    List.iter (fun r -> Format.fprintf ppf "    %a@." Rr.pp r) rrs
  end

let pp_response ppf r =
  Format.fprintf ppf "%s%s@." (rcode_to_string r.rcode) (if r.aa then " aa" else "");
  pp_section ppf ("answer", r.answer);
  pp_section ppf ("authority", r.authority);
  pp_section ppf ("additional", r.additional)

let pp_outcome ppf = function
  | Reply r -> pp_response ppf r
  | Crash m -> Format.fprintf ppf "CRASH: %s@." m

let outcome_to_string o = Format.asprintf "%a" pp_outcome o
