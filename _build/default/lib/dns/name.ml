type t = string list

let root = []

let of_string s =
  String.split_on_char '.' s |> List.filter (fun l -> l <> "")

let to_string = function
  | [] -> "."
  | labels -> String.concat "." labels ^ "."

let equal a b = a = b
let compare = compare

let label_count = List.length

let parent = function [] -> None | _ :: rest -> Some rest

let is_suffix ~suffix n =
  let ls = List.length suffix and ln = List.length n in
  ls <= ln
  &&
  let rec drop k xs = if k = 0 then xs else drop (k - 1) (List.tl xs) in
  drop (ln - ls) n = suffix

let is_proper_suffix ~suffix n =
  List.length suffix < List.length n && is_suffix ~suffix n

let strip_suffix ~suffix n =
  if not (is_suffix ~suffix n) then None
  else begin
    let keep = List.length n - List.length suffix in
    let rec take k = function
      | _ when k = 0 -> []
      | [] -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    Some (take keep n)
  end

let append prefix suffix = prefix @ suffix

let is_wildcard = function "*" :: _ -> true | _ -> false

let wildcard_base = function "*" :: rest -> Some rest | _ -> None

let wildcard_matches ~wildcard n =
  match wildcard_base wildcard with
  | None -> false
  | Some base -> is_proper_suffix ~suffix:base n && not (equal n wildcard)

let substitute_suffix ~old_suffix ~new_suffix n =
  if not (is_proper_suffix ~suffix:old_suffix n) then None
  else
    match strip_suffix ~suffix:old_suffix n with
    | None -> None
    | Some prefix -> Some (append prefix new_suffix)

let pp ppf n = Format.fprintf ppf "%s" (to_string n)
