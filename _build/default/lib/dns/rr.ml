type rtype = A | AAAA | NS | TXT | CNAME | DNAME | SOA

type rdata = Target of Name.t | Address of string | Text of string | Soa_data

type t = { owner : Name.t; rtype : rtype; rdata : rdata }

let v owner rtype rdata = { owner; rtype; rdata }

let rtype_to_string = function
  | A -> "A"
  | AAAA -> "AAAA"
  | NS -> "NS"
  | TXT -> "TXT"
  | CNAME -> "CNAME"
  | DNAME -> "DNAME"
  | SOA -> "SOA"

let rtype_of_string = function
  | "A" -> Some A
  | "AAAA" -> Some AAAA
  | "NS" -> Some NS
  | "TXT" -> Some TXT
  | "CNAME" -> Some CNAME
  | "DNAME" -> Some DNAME
  | "SOA" -> Some SOA
  | _ -> None

let target t = match t.rdata with Target n -> Some n | Address _ | Text _ | Soa_data -> None

let equal a b = a = b
let compare = compare

let rdata_to_string = function
  | Target n -> Name.to_string n
  | Address a -> a
  | Text s -> Printf.sprintf "%S" s
  | Soa_data -> "ns1.test. admin.test. 1 3600 600 86400 3600"

let pp ppf t =
  Format.fprintf ppf "%s %s %s" (Name.to_string t.owner) (rtype_to_string t.rtype)
    (rdata_to_string t.rdata)

let to_string t = Format.asprintf "%a" pp t
