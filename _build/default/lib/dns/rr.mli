(** Resource records. *)

type rtype = A | AAAA | NS | TXT | CNAME | DNAME | SOA

type rdata =
  | Target of Name.t  (** NS / CNAME / DNAME *)
  | Address of string  (** A / AAAA literal *)
  | Text of string  (** TXT *)
  | Soa_data  (** SOA contents are irrelevant to the tested logic *)

type t = { owner : Name.t; rtype : rtype; rdata : rdata }

val v : Name.t -> rtype -> rdata -> t

val rtype_to_string : rtype -> string
val rtype_of_string : string -> rtype option

val target : t -> Name.t option
(** The rdata name for NS/CNAME/DNAME records. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
