type t = {
  socket : Unix.file_descr;
  bound_port : int;
  thread : Thread.t;
  stopped : bool ref;
}

let serve_loop socket stopped handler =
  let buf = Bytes.create 4096 in
  while not !stopped do
    match Unix.recvfrom socket buf 0 (Bytes.length buf) [] with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINTR), _, _) -> ()
    | len, peer -> (
        let data = Bytes.sub_string buf 0 len in
        match Wire.decode data with
        | Error _ -> () (* drop garbage, as servers do *)
        | Ok request -> (
            match request.Wire.question with
            | [] -> ()
            | q :: _ ->
                let response =
                  match handler q with
                  | Message.Reply r -> r
                  | Message.Crash _ ->
                      {
                        Message.rcode = Message.SERVFAIL;
                        aa = false;
                        answer = [];
                        authority = [];
                        additional = [];
                      }
                in
                let reply =
                  Wire.of_response ~id:request.Wire.header.id q response
                in
                let bytes = Wire.encode reply in
                ignore
                  (Unix.sendto socket (Bytes.of_string bytes) 0
                     (String.length bytes) [] peer)))
  done

let start ?(host = "127.0.0.1") ?(port = 0) handler =
  match Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | socket -> (
      try
        Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        (* a receive timeout lets the loop notice the stop flag *)
        Unix.setsockopt_float socket Unix.SO_RCVTIMEO 0.2;
        let bound_port =
          match Unix.getsockname socket with
          | Unix.ADDR_INET (_, p) -> p
          | Unix.ADDR_UNIX _ -> 0
        in
        let stopped = ref false in
        let thread =
          Thread.create
            (fun () ->
              try serve_loop socket stopped handler
              with Unix.Unix_error _ -> ())
            ()
        in
        Ok { socket; bound_port; thread; stopped }
      with Unix.Unix_error (e, _, _) ->
        Unix.close socket;
        Error (Unix.error_message e))

let port t = t.bound_port

let stop t =
  if not !(t.stopped) then begin
    t.stopped := true;
    Thread.join t.thread;
    (try Unix.close t.socket with Unix.Unix_error _ -> ())
  end

let query ?(host = "127.0.0.1") ?(timeout = 2.0) ~port q =
  match Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | socket -> (
      let finish r =
        (try Unix.close socket with Unix.Unix_error _ -> ());
        r
      in
      try
        Unix.setsockopt_float socket Unix.SO_RCVTIMEO timeout;
        let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
        let id = Hashtbl.hash (q, Unix.gettimeofday ()) land 0xffff in
        let request =
          {
            Wire.header =
              { Wire.id; qr = false; opcode = 0; aa = false; tc = false;
                rd = false; ra = false; rcode = 0 };
            question = [ q ];
            answer = [];
            authority = [];
            additional = [];
          }
        in
        let bytes = Wire.encode request in
        ignore
          (Unix.sendto socket (Bytes.of_string bytes) 0 (String.length bytes) []
             addr);
        let buf = Bytes.create 4096 in
        let len, _ = Unix.recvfrom socket buf 0 (Bytes.length buf) [] in
        match Wire.decode (Bytes.sub_string buf 0 len) with
        | Error m -> finish (Error ("malformed reply: " ^ m))
        | Ok reply ->
            if reply.Wire.header.id <> id then finish (Error "mismatched query id")
            else finish (Ok (Wire.to_response reply))
      with Unix.Unix_error (e, _, _) -> finish (Error (Unix.error_message e)))
