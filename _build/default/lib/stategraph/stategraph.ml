type t = { edges : ((string * string) * string) list }

let empty = { edges = [] }

let add g ~state ~input ~next =
  if List.mem_assoc (state, input) g.edges then g
  else { edges = g.edges @ [ ((state, input), next) ] }

let of_list pairs =
  List.fold_left
    (fun g ((state, input), next) -> add g ~state ~input ~next)
    empty pairs

let transitions g = g.edges

let states g =
  let seen = ref [] in
  let push s = if not (List.mem s !seen) then seen := !seen @ [ s ] in
  List.iter
    (fun ((s, _), s') ->
      push s;
      push s')
    g.edges;
  !seen

let step g ~state ~input = List.assoc_opt (state, input) g.edges

let path_to g ~start ~goal =
  if start = goal then Some []
  else begin
    let visited = Hashtbl.create 16 in
    Hashtbl.add visited start ();
    let queue = Queue.create () in
    Queue.add (start, []) queue;
    let rec bfs () =
      if Queue.is_empty queue then None
      else begin
        let state, rev_path = Queue.pop queue in
        let out =
          List.filter (fun ((s, _), _) -> s = state) g.edges
        in
        let rec expand = function
          | [] -> bfs ()
          | ((_, input), next) :: rest ->
              if next = goal then Some (List.rev (input :: rev_path))
              else if Hashtbl.mem visited next then expand rest
              else begin
                Hashtbl.add visited next ();
                Queue.add (next, input :: rev_path) queue;
                expand rest
              end
        in
        expand out
      end
    in
    bfs ()
  end

let reachable g ~start =
  let visited = ref [ start ] in
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    List.iter
      (fun ((s, _), next) ->
        if s = state && not (List.mem next !visited) then begin
          visited := !visited @ [ next ];
          Queue.add next queue
        end)
      g.edges
  done;
  !visited

let pp ppf g =
  List.iter
    (fun ((s, i), s') -> Format.fprintf ppf "(%s, %s) -> %s@." s i s')
    g.edges
