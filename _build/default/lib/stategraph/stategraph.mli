(** Protocol state graphs and input-sequence search (§4.2).

    For stateful protocols, each Eywa test is a (state, input) pair; to
    run it, the implementation must first be driven to that state. The
    paper obtains a [(state, input) -> state] dictionary from a second
    LLM call (Fig. 8) and BFS-searches it for a driving input sequence.
    This module is the graph half: states and inputs are strings, edges
    are labelled transitions. *)

type t

val empty : t

val add : t -> state:string -> input:string -> next:string -> t
(** Add one transition; duplicate (state, input) keys keep the first
    binding, matching how a Python dict literal would resolve. *)

val of_list : ((string * string) * string) list -> t

val transitions : t -> ((string * string) * string) list
(** In insertion order. *)

val states : t -> string list
(** Every state mentioned, sources before targets, each once. *)

val step : t -> state:string -> input:string -> string option

val path_to : t -> start:string -> goal:string -> string list option
(** BFS: the shortest input sequence driving [start] to [goal];
    [Some []] when [start = goal], [None] when unreachable. *)

val reachable : t -> start:string -> string list
(** States reachable from [start] (including it), in BFS order. *)

val pp : Format.formatter -> t -> unit
