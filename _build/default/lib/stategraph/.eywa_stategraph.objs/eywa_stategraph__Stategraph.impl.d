lib/stategraph/stategraph.ml: Format Hashtbl List Queue
