lib/stategraph/stategraph.mli: Format
