open Eywa_core
module Value = Eywa_minic.Value

(* The SMTP SERVER model (paper Fig. 6): a function from the server
   state and an input command to the reply. Commands use the
   single-letter encoding (H E M R D . Q) so that bounded symbolic
   strings can reach the strcmp branches; the adapter expands them to
   wire commands when driving implementations. *)

let state_type =
  Etype.enum "State"
    [
      "INITIAL"; "HELO_SENT"; "EHLO_SENT"; "MAIL_FROM_RECEIVED";
      "RCPT_TO_RECEIVED"; "DATA_RECEIVED"; "QUITTED";
    ]

let smtp_alphabet = [ 'H'; 'E'; 'M'; 'R'; 'D'; '.'; 'Q'; 'x' ]

let server =
  let state = Etype.Arg.v "state" state_type "Current state of the SMTP server." in
  let input = Etype.Arg.v "input" (Etype.string_ ~maxsize:1) "Input string." in
  let result = Etype.Arg.v "output" (Etype.string_ ~maxsize:3) "Output string." in
  let main =
    Emodule.func_module "smtp_server_response"
      "A function that takes the current state of the SMTP server, the input \
       string, updates the state and returns the output response."
      [ state; input; result ]
  in
  let g = Graph.create () in
  Graph.call_edge g main [];
  {
    Model_def.id = "SERVER";
    protocol = "SMTP";
    graph = g;
    main;
    spec_loc = 26;
    alphabet = smtp_alphabet;
    timeout = 5.0;
  }

let all = [ server ]

let test_state (t : Testcase.t) =
  match List.assoc_opt "state" t.inputs with
  | Some (Value.Venum (_, i)) -> (
      let names =
        [
          "INITIAL"; "HELO_SENT"; "EHLO_SENT"; "MAIL_FROM_RECEIVED";
          "RCPT_TO_RECEIVED"; "DATA_RECEIVED"; "QUITTED";
        ]
      in
      match List.nth_opt names i with Some s -> s | None -> "INITIAL")
  | Some _ | None -> "INITIAL"

let test_input (t : Testcase.t) =
  match List.assoc_opt "input" t.inputs with
  | Some v -> Value.cstring v
  | None -> ""
