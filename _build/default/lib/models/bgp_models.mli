(** The four BGP models of Table 2. RMAP-PL reproduces the Fig. 11
    dependency graph verbatim (validity guards piped in front of the
    matcher, helpers connected by call edges). *)

val confed : Model_def.t
val rr : Model_def.t
val rmap_pl : Model_def.t
val rr_rmap : Model_def.t

val all : Model_def.t list

(** Decoding helpers for the adapters. *)

val test_int : Eywa_core.Testcase.t -> string -> int
(** Scalar input by name; 0 when absent. *)

val test_bool : Eywa_core.Testcase.t -> string -> bool

val test_route : Eywa_core.Testcase.t -> Eywa_bgp.Prefix.t option
(** The [route] struct input scaled up to a real /28-based prefix. *)

val test_prefix_entry :
  Eywa_core.Testcase.t -> Eywa_bgp.Policy.prefix_list_entry option

val test_peer_type : Eywa_core.Testcase.t -> string -> Eywa_bgp.Reflect.peer_type
