(** The complete Table 2 roster. *)

val dns : Model_def.t list
val bgp : Model_def.t list
val smtp : Model_def.t list

val all : Model_def.t list
(** All thirteen models, DNS then BGP then SMTP (the TCP extension
    model is separate; see {!Tcp_models}). *)

val find : string -> Model_def.t option
(** Look up by Table 2 id, e.g. ["RMAP-PL"]. *)
