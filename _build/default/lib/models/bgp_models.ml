open Eywa_core
module Value = Eywa_minic.Value

(* Model-scale quantities: prefixes are 4 bits, mask lengths 0..4 (the
   adapters scale them onto the top nibble of real 32-bit prefixes).
   Bounding the types this way is exactly the paper's size-hint
   mechanism, and keeps the symbolic state small. *)

let asn_ty = Etype.int_ ~bits:3
let prefix_ty = Etype.int_ ~bits:4
let plen_ty = Etype.int_ ~bits:3

let session_type =
  Etype.enum "SessionType" [ "IBGP"; "EBGP_CONFED"; "EBGP"; "REJECT" ]

let peer_type = Etype.enum "PeerType" [ "CLIENT"; "NONCLIENT"; "EBGP_PEER" ]

let route_ty = Etype.struct_ "Route" [ ("prefix", prefix_ty); ("plen", plen_ty) ]

let pfe_ty =
  Etype.struct_ "PrefixListEntry"
    [
      ("prefix", prefix_ty);
      ("plen", plen_ty);
      ("ge", plen_ty);
      ("le", plen_ty);
      ("any", Etype.bool_);
      ("permit", Etype.bool_);
    ]

let route_arg = Etype.Arg.v "route" route_ty "A BGP route advertisement."
let pfe_arg = Etype.Arg.v "pfe" pfe_ty "A prefix list entry."

let no_alphabet = [ 'a' ]

(* ----- CONFED ----- *)

let confed =
  let peer_as = Etype.Arg.v "peer_as" asn_ty "The neighbor's AS number." in
  let my_sub_as =
    Etype.Arg.v "my_sub_as" asn_ty "This router's confederation sub-AS number."
  in
  let confed_id =
    Etype.Arg.v "confed_id" asn_ty "The confederation identifier AS number."
  in
  let peer_in_confed =
    Etype.Arg.v "peer_in_confed" Etype.bool_
      "Whether the neighbor is a member of the confederation."
  in
  let result =
    Etype.Arg.v "session" session_type "The BGP session type to establish."
  in
  let main =
    Emodule.func_module "confed_action"
      "Decide which kind of BGP session a router inside a confederation \
       establishes with a neighbor."
      [ peer_as; my_sub_as; confed_id; peer_in_confed; result ]
  in
  let g = Graph.create () in
  (* register the lone module: a self loop-free call edge with no deps *)
  Graph.call_edge g main [];
  {
    Model_def.id = "CONFED";
    protocol = "BGP";
    graph = g;
    main;
    spec_loc = 22;
    alphabet = no_alphabet;
    timeout = 5.0;
  }

(* ----- RR ----- *)

let rr =
  let from_peer =
    Etype.Arg.v "from_peer" peer_type "The kind of peer the route was learned from."
  in
  let to_peer =
    Etype.Arg.v "to_peer" peer_type "The kind of peer the route would be sent to."
  in
  let result =
    Etype.Arg.v "propagate" Etype.bool_ "Whether the route reflector propagates it."
  in
  let main =
    Emodule.func_module "rr_action"
      "Decide whether a BGP route reflector propagates a route from one peer \
       to another."
      [ from_peer; to_peer; result ]
  in
  let g = Graph.create () in
  Graph.call_edge g main [];
  {
    Model_def.id = "RR";
    protocol = "BGP";
    graph = g;
    main;
    spec_loc = 16;
    alphabet = no_alphabet;
    timeout = 5.0;
  }

(* ----- RMAP-PL: the Fig. 11 graph ----- *)

let mask_helper =
  let len = Etype.Arg.v "maskLength" plen_ty "The length of the prefix." in
  let out =
    Etype.Arg.v "mask" prefix_ty
      "The unsigned integer representation of the prefix length."
  in
  Emodule.func_module "prefixLengthToSubnetMask"
    "A function that takes as input the prefix length and converts it to the \
     corresponding unsigned integer representation."
    [ len; out ]

let is_valid_route =
  let out = Etype.Arg.v "valid" Etype.bool_ "If the route is well formed." in
  Emodule.func_module "isValidRoute"
    "If a BGP route advertisement is well formed (mask length in range, no \
     host bits set)."
    [ route_arg; out ]

let is_valid_prefix_list =
  let out = Etype.Arg.v "valid" Etype.bool_ "If the prefix list entry is well formed." in
  Emodule.func_module "isValidPrefixList"
    "If a prefix list entry is well formed (mask length and le/ge range \
     consistent, no host bits set)."
    [ pfe_arg; out ]

let check_valid_inputs =
  let out = Etype.Arg.v "valid" Etype.bool_ "If both inputs are well formed." in
  Emodule.func_module "checkValidInputs"
    "If a route and a prefix list entry are both well formed."
    [ route_arg; pfe_arg; out ]

let is_match_pfe =
  let out =
    Etype.Arg.v "matches" Etype.bool_
      "True if the route matches the prefix list entry."
  in
  Emodule.func_module "isMatchPrefixListEntry"
    "A function that takes as input a prefix list entry and a BGP route \
     advertisement. If the route advertisement matches the prefix, then the \
     function should return the value of the permit flag. In case there is no \
     match, the function should vacuously return false."
    [ route_arg; pfe_arg; out ]

let rmap_pl =
  let out =
    Etype.Arg.v "permitted" Etype.bool_
      "If the route-map stanza permits the route."
  in
  let main =
    Emodule.func_module "isMatchRouteMapStanza"
      "If a route-map stanza whose match clause uses the given prefix list \
       entry permits a BGP route."
      [ route_arg; pfe_arg; out ]
  in
  let g = Graph.create () in
  Graph.call_edge g is_valid_prefix_list [ mask_helper ];
  Graph.call_edge g is_valid_route [ mask_helper ];
  Graph.call_edge g check_valid_inputs [ is_valid_prefix_list; is_valid_route ];
  Graph.call_edge g is_match_pfe [ mask_helper ];
  Graph.call_edge g main [ is_match_pfe ];
  Graph.pipe g check_valid_inputs main;
  {
    Model_def.id = "RMAP-PL";
    protocol = "BGP";
    graph = g;
    main;
    spec_loc = 48;
    alphabet = no_alphabet;
    timeout = 10.0;
  }

(* ----- RR-RMAP ----- *)

let rr_rmap =
  let from_peer =
    Etype.Arg.v "from_peer" peer_type "The kind of peer the route was learned from."
  in
  let to_peer =
    Etype.Arg.v "to_peer" peer_type "The kind of peer the route would be sent to."
  in
  let out =
    Etype.Arg.v "advertised" Etype.bool_
      "If the route is both permitted by policy and reflectable."
  in
  let rr_helper =
    Emodule.func_module "rr_action"
      "Decide whether a BGP route reflector propagates a route from one peer \
       to another."
      [ from_peer; to_peer;
        Etype.Arg.v "propagate" Etype.bool_ "Whether to propagate." ]
  in
  let main =
    Emodule.func_module "rr_rmap_action"
      "Whether a route reflector advertises a route to a peer, given an \
       export policy based on a prefix list entry."
      [ route_arg; pfe_arg; from_peer; to_peer; out ]
  in
  let g = Graph.create () in
  Graph.call_edge g is_match_pfe [ mask_helper ];
  Graph.call_edge g main [ is_match_pfe; rr_helper ];
  Graph.pipe g check_valid_inputs main;
  Graph.call_edge g check_valid_inputs [ is_valid_prefix_list; is_valid_route ];
  Graph.call_edge g is_valid_prefix_list [ mask_helper ];
  Graph.call_edge g is_valid_route [ mask_helper ];
  {
    Model_def.id = "RR-RMAP";
    protocol = "BGP";
    graph = g;
    main;
    spec_loc = 48;
    alphabet = no_alphabet;
    timeout = 10.0;
  }

let all = [ confed; rr; rmap_pl; rr_rmap ]

(* ----- decoding helpers ----- *)

let test_int (t : Testcase.t) name =
  match List.assoc_opt name t.inputs with
  | Some v -> ( try Value.to_int v with Invalid_argument _ -> 0)
  | None -> 0

let test_bool (t : Testcase.t) name =
  match List.assoc_opt name t.inputs with
  | Some (Value.Vbool b) -> b
  | Some v -> ( try Value.to_int v <> 0 with Invalid_argument _ -> false)
  | None -> false

let struct_field (t : Testcase.t) arg field =
  match List.assoc_opt arg t.inputs with
  | Some (Value.Vstruct (_, fields)) -> List.assoc_opt field fields
  | Some _ | None -> None

let scale_prefix p len = Eywa_bgp.Prefix.v (Int32.shift_left (Int32.of_int p) 28) len

let test_route (t : Testcase.t) =
  match (struct_field t "route" "prefix", struct_field t "route" "plen") with
  | Some p, Some l ->
      let len = min (Value.to_int l) 32 in
      if len > 4 then None else Some (scale_prefix (Value.to_int p) len)
  | _, _ -> None

let test_prefix_entry (t : Testcase.t) =
  let field name = struct_field t "pfe" name in
  match (field "prefix", field "plen") with
  | Some p, Some l ->
      let len = min (Value.to_int l) 4 in
      let opt name =
        match field name with
        | Some v -> (
            match Value.to_int v with 0 -> None | n when n <= 4 -> Some n | _ -> Some 4)
        | None -> None
      in
      let flag name =
        match field name with Some v -> Value.to_int v <> 0 | None -> false
      in
      if flag "any" then
        (* "permit any" is spelled 0.0.0.0/0 le <max> in real configs *)
        Some
          {
            Eywa_bgp.Policy.seq = 10;
            permit = flag "permit";
            prefix = scale_prefix 0 0;
            ge = None;
            le = Some 4;
          }
      else
        Some
          {
            Eywa_bgp.Policy.seq = 10;
            permit = flag "permit";
            prefix = scale_prefix (Value.to_int p) len;
            ge = opt "ge";
            le = opt "le";
          }
  | _, _ -> None

let test_peer_type (t : Testcase.t) name =
  match List.assoc_opt name t.inputs with
  | Some (Value.Venum (_, 0)) -> Eywa_bgp.Reflect.Client
  | Some (Value.Venum (_, 1)) -> Eywa_bgp.Reflect.Non_client
  | Some (Value.Venum (_, _)) -> Eywa_bgp.Reflect.External
  | Some _ | None -> Eywa_bgp.Reflect.External
