(* The complete Table 2 roster. *)

let dns = Dns_models.all
let bgp = Bgp_models.all
let smtp = Smtp_models.all

let all = dns @ bgp @ smtp

let find id = List.find_opt (fun (m : Model_def.t) -> m.Model_def.id = id) all
