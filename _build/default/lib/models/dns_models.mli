(** The eight DNS models of Table 2, defined through the Eywa core API
    exactly as the paper's Fig. 1 does in Python. *)

val record_type : Eywa_core.Etype.t
(** The shared RecordType enum. *)

val rcode_type : Eywa_core.Etype.t
(** The RCode enum used by lookup-style models. *)

val cname : Model_def.t
val dname : Model_def.t
val wildcard : Model_def.t
val ipv4 : Model_def.t
val fulllookup : Model_def.t
val rcode : Model_def.t
val auth : Model_def.t
val loop : Model_def.t

val all : Model_def.t list

(** Decoding helpers for the adapters: read typed inputs back out of a
    generated test case. *)

val test_query : Eywa_core.Testcase.t -> string
val test_qtype : Eywa_core.Testcase.t -> Eywa_dns.Rr.rtype
(** Defaults to [A] when the model has no qtype input. *)

val test_record :
  Eywa_core.Testcase.t -> Eywa_dns.Zonefile.test_record option
(** The single [record] input of the per-record models. *)

val test_zone_records :
  Eywa_core.Testcase.t -> Eywa_dns.Zonefile.test_record list
(** The [zone] input of the lookup models. *)
