module Tcp = Eywa_tcp
module Difftest = Eywa_difftest.Difftest
module Testcase = Eywa_core.Testcase
module Stategraph = Eywa_stategraph.Stategraph

let state_graph_for (synth : Eywa_core.Synthesis.t) =
  match
    List.find_opt
      (fun (r : Eywa_core.Synthesis.model_result) -> r.compile_error = None)
      synth.results
  with
  | None -> Error "no compiled model to extract a state graph from"
  | Some r -> (
      let response = Eywa_llm.Gpt.complete_stategraph r.c_source in
      match Eywa_llm.Extract.parse_pydict response with
      | Error m -> Error m
      | Ok transitions -> Ok (Stategraph.of_list transitions))

let probe impl graph state input =
  match Tcp.Impls.drive_and_probe impl graph ~state ~input with
  | Ok reply -> [ ("reply", reply); ("drive", "ok") ]
  | Error m -> [ ("reply", ""); ("drive", m) ]

let observations_for ~graph (test : Testcase.t) =
  if test.bad_input || test.error <> None then None
  else begin
    let state = Tcp_models.test_state test in
    let input = Tcp_models.test_segment test in
    if input = "" then None
    else
      Some
        (List.map
           (fun impl ->
             { Difftest.impl = impl.Tcp.Impls.name;
               fields = probe impl graph state input })
           Tcp.Impls.all)
  end

let run ~graph tests =
  let acc = Difftest.create () in
  List.iter
    (fun test ->
      match observations_for ~graph test with
      | None -> ()
      | Some obs -> ignore (Difftest.record acc obs))
    tests;
  Difftest.report acc

let quirks_triggered ~graph tests =
  let found = ref [] in
  let note impl quirk =
    if not (List.mem (impl, quirk) !found) then found := !found @ [ (impl, quirk) ]
  in
  List.iter
    (fun (test : Testcase.t) ->
      match observations_for ~graph test with
      | None -> ()
      | Some obs ->
          if Difftest.compare_all obs <> [] then
            List.iter
              (fun impl ->
                let state = Tcp_models.test_state test in
                let input = Tcp_models.test_segment test in
                let active = Tcp.Impls.quirks impl in
                let reply_with quirks =
                  match Stategraph.path_to graph ~start:"LISTEN" ~goal:state with
                  | None -> None
                  | Some prefix ->
                      Some
                        (Tcp.Machine.run_connection ~quirks
                           (List.map Tcp.Machine.segment_of_letter
                              (prefix @ [ input ])))
                in
                let with_all = reply_with active in
                List.iter
                  (fun q ->
                    if reply_with (List.filter (fun x -> x <> q) active) <> with_all
                    then note impl.Tcp.Impls.name q)
                  active)
              Tcp.Impls.all)
    tests;
  !found
