lib/models/dns_models.ml: Array Emodule Etype Eywa_core Eywa_dns Eywa_minic Graph List Model_def Testcase
