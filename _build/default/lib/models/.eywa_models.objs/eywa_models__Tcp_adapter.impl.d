lib/models/tcp_adapter.ml: Eywa_core Eywa_difftest Eywa_llm Eywa_stategraph Eywa_tcp List Tcp_models
