lib/models/dns_adapter.ml: Dns_models Eywa_core Eywa_difftest Eywa_dns List String
