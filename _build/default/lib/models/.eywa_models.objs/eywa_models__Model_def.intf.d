lib/models/model_def.mli: Eywa_core
