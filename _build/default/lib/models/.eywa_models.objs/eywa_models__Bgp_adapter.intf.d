lib/models/bgp_adapter.mli: Eywa_bgp Eywa_core Eywa_difftest
