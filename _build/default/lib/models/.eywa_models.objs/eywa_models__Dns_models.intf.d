lib/models/dns_models.mli: Eywa_core Eywa_dns Model_def
