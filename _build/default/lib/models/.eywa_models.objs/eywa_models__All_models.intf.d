lib/models/all_models.mli: Model_def
