lib/models/bgp_models.ml: Emodule Etype Eywa_bgp Eywa_core Eywa_minic Graph Int32 List Model_def Testcase
