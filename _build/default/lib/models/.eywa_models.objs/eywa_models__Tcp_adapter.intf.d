lib/models/tcp_adapter.mli: Eywa_core Eywa_difftest Eywa_stategraph Eywa_tcp
