lib/models/dns_adapter.mli: Eywa_core Eywa_difftest Eywa_dns
