lib/models/model_def.ml: Eywa_core
