lib/models/bgp_adapter.ml: Bgp_models Eywa_bgp Eywa_core Eywa_difftest Int32 List String
