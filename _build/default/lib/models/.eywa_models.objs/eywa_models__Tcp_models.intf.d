lib/models/tcp_models.mli: Eywa_core Model_def
