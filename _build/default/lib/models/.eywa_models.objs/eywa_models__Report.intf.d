lib/models/report.mli: Eywa_core Eywa_difftest Eywa_dns
