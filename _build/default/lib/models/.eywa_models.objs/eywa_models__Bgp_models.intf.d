lib/models/bgp_models.mli: Eywa_bgp Eywa_core Model_def
