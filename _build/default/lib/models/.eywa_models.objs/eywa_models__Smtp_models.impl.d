lib/models/smtp_models.ml: Emodule Etype Eywa_core Eywa_minic Graph List Model_def Testcase
