lib/models/report.ml: Buffer Dns_adapter Eywa_core Eywa_difftest Eywa_dns List Printf String
