lib/models/smtp_adapter.ml: Eywa_core Eywa_difftest Eywa_llm Eywa_smtp Eywa_stategraph List Smtp_models
