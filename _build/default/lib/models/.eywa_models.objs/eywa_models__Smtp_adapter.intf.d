lib/models/smtp_adapter.mli: Eywa_core Eywa_difftest Eywa_smtp Eywa_stategraph
