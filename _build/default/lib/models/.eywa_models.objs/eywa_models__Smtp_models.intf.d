lib/models/smtp_models.mli: Eywa_core Model_def
