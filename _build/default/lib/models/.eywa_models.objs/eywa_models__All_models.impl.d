lib/models/all_models.ml: Bgp_models Dns_models List Model_def Smtp_models
