open Eywa_core
module Value = Eywa_minic.Value

(* The TCP extension model (the paper's §6 future work): same shape as
   the SMTP SERVER model — a function from connection state and an
   incoming segment to the reply — so the whole stateful pipeline
   (model synthesis, state-graph extraction, BFS driving) is reused
   unchanged on a deeper state machine. *)

let state_type =
  Etype.enum "TcpState"
    [ "CLOSED"; "LISTEN"; "SYN_RCVD"; "ESTABLISHED"; "CLOSE_WAIT"; "LAST_ACK" ]

let tcp_alphabet = [ 'S'; 'A'; 'F'; 'R'; 'D'; 'x' ]

let server =
  let state =
    Etype.Arg.v "state" state_type "Current state of the TCP connection."
  in
  let segment =
    Etype.Arg.v "segment" (Etype.string_ ~maxsize:1) "The incoming segment kind."
  in
  let result =
    Etype.Arg.v "reply" (Etype.string_ ~maxsize:3)
      "The segment kind the server sends back."
  in
  let main =
    Emodule.func_module "tcp_server_response"
      "A function that takes the current state of a TCP connection and an \
       incoming segment, updates the state and returns the reply segment."
      [ state; segment; result ]
  in
  let g = Graph.create () in
  Graph.call_edge g main [];
  {
    Model_def.id = "TCP";
    protocol = "TCP";
    graph = g;
    main;
    spec_loc = 24;
    alphabet = tcp_alphabet;
    timeout = 5.0;
  }

let test_state (t : Testcase.t) =
  match List.assoc_opt "state" t.inputs with
  | Some (Value.Venum (_, i)) -> (
      let names =
        [ "CLOSED"; "LISTEN"; "SYN_RCVD"; "ESTABLISHED"; "CLOSE_WAIT"; "LAST_ACK" ]
      in
      match List.nth_opt names i with Some s -> s | None -> "LISTEN")
  | Some _ | None -> "LISTEN"

let test_segment (t : Testcase.t) =
  match List.assoc_opt "segment" t.inputs with
  | Some v -> Value.cstring v
  | None -> ""
