(** Stateful adapter for the TCP extension — identical machinery to
    {!Smtp_adapter}, proving the §4.2 state-graph approach generalises
    as the paper's §6 anticipates. *)

val state_graph_for :
  Eywa_core.Synthesis.t -> (Eywa_stategraph.Stategraph.t, string) result

val observations_for :
  graph:Eywa_stategraph.Stategraph.t ->
  Eywa_core.Testcase.t ->
  Eywa_difftest.Difftest.observation list option

val run :
  graph:Eywa_stategraph.Stategraph.t ->
  Eywa_core.Testcase.t list ->
  Eywa_difftest.Difftest.report

val quirks_triggered :
  graph:Eywa_stategraph.Stategraph.t ->
  Eywa_core.Testcase.t list ->
  (string * Eywa_tcp.Machine.quirk) list
