(** The TCP extension model (paper §6 future work): the SMTP SERVER
    shape applied to the RFC 793 connection machine. *)

val state_type : Eywa_core.Etype.t
val tcp_alphabet : char list
val server : Model_def.t

val test_state : Eywa_core.Testcase.t -> string
val test_segment : Eywa_core.Testcase.t -> string
