open Eywa_core
module Value = Eywa_minic.Value

let record_type =
  Etype.enum "RecordType" [ "A"; "AAAA"; "NS"; "TXT"; "CNAME"; "DNAME"; "SOA" ]

let rcode_type = Etype.enum "RCode" [ "NOERROR"; "NXDOMAIN"; "SERVFAIL" ]

let valid_domain_pattern = {|[a*](\.[a*])*|}

let zone_domain_pattern = {|[ab*](\.[ab*])*|}

let dns_alphabet = [ 'a'; '.'; '*' ]

(* ----- per-record models (CNAME, DNAME, WILDCARD, IPV4) ----- *)

(* One model per record type: does this record apply to this query?
   This is the Fig. 1 shape: a regex pipe validating the query, one
   FuncModule doing the matching. *)
let per_record_model ~id ~fname ~desc ?(alphabet = dns_alphabet) ?(extra_call = None)
    ~spec_loc () =
  let domain = Etype.string_ ~maxsize:5 in
  let short = Etype.string_ ~maxsize:3 in
  let record_ty =
    Etype.struct_ "Record"
      [ ("rtyp", record_type); ("name", short); ("rdat", short) ]
  in
  let query = Etype.Arg.v "query" domain "A DNS query domain name." in
  let record = Etype.Arg.v "record" record_ty "A DNS record." in
  let result = Etype.Arg.v "result" Etype.bool_ "If the DNS record matches the query." in
  let valid_query = Emodule.regex_module valid_domain_pattern query in
  let main = Emodule.func_module fname desc [ query; record; result ] in
  let g = Graph.create () in
  Graph.pipe g valid_query main;
  (match extra_call with
  | None -> ()
  | Some dep -> Graph.call_edge g main [ dep ]);
  {
    Model_def.id;
    protocol = "DNS";
    graph = g;
    main;
    spec_loc;
    alphabet;
    timeout = 5.0;
  }

let cname =
  per_record_model ~id:"CNAME" ~fname:"cname_applies"
    ~desc:"If a CNAME record matches a query." ~spec_loc:21 ()

let dname =
  per_record_model ~id:"DNAME" ~fname:"dname_applies"
    ~desc:"If a DNAME record matches a query." ~spec_loc:23 ()

let wildcard =
  per_record_model ~id:"WILDCARD" ~fname:"wildcard_applies"
    ~desc:"If a wildcard record matches a query." ~spec_loc:23 ()

let ipv4 =
  let rdata = Etype.Arg.v "rdata" (Etype.string_ ~maxsize:3) "The record data." in
  let ok = Etype.Arg.v "ok" Etype.bool_ "If the data is a valid IPv4 address." in
  let helper =
    Emodule.func_module "is_valid_ipv4"
      "If a string is a well-formed dotted-decimal IPv4 address." [ rdata; ok ]
  in
  per_record_model ~id:"IPV4" ~fname:"ipv4_applies"
    ~desc:"If an A record with valid IPv4 data matches a query."
    ~alphabet:[ 'a'; '.'; '*'; '1' ]
    ~extra_call:(Some helper) ~spec_loc:21 ()

(* ----- zone-level models (FULLLOOKUP, RCODE, AUTH, LOOP) ----- *)

let short_domain = Etype.string_ ~maxsize:3

let record_ty =
  Etype.struct_ "Record"
    [ ("rtyp", record_type); ("name", short_domain); ("rdat", short_domain) ]

let zone_ty = Etype.struct_ "Zone" [ ("recs", Etype.array record_ty 2) ]

let response_ty =
  Etype.struct_ "Response"
    [ ("rcode", rcode_type); ("ans", record_type); ("synthesized", Etype.bool_) ]

let zone_arg = Etype.Arg.v "zone" zone_ty "The zone file records."
let query_arg = Etype.Arg.v "query" short_domain "A DNS query domain name."
let qtype_arg = Etype.Arg.v "qtype" record_type "The DNS query type."

let matcher_helper =
  let r = Etype.Arg.v "record" record_ty "A DNS record." in
  let out =
    Etype.Arg.v "matches" Etype.bool_
      "If the record's owner name covers the query (exact, wildcard or DNAME)."
  in
  Emodule.func_module "record_matches_name"
    "If a record's owner name covers a query, by exact match, wildcard match, \
     or DNAME suffix match."
    [ query_arg; r; out ]

let zone_model ~id ~fname ~desc ~result ~spec_loc ?(with_qtype = true) () =
  let args =
    if with_qtype then [ query_arg; qtype_arg; zone_arg; result ]
    else [ query_arg; zone_arg; result ]
  in
  let valid_query = Emodule.regex_module zone_domain_pattern query_arg in
  let main = Emodule.func_module fname desc args in
  let g = Graph.create () in
  Graph.pipe g valid_query main;
  Graph.call_edge g main [ matcher_helper ];
  {
    Model_def.id;
    protocol = "DNS";
    graph = g;
    main;
    spec_loc;
    (* 'b' lets generated queries reach the post-processing delegation
       installed at b.test. (sibling-glue behaviour, §2.3) *)
    alphabet = [ 'a'; 'b'; '.'; '*' ];
    timeout = 10.0;
  }

let fulllookup =
  zone_model ~id:"FULLLOOKUP" ~fname:"full_lookup"
    ~desc:
      "The full DNS authoritative lookup of a query in a zone, returning the \
       response code, answer type and whether a record was synthesized."
    ~result:(Etype.Arg.v "response" response_ty "The DNS response.")
    ~spec_loc:26 ()

let rcode =
  zone_model ~id:"RCODE" ~fname:"rcode_lookup"
    ~desc:"The DNS response code for a query against a zone."
    ~result:(Etype.Arg.v "rcode" rcode_type "The DNS response code.")
    ~spec_loc:26 ()

let auth =
  zone_model ~id:"AUTH" ~fname:"auth_lookup"
    ~desc:
      "Whether the authoritative-answer flag is set when answering a query \
       from a zone (false under a zone cut)."
    ~result:(Etype.Arg.v "aa" Etype.bool_ "The authoritative answer flag.")
    ~spec_loc:26 ()

let loop =
  zone_model ~id:"LOOP" ~fname:"loop_count"
    ~desc:
      "How many times a DNS query is rewritten by CNAME or DNAME records of a \
       zone before resolution stops."
    ~result:(Etype.Arg.v "rewrites" (Etype.int_ ~bits:3) "The number of rewrites.")
    ~spec_loc:26 ~with_qtype:false ()

let all = [ cname; dname; wildcard; ipv4; fulllookup; rcode; auth; loop ]

(* ----- decoding helpers ----- *)

let test_query (t : Testcase.t) =
  match List.assoc_opt "query" t.inputs with
  | Some v -> Value.cstring v
  | None -> ""

let rtype_of_index i =
  match i with
  | 0 -> Eywa_dns.Rr.A
  | 1 -> Eywa_dns.Rr.AAAA
  | 2 -> Eywa_dns.Rr.NS
  | 3 -> Eywa_dns.Rr.TXT
  | 4 -> Eywa_dns.Rr.CNAME
  | 5 -> Eywa_dns.Rr.DNAME
  | _ -> Eywa_dns.Rr.SOA

let test_qtype (t : Testcase.t) =
  match List.assoc_opt "qtype" t.inputs with
  | Some (Value.Venum (_, i)) -> rtype_of_index i
  | Some _ | None -> Eywa_dns.Rr.A

let record_of_value (v : Value.t) =
  match v with
  | Value.Vstruct (_, fields) ->
      let str name =
        match List.assoc_opt name fields with
        | Some (Value.Vstring _ as s) -> Value.cstring s
        | Some _ | None -> ""
      in
      let rtype =
        match List.assoc_opt "rtyp" fields with
        | Some (Value.Venum (_, i)) -> rtype_of_index i
        | Some _ | None -> Eywa_dns.Rr.A
      in
      Some
        { Eywa_dns.Zonefile.rname = str "name"; rtype; rdata = str "rdat" }
  | _ -> None

let test_record (t : Testcase.t) =
  match List.assoc_opt "record" t.inputs with
  | Some v -> record_of_value v
  | None -> None

let test_zone_records (t : Testcase.t) =
  match List.assoc_opt "zone" t.inputs with
  | Some (Value.Vstruct (_, [ ("recs", Value.Varray recs) ])) ->
      List.filter_map record_of_value (Array.to_list recs)
  | Some _ | None -> []
