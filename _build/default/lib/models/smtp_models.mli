(** The SMTP SERVER model of Table 2 (paper Fig. 6). *)

val state_type : Eywa_core.Etype.t
val smtp_alphabet : char list

val server : Model_def.t
val all : Model_def.t list

val test_state : Eywa_core.Testcase.t -> string
(** The state input of a test, as the enum member name. *)

val test_input : Eywa_core.Testcase.t -> string
(** The (single-letter) input command of a test. *)
