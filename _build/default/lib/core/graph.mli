(** Dependency graphs connecting protocol modules (§3.3).

    Two edge kinds, as in the paper:
    - {b Pipe}: sequential composition — the source module validates or
      produces inputs for the destination. A [Regex] source constrains
      one string argument; a [Func] source is a validity predicate over
      a subset of the destination's inputs whose boolean result gates
      the main computation (the [bad_input] branch of Fig. 1b).
    - {b CallEdge}: decomposition — the destination modules may be
      called from the source's implementation, so their prototypes are
      included in the source's prompt and their bodies are synthesised
      by separate LLM invocations. *)

type t

val create : unit -> t

val pipe : t -> Emodule.t -> Emodule.t -> unit
(** [pipe g src dst] adds a sequential-composition edge.
    @raise Invalid_argument if [dst] is not a [Func] module, or if a
    [Regex] source's target argument is not among [dst]'s inputs. *)

val call_edge : t -> Emodule.t -> Emodule.t list -> unit
(** [call_edge g m deps] declares that [m]'s implementation may invoke
    each module in [deps]. @raise Invalid_argument unless all involved
    modules are [Func] or [Custom]. *)

val modules : t -> Emodule.t list
(** Every module mentioned by any edge, each once, in first-mention
    order. *)

val pipes_into : t -> Emodule.t -> Emodule.t list
(** Pipe sources feeding the given module, in insertion order (the
    paper binds the first pipe to the first input, and so on). *)

val call_deps : t -> Emodule.t -> Emodule.t list
(** Direct callees of a module. *)

val synthesis_order : t -> main:Emodule.t -> (Emodule.t list, string) result
(** All [Func]/[Custom] modules needed for [main] — [main] itself, its
    transitive callees, pipe-guard functions and their callees — in
    dependency order (callees first). [Error _] reports a call cycle,
    which the paper's decomposition cannot express. *)
