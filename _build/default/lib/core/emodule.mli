(** Protocol modules — the units the LLM implements (§3.3).

    A [Func] module carries a name, a natural-language description and
    a typed argument list whose {e last} element is the result (as in
    the paper's examples, where the final [Arg] describes the return
    value). A [Regex] module is the built-in validity filter; a
    [Custom] module is user-supplied C code for specialised logic the
    user wants full control over. *)

type func = {
  name : string;
  desc : string;
  args : Etype.Arg.t list;  (** inputs then result; at least 2 *)
}

type regex = {
  rname : string;  (** generated, unique *)
  pattern : string;
  target : Etype.Arg.t;  (** the argument being constrained *)
}

type custom = { cname : string; source : string  (** C source text *) }

type t = Func of func | Regex of regex | Custom of custom

val func_module : string -> string -> Etype.Arg.t list -> t
(** [func_module name desc args]. @raise Invalid_argument if fewer than
    two args (there must be at least one input and the result). *)

val regex_module : string -> Etype.Arg.t -> t
(** [regex_module pattern arg]; the pattern is validated eagerly.
    @raise Eywa_symex.Regex.Parse_error on a malformed pattern.
    @raise Invalid_argument if [arg] is not a string type. *)

val custom_module : string -> string -> t
(** [custom_module name c_source]. *)

val name : t -> string

val inputs : func -> Etype.Arg.t list
(** All args but the result. *)

val result : func -> Etype.Arg.t

val equal : t -> t -> bool
(** Name-based identity, as modules are registered in one graph. *)
