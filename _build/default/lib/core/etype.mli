(** The Eywa modelling type language (paper Fig. 4).

    Users describe protocol objects with these types; Eywa lowers them
    to MiniC declarations for prompts and to symbolic atoms for the
    test harness. Unbounded types carry explicit bounds
    ([String ~maxsize]), exactly as the paper requires, so the symbolic
    state stays finite. *)

type t =
  | Bool
  | Char
  | Int of int  (** unsigned, bit width *)
  | String of int  (** maxsize: content length bound, excluding NUL *)
  | Enum of string * string list
  | Array of t * int
  | Struct of string * (string * t) list
  | Alias of string * t  (** named alias, to help the LLM; erased in C *)

(** Constructors mirroring the Python API of Fig. 4. *)

val bool_ : t
val char_ : t
val int_ : bits:int -> t
val string_ : maxsize:int -> t
val enum : string -> string list -> t
val array : t -> int -> t
val struct_ : string -> (string * t) list -> t
val alias : string -> t -> t

val strip_alias : t -> t

val to_minic : t -> Eywa_minic.Ast.ty
(** The MiniC type this lowers to. *)

val declarations :
  t list -> Eywa_minic.Ast.enum_def list * Eywa_minic.Ast.struct_def list
(** Enum and struct typedefs needed by the given types, each emitted
    once, dependencies first.
    @raise Invalid_argument if two distinct types share a name. *)

val default_value : t -> Eywa_minic.Value.t
(** Concrete zero value honouring the declared string bounds. *)

val pp : Format.formatter -> t -> unit

(** A named, documented function argument (paper's [eywa.Arg]). *)
module Arg : sig
  type ty = t

  type t = { name : string; ty : ty; desc : string }

  val v : string -> ty -> string -> t
end
