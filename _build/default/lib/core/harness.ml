module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value
module Sv = Eywa_symex.Sv
module Regex = Eywa_symex.Regex
module Term = Eywa_solver.Term

let entry_name = "__eywa_harness"
let out_struct = "EywaOut"

let regex_guards g (main : Emodule.func) =
  List.filter_map
    (fun src ->
      match src with
      | Emodule.Regex r -> Some r
      | Emodule.Func _ | Emodule.Custom _ -> None)
    (Graph.pipes_into g (Emodule.Func main))

let func_guards g (main : Emodule.func) =
  List.filter_map
    (fun src ->
      match src with
      | Emodule.Func f -> Some f
      | Emodule.Regex _ | Emodule.Custom _ -> None)
    (Graph.pipes_into g (Emodule.Func main))

(* Types used anywhere in this model: main, its guards, and every
   call-edge dependency of either. *)
let model_types g (main : Emodule.func) =
  let of_func (m : Emodule.func) = List.map (fun (a : Etype.Arg.t) -> a.ty) m.args in
  let guard_types = List.concat_map of_func (func_guards g main) in
  Prompt.involved_types g main
  @ guard_types
  @ List.concat_map (fun f -> Prompt.involved_types g f) (func_guards g main)

let build g ~main ~funcs =
  let enums, structs = Etype.declarations (model_types g main) in
  let ret_ty = Etype.to_minic (Emodule.result main).ty in
  let out_def =
    { Ast.sname = out_struct; fields = [ (Ast.Tbool, "bad_input"); (ret_ty, "result") ] }
  in
  let regex_protos =
    List.map
      (fun (r : Emodule.regex) ->
        { Ast.pname = r.rname; pret = Ast.Tbool; pparams = [ (Ast.Tstring, "s") ];
          pdoc = [ Printf.sprintf "matches %s" r.pattern ] })
      (regex_guards g main)
  in
  let inputs = Emodule.inputs main in
  let params = List.map (fun (a : Etype.Arg.t) -> (Etype.to_minic a.ty, a.name)) inputs in
  let guard_expr_of = function
    | `Regex (r : Emodule.regex) -> Ast.Ecall (r.rname, [ Ast.Evar r.target.name ])
    | `Func (f : Emodule.func) ->
        let args =
          List.map (fun (a : Etype.Arg.t) -> Ast.Evar a.name) (Emodule.inputs f)
        in
        Ast.Ecall (f.name, args)
  in
  let guards =
    List.filter_map
      (fun src ->
        match src with
        | Emodule.Regex r -> Some (`Regex r)
        | Emodule.Func f -> Some (`Func f)
        | Emodule.Custom _ -> None)
      (Graph.pipes_into g (Emodule.Func main))
  in
  let valid_updates =
    List.map
      (fun guard ->
        Ast.Sassign
          ( Ast.Lvar "valid",
            Ast.Ebinop (Ast.Land, Ast.Evar "valid", guard_expr_of guard) ))
      guards
  in
  let main_call =
    Ast.Ecall (main.name, List.map (fun (a : Etype.Arg.t) -> Ast.Evar a.name) inputs)
  in
  let store_result =
    match ret_ty with
    | Ast.Tstring ->
        Ast.Sexpr
          (Ast.Ecall ("strcpy", [ Ast.Efield (Ast.Evar "out", "result"); main_call ]))
    | _ -> Ast.Sassign (Ast.Lfield (Ast.Lvar "out", "result"), main_call)
  in
  let body =
    [
      Ast.Sdecl (Ast.Tstruct out_struct, "out", None);
      Ast.Sdecl (Ast.Tbool, "valid", Some (Ast.Ebool true));
    ]
    @ valid_updates
    @ [
        Ast.Sif
          ( Ast.Evar "valid",
            [
              Ast.Sassign (Ast.Lfield (Ast.Lvar "out", "bad_input"), Ast.Ebool false);
              store_result;
            ],
            [ Ast.Sassign (Ast.Lfield (Ast.Lvar "out", "bad_input"), Ast.Ebool true) ] );
        Ast.Sreturn (Some (Ast.Evar "out"));
      ]
  in
  let harness =
    { Ast.fname = entry_name; ret = Ast.Tstruct out_struct; params; body;
      doc = [ "Eywa symbolic test harness (generated)" ] }
  in
  {
    Ast.enums;
    structs = structs @ [ out_def ];
    protos = regex_protos;
    funcs = funcs @ [ harness ];
  }

(* ----- symbolic inputs ----- *)

let alphabet_domain alphabet =
  let codes = List.sort_uniq compare (0 :: List.map Char.code alphabet) in
  Array.of_list codes

let int_domain bits =
  let width = min bits 12 in
  Array.init (1 lsl width) (fun i -> i)

let rec sym_of_ty ~alphabet ~name ty =
  match Etype.strip_alias ty with
  | Etype.Bool -> Sv.fresh_scalar ~name Ast.Tbool ~domain:[| 0; 1 |]
  | Etype.Char -> Sv.fresh_scalar ~name Ast.Tchar ~domain:(alphabet_domain alphabet)
  | Etype.Int bits -> Sv.fresh_scalar ~name (Ast.Tint bits) ~domain:(int_domain bits)
  | Etype.String n -> Sv.symbolic_string ~name ~alphabet:(alphabet_domain alphabet) n
  | Etype.Enum (ename, members) ->
      Sv.fresh_scalar ~name (Ast.Tenum ename)
        ~domain:(Array.init (List.length members) (fun i -> i))
  | Etype.Array (t, n) ->
      Sv.Sarray
        (Array.init n (fun i ->
             sym_of_ty ~alphabet ~name:(Printf.sprintf "%s[%d]" name i) t))
  | Etype.Struct (sname, fields) ->
      Sv.Sstruct
        ( sname,
          List.map
            (fun (f, t) -> (f, sym_of_ty ~alphabet ~name:(name ^ "." ^ f) t))
            fields )
  | Etype.Alias (_, t) -> sym_of_ty ~alphabet ~name t

let symbolic_inputs ~alphabet (main : Emodule.func) =
  List.map
    (fun (a : Etype.Arg.t) -> (a.name, sym_of_ty ~alphabet ~name:a.name a.ty))
    (Emodule.inputs main)

(* ----- regex natives ----- *)

let natives_symbolic g main =
  List.map
    (fun (r : Emodule.regex) ->
      let re = Regex.parse r.pattern in
      ( r.rname,
        fun (args : Sv.t list) ->
          match args with
          | [ Sv.Sstring cells ] -> Sv.Sscalar (Ast.Tbool, Regex.compile_term re cells)
          | _ -> invalid_arg (r.rname ^ ": expected one string argument") ))
    (regex_guards g main)

let natives_concrete g main =
  List.map
    (fun (r : Emodule.regex) ->
      let re = Regex.parse r.pattern in
      ( r.rname,
        fun (args : Value.t list) ->
          match args with
          | [ (Value.Vstring _ as s) ] -> Value.Vbool (Regex.matches re (Value.cstring s))
          | _ -> invalid_arg (r.rname ^ ": expected one string argument") ))
    (regex_guards g main)
