(** The LLM interface.

    Eywa only ever sends prompt text and receives completion text; the
    default production implementation lives in [eywa.llm] (a simulated
    GPT-4 with a protocol knowledge base), and tests plug in canned or
    adversarial oracles through the same interface. *)

type request = {
  system : string;
  user : string;
  temperature : float;  (** 0.0 – 1.0, the paper's tau *)
  seed : int;  (** sampling seed; distinct per model index *)
}

type t = {
  name : string;
  complete : request -> string;  (** returns C source text *)
}

val make : name:string -> (request -> string) -> t

val constant : string -> t
(** Oracle that always returns the given text; for tests. *)
