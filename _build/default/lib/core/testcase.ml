module Value = Eywa_minic.Value

type t = {
  inputs : (string * Value.t) list;
  result : Value.t option;
  bad_input : bool;
  error : string option;
}

let input t name = List.assoc name t.inputs

let input_string t name = Value.cstring (input t name)

(* Strings are canonicalised to their C contents so buffers that differ
   only after the first NUL coincide. *)
let rec canon (v : Value.t) =
  match v with
  | Value.Vstring _ -> Printf.sprintf "%S" (Value.cstring v)
  | Value.Vstruct (n, fs) ->
      Printf.sprintf "%s{%s}" n
        (String.concat ";" (List.map (fun (f, w) -> f ^ "=" ^ canon w) fs))
  | Value.Varray vs ->
      Printf.sprintf "[%s]" (String.concat ";" (List.map canon (Array.to_list vs)))
  | Value.Vunit | Value.Vbool _ | Value.Vchar _ | Value.Vint _ | Value.Venum _ ->
      Value.to_string v

let key t =
  String.concat "," (List.map (fun (name, v) -> name ^ "=" ^ canon v) t.inputs)

let dedup tests =
  let seen = Hashtbl.create (List.length tests) in
  List.filter
    (fun t ->
      let k = key t in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    tests

let pp ppf t =
  Format.fprintf ppf "{%s -> %s%s%s}" (key t)
    (match t.result with None -> "<none>" | Some v -> canon v)
    (if t.bad_input then " (bad-input)" else "")
    (match t.error with None -> "" | Some e -> Printf.sprintf " (error: %s)" e)

let to_string t = Format.asprintf "%a" pp t
