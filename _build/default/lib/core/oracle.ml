type request = { system : string; user : string; temperature : float; seed : int }

type t = { name : string; complete : request -> string }

let make ~name complete = { name; complete }

let constant text = { name = "constant"; complete = (fun _ -> text) }
