type t = {
  mutable pipes : (Emodule.t * Emodule.t) list;  (* insertion order *)
  mutable calls : (Emodule.t * Emodule.t list) list;
}

let create () = { pipes = []; calls = [] }

let arg_names args = List.map (fun (a : Etype.Arg.t) -> a.name) args

let pipe g src dst =
  (match dst with
  | Emodule.Func _ -> ()
  | Emodule.Regex _ | Emodule.Custom _ ->
      invalid_arg "Graph.pipe: destination must be a Func module");
  (match (src, dst) with
  | Emodule.Regex r, Emodule.Func f ->
      if not (List.mem r.target.name (arg_names (Emodule.inputs f))) then
        invalid_arg
          (Printf.sprintf "Graph.pipe: regex target %S is not an input of %s"
             r.target.name f.name)
  | (Emodule.Func _ | Emodule.Custom _), _ | _, (Emodule.Regex _ | Emodule.Custom _) ->
      ());
  g.pipes <- g.pipes @ [ (src, dst) ]

let call_edge g m deps =
  let check = function
    | Emodule.Func _ | Emodule.Custom _ -> ()
    | Emodule.Regex _ ->
        invalid_arg "Graph.call_edge: regex modules cannot be call targets"
  in
  check m;
  List.iter check deps;
  g.calls <- g.calls @ [ (m, deps) ]

let modules g =
  let seen = ref [] in
  let add m =
    if not (List.exists (Emodule.equal m) !seen) then seen := !seen @ [ m ]
  in
  List.iter
    (fun (a, b) ->
      add a;
      add b)
    g.pipes;
  List.iter
    (fun (a, bs) ->
      add a;
      List.iter add bs)
    g.calls;
  !seen

let pipes_into g m =
  List.filter_map
    (fun (src, dst) -> if Emodule.equal dst m then Some src else None)
    g.pipes

let call_deps g m =
  List.concat_map
    (fun (src, deps) -> if Emodule.equal src m then deps else [])
    g.calls

let synthesis_order g ~main =
  (* roots: main plus every Func pipe-guard feeding it *)
  let guards =
    List.filter
      (fun src -> match src with Emodule.Func _ | Emodule.Custom _ -> true
                               | Emodule.Regex _ -> false)
      (pipes_into g main)
  in
  let order = ref [] in
  let visiting = ref [] in
  let exception Cycle of string in
  let rec visit m =
    if List.exists (Emodule.equal m) !order then ()
    else if List.exists (Emodule.equal m) !visiting then
      raise (Cycle (Emodule.name m))
    else begin
      visiting := m :: !visiting;
      List.iter visit (call_deps g m);
      visiting := List.filter (fun x -> not (Emodule.equal x m)) !visiting;
      order := !order @ [ m ]
    end
  in
  match List.iter visit (guards @ [ main ]) with
  | () -> Ok !order
  | exception Cycle name ->
      Error (Printf.sprintf "call-edge cycle through module %S" name)
