lib/core/synthesis.ml: Emodule Etype Eywa_minic Eywa_solver Eywa_symex Graph Harness List Oracle Printf Prompt String Testcase Unix
