lib/core/testcase.mli: Eywa_minic Format
