lib/core/oracle.ml:
