lib/core/serialize.mli: Eywa_minic Testcase
