lib/core/harness.ml: Array Char Emodule Etype Eywa_minic Eywa_solver Eywa_symex Graph List Printf Prompt
