lib/core/prompt.ml: Emodule Etype Eywa_minic Graph List Printf String
