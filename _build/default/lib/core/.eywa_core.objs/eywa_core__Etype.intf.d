lib/core/etype.mli: Eywa_minic Format
