lib/core/etype.ml: Array Eywa_minic Format List Printf String
