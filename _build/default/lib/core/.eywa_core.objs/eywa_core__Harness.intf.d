lib/core/harness.mli: Emodule Eywa_minic Eywa_symex Graph
