lib/core/serialize.ml: Array Buffer Char Eywa_minic List Printf String Testcase
