lib/core/graph.ml: Emodule Etype List Printf
