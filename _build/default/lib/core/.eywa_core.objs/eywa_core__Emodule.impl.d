lib/core/emodule.ml: Etype Eywa_symex List Printf
