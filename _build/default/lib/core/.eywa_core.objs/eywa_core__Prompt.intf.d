lib/core/prompt.mli: Emodule Etype Eywa_minic Graph
