lib/core/graph.mli: Emodule
