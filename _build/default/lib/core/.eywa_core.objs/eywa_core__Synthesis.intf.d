lib/core/synthesis.mli: Emodule Eywa_minic Eywa_symex Graph Oracle Testcase
