lib/core/oracle.mli:
