lib/core/emodule.mli: Etype
