lib/core/testcase.ml: Array Eywa_minic Format Hashtbl List Printf String
