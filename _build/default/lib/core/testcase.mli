(** Test cases produced by the Test Generator (§3.6).

    Each test assigns a concrete value to every input argument of the
    model and records the model's own output — used only as a path
    label, never as ground truth, because differential testing supplies
    the oracle (§2.2). *)

type t = {
  inputs : (string * Eywa_minic.Value.t) list;  (** argument name, value *)
  result : Eywa_minic.Value.t option;  (** model output; [None] on crash paths *)
  bad_input : bool;  (** a validity guard rejected the inputs *)
  error : string option;  (** set on crash paths (the model itself crashed) *)
}

val input : t -> string -> Eywa_minic.Value.t
(** @raise Not_found if the argument is absent. *)

val input_string : t -> string -> string
(** Convenience: the C-string contents of a string input. *)

val key : t -> string
(** Canonical rendering of the inputs; two tests with equal keys drive
    implementations identically, so uniqueness (the paper's "unique
    test cases") is uniqueness of keys. *)

val dedup : t list -> t list
(** Stable dedup by {!key}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
