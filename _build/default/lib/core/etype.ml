module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value

type t =
  | Bool
  | Char
  | Int of int
  | String of int
  | Enum of string * string list
  | Array of t * int
  | Struct of string * (string * t) list
  | Alias of string * t

let bool_ = Bool
let char_ = Char

let int_ ~bits =
  if bits <= 0 || bits > 32 then invalid_arg "Etype.int_: bits must be in 1..32";
  Int bits

let string_ ~maxsize =
  if maxsize <= 0 then invalid_arg "Etype.string_: maxsize must be positive";
  String maxsize

let enum name members =
  if members = [] then invalid_arg "Etype.enum: no members";
  Enum (name, members)

let array t n =
  if n <= 0 then invalid_arg "Etype.array: size must be positive";
  Array (t, n)

let struct_ name fields =
  if fields = [] then invalid_arg "Etype.struct_: no fields";
  Struct (name, fields)

let alias name t = Alias (name, t)

let rec strip_alias = function Alias (_, t) -> strip_alias t | t -> t

let rec to_minic = function
  | Bool -> Ast.Tbool
  | Char -> Ast.Tchar
  | Int bits -> Ast.Tint bits
  | String _ -> Ast.Tstring
  | Enum (name, _) -> Ast.Tenum name
  | Array (t, n) -> Ast.Tarray (to_minic t, n)
  | Struct (name, _) -> Ast.Tstruct name
  | Alias (_, t) -> to_minic t

let declarations tys =
  let enums = ref [] and structs = ref [] in
  let add_enum name members =
    match List.find_opt (fun (e : Ast.enum_def) -> e.ename = name) !enums with
    | Some e ->
        if e.members <> members then
          invalid_arg (Printf.sprintf "Etype.declarations: conflicting enum %S" name)
    | None -> enums := !enums @ [ { Ast.ename = name; members } ]
  in
  let add_struct name fields =
    match List.find_opt (fun (s : Ast.struct_def) -> s.sname = name) !structs with
    | Some s ->
        if s.fields <> fields then
          invalid_arg (Printf.sprintf "Etype.declarations: conflicting struct %S" name)
    | None -> structs := !structs @ [ { Ast.sname = name; fields } ]
  in
  let rec go = function
    | Bool | Char | Int _ | String _ -> ()
    | Enum (name, members) -> add_enum name members
    | Array (t, _) -> go t
    | Struct (name, fields) ->
        (* dependencies first *)
        List.iter (fun (_, t) -> go t) fields;
        add_struct name (List.map (fun (f, t) -> (to_minic t, f)) fields)
    | Alias (_, t) -> go t
  in
  List.iter go tys;
  (!enums, !structs)

let rec default_value = function
  | Bool -> Value.Vbool false
  | Char -> Value.Vchar '\000'
  | Int _ -> Value.Vint 0
  | String n -> Value.Vstring (String.make (n + 1) '\000')
  | Enum (name, _) -> Value.Venum (name, 0)
  | Array (t, n) -> Value.Varray (Array.init n (fun _ -> default_value t))
  | Struct (name, fields) ->
      Value.Vstruct (name, List.map (fun (f, t) -> (f, default_value t)) fields)
  | Alias (_, t) -> default_value t

let rec pp ppf = function
  | Bool -> Format.fprintf ppf "Bool"
  | Char -> Format.fprintf ppf "Char"
  | Int bits -> Format.fprintf ppf "Int(bits=%d)" bits
  | String n -> Format.fprintf ppf "String(maxsize=%d)" n
  | Enum (name, members) ->
      Format.fprintf ppf "Enum(%S, [%s])" name (String.concat "; " members)
  | Array (t, n) -> Format.fprintf ppf "Array(%a, %d)" pp t n
  | Struct (name, fields) ->
      Format.fprintf ppf "Struct(%S, {%a})" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           (fun ppf (f, t) -> Format.fprintf ppf "%s=%a" f pp t))
        fields
  | Alias (name, t) -> Format.fprintf ppf "Alias(%S, %a)" name pp t

module Arg = struct
  type nonrec ty = t

  type t = { name : string; ty : ty; desc : string }

  let v name ty desc = { name; ty; desc }
end
