module Ast = Eywa_minic.Ast
module Pretty = Eywa_minic.Pretty

let system_prompt =
  String.concat "\n"
    [
      "Your goal is to implement the C function provided by the user.";
      "The result should be the complete implementation of the code, including:";
      "  1. All the import statements needed, including those provided in the \
       input. All the imports from the input should be included.";
      "  2. All the type definitions provided by the user. The type definitions \
       should NOT be modified.";
      "  3. ONLY write code for the function that has 'implement me' written in \
       its function body.";
      "  4. If any additional function prototypes are provided, you can use them \
       as helper functions. There is no need to define them. You can assume they \
       will be done later by the user.";
      "  5. Do NOT change the provided function declarations/prototypes.";
      "  6. Whenever you define a struct, write it in one line. Do not put \
       newline. e.g. struct { int x; int y; }";
      "Do NOT add a `main()` function or any examples, just implement the \
       function.";
      "DO NOT USE fenced code blocks, just write the code.";
      "DO NOT USE C strtok function. Implement your own.";
    ]

type t = { system : string; user : string; target : string }

let doc_of_func (f : Emodule.func) =
  let inputs = Emodule.inputs f in
  let result = Emodule.result f in
  [ f.desc; "Parameters:" ]
  @ List.map
      (fun (a : Etype.Arg.t) -> Printf.sprintf "  %s: %s" a.name a.desc)
      inputs
  @ [ "Return Value:"; Printf.sprintf "  %s" result.desc ]

let signature_of (f : Emodule.func) =
  let inputs = Emodule.inputs f in
  let result = Emodule.result f in
  {
    Ast.fname = f.name;
    ret = Etype.to_minic result.ty;
    params = List.map (fun (a : Etype.Arg.t) -> (Etype.to_minic a.ty, a.name)) inputs;
    body = [];
    doc = doc_of_func f;
  }

let proto_of (f : Emodule.func) =
  let s = signature_of f in
  { Ast.pname = s.fname; pret = s.ret; pparams = s.params; pdoc = s.doc }

(* Every Func module transitively reachable from [f] through call
   edges, excluding [f]; these contribute types and prototypes. *)
let reachable_deps g (f : Emodule.func) =
  let seen = ref [] in
  let rec visit m =
    if not (List.exists (Emodule.equal m) !seen) then begin
      seen := !seen @ [ m ];
      List.iter visit (Graph.call_deps g m)
    end
  in
  List.iter visit (Graph.call_deps g (Emodule.Func f));
  !seen

let involved_types g (f : Emodule.func) =
  let of_func (m : Emodule.func) = List.map (fun (a : Etype.Arg.t) -> a.ty) m.args in
  let dep_types =
    List.concat_map
      (fun m ->
        match m with
        | Emodule.Func df -> of_func df
        | Emodule.Regex _ | Emodule.Custom _ -> [])
      (reachable_deps g f)
  in
  of_func f @ dep_types

let type_declarations g f =
  let enums, structs = Etype.declarations (involved_types g f) in
  String.concat "\n\n"
    (List.map Pretty.enum_def enums @ List.map Pretty.struct_def structs)

let for_module g (f : Emodule.func) =
  let headers =
    "#include <stdint.h>\n#include <stdbool.h>\n#include <string.h>"
  in
  let types = type_declarations g f in
  let protos =
    List.filter_map
      (fun m ->
        match m with
        | Emodule.Func df -> Some (Pretty.proto (proto_of df))
        | Emodule.Custom _ | Emodule.Regex _ -> None)
      (reachable_deps g f)
  in
  let target = signature_of f in
  let target_text =
    Printf.sprintf "%s%s {\n  // implement me\n"
      (String.concat "" (List.map (fun l -> "// " ^ l ^ "\n") target.doc))
      (Pretty.signature target)
  in
  let user =
    String.concat "\n\n"
      ((headers :: (if types = "" then [] else [ types ])) @ protos @ [ target_text ])
  in
  { system = system_prompt; user; target = f.name }
