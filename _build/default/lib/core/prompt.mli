(** The Prompt Generator (§3.4).

    For each [Func] module, Eywa builds a user prompt that frames the
    implementation as a completion problem — C typedefs for every type
    involved, prototypes (with doc comments) for modules reachable via
    call edges, then the documented signature of the target function
    with an open brace — plus a fixed system prompt (paper Fig. 13).
    The simulated LLM parses this text back; nothing else crosses the
    boundary, keeping the pipeline honest to the paper's. *)

val system_prompt : string
(** The system prompt of Fig. 13, verbatim in structure. *)

type t = {
  system : string;
  user : string;
  target : string;  (** function name being completed, for logging *)
}

val for_module : Graph.t -> Emodule.func -> t
(** Build the prompt for one module given its graph context. *)

val signature_of : Emodule.func -> Eywa_minic.Ast.func
(** The MiniC signature (empty body) for a func module: the last arg
    becomes the return type, the rest the parameters, with the doc
    comment assembled from the descriptions. *)

val type_declarations : Graph.t -> Emodule.func -> string
(** The typedef block shared by this module's prompt. *)

val involved_types : Graph.t -> Emodule.func -> Etype.t list
(** Types used by the module and its transitive call-edge dependencies;
    the harness builder extends this with pipe-guard types. *)
