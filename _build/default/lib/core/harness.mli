(** The Symbolic Compiler (§3.5).

    Assembles the complete MiniC program for a model — user type
    definitions, the LLM-implemented module functions, prototypes for
    the built-in regex guards — and the harness entry point of Fig. 1b:

    {v
    EywaOut __eywa_harness(<symbolic inputs>) {
      EywaOut out;
      bool valid = true;
      valid = valid && __eywa_regex_0(x0);   // one per pipe guard
      valid = valid && check_valid(x0, x1);
      if (valid) { out.bad_input = false; out.result = main(x0, x1); }
      else { out.bad_input = true; }
      return out;
    }
    v}

    Inputs are created as symbolic atoms over bounded domains, the
    moral equivalent of [klee_make_symbolic] on every base type. *)

module Sv = Eywa_symex.Sv

val entry_name : string
val out_struct : string

val build :
  Graph.t ->
  main:Emodule.func ->
  funcs:Eywa_minic.Ast.func list ->
  Eywa_minic.Ast.program
(** Full program: typedefs, regex prototypes, [funcs] (the generated
    module implementations, callees first), and the harness. *)

val symbolic_inputs :
  alphabet:char list -> Emodule.func -> (string * Sv.t) list
(** One symbolic value per input argument of the main module, named
    after the argument. [alphabet] is the candidate character set for
    string and char atoms (NUL is always added, so strings can be
    shorter than their bound). *)

val natives_symbolic : Graph.t -> Emodule.func -> (string * (Sv.t list -> Sv.t)) list
(** Regex guards as pure symbolic natives (term-returning). *)

val natives_concrete :
  Graph.t ->
  Emodule.func ->
  (string * (Eywa_minic.Value.t list -> Eywa_minic.Value.t)) list
(** The same guards for concrete replay with {!Eywa_minic.Interp}. *)
