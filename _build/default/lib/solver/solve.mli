(** Backtracking search over finite-domain constraint sets.

    The solver assigns variables in most-constrained-first order and
    prunes with partial evaluation: after each assignment, every
    constraint is re-evaluated under the partial model and the branch is
    abandoned as soon as one is determined false. Domains are small by
    construction (the Eywa pipeline bounds every input type), so this is
    complete and fast in practice. *)

type assignment = (int, int) Hashtbl.t
(** Maps variable id to its chosen value. *)

type stats = { decisions : int; conflicts : int }

type outcome =
  | Sat of assignment
  | Unsat
  | Unknown  (** step budget exhausted *)

val solve : ?max_decisions:int -> ?rotate:int -> Term.t list -> outcome
(** [solve cs] finds one model of the conjunction of [cs].
    [max_decisions] bounds the search (default [2_000_000]).
    [rotate] (default 0) rotates each variable's value ordering, so
    different rotations of the same satisfiable problem tend to return
    different models — the executor rotates per path to diversify the
    concrete tests it emits, mirroring Klee's per-path value bias. *)

val solve_with_stats :
  ?max_decisions:int -> ?rotate:int -> Term.t list -> outcome * stats

val is_sat : ?max_decisions:int -> Term.t list -> bool
(** [is_sat cs] is [true] iff [solve cs] is [Sat _]. An [Unknown]
    outcome counts as unsatisfiable for the purposes of path pruning,
    which keeps exploration sound-for-tests (we never emit a test from
    an unproven path). *)

val value : assignment -> Term.var -> int
(** Value of [v] in the model, defaulting to the first domain element
    for variables the search never needed to constrain. *)

val check : assignment -> Term.t list -> bool
(** [check m cs] re-evaluates every constraint under [m] (unassigned
    variables default as in {!value}); used by tests as a soundness
    oracle. *)
