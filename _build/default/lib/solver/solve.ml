type assignment = (int, int) Hashtbl.t

type stats = { decisions : int; conflicts : int }

type outcome = Sat of assignment | Unsat | Unknown

exception Budget

(* Variable ordering: smaller domain first, ties broken by occurrence
   count (more occurrences = more constraining = earlier). *)
let order_vars constraints =
  let occ = Hashtbl.create 32 in
  let bump v =
    let n = try Hashtbl.find occ v.Term.vid with Not_found -> 0 in
    Hashtbl.replace occ v.Term.vid (n + 1)
  in
  let all = Hashtbl.create 32 in
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          bump v;
          if not (Hashtbl.mem all v.Term.vid) then Hashtbl.add all v.Term.vid v)
        (Term.vars c))
    constraints;
  let vs = Hashtbl.fold (fun _ v acc -> v :: acc) all [] in
  let key v =
    (Array.length v.Term.domain, - (try Hashtbl.find occ v.Term.vid with Not_found -> 0))
  in
  List.sort (fun a b -> compare (key a) (key b)) vs

let solve_with_stats ?(max_decisions = 2_000_000) ?(rotate = 0) constraints =
  (* Drop constant-true constraints up front; fail fast on constant false. *)
  let constraints = List.filter (fun c -> not (Term.is_true c)) constraints in
  if List.exists Term.is_false constraints then (Unsat, { decisions = 0; conflicts = 0 })
  else begin
    let vars = Array.of_list (order_vars constraints) in
    let model : assignment = Hashtbl.create 32 in
    let decisions = ref 0 and conflicts = ref 0 in
    let env vid = Hashtbl.find_opt model vid in
    (* Constraints sorted so that those over early variables are checked
       first; we simply re-check all still-undetermined ones. *)
    let consistent () =
      List.for_all
        (fun c -> match Term.peval env c with Some 0 -> false | _ -> true)
        constraints
    in
    let n = Array.length vars in
    let rec assign i =
      if i >= n then true
      else begin
        let v = vars.(i) in
        let dom = v.Term.domain in
        let len = Array.length dom in
        (* Value-order rotation: different [rotate] inputs bias the
           search towards different corners of the space, the way
           Klee's value assignment varies per path (§4.3's observation
           that similar values are chosen "unless strictly
           constrained" is about exactly this bias). *)
        let start = Term.rotate_index ~rotate ~vid:v.Term.vid len in
        let rec try_values j =
          if j >= len then begin
            Hashtbl.remove model v.Term.vid;
            incr conflicts;
            false
          end
          else begin
            incr decisions;
            if !decisions > max_decisions then raise Budget;
            Hashtbl.replace model v.Term.vid dom.((start + j) mod len);
            if consistent () && assign (i + 1) then true else try_values (j + 1)
          end
        in
        try_values 0
      end
    in
    let outcome =
      try if assign 0 then Sat model else Unsat with Budget -> Unknown
    in
    (outcome, { decisions = !decisions; conflicts = !conflicts })
  end

let solve ?max_decisions ?rotate constraints =
  fst (solve_with_stats ?max_decisions ?rotate constraints)

let is_sat ?max_decisions constraints =
  match solve ?max_decisions constraints with
  | Sat _ -> true
  | Unsat | Unknown -> false

let value m v =
  match Hashtbl.find_opt m v.Term.vid with
  | Some x -> x
  | None -> v.Term.domain.(0)

let check m constraints =
  let domains = Hashtbl.create 32 in
  List.iter
    (fun c -> List.iter (fun v -> Hashtbl.replace domains v.Term.vid v) (Term.vars c))
    constraints;
  let env vid =
    match Hashtbl.find_opt m vid with
    | Some x -> x
    | None -> (Hashtbl.find domains vid).Term.domain.(0)
  in
  List.for_all (fun c -> Term.eval env c <> 0) constraints
