lib/solver/solve.ml: Array Hashtbl List Term
