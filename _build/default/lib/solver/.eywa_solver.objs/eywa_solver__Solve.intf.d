lib/solver/solve.mli: Hashtbl Term
