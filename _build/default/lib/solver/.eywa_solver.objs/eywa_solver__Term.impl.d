lib/solver/term.ml: Array Format Hashtbl List
