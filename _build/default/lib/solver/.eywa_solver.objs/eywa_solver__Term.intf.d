lib/solver/term.mli: Format
