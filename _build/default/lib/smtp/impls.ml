module Stategraph = Eywa_stategraph.Stategraph

type bug = {
  quirk : Machine.quirk;
  description : string;
  bug_type : string;
  new_bug : bool;
}

type t = { name : string; bugs : bug list }

let all =
  [
    {
      name = "aiosmtpd";
      bugs =
        [
          {
            quirk = Machine.Accept_mail_without_helo;
            description = "Server accepting request without appropriate headers";
            bug_type = "Input Validation";
            new_bug = true;
          };
        ];
    };
    { name = "smtpd"; bugs = [] };
    { name = "opensmtpd"; bugs = [] };
  ]

let find name = List.find_opt (fun impl -> impl.name = name) all

let quirks impl = List.map (fun b -> b.quirk) impl.bugs

let handle impl state command = Machine.handle ~quirks:(quirks impl) state command

let run_session impl commands = Machine.run_session ~quirks:(quirks impl) commands

let drive_and_probe impl graph ~state ~input =
  match Stategraph.path_to graph ~start:"INITIAL" ~goal:state with
  | None -> Error (Printf.sprintf "state %s unreachable in the extracted graph" state)
  | Some prefix ->
      let commands =
        List.map Machine.command_of_letter prefix
        @ [ Machine.command_of_letter input ]
      in
      let replies = run_session impl commands in
      (* the reply to the probe is the last one *)
      (match List.rev replies with
      | last :: _ -> Ok last
      | [] -> Error "empty session")

let bug_catalog =
  List.concat_map (fun impl -> List.map (fun b -> (impl.name, b)) impl.bugs) all
