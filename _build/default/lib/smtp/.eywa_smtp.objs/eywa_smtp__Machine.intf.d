lib/smtp/machine.mli:
