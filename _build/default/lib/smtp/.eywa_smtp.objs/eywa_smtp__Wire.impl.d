lib/smtp/wire.ml: List Machine Printf String
