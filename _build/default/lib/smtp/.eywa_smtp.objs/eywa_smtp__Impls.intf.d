lib/smtp/impls.mli: Eywa_stategraph Machine
