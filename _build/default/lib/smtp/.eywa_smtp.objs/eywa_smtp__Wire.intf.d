lib/smtp/wire.mli: Machine
