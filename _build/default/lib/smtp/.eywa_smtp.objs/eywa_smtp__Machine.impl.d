lib/smtp/machine.ml: List
