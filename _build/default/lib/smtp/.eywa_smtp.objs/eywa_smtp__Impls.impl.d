lib/smtp/impls.ml: Eywa_stategraph List Machine Printf
