(** SMTP wire grammar (RFC 5321 §4.1): parsing command lines and
    formatting replies.

    The session driver speaks {!Machine.command}s; this module is the
    boundary to actual socket lines — parsing is case-insensitive in
    the verb, validates the reverse-path/forward-path brackets, and
    formats the three-digit replies with their standard texts. *)

val parse_command : string -> Machine.command
(** ["MAIL FROM:<a@b>"] -> [Mail_from], ["helo x"] -> [Helo], etc.
    Unrecognised or malformed lines become [Other line]. A lone ["."]
    is [End_data]. *)

val format_command : Machine.command -> string
(** The canonical wire line (same as {!Machine.command_to_wire}). *)

val format_reply : string -> string
(** Expand a reply code to its standard line, e.g. ["250"] ->
    ["250 OK"], ["354"] -> ["354 End data with <CR><LF>.<CR><LF>"]. *)

val parse_reply : string -> (string, string) result
(** The leading three-digit code of a reply line. *)

val run_wire_session :
  ?quirks:Machine.quirk list -> string list -> string list
(** A full session at the wire level: parse each line, run the machine,
    format each reply. *)
