type state =
  | Initial
  | Helo_sent
  | Ehlo_sent
  | Mail_from_received
  | Rcpt_to_received
  | Data_received
  | Quitted

type command =
  | Helo
  | Ehlo
  | Mail_from
  | Rcpt_to
  | Data
  | End_data
  | Quit
  | Other of string

type quirk = Accept_mail_without_helo

let state_to_string = function
  | Initial -> "INITIAL"
  | Helo_sent -> "HELO_SENT"
  | Ehlo_sent -> "EHLO_SENT"
  | Mail_from_received -> "MAIL_FROM_RECEIVED"
  | Rcpt_to_received -> "RCPT_TO_RECEIVED"
  | Data_received -> "DATA_RECEIVED"
  | Quitted -> "QUITTED"

let state_of_string = function
  | "INITIAL" -> Some Initial
  | "HELO_SENT" -> Some Helo_sent
  | "EHLO_SENT" -> Some Ehlo_sent
  | "MAIL_FROM_RECEIVED" -> Some Mail_from_received
  | "RCPT_TO_RECEIVED" -> Some Rcpt_to_received
  | "DATA_RECEIVED" -> Some Data_received
  | "QUITTED" -> Some Quitted
  | _ -> None

let command_to_letter = function
  | Helo -> "H"
  | Ehlo -> "E"
  | Mail_from -> "M"
  | Rcpt_to -> "R"
  | Data -> "D"
  | End_data -> "."
  | Quit -> "Q"
  | Other s -> s

let command_of_letter = function
  | "H" -> Helo
  | "E" -> Ehlo
  | "M" -> Mail_from
  | "R" -> Rcpt_to
  | "D" -> Data
  | "." -> End_data
  | "Q" -> Quit
  | s -> Other s

let command_to_wire = function
  | Helo -> "HELO client.test"
  | Ehlo -> "EHLO client.test"
  | Mail_from -> "MAIL FROM:<alice@test>"
  | Rcpt_to -> "RCPT TO:<bob@test>"
  | Data -> "DATA"
  | End_data -> "."
  | Quit -> "QUIT"
  | Other s -> s

let handle ?(quirks = []) state command =
  let has q = List.mem q quirks in
  match (state, command) with
  | Initial, Helo -> ("250", Helo_sent)
  | Initial, Ehlo -> ("250", Ehlo_sent)
  | Initial, Quit -> ("221", Quitted)
  | Initial, Mail_from when has Accept_mail_without_helo ->
      ("250", Mail_from_received)
  | Initial, (Mail_from | Rcpt_to | Data | End_data | Other _) -> ("503", state)
  | (Helo_sent | Ehlo_sent), Mail_from -> ("250", Mail_from_received)
  | (Helo_sent | Ehlo_sent), Quit -> ("221", Quitted)
  | (Helo_sent | Ehlo_sent), (Helo | Ehlo | Rcpt_to | Data | End_data | Other _) ->
      ("503", state)
  | Mail_from_received, Rcpt_to -> ("250", Rcpt_to_received)
  | Mail_from_received, Quit -> ("221", Quitted)
  | Mail_from_received, (Helo | Ehlo | Mail_from | Data | End_data | Other _) ->
      ("503", state)
  | Rcpt_to_received, Data -> ("354", Data_received)
  | Rcpt_to_received, Rcpt_to -> ("250", state)
  | Rcpt_to_received, Quit -> ("221", Quitted)
  | Rcpt_to_received, (Helo | Ehlo | Mail_from | End_data | Other _) ->
      ("503", state)
  | Data_received, End_data -> ("250", Initial)
  | Data_received, (Helo | Ehlo | Mail_from | Rcpt_to | Data | Quit | Other _) ->
      ("354", state)
  | Quitted, (Helo | Ehlo | Mail_from | Rcpt_to | Data | End_data | Quit | Other _)
    ->
      ("221", state)

let run_session ?quirks commands =
  let rec go state acc = function
    | [] -> List.rev acc
    | c :: rest ->
        let reply, state' = handle ?quirks state c in
        go state' (reply :: acc) rest
  in
  go Initial [] commands

let reference_transitions =
  let t s c s' = ((state_to_string s, command_to_letter c), state_to_string s') in
  [
    t Initial Helo Helo_sent;
    t Initial Ehlo Ehlo_sent;
    t Initial Quit Quitted;
    t Helo_sent Mail_from Mail_from_received;
    t Helo_sent Quit Quitted;
    t Ehlo_sent Mail_from Mail_from_received;
    t Ehlo_sent Quit Quitted;
    t Mail_from_received Rcpt_to Rcpt_to_received;
    t Mail_from_received Quit Quitted;
    t Rcpt_to_received Data Data_received;
    t Rcpt_to_received Quit Quitted;
    t Data_received End_data Initial;
  ]
