let uppercase_prefix line n =
  String.uppercase_ascii (String.sub line 0 (min n (String.length line)))

let has_bracketed_path line colon_at =
  (* after "MAIL FROM:" / "RCPT TO:", require <...> *)
  let rest = String.sub line colon_at (String.length line - colon_at) in
  let rest = String.trim rest in
  String.length rest >= 2 && rest.[0] = '<' && rest.[String.length rest - 1] = '>'

let parse_command line =
  let trimmed = String.trim line in
  if trimmed = "." then Machine.End_data
  else if String.length trimmed >= 4 && uppercase_prefix trimmed 4 = "HELO" then
    Machine.Helo
  else if String.length trimmed >= 4 && uppercase_prefix trimmed 4 = "EHLO" then
    Machine.Ehlo
  else if String.length trimmed >= 10 && uppercase_prefix trimmed 10 = "MAIL FROM:"
  then if has_bracketed_path trimmed 10 then Machine.Mail_from else Machine.Other trimmed
  else if String.length trimmed >= 8 && uppercase_prefix trimmed 8 = "RCPT TO:" then
    if has_bracketed_path trimmed 8 then Machine.Rcpt_to else Machine.Other trimmed
  else if String.uppercase_ascii trimmed = "DATA" then Machine.Data
  else if String.uppercase_ascii trimmed = "QUIT" then Machine.Quit
  else Machine.Other trimmed

let format_command = Machine.command_to_wire

let format_reply code =
  match code with
  | "220" -> "220 test.example Service ready"
  | "221" -> "221 Bye"
  | "250" -> "250 OK"
  | "354" -> "354 End data with <CR><LF>.<CR><LF>"
  | "500" -> "500 Syntax error, command unrecognized"
  | "503" -> "503 Bad sequence of commands"
  | other -> other

let parse_reply line =
  if
    String.length line >= 3
    && (match (line.[0], line.[1], line.[2]) with
       | '0' .. '9', '0' .. '9', '0' .. '9' -> true
       | _ -> false)
  then Ok (String.sub line 0 3)
  else Error (Printf.sprintf "malformed reply line %S" line)

let run_wire_session ?quirks lines =
  lines
  |> List.map parse_command
  |> Machine.run_session ?quirks
  |> List.map format_reply
