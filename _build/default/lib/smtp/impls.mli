(** The three SMTP servers of Table 1 (aiosmtpd, smtpd, OpenSMTPD). *)

type bug = {
  quirk : Machine.quirk;
  description : string;
  bug_type : string;
  new_bug : bool;
}

type t = { name : string; bugs : bug list }

val all : t list
val find : string -> t option
val quirks : t -> Machine.quirk list

val handle : t -> Machine.state -> Machine.command -> string * Machine.state
val run_session : t -> Machine.command list -> string list

val drive_and_probe :
  t ->
  Eywa_stategraph.Stategraph.t ->
  state:string ->
  input:string ->
  (string, string) result
(** The §4.2 stateful-test procedure: BFS the state graph for an input
    sequence reaching [state] from INITIAL, prepend it to [input], run
    the whole session on a fresh server, and return the reply to the
    final (probed) input. [Error _] when the graph cannot reach the
    state. *)

val bug_catalog : (string * bug) list
