(** SMTP server state machine (the model of paper Figs. 6-8).

    Commands carry their single-letter model encoding (H=HELO, E=EHLO,
    M=MAIL FROM, R=RCPT TO, D=DATA, '.'=end of data, Q=QUIT), which is
    how the Eywa SMTP model's bounded string inputs name them. *)

type state =
  | Initial
  | Helo_sent
  | Ehlo_sent
  | Mail_from_received
  | Rcpt_to_received
  | Data_received
  | Quitted

type command =
  | Helo
  | Ehlo
  | Mail_from
  | Rcpt_to
  | Data
  | End_data
  | Quit
  | Other of string

type quirk =
  | Accept_mail_without_helo
      (** aiosmtpd (Table 3): accepts MAIL FROM before any HELO/EHLO *)

val state_to_string : state -> string
(** Uppercase, matching the model's enum member names. *)

val state_of_string : string -> state option

val command_to_letter : command -> string
(** The model's single-letter encoding. *)

val command_of_letter : string -> command

val command_to_wire : command -> string
(** The real protocol line ("MAIL FROM:<a@test>" etc.). *)

val handle : ?quirks:quirk list -> state -> command -> string * state
(** One step: the reply code ("250", "354", "503", "221", "500") and
    the successor state. *)

val run_session : ?quirks:quirk list -> command list -> string list
(** Run a fresh session (starting at [Initial]) through the commands,
    collecting replies. *)

val reference_transitions : ((string * string) * string) list
(** The ground-truth (state, letter) -> state map, for validating the
    extracted state graph. *)
