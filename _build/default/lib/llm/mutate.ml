module Ast = Eywa_minic.Ast

type kind =
  | Relax_compare
  | Off_by_one
  | Wrong_enum
  | Swap_and_or
  | Flip_eq
  | Drop_else

let kind_to_string = function
  | Relax_compare -> "relax-compare"
  | Off_by_one -> "off-by-one"
  | Wrong_enum -> "wrong-enum"
  | Swap_and_or -> "swap-and-or"
  | Flip_eq -> "flip-eq"
  | Drop_else -> "drop-else"

(* Preorder traversal shared by collection and rewriting so that site
   ids line up. The [on_node] callback may replace the node; children
   of the replacement are not revisited (one mutation per pass). *)

type 'a visit = { mutable id : int; on_expr : int -> Ast.expr -> Ast.expr option;
                  on_stmt : int -> Ast.stmt -> Ast.stmt option }

let rec walk_expr v e =
  let my_id = v.id in
  v.id <- v.id + 1;
  match v.on_expr my_id e with
  | Some replacement -> replacement
  | None -> (
      match e with
      | Ast.Ebool _ | Ast.Echar _ | Ast.Eint _ | Ast.Eenum _ | Ast.Estr _
      | Ast.Evar _ ->
          e
      | Ast.Efield (b, f) -> Ast.Efield (walk_expr v b, f)
      | Ast.Eindex (b, i) -> Ast.Eindex (walk_expr v b, walk_expr v i)
      | Ast.Eunop (op, a) -> Ast.Eunop (op, walk_expr v a)
      | Ast.Ebinop (op, a, b) -> Ast.Ebinop (op, walk_expr v a, walk_expr v b)
      | Ast.Econd (c, a, b) ->
          Ast.Econd (walk_expr v c, walk_expr v a, walk_expr v b)
      | Ast.Ecall (f, args) -> Ast.Ecall (f, List.map (walk_expr v) args))

let rec walk_stmt v s =
  let my_id = v.id in
  v.id <- v.id + 1;
  match v.on_stmt my_id s with
  | Some replacement -> replacement
  | None -> (
      match s with
      | Ast.Sdecl (ty, x, init) -> Ast.Sdecl (ty, x, Option.map (walk_expr v) init)
      | Ast.Sassign (lv, e) -> Ast.Sassign (walk_lvalue v lv, walk_expr v e)
      | Ast.Sif (c, t, e) ->
          Ast.Sif (walk_expr v c, List.map (walk_stmt v) t, List.map (walk_stmt v) e)
      | Ast.Swhile (c, body) -> Ast.Swhile (walk_expr v c, List.map (walk_stmt v) body)
      | Ast.Sfor (init, c, step, body) ->
          Ast.Sfor
            ( Option.map (walk_stmt v) init,
              walk_expr v c,
              Option.map (walk_stmt v) step,
              List.map (walk_stmt v) body )
      | Ast.Sreturn e -> Ast.Sreturn (Option.map (walk_expr v) e)
      | Ast.Sexpr e -> Ast.Sexpr (walk_expr v e)
      | Ast.Sbreak | Ast.Scontinue -> s)

and walk_lvalue v lv =
  match lv with
  | Ast.Lvar _ -> lv
  | Ast.Lfield (b, f) -> Ast.Lfield (walk_lvalue v b, f)
  | Ast.Lindex (b, i) -> Ast.Lindex (walk_lvalue v b, walk_expr v i)

let traverse_func on_expr on_stmt (f : Ast.func) =
  let v = { id = 0; on_expr; on_stmt } in
  { f with Ast.body = List.map (walk_stmt v) f.body }

(* Enum members reach us as [Eenum] when built programmatically, but as
   bare [Evar]s when the knowledge-base template was parsed from C
   text; both are mutation sites. *)
let is_enum_member enums name =
  List.exists (fun (e : Ast.enum_def) -> List.mem name e.members) enums

let candidate_sites ~enums (f : Ast.func) =
  let sites = ref [] in
  let record id kind = sites := (id, kind) :: !sites in
  let on_expr id e =
    (match e with
    | Ast.Ebinop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) ->
        record id Relax_compare
    | Ast.Eint n when n <> 0 -> record id Off_by_one
    | Ast.Eenum _ -> record id Wrong_enum
    | Ast.Evar x when is_enum_member enums x -> record id Wrong_enum
    | Ast.Ebinop ((Ast.Land | Ast.Lor), _, _) -> record id Swap_and_or
    | Ast.Ebinop ((Ast.Eq | Ast.Ne), _, _) -> record id Flip_eq
    | Ast.Ebool _ | Ast.Echar _ | Ast.Eint _ | Ast.Estr _ | Ast.Evar _
    | Ast.Efield _ | Ast.Eindex _ | Ast.Eunop _ | Ast.Ebinop _ | Ast.Econd _
    | Ast.Ecall _ ->
        ());
    None
  in
  let on_stmt id s =
    (match s with
    | Ast.Sif (_, _, _ :: _) -> record id Drop_else
    | Ast.Sif _ | Ast.Sdecl _ | Ast.Sassign _ | Ast.Swhile _ | Ast.Sfor _
    | Ast.Sreturn _ | Ast.Sexpr _ | Ast.Sbreak | Ast.Scontinue ->
        ());
    None
  in
  ignore (traverse_func on_expr on_stmt f);
  List.rev !sites

let sibling_member enums rng member =
  let home =
    List.find_opt (fun (e : Ast.enum_def) -> List.mem member e.members) enums
  in
  match home with
  | None -> member
  | Some e -> (
      match List.filter (fun m -> m <> member) e.members with
      | [] -> member
      | others -> Rng.pick rng others)

let apply ~enums ~rng ~site ~kind f =
  let rewrite_expr e =
    match (kind, e) with
    | Relax_compare, Ast.Ebinop (Ast.Lt, a, b) -> Ast.Ebinop (Ast.Le, a, b)
    | Relax_compare, Ast.Ebinop (Ast.Le, a, b) -> Ast.Ebinop (Ast.Lt, a, b)
    | Relax_compare, Ast.Ebinop (Ast.Gt, a, b) -> Ast.Ebinop (Ast.Ge, a, b)
    | Relax_compare, Ast.Ebinop (Ast.Ge, a, b) -> Ast.Ebinop (Ast.Gt, a, b)
    | Off_by_one, Ast.Eint n ->
        Ast.Eint (if Rng.bool rng 0.5 then n + 1 else n - 1)
    | Wrong_enum, Ast.Eenum m -> Ast.Eenum (sibling_member enums rng m)
    | Wrong_enum, Ast.Evar m when is_enum_member enums m ->
        Ast.Evar (sibling_member enums rng m)
    | Swap_and_or, Ast.Ebinop (Ast.Land, a, b) -> Ast.Ebinop (Ast.Lor, a, b)
    | Swap_and_or, Ast.Ebinop (Ast.Lor, a, b) -> Ast.Ebinop (Ast.Land, a, b)
    | Flip_eq, Ast.Ebinop (Ast.Eq, a, b) -> Ast.Ebinop (Ast.Ne, a, b)
    | Flip_eq, Ast.Ebinop (Ast.Ne, a, b) -> Ast.Ebinop (Ast.Eq, a, b)
    | _, _ -> e
  in
  let on_expr id e = if id = site then Some (rewrite_expr e) else None in
  let on_stmt id s =
    if id = site then
      match (kind, s) with
      | Drop_else, Ast.Sif (c, t, _ :: _) -> Some (Ast.Sif (c, t, []))
      | _, _ -> None
    else None
  in
  traverse_func on_expr on_stmt f

(* Mutation count: tau = 0 gives zero; higher temperatures raise the
   chance of one, occasionally two or three, mutations. Weights keep
   Flip_eq and Drop_else rarer since they are the most destructive. *)
let draw_count rng temperature =
  if temperature <= 0.0 then 0
  else begin
    let first = if Rng.bool rng (0.35 +. (0.4 *. temperature)) then 1 else 0 in
    let second = if Rng.bool rng (0.25 *. temperature) then 1 else 0 in
    let third = if Rng.bool rng (0.08 *. temperature) then 1 else 0 in
    first + second + third
  end

let weight = function
  | Relax_compare -> 4
  | Off_by_one -> 3
  | Wrong_enum -> 2
  | Swap_and_or -> 2
  | Flip_eq -> 1
  | Drop_else -> 1

let mutate ~enums ~rng ~temperature f =
  let count = draw_count rng temperature in
  let rec go f applied remaining =
    if remaining = 0 then (f, List.rev applied)
    else begin
      match candidate_sites ~enums f with
      | [] -> (f, List.rev applied)
      | sites ->
          let expanded =
            List.concat_map
              (fun (id, kind) -> List.init (weight kind) (fun _ -> (id, kind)))
              sites
          in
          let site, kind = Rng.pick rng expanded in
          go (apply ~enums ~rng ~site ~kind f) (kind :: applied) (remaining - 1)
    end
  in
  go f [] count
