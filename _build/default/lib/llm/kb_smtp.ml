(* SMTP server knowledge of the simulated LLM (paper Fig. 7).

   Commands are abbreviated to single letters so that bounded symbolic
   strings can reach the equality branches: H=HELO, E=EHLO,
   M=MAIL FROM, R=RCPT TO, D=DATA, '.'=end-of-data, Q=QUIT. Responses
   are the three-digit SMTP reply codes. The dead stores to [state]
   mirror the paper's generated code and are what the state-graph
   extractor reads (Fig. 8). *)

let smtp_server_response =
  {|
char* smtp_server_response(State state, char* input) {
  char response[4];
  strcpy(response, "500");
  if (state == INITIAL) {
    if (strcmp(input, "H") == 0) {
      strcpy(response, "250");
      state = HELO_SENT;
    } else if (strcmp(input, "E") == 0) {
      strcpy(response, "250");
      state = EHLO_SENT;
    } else if (strcmp(input, "Q") == 0) {
      strcpy(response, "221");
      state = QUITTED;
    } else {
      strcpy(response, "503");
    }
  } else if (state == HELO_SENT || state == EHLO_SENT) {
    if (strcmp(input, "M") == 0) {
      strcpy(response, "250");
      state = MAIL_FROM_RECEIVED;
    } else if (strcmp(input, "Q") == 0) {
      strcpy(response, "221");
      state = QUITTED;
    } else {
      strcpy(response, "503");
    }
  } else if (state == MAIL_FROM_RECEIVED) {
    if (strcmp(input, "R") == 0) {
      strcpy(response, "250");
      state = RCPT_TO_RECEIVED;
    } else if (strcmp(input, "Q") == 0) {
      strcpy(response, "221");
      state = QUITTED;
    } else {
      strcpy(response, "503");
    }
  } else if (state == RCPT_TO_RECEIVED) {
    if (strcmp(input, "D") == 0) {
      strcpy(response, "354");
      state = DATA_RECEIVED;
    } else if (strcmp(input, "R") == 0) {
      strcpy(response, "250");
    } else if (strcmp(input, "Q") == 0) {
      strcpy(response, "221");
      state = QUITTED;
    } else {
      strcpy(response, "503");
    }
  } else if (state == DATA_RECEIVED) {
    if (strcmp(input, ".") == 0) {
      strcpy(response, "250");
      state = INITIAL;
    } else {
      strcpy(response, "354");
    }
  } else {
    strcpy(response, "221");
  }
  return response;
}
|}

let entries = [ ("smtp_server_response", smtp_server_response) ]
