(** TCP protocol knowledge of the simulated LLM: C implementation
    templates keyed by function name. Multiple entries may share a name
    (structurally different drafts); the oracle samples among them. *)

val entries : (string * string) list
