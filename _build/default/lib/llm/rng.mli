(** Deterministic splitmix64 PRNG.

    The simulated LLM must be reproducible from (seed, prompt), so all
    stochastic choices (sampling "temperature" noise, mutation sites)
    flow through this self-contained generator rather than the global
    [Random] state. *)

type t

val create : int -> t

val of_string : int -> string -> t
(** Seeded from an integer and a string (e.g. the target function
    name), so different prompts at the same seed draw differently. *)

val next : t -> int
(** 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t n] in [0, n). @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** In [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on empty list. *)
