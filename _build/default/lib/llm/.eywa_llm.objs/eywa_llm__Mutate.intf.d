lib/llm/mutate.mli: Eywa_minic Rng
