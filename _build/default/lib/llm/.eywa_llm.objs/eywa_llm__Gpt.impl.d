lib/llm/gpt.ml: Extract Eywa_core Eywa_minic Kb_bgp Kb_dns Kb_smtp Kb_tcp List Mutate Printf Prompt_parse Rng String
