lib/llm/extract.mli: Eywa_stategraph
