lib/llm/kb_dns.mli:
