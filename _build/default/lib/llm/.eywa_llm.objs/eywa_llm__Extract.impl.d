lib/llm/extract.ml: Eywa_minic Eywa_stategraph List Printf String
