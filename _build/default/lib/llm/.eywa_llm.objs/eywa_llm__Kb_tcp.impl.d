lib/llm/kb_tcp.ml:
