lib/llm/kb_tcp.mli:
