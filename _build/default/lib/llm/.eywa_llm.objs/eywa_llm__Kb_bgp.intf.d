lib/llm/kb_bgp.mli:
