lib/llm/rng.mli:
