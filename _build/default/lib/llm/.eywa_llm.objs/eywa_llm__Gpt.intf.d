lib/llm/gpt.mli: Eywa_core
