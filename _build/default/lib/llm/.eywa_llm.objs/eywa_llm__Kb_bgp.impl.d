lib/llm/kb_bgp.ml:
