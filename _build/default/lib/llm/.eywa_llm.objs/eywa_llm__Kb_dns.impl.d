lib/llm/kb_dns.ml:
