lib/llm/mutate.ml: Eywa_minic List Option Rng
