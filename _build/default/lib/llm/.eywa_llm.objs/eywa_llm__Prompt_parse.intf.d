lib/llm/prompt_parse.mli: Eywa_minic
