lib/llm/kb_smtp.mli:
