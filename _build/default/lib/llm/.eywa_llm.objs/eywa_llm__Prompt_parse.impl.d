lib/llm/prompt_parse.ml: Eywa_minic List Printf
