lib/llm/kb_smtp.ml:
