(** State-graph extraction from generated server code (paper Fig. 8).

    The paper issues a second LLM call: "create a Python dictionary
    that maps the state transitions (state, input) -> state as per the
    following C code". The simulated LLM answers the same request by
    statically analysing the C code it generated: it walks the
    if/else-if structure, tracking which [state == S] guards and
    [strcmp(input, "c") == 0] tests dominate each [state = S']
    assignment. The response is rendered as the same Python-dict text,
    and Eywa parses that text back — keeping both sides of the
    conversation string-typed, as in the paper. *)

type transition = (string * string) * string
(** ((state, input), next_state) *)

val transitions_of_code : string -> (transition list, string) result
(** Analyse C source containing a state-machine function (an enum
    [state] parameter and a string [input] parameter). *)

val to_pydict : transition list -> string
(** Render as the Fig. 8 response text. *)

val parse_pydict : string -> (transition list, string) result
(** Parse a Fig. 8-style response back into transitions. *)

val state_graph : string -> (Eywa_stategraph.Stategraph.t, string) result
(** The full round trip: code -> transitions -> dict text -> parsed
    graph, mirroring how Eywa consumes the second LLM call. *)
