(** The simulated LLM (the paper's GPT-4 on Azure OpenAI).

    Receives prompt text, answers with C source text. Behaviour:

    - The user prompt is parsed to recover the completion task.
    - If the target function is in the protocol knowledge base (DNS,
      BGP, SMTP — the protocols GPT-4 "knows well", §2.4), the
      reference implementation is drawn and then perturbed by seeded,
      temperature-scaled mutations ({!Mutate}), so distinct (seed,
      temperature) draws yield distinct, occasionally-wrong models.
    - Unknown functions get a generic stub completion, modelling a
      protocol outside the LLM's knowledge (§2.4's limitation).
    - With a small probability, the completion uses [strtok] — the
      banned function — and therefore fails to compile, reproducing the
      paper's single non-compiling model out of all experiments.

    Everything is deterministic in (prompt, seed, temperature). *)

type config = {
  fail_rate : float;  (** probability of a non-compiling completion *)
  knowledge : (string * string) list;  (** function name -> C template *)
}

val default_config : config
(** fail_rate = 0.004 and the full DNS+BGP+SMTP knowledge base. *)

val oracle : ?config:config -> unit -> Eywa_core.Oracle.t

val complete : config -> Eywa_core.Oracle.request -> string
(** The raw completion function behind {!oracle}. *)

val complete_stategraph : string -> string
(** The second LLM call (Fig. 8): given C server code, answer with the
    Python-dict transition text. Falls back to an empty dict when the
    code cannot be analysed. *)

val knows : config -> string -> bool
(** Whether the knowledge base has an entry for this function name. *)
