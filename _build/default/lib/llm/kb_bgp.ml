(* BGP protocol knowledge of the simulated LLM. Prefixes are scaled to
   4 bits (the model bounds every input type anyway), so subnet masking
   is expressible without bitwise operators: prefixLengthToSubnetMask
   returns the divisor 2^(4-len) and two prefixes agree under a mask
   when their quotients agree. The shapes mirror the paper's Fig. 11
   and Fig. 12 modules. *)

let prefix_length_to_subnet_mask =
  {|
uint32_t prefixLengthToSubnetMask(uint32_t maskLength) {
  uint32_t divisor = 1;
  for (uint32_t i = maskLength; i < 4; i++) {
    divisor = divisor * 2;
  }
  return divisor;
}
|}

let is_valid_route =
  {|
bool isValidRoute(Route route) {
  if (route.plen > 4) {
    return false;
  }
  uint32_t divisor = prefixLengthToSubnetMask(route.plen);
  if (route.prefix % divisor != 0) {
    return false;
  }
  return true;
}
|}

let is_valid_prefix_list =
  {|
bool isValidPrefixList(PrefixListEntry pfe) {
  if (pfe.plen > 4) {
    return false;
  }
  if (pfe.ge > 4 || pfe.le > 4) {
    return false;
  }
  if (pfe.ge != 0 && pfe.ge < pfe.plen) {
    return false;
  }
  if (pfe.le != 0 && pfe.ge != 0 && pfe.le < pfe.ge) {
    return false;
  }
  uint32_t divisor = prefixLengthToSubnetMask(pfe.plen);
  if (pfe.prefix % divisor != 0) {
    return false;
  }
  return true;
}
|}

let check_valid_inputs =
  {|
bool checkValidInputs(Route route, PrefixListEntry pfe) {
  if (!isValidRoute(route)) {
    return false;
  }
  if (!isValidPrefixList(pfe)) {
    return false;
  }
  return true;
}
|}

(* Prefix-list entry matching, including le/ge mask-length ranges — the
   feature whose mishandling MESSI and Eywa both flagged in FRR and
   GoBGP. *)
let is_match_prefix_list_entry =
  {|
bool isMatchPrefixListEntry(Route route, PrefixListEntry pfe) {
  if (pfe.any) {
    return pfe.permit;
  }
  uint32_t divisor = prefixLengthToSubnetMask(pfe.plen);
  if (route.prefix / divisor != pfe.prefix / divisor) {
    return false;
  }
  if (pfe.ge == 0 && pfe.le == 0) {
    if (route.plen != pfe.plen) {
      return false;
    }
    return pfe.permit;
  }
  if (pfe.ge != 0 && route.plen < pfe.ge) {
    return false;
  }
  if (pfe.le != 0 && route.plen > pfe.le) {
    return false;
  }
  if (pfe.ge == 0 && pfe.le != 0 && route.plen < pfe.plen) {
    return false;
  }
  return pfe.permit;
}
|}

let is_match_route_map_stanza =
  {|
bool isMatchRouteMapStanza(Route route, PrefixListEntry pfe) {
  bool matched = isMatchPrefixListEntry(route, pfe);
  if (!matched) {
    return false;
  }
  return true;
}
|}

(* Confederation session-type decision: the setting in which Eywa found
   the sub-AS == external peer-AS confusion (§4.3 insight 4). *)
let confed_action =
  {|
SessionType confed_action(uint8_t peer_as, uint8_t my_sub_as, uint8_t confed_id, bool peer_in_confed) {
  if (peer_in_confed) {
    if (peer_as == my_sub_as) {
      return IBGP;
    }
    return EBGP_CONFED;
  }
  if (peer_as == my_sub_as) {
    return IBGP;
  }
  if (peer_as == confed_id) {
    return REJECT;
  }
  return EBGP;
}
|}

(* Route-reflector propagation rules: a route learned from a client or
   an external peer is reflected to everyone; from a non-client, only
   to clients and external peers. *)
let rr_action =
  {|
bool rr_action(PeerType from_peer, PeerType to_peer) {
  if (from_peer == EBGP_PEER) {
    return true;
  }
  if (from_peer == CLIENT) {
    return true;
  }
  if (to_peer == CLIENT) {
    return true;
  }
  if (to_peer == EBGP_PEER) {
    return true;
  }
  return false;
}
|}

(* Route reflection combined with an export route-map (the RR-RMAP
   model): the route must both pass the policy and be reflectable. *)
let rr_rmap_action =
  {|
bool rr_rmap_action(Route route, PrefixListEntry pfe, PeerType from_peer, PeerType to_peer) {
  if (!isMatchPrefixListEntry(route, pfe)) {
    return false;
  }
  if (!rr_action(from_peer, to_peer)) {
    return false;
  }
  return true;
}
|}

(* Alternative drafts (structure varies across samples, as with a real
   LLM; see Kb_dns for the mechanism). *)

let confed_action_nested =
  {|
SessionType confed_action(uint8_t peer_as, uint8_t my_sub_as, uint8_t confed_id, bool peer_in_confed) {
  // Nested-conditional phrasing of the same decision procedure.
  if (peer_as == my_sub_as) {
    return IBGP;
  } else {
    if (peer_in_confed) {
      return EBGP_CONFED;
    } else {
      if (peer_as == confed_id) {
        return REJECT;
      } else {
        return EBGP;
      }
    }
  }
}
|}

let rr_action_table =
  {|
bool rr_action(PeerType from_peer, PeerType to_peer) {
  // Routes from clients and external peers go everywhere; from
  // non-clients only to clients and external peers.
  bool from_internal_nonclient = from_peer == NONCLIENT;
  bool to_internal_nonclient = to_peer == NONCLIENT;
  if (!from_internal_nonclient) {
    return true;
  }
  if (!to_internal_nonclient) {
    return true;
  }
  return false;
}
|}

let is_match_pfe_early_any =
  {|
bool isMatchPrefixListEntry(Route route, PrefixListEntry pfe) {
  bool matched = false;
  if (pfe.any) {
    matched = true;
  } else {
    uint32_t divisor = prefixLengthToSubnetMask(pfe.plen);
    if (route.prefix / divisor == pfe.prefix / divisor) {
      if (pfe.ge == 0 && pfe.le == 0) {
        matched = route.plen == pfe.plen;
      } else {
        bool ge_ok = pfe.ge == 0 || route.plen >= pfe.ge;
        bool le_ok = pfe.le == 0 || route.plen <= pfe.le;
        matched = ge_ok && le_ok;
      }
    }
  }
  if (matched) {
    return pfe.permit;
  }
  return false;
}
|}

let entries =
  [
    ("prefixLengthToSubnetMask", prefix_length_to_subnet_mask);
    ("confed_action", confed_action_nested);
    ("rr_action", rr_action_table);
    ("isMatchPrefixListEntry", is_match_pfe_early_any);
    ("isValidRoute", is_valid_route);
    ("isValidPrefixList", is_valid_prefix_list);
    ("checkValidInputs", check_valid_inputs);
    ("isMatchPrefixListEntry", is_match_prefix_list_entry);
    ("isMatchRouteMapStanza", is_match_route_map_stanza);
    ("confed_action", confed_action);
    ("rr_action", rr_action);
    ("rr_rmap_action", rr_rmap_action);
  ]
