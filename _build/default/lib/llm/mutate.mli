(** Hallucination modelling: seeded, temperature-scaled mutations of a
    generated function.

    Real LLM completions of protocol models are mostly right but
    occasionally miss corner cases, relax a comparison (the paper's
    Fig. 2 DNAME bug is exactly a [>] for [>=]), pick a neighbouring
    constant, or confuse an enum member. The simulated LLM reproduces
    that behaviour by applying 0-3 such mutations to the knowledge-base
    reference implementation, with the mutation count scaling with
    temperature — at tau = 0 every draw is identical, at higher tau
    drafts diverge, which is what drives the k-vs-unique-tests curve of
    Fig. 10. *)

type kind =
  | Relax_compare  (** [<] <-> [<=], [>] <-> [>=] *)
  | Off_by_one  (** integer literal +-1 *)
  | Wrong_enum  (** enum member replaced by a sibling *)
  | Swap_and_or  (** [&&] <-> [||] *)
  | Flip_eq  (** [==] <-> [!=] *)
  | Drop_else  (** delete an else branch *)

val kind_to_string : kind -> string

val candidate_sites :
  enums:Eywa_minic.Ast.enum_def list ->
  Eywa_minic.Ast.func ->
  (int * kind) list
(** All mutable sites of a function, as (preorder id, kind). [enums]
    lets bare identifiers be recognised as enum members (the C parser
    cannot distinguish them from variables). *)

val apply :
  enums:Eywa_minic.Ast.enum_def list ->
  rng:Rng.t ->
  site:int ->
  kind:kind ->
  Eywa_minic.Ast.func ->
  Eywa_minic.Ast.func
(** Rewrite the node with the given preorder id. *)

val mutate :
  enums:Eywa_minic.Ast.enum_def list ->
  rng:Rng.t ->
  temperature:float ->
  Eywa_minic.Ast.func ->
  Eywa_minic.Ast.func * kind list
(** Draw a mutation count from the temperature and apply that many
    random mutations, reporting what was done (for logging and
    tests). *)
