module Ast = Eywa_minic.Ast
module Parser = Eywa_minic.Parser

type transition = (string * string) * string

(* Find the state-machine function: it has an enum parameter and a
   string parameter. *)
let find_machine (p : Ast.program) =
  List.find_opt
    (fun (f : Ast.func) ->
      List.exists (fun (t, _) -> match t with Ast.Tenum _ -> true | _ -> false)
        f.params
      && List.exists (fun (t, _) -> t = Ast.Tstring) f.params)
    p.Ast.funcs

(* The parser leaves enum members as bare variables; resolve them
   against the program's enum declarations. *)
let as_enum_member program (e : Ast.expr) =
  match e with
  | Ast.Eenum m -> Some m
  | Ast.Evar x -> (
      match Ast.enum_member_index program x with
      | Some _ -> Some x
      | None -> None)
  | _ -> None

(* Enum members named by [state == M] comparisons in a condition,
   following || disjunctions. [state_var] is the enum parameter. *)
let rec guard_states program state_var (e : Ast.expr) =
  match e with
  | Ast.Ebinop (Ast.Eq, Ast.Evar v, rhs) when v = state_var -> (
      match as_enum_member program rhs with Some m -> [ m ] | None -> [])
  | Ast.Ebinop (Ast.Eq, lhs, Ast.Evar v) when v = state_var -> (
      match as_enum_member program lhs with Some m -> [ m ] | None -> [])
  | Ast.Ebinop (Ast.Lor, a, b) ->
      guard_states program state_var a @ guard_states program state_var b
  | _ -> []

(* The input literal of a [strcmp(input, "c") == 0] (or strncmp) test. *)
let guard_input input_var (e : Ast.expr) =
  match e with
  | Ast.Ebinop
      (Ast.Eq, Ast.Ecall (("strcmp" | "strncmp"), Ast.Evar v :: Ast.Estr s :: _), Ast.Eint 0)
    when v = input_var ->
      Some s
  | Ast.Ebinop
      (Ast.Eq, Ast.Eint 0, Ast.Ecall (("strcmp" | "strncmp"), Ast.Evar v :: Ast.Estr s :: _))
    when v = input_var ->
      Some s
  | _ -> None

let transitions_of_func program (f : Ast.func) =
  let state_var =
    List.find_map
      (fun (t, n) -> match t with Ast.Tenum _ -> Some n | _ -> None)
      f.params
  in
  let input_var =
    List.find_map (fun (t, n) -> if t = Ast.Tstring then Some n else None) f.params
  in
  match (state_var, input_var) with
  | None, _ | _, None -> Error "function has no (state, input) parameters"
  | Some state_var, Some input_var ->
      let out = ref [] in
      let add states input next =
        match input with
        | None -> ()
        | Some input ->
            List.iter
              (fun s ->
                if not (List.mem_assoc (s, input) !out) then
                  out := !out @ [ ((s, input), next) ])
              states
      in
      let rec walk ~states ~input stmts =
        List.iter
          (fun s ->
            match s with
            | Ast.Sassign (Ast.Lvar v, rhs) when v = state_var -> (
                match as_enum_member program rhs with
                | Some m -> add states input m
                | None -> ())
            | Ast.Sif (cond, then_, else_) ->
                let cond_states = guard_states program state_var cond in
                let cond_input = guard_input input_var cond in
                let states' = if cond_states = [] then states else cond_states in
                let input' = match cond_input with Some _ -> cond_input | None -> input in
                walk ~states:states' ~input:input' then_;
                walk ~states ~input else_
            | Ast.Swhile (_, body) -> walk ~states ~input body
            | Ast.Sfor (_, _, _, body) -> walk ~states ~input body
            | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sreturn _ | Ast.Sexpr _
            | Ast.Sbreak | Ast.Scontinue ->
                ())
          stmts
      in
      walk ~states:[] ~input:None f.body;
      Ok !out

let transitions_of_code source =
  match Parser.parse_result source with
  | Error m -> Error m
  | Ok p -> (
      match find_machine p with
      | None -> Error "no state-machine function found"
      | Some f -> transitions_of_func p f)

let to_pydict transitions =
  let entry (((s, i), s') : transition) =
    Printf.sprintf "  (\"%s\", \"%s\"): \"%s\"," s i s'
  in
  String.concat "\n"
    ([ "state_transitions = {" ] @ List.map entry transitions @ [ "}" ])

(* A small scanner for the dict text: tuples of two quoted strings
   mapping to a quoted string. *)
let parse_pydict text =
  let n = String.length text in
  let pos = ref 0 in
  let error msg = Error (Printf.sprintf "pydict: %s at %d" msg !pos) in
  let skip_ws () =
    while
      !pos < n
      && (text.[!pos] = ' ' || text.[!pos] = '\n' || text.[!pos] = '\t'
          || text.[!pos] = '\r' || text.[!pos] = ',')
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && text.[!pos] = c then begin
      incr pos;
      true
    end
    else false
  in
  let quoted () =
    skip_ws ();
    if !pos >= n || text.[!pos] <> '"' then None
    else begin
      incr pos;
      let start = !pos in
      while !pos < n && text.[!pos] <> '"' do incr pos done;
      if !pos >= n then None
      else begin
        let s = String.sub text start (!pos - start) in
        incr pos;
        Some s
      end
    end
  in
  match String.index_opt text '{' with
  | None -> Error "pydict: no opening brace"
  | Some start ->
      pos := start + 1;
      let out = ref [] in
      let rec entries () =
        skip_ws ();
        if !pos < n && text.[!pos] = '}' then Ok (List.rev !out)
        else if not (expect '(') then error "expected '('"
        else
          match quoted () with
          | None -> error "expected state string"
          | Some s -> (
              match quoted () with
              | None -> error "expected input string"
              | Some i ->
                  if not (expect ')') then error "expected ')'"
                  else if not (expect ':') then error "expected ':'"
                  else
                    match quoted () with
                    | None -> error "expected next-state string"
                    | Some s' ->
                        out := ((s, i), s') :: !out;
                        entries ())
      in
      entries ()

let state_graph source =
  match transitions_of_code source with
  | Error m -> Error m
  | Ok transitions -> (
      (* round-trip through the textual response, as Eywa does *)
      match parse_pydict (to_pydict transitions) with
      | Error m -> Error m
      | Ok parsed -> Ok (Eywa_stategraph.Stategraph.of_list parsed))
