(** Recover the completion task from raw prompt text.

    The simulated LLM receives exactly what a real one would — the user
    prompt string — and must work out what it is being asked to write.
    The prompt grammar is MiniC with a trailing unfinished function
    (signature, open brace, an [// implement me] comment), so we close
    the brace and reuse the MiniC parser. *)

type task = {
  target : Eywa_minic.Ast.func;  (** signature; body is the empty stub *)
  enums : Eywa_minic.Ast.enum_def list;
  structs : Eywa_minic.Ast.struct_def list;
  helpers : Eywa_minic.Ast.proto list;  (** call-edge prototypes *)
}

val parse : string -> (task, string) result
