module Ast = Eywa_minic.Ast
module Parser = Eywa_minic.Parser
module Pretty = Eywa_minic.Pretty

type config = { fail_rate : float; knowledge : (string * string) list }

let default_config =
  {
    fail_rate = 0.004;
    knowledge = Kb_dns.entries @ Kb_bgp.entries @ Kb_smtp.entries @ Kb_tcp.entries;
  }

let knows config name = List.mem_assoc name config.knowledge

(* Completion text: echo the headers, type definitions and helper
   prototypes from the prompt (the system prompt demands it), then the
   implementation. *)
let render (task : Prompt_parse.task) funcs =
  let headers = "#include <stdint.h>\n#include <stdbool.h>\n#include <string.h>" in
  String.concat "\n\n"
    ([ headers ]
    @ List.map Pretty.enum_def task.enums
    @ List.map Pretty.struct_def task.structs
    @ List.map Pretty.proto task.helpers
    @ List.map Pretty.func funcs)
  ^ "\n"

(* Parse a knowledge-base template in the context of the task's type
   definitions (templates reference Record, Zone, ... without declaring
   them). *)
let parse_template (task : Prompt_parse.task) template =
  let prefix =
    String.concat "\n"
      (List.map Pretty.enum_def task.enums
      @ List.map Pretty.struct_def task.structs
      @ List.map Pretty.proto task.helpers)
  in
  match Parser.parse_result (prefix ^ "\n" ^ template) with
  | Error m -> Error m
  | Ok p -> Ok p.Ast.funcs

(* A generic guess for a function outside the knowledge base: return a
   default value of the right type. Models the LLM's behaviour on
   protocols it was never trained on. *)
let stub_body (task : Prompt_parse.task) =
  let ret = task.target.Ast.ret in
  match ret with
  | Ast.Tvoid -> [ Ast.Sreturn None ]
  | Ast.Tbool -> [ Ast.Sreturn (Some (Ast.Ebool false)) ]
  | Ast.Tchar -> [ Ast.Sreturn (Some (Ast.Echar 'a')) ]
  | Ast.Tint _ -> [ Ast.Sreturn (Some (Ast.Eint 0)) ]
  | Ast.Tenum ename -> (
      match List.find_opt (fun (e : Ast.enum_def) -> e.ename = ename) task.enums with
      | Some e when e.members <> [] ->
          [ Ast.Sreturn (Some (Ast.Eenum (List.hd e.members))) ]
      | Some _ | None -> [ Ast.Sreturn (Some (Ast.Eint 0)) ])
  | Ast.Tstring ->
      [
        Ast.Sdecl (Ast.Tstring, "result", None);
        Ast.Sreturn (Some (Ast.Evar "result"));
      ]
  | Ast.Tstruct _ ->
      [
        Ast.Sdecl (ret, "result", None);
        Ast.Sreturn (Some (Ast.Evar "result"));
      ]
  | Ast.Tarray _ ->
      [
        Ast.Sdecl (ret, "result", None);
        Ast.Sreturn (Some (Ast.Evar "result"));
      ]

(* The sabotaged completion: syntactically fine, but calls strtok,
   which the pipeline's compiler stage rejects. *)
let sabotage (task : Prompt_parse.task) =
  let body =
    [
      Ast.Sdecl (Ast.Tstring, "token", None);
      Ast.Sexpr (Ast.Ecall ("strtok", [ Ast.Evar "token"; Ast.Estr "." ]));
    ]
    @ stub_body task
  in
  { task.target with Ast.body; doc = [] }

(* LLM completions vary in how much prose they attach; a seeded number
   of comment lines gives each draw a different line count, which is
   where Table 2's LoC min/max spread comes from. *)
let commentary rng temperature name =
  let pool =
    [
      Printf.sprintf "Implementation of %s." name;
      "This follows the behaviour described in the RFC.";
      "Edge cases are handled explicitly below.";
      "Inputs are assumed to satisfy the documented preconditions.";
      "The comparison walks the data from the end, which is simpler here.";
      "Returns early as soon as the result is known.";
    ]
  in
  let max_lines = int_of_float (temperature *. 6.0) in
  let count = if max_lines <= 0 then 0 else Rng.int rng (max_lines + 1) in
  List.filteri (fun i _ -> i < count) pool

let complete config (req : Eywa_core.Oracle.request) =
  match Prompt_parse.parse req.user with
  | Error m -> Printf.sprintf "// unable to understand the request: %s\n" m
  | Ok task -> (
      let name = task.target.Ast.fname in
      let rng = Rng.of_string req.seed name in
      if Rng.bool rng config.fail_rate then render task [ sabotage task ]
      else
        (* several structurally different drafts may be known for one
           function; the seed picks which one this sample writes *)
        let candidates =
          List.filter_map
            (fun (n, tpl) -> if n = name then Some tpl else None)
            config.knowledge
        in
        match candidates with
        | [] -> render task [ { task.target with Ast.body = stub_body task; doc = [] } ]
        | _ :: _ -> (
            (* greedy decoding at tau = 0 always emits the canonical
               draft; sampling picks among the known structures *)
            let template =
              if req.temperature <= 0.0 then List.hd candidates
              else Rng.pick rng candidates
            in
            match parse_template task template with
            | Error _ ->
                (* a template that does not parse in this type context is
                   treated as unknown *)
                render task [ { task.target with Ast.body = stub_body task; doc = [] } ]
            | Ok funcs ->
                let mutated =
                  List.map
                    (fun (f : Ast.func) ->
                      if f.fname = name then begin
                        let f, _ =
                          Mutate.mutate ~enums:task.enums ~rng
                            ~temperature:req.temperature f
                        in
                        { f with Ast.doc = commentary rng req.temperature name }
                      end
                      else f)
                    funcs
                in
                render task mutated))

let oracle ?(config = default_config) () =
  Eywa_core.Oracle.make ~name:"gpt4-simulated" (complete config)

let complete_stategraph code =
  match Extract.transitions_of_code code with
  | Error _ -> "state_transitions = {\n}"
  | Ok transitions -> Extract.to_pydict transitions
