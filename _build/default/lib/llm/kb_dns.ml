(* DNS protocol knowledge of the simulated LLM: reference C
   implementations for each module the DNS case study asks for (§4.2,
   Table 2). These reproduce the character of GPT-4's actual output as
   reported by the paper — notably "first-match" semantics rather than
   the RFC's closest-encloser for full lookup, and straightforward
   per-record matching logic for the single-record models. *)

(* Exact-match CNAME logic: a CNAME record applies when the owner name
   equals the query exactly. *)
let cname_applies =
  {|
bool cname_applies(char* query, Record record) {
  if (record.rtyp != CNAME) {
    return false;
  }
  return strcmp(query, record.name) == 0;
}
|}

(* DNAME suffix logic (paper Fig. 2, with the length comparison written
   correctly; the historic l2 > l1 slip is one mutation away). *)
let dname_applies =
  {|
bool dname_applies(char* query, Record record) {
  if (record.rtyp != DNAME) {
    return false;
  }
  int l1 = strlen(query);
  int l2 = strlen(record.name);
  if (l2 >= l1) {
    return false;
  }
  for (int i = 1; i <= l2; i++) {
    if (query[l1 - i] != record.name[l2 - i]) {
      return false;
    }
  }
  if (query[l1 - l2 - 1] == '.') {
    return true;
  }
  return false;
}
|}

(* The Fig. 1 running example: dispatch on the record type, delegating
   DNAME (the hardest case) to the helper declared by the call edge. *)
let record_applies =
  {|
bool record_applies(char* query, Record record) {
  if (record.rtyp == DNAME) {
    return dname_applies(query, record);
  }
  if (record.rtyp == CNAME || record.rtyp == A) {
    return strcmp(query, record.name) == 0;
  }
  return strcmp(query, record.name) == 0;
}
|}

(* Wildcard matching: "*" matches any name; "*.suffix" matches any
   query ending in ".suffix" with at least one extra label. *)
let wildcard_applies =
  {|
bool wildcard_applies(char* query, Record record) {
  if (record.name[0] != '*') {
    return false;
  }
  int l1 = strlen(query);
  int l2 = strlen(record.name);
  if (l2 == 1) {
    return true;
  }
  if (record.name[1] != '.') {
    return false;
  }
  int suffix = l2 - 1;
  if (suffix >= l1) {
    return false;
  }
  for (int i = 1; i <= suffix; i++) {
    if (query[l1 - i] != record.name[l2 - i]) {
      return false;
    }
  }
  return true;
}
|}

(* A-record matching with IPv4 rdata validation via a helper. *)
let ipv4_applies =
  {|
bool ipv4_applies(char* query, Record record) {
  if (record.rtyp != A) {
    return false;
  }
  if (!is_valid_ipv4(record.rdat)) {
    return false;
  }
  return strcmp(query, record.name) == 0;
}
|}

let is_valid_ipv4 =
  {|
bool is_valid_ipv4(char* rdata) {
  int len = strlen(rdata);
  if (len == 0) {
    return false;
  }
  bool last_dot = true;
  for (int i = 0; i < len; i++) {
    char c = rdata[i];
    if (c == '.') {
      if (last_dot) {
        return false;
      }
      last_dot = true;
    } else {
      if (c < '0' || c > '9') {
        return false;
      }
      last_dot = false;
    }
  }
  return !last_dot;
}
|}

(* Helpers shared by the zone-level models. [record_matches_name]
   implements exact, wildcard and DNAME-suffix owner matching;
   [find_record] is the paper-reported "first-match" iteration. *)
let record_matches_name =
  {|
bool record_matches_name(char* query, Record record) {
  int l1 = strlen(query);
  int l2 = strlen(record.name);
  if (strcmp(query, record.name) == 0) {
    return true;
  }
  if (record.name[0] == '*') {
    if (l2 == 1) {
      return true;
    }
    if (record.name[1] == '.' && l2 - 1 < l1) {
      bool ok = true;
      for (int i = 1; i <= l2 - 1; i++) {
        if (query[l1 - i] != record.name[l2 - i]) {
          ok = false;
        }
      }
      if (ok) {
        return true;
      }
    }
  }
  if (record.rtyp == DNAME && l2 < l1) {
    bool ok = true;
    for (int i = 1; i <= l2; i++) {
      if (query[l1 - i] != record.name[l2 - i]) {
        ok = false;
      }
    }
    if (ok && query[l1 - l2 - 1] == '.') {
      return true;
    }
  }
  return false;
}
|}

(* Full authoritative lookup over a two-record zone, first-match
   semantics, one level of CNAME/DNAME rewriting. *)
let full_lookup =
  {|
Response full_lookup(char* query, RecordType qtype, Zone zone) {
  Response resp;
  resp.rcode = NOERROR;
  resp.ans = qtype;
  resp.synthesized = false;
  for (int hop = 0; hop < 2; hop++) {
    bool found = false;
    for (int i = 0; i < 2; i++) {
      Record record = zone.recs[i];
      if (!found && record_matches_name(query, record)) {
        found = true;
        if (record.rtyp == qtype) {
          resp.rcode = NOERROR;
          resp.ans = record.rtyp;
          return resp;
        }
        if (record.rtyp == CNAME || record.rtyp == DNAME) {
          resp.synthesized = true;
          resp.ans = CNAME;
          strcpy(query, record.rdat);
        } else {
          resp.rcode = NOERROR;
          resp.ans = record.rtyp;
          return resp;
        }
      }
    }
    if (!found) {
      resp.rcode = NXDOMAIN;
      return resp;
    }
  }
  return resp;
}
|}

(* Same walk, but only the return code (the paper's RCODE model). *)
let rcode_lookup =
  {|
RCode rcode_lookup(char* query, RecordType qtype, Zone zone) {
  for (int hop = 0; hop < 2; hop++) {
    bool found = false;
    bool rewritten = false;
    for (int i = 0; i < 2; i++) {
      Record record = zone.recs[i];
      if (!found && record_matches_name(query, record)) {
        found = true;
        if (record.rtyp == qtype) {
          return NOERROR;
        }
        if (record.rtyp == CNAME || record.rtyp == DNAME) {
          strcpy(query, record.rdat);
          rewritten = true;
        } else {
          return NOERROR;
        }
      }
    }
    if (!found) {
      return NXDOMAIN;
    }
    if (!rewritten) {
      return NOERROR;
    }
  }
  return SERVFAIL;
}
|}

(* Authoritative-answer flag: false when the query falls under a zone
   cut (an NS record other than the apex matching the query). *)
let auth_lookup =
  {|
bool auth_lookup(char* query, RecordType qtype, Zone zone) {
  for (int i = 0; i < 2; i++) {
    Record record = zone.recs[i];
    if (record.rtyp == NS) {
      int l1 = strlen(query);
      int l2 = strlen(record.name);
      if (l2 < l1) {
        bool suffix = true;
        for (int j = 1; j <= l2; j++) {
          if (query[l1 - j] != record.name[l2 - j]) {
            suffix = false;
          }
        }
        if (suffix && query[l1 - l2 - 1] == '.') {
          return false;
        }
      }
      if (strcmp(query, record.name) == 0 && qtype != NS) {
        return false;
      }
    }
  }
  return true;
}
|}

(* Rewrite counter: how many times a query is rewritten by CNAME/DNAME
   records before resolution stops, capped — the LOOP model that forces
   exploration of (potentially infinite) rewrite chains. *)
let loop_count =
  {|
uint8_t loop_count(char* query, Zone zone) {
  uint8_t rewrites = 0;
  for (int hop = 0; hop < 4; hop++) {
    bool rewritten = false;
    for (int i = 0; i < 2; i++) {
      Record record = zone.recs[i];
      if (!rewritten && (record.rtyp == CNAME || record.rtyp == DNAME)) {
        if (record_matches_name(query, record)) {
          strcpy(query, record.rdat);
          rewrites = rewrites + 1;
          rewritten = true;
        }
      }
    }
    if (!rewritten) {
      return rewrites;
    }
  }
  return rewrites;
}
|}

(* Structurally different drafts of the same modules: real LLM sampling
   varies shape, not just operators. The oracle picks among same-named
   entries by seed, so the k drafts differ in structure and line count
   (the Table 2 LoC min/max spread). *)

let dname_applies_forward =
  {|
bool dname_applies(char* query, Record record) {
  // Walk forward over the candidate suffix start instead of
  // comparing from the end.
  if (record.rtyp != DNAME) {
    return false;
  }
  int l1 = strlen(query);
  int l2 = strlen(record.name);
  int start = l1 - l2;
  if (start <= 0) {
    return false;
  }
  if (query[start - 1] != '.') {
    return false;
  }
  for (int i = 0; i < l2; i++) {
    if (query[start + i] != record.name[i]) {
      return false;
    }
  }
  return true;
}
|}

let cname_applies_strncmp =
  {|
bool cname_applies(char* query, Record record) {
  if (record.rtyp == CNAME) {
    int l1 = strlen(query);
    int l2 = strlen(record.name);
    if (l1 == l2 && strncmp(query, record.name, l1) == 0) {
      return true;
    }
  }
  return false;
}
|}

let wildcard_applies_helperless =
  {|
bool wildcard_applies(char* query, Record record) {
  int l2 = strlen(record.name);
  if (l2 == 0 || record.name[0] != '*') {
    return false;
  }
  if (l2 == 1) {
    return true;
  }
  // match "<anything>.<base>" where base = name without "*"
  int l1 = strlen(query);
  int base = l2 - 1;
  int start = l1 - base;
  if (start < 1) {
    return false;
  }
  bool ok = true;
  for (int i = 0; i < base; i++) {
    if (query[start + i] != record.name[1 + i]) {
      ok = false;
    }
  }
  return ok;
}
|}

let entries =
  [
    ("cname_applies", cname_applies);
    ("cname_applies", cname_applies_strncmp);
    ("dname_applies", dname_applies);
    ("dname_applies", dname_applies_forward);
    ("wildcard_applies", wildcard_applies_helperless);
    ("record_applies", record_applies);
    ("wildcard_applies", wildcard_applies);
    ("ipv4_applies", ipv4_applies);
    ("is_valid_ipv4", is_valid_ipv4);
    ("record_matches_name", record_matches_name);
    ("full_lookup", full_lookup);
    ("rcode_lookup", rcode_lookup);
    ("auth_lookup", auth_lookup);
    ("loop_count", loop_count);
  ]
