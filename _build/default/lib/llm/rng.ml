type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let of_string seed s =
  let h = ref (Int64.of_int seed) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  { state = !h }

(* splitmix64 step *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod n

let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
              /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))
