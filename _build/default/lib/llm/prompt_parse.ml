module Ast = Eywa_minic.Ast
module Parser = Eywa_minic.Parser

type task = {
  target : Ast.func;
  enums : Ast.enum_def list;
  structs : Ast.struct_def list;
  helpers : Ast.proto list;
}

let parse user =
  let closed = user ^ "\n}\n" in
  match Parser.parse_result closed with
  | Error m -> Error (Printf.sprintf "prompt not parseable: %s" m)
  | Ok p -> (
      (* the unfinished function is the last (and only) definition *)
      match List.rev p.Ast.funcs with
      | target :: _ ->
          Ok { target; enums = p.Ast.enums; structs = p.Ast.structs;
               helpers = p.Ast.protos }
      | [] -> Error "prompt contains no function to complete")
