(* TCP connection-machine knowledge (the paper's §6 future work:
   "more complex stateful protocols like TCP").

   A server-side view of the RFC 793 connection machine over abbreviated
   segment kinds: S=SYN, A=ACK, F=FIN, R=RST, D=data. Replies are
   segment kinds the server emits: "SA"=SYN+ACK, "A"=ACK, "FA"=FIN+ACK,
   "R"=RST, "-"=nothing. As with SMTP, the dead stores to [state] feed
   the Fig. 8-style state-graph extraction. *)

let tcp_server_response =
  {|
char* tcp_server_response(TcpState state, char* segment) {
  char reply[4];
  strcpy(reply, "-");
  if (state == LISTEN) {
    if (strcmp(segment, "S") == 0) {
      strcpy(reply, "SA");
      state = SYN_RCVD;
    } else if (strcmp(segment, "R") == 0) {
      strcpy(reply, "-");
    } else {
      strcpy(reply, "R");
    }
  } else if (state == SYN_RCVD) {
    if (strcmp(segment, "A") == 0) {
      strcpy(reply, "-");
      state = ESTABLISHED;
    } else if (strcmp(segment, "R") == 0) {
      strcpy(reply, "-");
      state = LISTEN;
    } else if (strcmp(segment, "F") == 0) {
      strcpy(reply, "A");
      state = CLOSE_WAIT;
    } else {
      strcpy(reply, "R");
    }
  } else if (state == ESTABLISHED) {
    if (strcmp(segment, "D") == 0) {
      strcpy(reply, "A");
    } else if (strcmp(segment, "F") == 0) {
      strcpy(reply, "A");
      state = CLOSE_WAIT;
    } else if (strcmp(segment, "R") == 0) {
      strcpy(reply, "-");
      state = CLOSED;
    } else {
      strcpy(reply, "A");
    }
  } else if (state == CLOSE_WAIT) {
    if (strcmp(segment, "A") == 0) {
      strcpy(reply, "FA");
      state = LAST_ACK;
    } else if (strcmp(segment, "R") == 0) {
      strcpy(reply, "-");
      state = CLOSED;
    } else {
      strcpy(reply, "A");
    }
  } else if (state == LAST_ACK) {
    if (strcmp(segment, "A") == 0) {
      strcpy(reply, "-");
      state = CLOSED;
    } else {
      strcpy(reply, "R");
    }
  } else {
    strcpy(reply, "R");
  }
  return reply;
}
|}

let entries = [ ("tcp_server_response", tcp_server_response) ]
