(* Wire-format codecs: DNS messages and BGP UPDATEs. *)

module Dns = Eywa_dns
module Bgp = Eywa_bgp
module Serialize = Eywa_core.Serialize
module Value = Eywa_minic.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let n = Dns.Name.of_string

(* ----- DNS wire ----- *)

let sample_message () =
  let query = { Dns.Message.qname = n "a.b.test."; qtype = Dns.Rr.A } in
  let response =
    {
      Dns.Message.rcode = Dns.Message.NOERROR;
      aa = true;
      answer =
        [
          Dns.Rr.v (n "a.b.test.") Dns.Rr.CNAME (Dns.Rr.Target (n "c.test."));
          Dns.Rr.v (n "c.test.") Dns.Rr.A (Dns.Rr.Address "10.0.0.1");
        ];
      authority = [ Dns.Rr.v (n "test.") Dns.Rr.SOA Dns.Rr.Soa_data ];
      additional = [ Dns.Rr.v (n "t.test.") Dns.Rr.TXT (Dns.Rr.Text "hi") ];
    }
  in
  Dns.Wire.of_response ~id:0x1234 query response

let test_dns_roundtrip () =
  let m = sample_message () in
  match Dns.Wire.decode (Dns.Wire.encode m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      check_int "id" 0x1234 m'.Dns.Wire.header.id;
      check "qr" true m'.Dns.Wire.header.qr;
      check "aa" true m'.Dns.Wire.header.aa;
      check "question" true (m'.Dns.Wire.question = m.Dns.Wire.question);
      check "answer" true (m'.Dns.Wire.answer = m.Dns.Wire.answer);
      check "authority types" true
        (List.map (fun (r : Dns.Rr.t) -> r.rtype) m'.Dns.Wire.authority
        = [ Dns.Rr.SOA ]);
      check "additional" true (m'.Dns.Wire.additional = m.Dns.Wire.additional)

let test_dns_response_projection () =
  let m = sample_message () in
  let r = Dns.Wire.to_response m in
  check "rcode" true (r.Dns.Message.rcode = Dns.Message.NOERROR);
  check_int "answers" 2 (List.length r.Dns.Message.answer)

let test_dns_rcodes () =
  List.iter
    (fun rc ->
      check "rcode round trips" true
        (Dns.Wire.rcode_of_int (Dns.Wire.rcode_to_int rc) = rc))
    [ Dns.Message.NOERROR; Dns.Message.NXDOMAIN; Dns.Message.SERVFAIL;
      Dns.Message.REFUSED ]

let test_dns_compression_pointer () =
  (* hand-built message: one question whose name uses a pointer *)
  let buf = Buffer.create 32 in
  let u8 v = Buffer.add_char buf (Char.chr v) in
  let u16 v = u8 (v lsr 8); u8 (v land 0xff) in
  u16 0xbeef; u16 0x8000; u16 1; u16 0; u16 0; u16 0;
  (* name at offset 12: "abc" + pointer to itself? no — "abc" then root *)
  u8 3; Buffer.add_string buf "abc"; u8 0;
  u16 1; u16 1;
  (* second message copy replaced by: decode the first *)
  (match Dns.Wire.decode (Buffer.contents buf) with
  | Ok m -> check "qname" true ((List.hd m.Dns.Wire.question).qname = [ "abc" ])
  | Error e -> Alcotest.fail e);
  (* pointer loop must be rejected, not hang *)
  let evil = Buffer.create 32 in
  let u8 v = Buffer.add_char evil (Char.chr v) in
  let u16 v = u8 (v lsr 8); u8 (v land 0xff) in
  u16 0; u16 0; u16 1; u16 0; u16 0; u16 0;
  u8 0xc0; u8 12;  (* pointer to itself *)
  u16 1; u16 1;
  check "pointer loop rejected" true
    (Result.is_error (Dns.Wire.decode (Buffer.contents evil)))

let test_dns_malformed () =
  check "empty buffer" true (Result.is_error (Dns.Wire.decode ""));
  check "truncated header" true (Result.is_error (Dns.Wire.decode "abc"));
  let m = sample_message () in
  let whole = Dns.Wire.encode m in
  let cut = String.sub whole 0 (String.length whole - 3) in
  check "truncated body" true (Result.is_error (Dns.Wire.decode cut))

let test_dns_label_limit () =
  let long = String.make 64 'a' in
  let q = { Dns.Message.qname = [ long; "test" ]; qtype = Dns.Rr.A } in
  let m = Dns.Wire.of_response ~id:1 q Dns.Message.empty_response in
  check "64-byte label rejected" true
    (match Dns.Wire.encode m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_dns_roundtrip =
  let gen_name =
    QCheck2.Gen.(list_size (int_range 1 4) (oneofl [ "a"; "bb"; "xyz"; "star" ]))
  in
  let gen_rr =
    QCheck2.Gen.(
      map3
        (fun owner kind target ->
          match kind with
          | 0 -> Dns.Rr.v owner Dns.Rr.A (Dns.Rr.Address "10.1.2.3")
          | 1 -> Dns.Rr.v owner Dns.Rr.NS (Dns.Rr.Target target)
          | 2 -> Dns.Rr.v owner Dns.Rr.CNAME (Dns.Rr.Target target)
          | 3 -> Dns.Rr.v owner Dns.Rr.DNAME (Dns.Rr.Target target)
          | _ -> Dns.Rr.v owner Dns.Rr.TXT (Dns.Rr.Text "data"))
        gen_name (int_range 0 4) gen_name)
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"dns wire encode/decode round trips"
       QCheck2.Gen.(pair gen_name (list_size (int_range 0 4) gen_rr))
       (fun (qname, answer) ->
         let m =
           Dns.Wire.of_response ~id:7
             { Dns.Message.qname; qtype = Dns.Rr.A }
             { Dns.Message.empty_response with Dns.Message.answer }
         in
         match Dns.Wire.decode (Dns.Wire.encode m) with
         | Ok m' ->
             m'.Dns.Wire.question = m.Dns.Wire.question
             && m'.Dns.Wire.answer = m.Dns.Wire.answer
         | Error _ -> false))

(* ----- BGP wire ----- *)

let pfx s = match Bgp.Prefix.of_string s with Ok p -> p | Error m -> Alcotest.fail m

let sample_route () =
  Bgp.Route.v ~next_hop:0x0A000001l
    ~as_path:
      [ Bgp.Aspath.Confed_seq [ 65001 ]; Bgp.Aspath.Seq [ 100; 200 ];
        Bgp.Aspath.Set [ 300; 400 ] ]
    ~local_pref:250 ~med:30 ~origin:Bgp.Route.Egp
    ~communities:[ (65000, 1); (65000, 2) ]
    (pfx "10.128.0.0/9")

let test_bgp_roundtrip () =
  let r = sample_route () in
  match Bgp.Wire.decode_route (Bgp.Wire.encode_route r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
      check "prefix" true (Bgp.Prefix.equal r'.Bgp.Route.prefix r.Bgp.Route.prefix);
      check "path" true (Bgp.Aspath.equal r'.Bgp.Route.as_path r.Bgp.Route.as_path);
      check_int "lp" 250 r'.Bgp.Route.local_pref;
      check_int "med" 30 r'.Bgp.Route.med;
      check "origin" true (r'.Bgp.Route.origin = Bgp.Route.Egp);
      check "nh" true (r'.Bgp.Route.next_hop = 0x0A000001l);
      check "communities" true (r'.Bgp.Route.communities = [ (65000, 1); (65000, 2) ])

let test_bgp_withdrawals () =
  let u =
    { Bgp.Wire.withdrawn = [ pfx "10.0.0.0/8"; pfx "192.168.0.0/16" ];
      route = None; nlri = [] }
  in
  match Bgp.Wire.decode (Bgp.Wire.encode u) with
  | Error e -> Alcotest.fail e
  | Ok u' ->
      check_int "two withdrawals" 2 (List.length u'.Bgp.Wire.withdrawn);
      check "no route" true (u'.Bgp.Wire.route = None)

let test_bgp_malformed () =
  check "short" true (Result.is_error (Bgp.Wire.decode "xx"));
  let whole = Bgp.Wire.encode_route (sample_route ()) in
  let cut = String.sub whole 0 (String.length whole - 2) in
  check "truncated" true (Result.is_error (Bgp.Wire.decode cut));
  check "length mismatch" true
    (Result.is_error (Bgp.Wire.decode (whole ^ "zz")))

let test_bgp_as_limit () =
  let r = Bgp.Route.v ~as_path:(Bgp.Aspath.prepend 70000 Bgp.Aspath.empty)
      (pfx "10.0.0.0/8") in
  check "32-bit AS rejected by the 16-bit encoder" true
    (match Bgp.Wire.encode_route r with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_bgp_roundtrip =
  let gen_route =
    QCheck2.Gen.(
      map3
        (fun addr len asns ->
          Bgp.Route.v
            ~as_path:(if asns = [] then [] else [ Bgp.Aspath.Seq asns ])
            ~local_pref:(100 + List.length asns)
            (Bgp.Prefix.v (Int32.of_int addr) len))
        (int_range 0 0x3FFFFFFF) (int_range 0 32)
        (list_size (int_range 0 5) (int_range 1 65535)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"bgp wire encode/decode round trips"
       gen_route
       (fun r ->
         match Bgp.Wire.decode_route (Bgp.Wire.encode_route r) with
         | Ok r' -> r' = r
         | Error _ -> false))

(* ----- test-suite serialization ----- *)

let gen_value =
  let open QCheck2.Gen in
  sized @@ fix (fun self size ->
      if size <= 0 then
        oneof
          [
            pure Value.Vunit;
            map (fun b -> Value.Vbool b) bool;
            map (fun c -> Value.Vchar (Char.chr c)) (int_range 0 255);
            map (fun i -> Value.Vint i) (int_range (-1000) 1000);
            map (fun i -> Value.Venum ("Kind", i)) (int_range 0 6);
            map (fun s -> Value.Vstring s)
              (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 6));
          ]
      else
        oneof
          [
            map (fun fields -> Value.Vstruct ("S", fields))
              (list_size (int_range 1 3)
                 (pair (oneofl [ "x"; "y"; "zz" ]) (self (size / 2))));
            map (fun vs -> Value.Varray (Array.of_list vs))
              (list_size (int_range 0 3) (self (size / 2)));
          ])

let prop_value_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"serialized values round trip"
       gen_value
       (fun v ->
         match Serialize.value_of_string (Serialize.value_to_string v) with
         | Ok v' -> Value.equal v v'
         | Error _ -> false))

let prop_test_line_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"serialized test lines round trip"
       QCheck2.Gen.(triple gen_value gen_value bool)
       (fun (a, b, bad) ->
         let t =
           { Eywa_core.Testcase.inputs = [ ("x", a); ("y", b) ];
             result = Some a; bad_input = bad; error = None }
         in
         match Serialize.test_of_line (Serialize.test_to_line t) with
         | Ok t' -> t' = t
         | Error _ -> false))

(* quote/unquote must round-trip every byte sequence — quotes,
   backslashes, newlines, NUL and its neighbours included *)
let prop_quote_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"quote/unquote round trips any bytes"
       QCheck2.Gen.(
         string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))
       (fun s -> Serialize.unquote (Serialize.quote s) = Ok s))

let test_quote_edge_cases () =
  List.iter
    (fun s ->
      match Serialize.unquote (Serialize.quote s) with
      | Ok s' -> check (Printf.sprintf "%S round trips" s) true (s = s')
      | Error e -> Alcotest.failf "%S failed to round trip: %s" s e)
    [
      ""; "\""; "\\"; "\\\""; "a\nb"; "\r\n"; "\000"; "\000a"; "a\000";
      "\001\002"; "\255"; "\254\255\000\001"; "plain ascii"; "\\x41";
    ]

let test_unquote_malformed () =
  let rejects what s =
    check (what ^ " is rejected with Error") true
      (Result.is_error (Serialize.unquote s))
  in
  rejects "unquoted input" "abc";
  rejects "unterminated quote" "\"abc";
  rejects "truncated backslash" "\"a\\";
  rejects "truncated hex escape" "\"\\x4\"";
  rejects "hex escape cut at end" "\"\\x";
  rejects "non-hex digits" "\"\\xzz\"";
  rejects "trailing garbage" "\"ok\"junk"

let test_suite_file_roundtrip () =
  let tests =
    [
      { Eywa_core.Testcase.inputs = [ ("q", Value.of_cstring "a.b") ];
        result = Some (Value.Vbool true); bad_input = false; error = None };
      { Eywa_core.Testcase.inputs = [ ("q", Value.Vint 3) ];
        result = None; bad_input = true; error = Some "step budget" };
    ]
  in
  let path = Filename.temp_file "eywa" ".suite" in
  Serialize.save path tests;
  (match Serialize.load path with
  | Ok loaded -> check "file round trip" true (loaded = tests)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_suite_load_errors () =
  check "missing file" true (Result.is_error (Serialize.load "/nonexistent/x"));
  let path = Filename.temp_file "eywa" ".suite" in
  let oc = open_out path in
  output_string oc "# header\nnot a test line\n";
  close_out oc;
  check "malformed line reported" true (Result.is_error (Serialize.load path));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "dns wire: round trip" `Quick test_dns_roundtrip;
    Alcotest.test_case "dns wire: response projection" `Quick test_dns_response_projection;
    Alcotest.test_case "dns wire: rcodes" `Quick test_dns_rcodes;
    Alcotest.test_case "dns wire: compression pointers" `Quick test_dns_compression_pointer;
    Alcotest.test_case "dns wire: malformed input" `Quick test_dns_malformed;
    Alcotest.test_case "dns wire: label length limit" `Quick test_dns_label_limit;
    prop_dns_roundtrip;
    Alcotest.test_case "bgp wire: round trip" `Quick test_bgp_roundtrip;
    Alcotest.test_case "bgp wire: withdrawals" `Quick test_bgp_withdrawals;
    Alcotest.test_case "bgp wire: malformed input" `Quick test_bgp_malformed;
    Alcotest.test_case "bgp wire: AS number limit" `Quick test_bgp_as_limit;
    prop_bgp_roundtrip;
    prop_value_roundtrip;
    prop_test_line_roundtrip;
    prop_quote_roundtrip;
    Alcotest.test_case "serialize: quote edge cases" `Quick test_quote_edge_cases;
    Alcotest.test_case "serialize: malformed quotes rejected" `Quick
      test_unquote_malformed;
    Alcotest.test_case "serialize: suite files round trip" `Quick test_suite_file_roundtrip;
    Alcotest.test_case "serialize: load errors" `Quick test_suite_load_errors;
  ]
