let () =
  Alcotest.run "eywa"
    [
      ("solver", Test_solver.suite);
      ("minic", Test_minic.suite);
      ("symex", Test_symex.suite);
      ("core", Test_core.suite);
      ("llm", Test_llm.suite);
      ("dns", Test_dns.suite);
      ("bgp", Test_bgp.suite);
      ("smtp", Test_smtp.suite);
      ("infra", Test_infra.suite);
      ("models", Test_models.suite);
      ("tcp", Test_tcp.suite);
      ("wire", Test_wire.suite);
      ("smtp-wire", Test_smtp_wire.suite);
      ("server", Test_server.suite);
      ("edge", Test_edge.suite);
      ("report", Test_report.suite);
      ("parallel", Test_parallel.suite);
      ("pipeline", Test_pipeline.suite);
      ("fuzz", Test_fuzz.suite);
      ("obs", Test_obs.suite);
    ]
