(* The PR-1 determinism contract: the domain pool is an implementation
   detail. Synthesis, difftest, and quirk attribution must produce
   bit-for-bit the same answer at jobs=1 and jobs=4; Pool.map itself
   must preserve input order and surface the sequentially-first
   exception.

   The symex budget is a deterministic tick count, so even a model
   that exhausts it must agree across pool sizes; the generous budget
   here just keeps these models on their fast, complete paths. *)

module Pool = Eywa_core.Pool
module Term = Eywa_solver.Term
module Model_def = Eywa_models.Model_def
module Dns_models = Eywa_models.Dns_models
module Bgp_models = Eywa_models.Bgp_models
module Smtp_models = Eywa_models.Smtp_models
module Synthesis = Eywa_core.Synthesis
module Testcase = Eywa_core.Testcase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let oracle = Eywa_llm.Gpt.oracle ()

(* Everything observable about a synthesis except wall-clock fields. *)
let fingerprint (s : Synthesis.t) =
  String.concat "\n"
    (Printf.sprintf "loc=%d/%d programs=%d" s.loc_min s.loc_max
       (List.length s.programs)
     :: List.map Testcase.to_string s.unique_tests
    @ List.concat_map
        (fun (r : Synthesis.model_result) ->
          Printf.sprintf "model %d loc=%d err=%s" r.index r.c_loc
            (Option.value ~default:"-" r.compile_error)
          :: List.map Testcase.to_string r.tests)
        s.results)

let synth ~jobs model =
  match Model_def.synthesize ~k:4 ~timeout:10.0 ~jobs ~oracle model with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let assert_jobs_invariant (m : Model_def.t) =
  let s1 = synth ~jobs:1 m in
  let s4 = synth ~jobs:4 m in
  Alcotest.(check string)
    (m.id ^ " fingerprint jobs=1 = jobs=4")
    (fingerprint s1) (fingerprint s4);
  check_int (m.id ^ " unique test count")
    (List.length s1.unique_tests)
    (List.length s4.unique_tests);
  check_int (m.id ^ " loc_min") s1.loc_min s4.loc_min;
  check_int (m.id ^ " loc_max") s1.loc_max s4.loc_max

let test_dns_jobs_invariant () = assert_jobs_invariant Dns_models.cname
let test_bgp_jobs_invariant () = assert_jobs_invariant Bgp_models.rr
let test_smtp_jobs_invariant () = assert_jobs_invariant Smtp_models.server

let test_difftest_jobs_invariant () =
  let s = synth ~jobs:4 Dns_models.cname in
  let run jobs =
    Format.asprintf "%a" Eywa_difftest.Difftest.pp_report
      (Eywa_models.Dns_adapter.run ~jobs ~model_id:"CNAME"
         ~version:Eywa_dns.Impls.Old s.unique_tests)
  in
  Alcotest.(check string) "difftest report jobs=1 = jobs=4" (run 1) (run 4)

let test_quirks_jobs_invariant () =
  let s = synth ~jobs:4 Dns_models.cname in
  let quirks jobs =
    Eywa_models.Dns_adapter.quirks_triggered ~jobs ~version:Eywa_dns.Impls.Old
      [ ("CNAME", s.unique_tests) ]
  in
  check "quirk attribution jobs=1 = jobs=4" true (quirks 1 = quirks 4)

(* ----- Pool.map semantics ----- *)

exception Boom of int

let pool_map_preserves_order =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"Pool.map f xs = List.map f xs, in order, for jobs in 1..4"
       QCheck2.Gen.(pair (int_range 1 4) (list_size (int_range 0 40) small_int))
       (fun (jobs, xs) ->
         let f x = (x * 31) + (x mod 7) in
         Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs) = List.map f xs))

let pool_map_first_exception =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"Pool.map raises the smallest failing index's exception"
       QCheck2.Gen.(
         triple (int_range 1 4) (int_range 0 20)
           (list_size (int_range 1 20) (int_range 0 19)))
       (fun (jobs, len, bad) ->
         let xs = List.init (len + List.fold_left max 0 bad + 1) Fun.id in
         let f i = if List.mem i bad then raise (Boom i) else i in
         let expected = List.fold_left min max_int bad in
         match Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs) with
         | _ -> false
         | exception Boom i -> i = expected))

let test_pool_nested_map_inline () =
  (* map from inside a worker must not deadlock: it runs inline *)
  let outer =
    Pool.with_pool ~jobs:2 (fun pool ->
        Pool.map pool
          (fun i ->
            Pool.with_pool ~jobs:2 (fun inner ->
                Pool.map inner (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2 ])
  in
  check "nested pools compute the right thing" true
    (outer = [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ])

let test_pool_default_jobs_positive () =
  check "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* ----- per-domain term ids ----- *)

let test_with_fresh_ids_isolates () =
  Term.reset_ids ();
  let v0 = Term.fresh_var (Term.Sint 2) [| 0; 1 |] in
  let inner =
    Term.with_fresh_ids (fun () ->
        let w = Term.fresh_var (Term.Sint 2) [| 0; 1 |] in
        w.Term.vid)
  in
  let v1 = Term.fresh_var (Term.Sint 2) [| 0; 1 |] in
  check_int "outer first id" 0 v0.Term.vid;
  check_int "inner restarts at 0" 0 inner;
  check_int "outer counter unaffected by inner scope" 1 v1.Term.vid

let test_fresh_ids_per_domain () =
  (* each pool worker allocates from its own dense counter *)
  let ids =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun _ ->
            Term.with_fresh_ids (fun () ->
                let a = Term.fresh_var (Term.Sint 2) [| 0; 1 |] in
                let b = Term.fresh_var (Term.Sint 2) [| 0; 1 |] in
                (a.Term.vid, b.Term.vid)))
          [ 0; 1; 2; 3 ])
  in
  check "every domain's ids are dense from 0" true
    (List.for_all (fun p -> p = (0, 1)) ids)

let suite =
  [
    Alcotest.test_case "DNS CNAME: jobs=1 = jobs=4" `Slow test_dns_jobs_invariant;
    Alcotest.test_case "BGP RR: jobs=1 = jobs=4" `Slow test_bgp_jobs_invariant;
    Alcotest.test_case "SMTP SERVER: jobs=1 = jobs=4" `Slow
      test_smtp_jobs_invariant;
    Alcotest.test_case "difftest report: jobs=1 = jobs=4" `Slow
      test_difftest_jobs_invariant;
    Alcotest.test_case "quirk attribution: jobs=1 = jobs=4" `Slow
      test_quirks_jobs_invariant;
    pool_map_preserves_order;
    pool_map_first_exception;
    Alcotest.test_case "nested Pool.map runs inline" `Quick
      test_pool_nested_map_inline;
    Alcotest.test_case "default_jobs is positive" `Quick
      test_pool_default_jobs_positive;
    Alcotest.test_case "with_fresh_ids isolates the counter" `Quick
      test_with_fresh_ids_isolates;
    Alcotest.test_case "pool workers get dense ids from 0" `Quick
      test_fresh_ids_per_domain;
  ]
