(* The PR-2 pipeline contract: the content-addressed cache is
   invisible to every observable output.

   - A warm-cache run is byte-identical to a cold run — including the
     wall-clock fields, which are stored in the artifact as hexfloats
     and replayed on a hit — at jobs=1 and jobs=4.
   - Cache keys cover every input a draw depends on: changing the
     seed, temperature, any budget, the sampling count, the alphabet
     or any prompt text changes the key; changing nothing doesn't.
   - Draw artifacts round-trip exactly through the textual codec, and
     through a cache directory on disk picked up by a fresh process
     (modelled here as a fresh Cache on the same dir).
   - jobs=1 and jobs=4 populate byte-identical cache contents.
   - The collecting sink sees the same deterministic event stream
     either way, except for Cache_hit/Cache_miss themselves. *)

module Pipeline = Eywa_core.Pipeline
module Cache = Eywa_core.Cache
module Instrument = Eywa_core.Instrument
module Synthesis = Eywa_core.Synthesis
module Graph = Eywa_core.Graph
module Emodule = Eywa_core.Emodule
module Testcase = Eywa_core.Testcase
module Model_def = Eywa_models.Model_def
module Bgp_models = Eywa_models.Bgp_models
module Dns_models = Eywa_models.Dns_models

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let oracle = Eywa_llm.Gpt.oracle ()

(* Everything observable about a synthesis, wall-clock fields
   included: cache hits must replay even those byte-identically (they
   come out of the stored artifact, not a clock). *)
let full_fingerprint (s : Synthesis.t) =
  String.concat "\n"
    (Printf.sprintf "loc=%d/%d programs=%d" s.loc_min s.loc_max
       (List.length s.programs)
     :: List.map Testcase.to_string s.unique_tests
    @ List.concat_map
        (fun (r : Synthesis.model_result) ->
          Printf.sprintf "model %d loc=%d err=%s gen=%h sym=%h stats=%s"
            r.index r.c_loc
            (Option.value ~default:"-" r.compile_error)
            r.gen_seconds r.symex_seconds
            (match r.stats with
            | None -> "-"
            | Some st ->
                Printf.sprintf "%d/%d/%d/%d/%d/%d/%b/%d"
                  st.Eywa_symex.Exec.paths_completed
                  st.Eywa_symex.Exec.paths_pruned st.Eywa_symex.Exec.solver_calls
                  st.Eywa_symex.Exec.solver_decisions
                  st.Eywa_symex.Exec.cex_hits st.Eywa_symex.Exec.model_reuses
                  st.Eywa_symex.Exec.timed_out st.Eywa_symex.Exec.ticks_used)
          :: List.map Testcase.to_string r.tests)
        s.results)

(* Same, minus the wall-clock fields — for comparing two independent
   computations (different runs measure different times). *)
let det_fingerprint (s : Synthesis.t) =
  String.concat "\n"
    (Printf.sprintf "loc=%d/%d programs=%d" s.loc_min s.loc_max
       (List.length s.programs)
     :: List.map Testcase.to_string s.unique_tests
    @ List.concat_map
        (fun (r : Synthesis.model_result) ->
          Printf.sprintf "model %d loc=%d err=%s" r.index r.c_loc
            (Option.value ~default:"-" r.compile_error)
          :: List.map Testcase.to_string r.tests)
        s.results)

let model = Bgp_models.rr

let config (m : Model_def.t) =
  {
    Pipeline.default_config with
    k = 4;
    timeout = 10.0;
    alphabet = m.alphabet;
  }

let run ?cache ?sink ~jobs (m : Model_def.t) =
  match
    Pipeline.run ?cache ?sink ~config:(config m) ~jobs ~oracle m.graph
      ~main:m.main
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* ----- warm cache = cold run, at jobs=1 and jobs=4 ----- *)

let test_warm_equals_cold () =
  List.iter
    (fun jobs ->
      let cache = Cache.create () in
      let cold = run ~cache ~jobs model in
      check_int
        (Printf.sprintf "jobs=%d: cold run misses every draw" jobs)
        4 (Cache.misses cache);
      let warm = run ~cache ~jobs model in
      check_int
        (Printf.sprintf "jobs=%d: warm run hits every draw" jobs)
        4 (Cache.hits cache);
      check_string
        (Printf.sprintf "jobs=%d: warm fingerprint = cold (incl. wall fields)"
           jobs)
        (full_fingerprint cold) (full_fingerprint warm);
      (* an uncached run is a separate computation: its wall-clock
         fields differ, everything deterministic is identical *)
      let uncached = run ~jobs model in
      check_string
        (Printf.sprintf "jobs=%d: cached = uncached" jobs)
        (det_fingerprint uncached) (det_fingerprint cold))
    [ 1; 4 ]

(* ----- key sensitivity ----- *)

let base_prompts = [ ("main", "record_applies"); ("module:m", "prompt text") ]

let key ?(oracle_name = "gpt") ?(prompts = base_prompts) ?(index = 0) cfg =
  Cache.Key.digest (Pipeline.draw_key ~oracle_name ~config:cfg ~prompts ~index)

let test_key_sensitivity () =
  let cfg = config model in
  let base = key cfg in
  check_string "same inputs, same key" base (key cfg);
  let differs what k' = check (what ^ " changes the key") true (base <> k') in
  differs "seed" (key { cfg with base_seed = cfg.base_seed + 1 });
  differs "temperature" (key { cfg with temperature = 0.7 });
  differs "tick budget" (key { cfg with timeout = cfg.timeout +. 1.0 });
  differs "max_paths" (key { cfg with max_paths = cfg.max_paths + 1 });
  differs "max_steps" (key { cfg with max_steps = cfg.max_steps + 1 });
  differs "max_solver_decisions"
    (key { cfg with max_solver_decisions = cfg.max_solver_decisions + 1 });
  differs "samples_per_path"
    (key { cfg with samples_per_path = cfg.samples_per_path + 1 });
  (* tests are identical either way, but the stored solver_decisions
     stat depends on the toggle *)
  differs "cex_cache" (key { cfg with cex_cache = not cfg.cex_cache });
  differs "alphabet" (key { cfg with alphabet = [ 'a'; 'b' ] });
  differs "draw index" (key ~index:1 cfg);
  differs "oracle name" (key ~oracle_name:"other" cfg);
  differs "prompt text"
    (key ~prompts:[ ("main", "record_applies"); ("module:m", "other") ] cfg);
  (* k is deliberately NOT in the key: draw i of a k=4 run must reuse
     draw i of a k=12 run (the fig10 sweep's prefix reuse) *)
  check_string "k does not change the key" base (key { cfg with k = 12 });
  (* index and base_seed fold into one effective seed *)
  check_string "seed+1/index+0 = seed+0/index+1"
    (key { cfg with base_seed = cfg.base_seed + 1 })
    (key ~index:1 cfg)

let key_seed_injective =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200
       ~name:"distinct effective seeds give distinct key digests"
       QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 10_000))
       (fun (s1, s2) ->
         let cfg = config model in
         let k1 = key { cfg with base_seed = s1 }
         and k2 = key { cfg with base_seed = s2 } in
         if s1 = s2 then k1 = k2 else k1 <> k2))

(* ----- artifact codec ----- *)

let draw_roundtrip (m : Model_def.t) index =
  let f =
    match m.main with Emodule.Func f -> f | _ -> Alcotest.fail "main not Func"
  in
  let order =
    match Graph.synthesis_order m.graph ~main:m.main with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let artifact =
    Pipeline.run_draw ~oracle ~config:(config m) m.graph ~main:f ~order index
  in
  let encoded = Pipeline.artifact_to_string artifact in
  match Pipeline.artifact_of_string m.graph ~main:f encoded with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok decoded ->
      check
        (Printf.sprintf "%s draw %d round-trips exactly" m.id index)
        true (decoded = artifact);
      (* and the re-encoding is stable *)
      check_string "encode . decode . encode is the identity" encoded
        (Pipeline.artifact_to_string decoded)

let test_artifact_roundtrip () =
  draw_roundtrip Bgp_models.rr 0;
  draw_roundtrip Bgp_models.rr 2;
  (* a model with regex pipes, struct/enum inputs and string atoms *)
  draw_roundtrip Dns_models.cname 1

(* truncated payloads — a partial cache write, a corrupted file — must
   decode to Error, never raise *)
let test_artifact_truncation () =
  let m = model in
  let f =
    match m.main with Emodule.Func f -> f | _ -> Alcotest.fail "main not Func"
  in
  let order =
    match Graph.synthesis_order m.graph ~main:m.main with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let encoded =
    Pipeline.artifact_to_string
      (Pipeline.run_draw ~oracle ~config:(config m) m.graph ~main:f ~order 0)
  in
  (* cutting only the final newline loses nothing, so stop short of it *)
  for cut = 0 to String.length encoded - 2 do
    match Pipeline.artifact_of_string m.graph ~main:f (String.sub encoded 0 cut) with
    | Error _ -> ()
    | Ok _ ->
        Alcotest.failf "truncation at byte %d of %d decoded successfully" cut
          (String.length encoded)
  done

(* ----- on-disk persistence ----- *)

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eywa-cache-test-%d" (Unix.getpid ()))
  in
  (* start clean: stale artifacts from a previous run would hide
     misses *)
  if Sys.file_exists d then
    Array.iter
      (fun f -> Sys.remove (Filename.concat d f))
      (Sys.readdir d);
  d

let test_disk_roundtrip () =
  let dir = temp_dir () in
  let c1 = Cache.create ~dir () in
  let cold = run ~cache:c1 ~jobs:1 model in
  check_int "cold run misses" 4 (Cache.misses c1);
  (* a fresh cache on the same directory models a fresh process *)
  let c2 = Cache.create ~dir () in
  let warm = run ~cache:c2 ~jobs:1 model in
  check_int "fresh cache on the same dir hits every draw" 4 (Cache.hits c2);
  check_string "disk round-trip is byte-identical" (full_fingerprint cold)
    (full_fingerprint warm)

(* ----- cache contents are jobs-invariant ----- *)

(* The stored artifact's only machine-dependent content is its "gen"
   and "sym" wall-seconds lines (quoted fields escape newlines, so no
   embedded text can masquerade as one); drop them so two independent
   runs can be compared. *)
let mask_wall_fields payload =
  String.concat "\n"
    (List.filter
       (fun line ->
         not
           (String.length line >= 4
           && (String.sub line 0 4 = "gen " || String.sub line 0 4 = "sym ")))
       (String.split_on_char '\n' payload))

let test_cache_contents_jobs_invariant () =
  let c1 = Cache.create () and c4 = Cache.create () in
  ignore (run ~cache:c1 ~jobs:1 model);
  ignore (run ~cache:c4 ~jobs:4 model);
  let contents c =
    List.map (fun (slot, payload) -> (slot, mask_wall_fields payload))
      (Cache.to_list c)
  in
  check "jobs=1 and jobs=4 store identical cache contents" true
    (contents c1 = contents c4)

(* ----- instrumentation ----- *)

let events_sans_cache c =
  List.filter
    (function
      | Instrument.Cache_hit _ | Instrument.Cache_miss _ -> false | _ -> true)
    (Instrument.Collector.events c)

(* Zero the machine/pool/cache-dependent event fields, for comparing
   two independent computations: Draw_finished wall seconds, and
   Pool_merged's env fields (computed depends on the cache state,
   jobs/per_worker/queue_wait_ticks on the pool size). *)
let norm_event = function
  | Instrument.Draw_finished { index; tests; _ } ->
      Instrument.Draw_finished
        { index; tests; gen_seconds = 0.0; symex_seconds = 0.0 }
  | Instrument.Pool_merged { label; tasks; _ } ->
      Instrument.Pool_merged
        {
          label;
          tasks;
          computed = 0;
          jobs = 0;
          per_worker = [];
          queue_wait_ticks = 0;
        }
  | e -> e

let test_event_stream_deterministic () =
  let collect ?cache ~jobs () =
    let c = Instrument.Collector.create () in
    ignore (run ?cache ~sink:(Instrument.Collector.sink c) ~jobs model);
    c
  in
  let c1 = collect ~jobs:1 () and c4 = collect ~jobs:4 () in
  check "event stream jobs=1 = jobs=4" true
    (List.map norm_event (Instrument.Collector.events c1)
    = List.map norm_event (Instrument.Collector.events c4));
  (* warm run: same events modulo Cache_hit/Cache_miss *)
  let cache = Cache.create () in
  let cold = collect ~cache ~jobs:1 () in
  let warm = collect ~cache ~jobs:1 () in
  check "hit replays the miss's draw events" true
    (List.map norm_event (events_sans_cache cold)
    = List.map norm_event (events_sans_cache warm));
  let s_cold = Instrument.Collector.summary cold
  and s_warm = Instrument.Collector.summary warm in
  check_int "cold misses" 4 s_cold.Instrument.Collector.cache_misses;
  check_int "warm hits" 4 s_warm.Instrument.Collector.cache_hits;
  check_int "same ticks either way" s_cold.Instrument.Collector.symex_ticks
    s_warm.Instrument.Collector.symex_ticks

let test_collector_summary () =
  let c = Instrument.Collector.create () in
  ignore (run ~sink:(Instrument.Collector.sink c) ~jobs:2 model);
  let s = Instrument.Collector.summary c in
  check_int "one Draw_finished per draw" 4 s.Instrument.Collector.draws;
  check "symex did deterministic work" true
    (s.Instrument.Collector.symex_ticks > 0);
  check "paths were completed" true (s.Instrument.Collector.paths_completed > 0);
  check_int "suite aggregated once"
    (List.length (run ~jobs:1 model).unique_tests)
    s.Instrument.Collector.unique_tests;
  Instrument.Collector.clear c;
  check_int "clear empties the buffer" 0
    (List.length (Instrument.Collector.events c));
  (* tee fans one event out to both sinks *)
  let a = ref 0 and b = ref 0 in
  Instrument.tee (fun _ -> incr a) (fun _ -> incr b)
    (Instrument.Draw_started { index = 0 });
  check_int "tee reaches the first sink" 1 !a;
  check_int "tee reaches the second sink" 1 !b

let suite =
  [
    Alcotest.test_case "warm cache = cold run (jobs 1 and 4)" `Slow
      test_warm_equals_cold;
    Alcotest.test_case "cache key covers every draw input" `Quick
      test_key_sensitivity;
    key_seed_injective;
    Alcotest.test_case "draw artifacts round-trip the codec" `Slow
      test_artifact_roundtrip;
    Alcotest.test_case "truncated draw artifacts decode to Error" `Slow
      test_artifact_truncation;
    Alcotest.test_case "on-disk cache round-trips across processes" `Slow
      test_disk_roundtrip;
    Alcotest.test_case "cache contents: jobs=1 = jobs=4" `Slow
      test_cache_contents_jobs_invariant;
    Alcotest.test_case "event stream is jobs- and cache-invariant" `Slow
      test_event_stream_deterministic;
    Alcotest.test_case "collector summary counts stages" `Slow
      test_collector_summary;
  ]
