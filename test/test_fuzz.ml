(* The PR-3 fuzz-stage contract, mirroring test_pipeline.ml:

   - A fuzz run is byte-identical at jobs=1 and jobs=4, and on a warm
     cache vs a cold one — the budget is a deterministic tick count and
     the artifact stores no wall-clock fields.
   - The fuzz cache key extends the draw key with every fuzz input
     (seed, budget, keeper cap, mutator set, fuel) and, like the draw
     key, excludes k.
   - Fuzz artifacts round-trip the codec exactly; truncated or
     malformed payloads decode to [Error], never an exception.
   - Dynamic edge coverage is a subset of the static edge universe.
   - Mutants preserve the shape of the input vector (same constructor
     tree, string lengths, array sizes, struct fields).
   - Regression: a runtime error escaping a nested call must surface
     as [Error], not corrupt the interpreter's scope stack. *)

module Fuzz = Eywa_fuzz.Fuzz
module Mutate = Eywa_fuzz.Mutate
module Rng = Eywa_fuzz.Rng
module Coverage = Eywa_fuzz.Coverage
module Pipeline = Eywa_core.Pipeline
module Cache = Eywa_core.Cache
module Harness = Eywa_core.Harness
module Testcase = Eywa_core.Testcase
module Model_def = Eywa_models.Model_def
module Dns_models = Eywa_models.Dns_models
module Interp = Eywa_minic.Interp
module Parser = Eywa_minic.Parser
module Value = Eywa_minic.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let oracle = Eywa_llm.Gpt.oracle ()

(* LOOP at smoke scale: a model where fuzzing genuinely finds edges
   the symex seed suite missed, so the determinism checks cover a run
   with non-trivial keepers. *)
let model = Dns_models.loop
let k = 3
let timeout (m : Model_def.t) = Float.max 1.0 (m.timeout *. 0.1)

let fuzz_config =
  { Fuzz.default_config with budget = 250; max_new_tests = 16 }

let synth ?cache ?jobs (m : Model_def.t) =
  match
    Model_def.synthesize ?cache ~k ~timeout:(timeout m) ?jobs ~oracle m
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let fuzz ?cache ?jobs (m : Model_def.t) s =
  match
    Model_def.fuzz ?cache ~fuzz_config ~k ~timeout:(timeout m) ?jobs ~oracle m
      s
  with
  | Ok f -> f
  | Error e -> Alcotest.fail e

(* the synthesis the fuzz tests hang off; computed once *)
let seed_suite = lazy (synth model)

(* Everything observable about a fuzz run. There are no wall-clock
   fields to mask: any two runs with the same inputs must agree on
   every byte of this. *)
let fingerprint (f : Fuzz.t) =
  String.concat "\n"
    (List.concat_map
       (fun (d : Fuzz.draw_fuzz) ->
         Printf.sprintf "draw %d execs=%d edges=%d/%d/%d" d.f_index d.execs
           d.edges_seed d.edges_after d.edges_static
         :: List.map Testcase.to_string d.new_tests)
       f.per_draw
    @ ("fuzz:" :: List.map Testcase.to_string f.fuzz_tests)
    @ ("combined:" :: List.map Testcase.to_string f.combined_tests))

(* ----- jobs invariance ----- *)

let test_jobs_invariant () =
  let s = Lazy.force seed_suite in
  let f1 = fuzz ~jobs:1 model s and f4 = fuzz ~jobs:4 model s in
  check_string "fuzz output jobs=1 = jobs=4" (fingerprint f1) (fingerprint f4);
  (* the run is non-trivial: fuzzing found edges symex missed *)
  check "fuzzing found new tests" true (List.length f1.fuzz_tests > 0);
  check "edge coverage strictly increased on some draw" true
    (List.exists
       (fun (d : Fuzz.draw_fuzz) -> d.edges_after > d.edges_seed)
       f1.per_draw);
  check_int "combined = symex + fuzz"
    (List.length s.Pipeline.unique_tests + List.length f1.fuzz_tests)
    (List.length f1.combined_tests)

(* ----- warm cache = cold run ----- *)

let test_warm_equals_cold () =
  List.iter
    (fun jobs ->
      let s = Lazy.force seed_suite in
      let cache = Cache.create () in
      let cold = fuzz ~cache ~jobs model s in
      check_int
        (Printf.sprintf "jobs=%d: cold run misses every compiled draw" jobs)
        (List.length cold.per_draw) (Cache.misses cache);
      let warm = fuzz ~cache ~jobs model s in
      check_int
        (Printf.sprintf "jobs=%d: warm run hits every compiled draw" jobs)
        (List.length warm.per_draw) (Cache.hits cache);
      check_string
        (Printf.sprintf "jobs=%d: warm fingerprint = cold" jobs)
        (fingerprint cold) (fingerprint warm);
      let uncached = fuzz ~jobs model s in
      check_string
        (Printf.sprintf "jobs=%d: cached = uncached" jobs)
        (fingerprint uncached) (fingerprint cold))
    [ 1; 4 ]

(* ----- key sensitivity ----- *)

let base_prompts = [ ("main", "loop_count"); ("module:m", "prompt text") ]

let key ?(pipeline = Model_def.pipeline_config ~k model)
    ?(config = fuzz_config) ?(index = 0) () =
  Cache.Key.digest
    (Fuzz.fuzz_key ~oracle_name:"gpt" ~pipeline ~config ~prompts:base_prompts
       ~index)

let test_key_sensitivity () =
  let base = key () in
  check_string "same inputs, same key" base (key ());
  let differs what k' = check (what ^ " changes the key") true (base <> k') in
  let cfg = fuzz_config in
  differs "fuzz seed" (key ~config:{ cfg with fuzz_seed = cfg.fuzz_seed + 1 } ());
  differs "budget" (key ~config:{ cfg with budget = cfg.budget + 1 } ());
  differs "keeper cap"
    (key ~config:{ cfg with max_new_tests = cfg.max_new_tests + 1 } ());
  differs "mutator set" (key ~config:{ cfg with mutators = [ Mutate.Byte ] } ());
  differs "fuel" (key ~config:{ cfg with fuel = cfg.fuel + 1 } ());
  differs "draw index" (key ~index:1 ());
  let pipeline = Model_def.pipeline_config ~k model in
  differs "pipeline seed"
    (key ~pipeline:{ pipeline with base_seed = pipeline.base_seed + 1 } ());
  differs "pipeline alphabet"
    (key ~pipeline:{ pipeline with alphabet = [ 'z' ] } ());
  (* k stays out of the key, like the draw key: draw i's fuzz artifact
     is reusable across k sweeps. (Unlike the draw key, fuzz_seed+1 is
     NOT equivalent to index+1: index also shifts the underlying
     draw's effective seed inside [draw_key_parts].) *)
  check_string "k does not change the key" base
    (key ~pipeline:{ pipeline with k = 12 } ())

(* ----- dynamic coverage is a subset of the static universe ----- *)

let test_dynamic_subset_static () =
  let s = Lazy.force seed_suite in
  let natives = Harness.natives_concrete model.Model_def.graph s.Pipeline.main in
  check "synthesis compiled at least one program" true (s.programs <> []);
  List.iter
    (fun program ->
      let static = Interp.static_edges program in
      check "static universe is non-empty" true (static <> []);
      let cov = Interp.coverage_create () in
      List.iter
        (fun (t : Testcase.t) ->
          ignore
            (Coverage.execute ~natives ~main:s.Pipeline.main ~coverage:cov
               program t.Testcase.inputs))
        s.Pipeline.unique_tests;
      check "executions hit some edges" true (Coverage.count cov > 0);
      Hashtbl.iter
        (fun edge () ->
          check
            (Printf.sprintf "dynamic edge %S is statically enumerated" edge)
            true (List.mem edge static))
        cov)
    s.Pipeline.programs

(* ----- mutants preserve input shape ----- *)

let rec same_shape (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Vunit, Value.Vunit -> true
  | Value.Vbool _, Value.Vbool _ -> true
  | Value.Vchar _, Value.Vchar _ -> true
  | Value.Vint _, Value.Vint _ -> true
  | Value.Venum (e1, _), Value.Venum (e2, _) -> e1 = e2
  | Value.Vstring s1, Value.Vstring s2 -> String.length s1 = String.length s2
  | Value.Vstruct (n1, f1), Value.Vstruct (n2, f2) ->
      n1 = n2
      && List.length f1 = List.length f2
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && same_shape v1 v2)
           f1 f2
  | Value.Varray a1, Value.Varray a2 ->
      Array.length a1 = Array.length a2
      && Array.for_all2 same_shape a1 a2
  | _ -> false

let prop_mutants_preserve_shape =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"mutants preserve the input shape"
       QCheck2.Gen.(triple (int_range 0 100_000) (int_range 0 4) (int_range 0 3))
       (fun (seed, kind_i, pair_i) ->
         let s = Lazy.force seed_suite in
         let program = List.hd s.Pipeline.programs in
         let tests = Array.of_list s.Pipeline.unique_tests in
         let inputs = tests.(pair_i mod Array.length tests).Testcase.inputs in
         let other =
           Some tests.((pair_i + 1) mod Array.length tests).Testcase.inputs
         in
         let rng = Rng.create seed in
         let kind = List.nth Mutate.all kind_i in
         let mutant =
           Mutate.apply ~program ~alphabet:model.Model_def.alphabet ~rng kind
             ~other inputs
         in
         List.length mutant = List.length inputs
         && List.for_all2
              (fun (n1, v1) (n2, v2) -> n1 = n2 && same_shape v1 v2)
              inputs mutant))

(* ----- rng determinism ----- *)

let prop_rng_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"rng streams replay from the seed"
       QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 64))
       (fun (seed, n) ->
         let draw () =
           let rng = Rng.create seed in
           List.init 16 (fun _ -> Rng.int rng n)
         in
         draw () = draw ()))

(* ----- the fuzz draw is a pure function of its inputs ----- *)

let prop_fuzz_draw_pure =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:10 ~name:"fuzz_draw replays byte-identically"
       QCheck2.Gen.(int_range 0 10_000)
       (fun seed ->
         let s = Lazy.force seed_suite in
         let natives =
           Harness.natives_concrete model.Model_def.graph s.Pipeline.main
         in
         let program = List.hd s.Pipeline.programs in
         let seeds =
           List.filteri (fun i _ -> i < 20) s.Pipeline.unique_tests
         in
         let config = { fuzz_config with fuzz_seed = seed; budget = 60 } in
         let run () =
           Fuzz.fuzz_draw ~natives ~main:s.Pipeline.main ~config
             ~alphabet:model.Model_def.alphabet ~index:0 program seeds
         in
         run () = run ()))

(* ----- artifact codec ----- *)

let test_artifact_roundtrip () =
  let s = Lazy.force seed_suite in
  let f = fuzz model s in
  List.iter
    (fun (d : Fuzz.draw_fuzz) ->
      let encoded = Fuzz.artifact_to_string d in
      match Fuzz.artifact_of_string encoded with
      | Error e -> Alcotest.fail ("decode failed: " ^ e)
      | Ok decoded ->
          check
            (Printf.sprintf "draw %d round-trips exactly" d.f_index)
            true (decoded = d);
          check_string "encode . decode . encode is the identity" encoded
            (Fuzz.artifact_to_string decoded))
    f.per_draw

let test_artifact_rejects_garbage () =
  let s = Lazy.force seed_suite in
  let f = fuzz model s in
  let encoded = Fuzz.artifact_to_string (List.hd f.per_draw) in
  (* every information-losing prefix must decode to Error, never
     raise; cutting only the final newline loses nothing, so stop one
     byte short of it *)
  for cut = 0 to String.length encoded - 2 do
    match Fuzz.artifact_of_string (String.sub encoded 0 cut) with
    | Error _ -> ()
    | Ok _ ->
        Alcotest.failf "truncation at byte %d of %d decoded successfully" cut
          (String.length encoded)
  done;
  check "wrong header rejected" true
    (Result.is_error (Fuzz.artifact_of_string "eywa-fuzz 2\nindex 0\n"));
  check "non-numeric field rejected" true
    (Result.is_error
       (Fuzz.artifact_of_string "eywa-fuzz 1\nindex zero\nexecs 0\n"))

(* ----- interpreter regression: errors escaping nested calls ----- *)

(* Before the scope-restoration fix, a runtime error thrown two call
   frames deep left the callee's (shorter) scope stack in place; the
   caller's block handlers then popped past its end and the whole run
   died with [Failure "tl"] instead of returning [Error]. The fuzzer
   tripped this immediately — mutated inputs reach error paths symex
   seeds rarely take. *)
let nested_error_src =
  {|
    int inner(int x) { return 10 / x; }
    int mid(int x) { return inner(x); }
    int outer(int x) {
      if (x > 0) {
        return mid(0);
      }
      return 0;
    }
  |}

let test_nested_call_error () =
  let p =
    match Parser.parse_result nested_error_src with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  (match Interp.run p "outer" [ Value.Vint 1 ] with
  | Error (Interp.Runtime _) -> ()
  | Ok v -> Alcotest.failf "expected a runtime error, got %s" (Value.to_string v)
  | Error Interp.Out_of_fuel -> Alcotest.fail "expected Runtime, got fuel");
  (* fuel exhaustion inside a nested frame takes the same path *)
  match Interp.run ~fuel:5 p "outer" [ Value.Vint 1 ] with
  | Error Interp.Out_of_fuel -> ()
  | Ok v -> Alcotest.failf "expected fuel error, got %s" (Value.to_string v)
  | Error (Interp.Runtime m) -> Alcotest.failf "expected fuel error, got %s" m

let suite =
  [
    Alcotest.test_case "fuzz output: jobs=1 = jobs=4" `Slow test_jobs_invariant;
    Alcotest.test_case "warm cache = cold run (jobs 1 and 4)" `Slow
      test_warm_equals_cold;
    Alcotest.test_case "cache key covers every fuzz input" `Quick
      test_key_sensitivity;
    Alcotest.test_case "dynamic coverage is a subset of static edges" `Slow
      test_dynamic_subset_static;
    prop_mutants_preserve_shape;
    prop_rng_deterministic;
    prop_fuzz_draw_pure;
    Alcotest.test_case "fuzz artifacts round-trip the codec" `Slow
      test_artifact_roundtrip;
    Alcotest.test_case "truncated artifacts decode to Error" `Slow
      test_artifact_rejects_garbage;
    Alcotest.test_case "errors escaping nested calls return Error" `Quick
      test_nested_call_error;
  ]
