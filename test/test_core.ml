open Eywa_core
module Ast = Eywa_minic.Ast
module Value = Eywa_minic.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ----- Etype ----- *)

let test_etype_to_minic () =
  check "bool" true (Etype.to_minic Etype.bool_ = Ast.Tbool);
  check "string" true (Etype.to_minic (Etype.string_ ~maxsize:5) = Ast.Tstring);
  check "alias erased" true
    (Etype.to_minic (Etype.alias "Domain" (Etype.string_ ~maxsize:5)) = Ast.Tstring);
  check "int width" true (Etype.to_minic (Etype.int_ ~bits:5) = Ast.Tint 5);
  check "struct named" true
    (Etype.to_minic (Etype.struct_ "S" [ ("x", Etype.bool_) ]) = Ast.Tstruct "S")

let test_etype_validation () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check "zero string" true (raises (fun () -> Etype.string_ ~maxsize:0));
  check "empty enum" true (raises (fun () -> Etype.enum "E" []));
  check "zero array" true (raises (fun () -> Etype.array Etype.bool_ 0));
  check "33-bit int" true (raises (fun () -> Etype.int_ ~bits:33))

let test_etype_declarations () =
  let e = Etype.enum "Kind" [ "A"; "B" ] in
  let inner = Etype.struct_ "Inner" [ ("k", e) ] in
  let outer = Etype.struct_ "Outer" [ ("i", inner); ("xs", Etype.array inner 2) ] in
  let enums, structs = Etype.declarations [ outer; inner; e ] in
  check_int "one enum" 1 (List.length enums);
  check_int "two structs, deduplicated" 2 (List.length structs);
  check "dependency order" true
    ((List.hd structs).Ast.sname = "Inner")

let test_etype_conflicting_decl () =
  let a = Etype.struct_ "S" [ ("x", Etype.bool_) ] in
  let b = Etype.struct_ "S" [ ("y", Etype.char_) ] in
  check "conflicting struct names rejected" true
    (match Etype.declarations [ a; b ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_etype_default () =
  let v = Etype.default_value (Etype.string_ ~maxsize:3) in
  check_str "empty string, bound honoured" "" (Value.cstring v);
  check "buffer is maxsize+1" true (match v with Value.Vstring raw -> String.length raw = 4 | _ -> false)

(* ----- modules and graph ----- *)

let arg name ty = Etype.Arg.v name ty (name ^ " description")

let simple_func name =
  Emodule.func_module name ("About " ^ name)
    [ arg "x" (Etype.int_ ~bits:4); arg "result" Etype.bool_ ]

let test_module_shapes () =
  let f = simple_func "f" in
  check_str "name" "f" (Emodule.name f);
  (match f with
  | Emodule.Func fn ->
      check_int "one input" 1 (List.length (Emodule.inputs fn));
      check_str "result arg" "result" (Emodule.result fn).Etype.Arg.name
  | _ -> Alcotest.fail "expected Func");
  check "needs two args" true
    (match Emodule.func_module "g" "" [ arg "only" Etype.bool_ ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_regex_module_validation () =
  let sarg = arg "s" (Etype.string_ ~maxsize:4) in
  (match Emodule.regex_module "[a-z]+" sarg with
  | Emodule.Regex r -> check "pattern kept" true (r.pattern = "[a-z]+")
  | _ -> Alcotest.fail "expected Regex");
  check "bad pattern rejected eagerly" true
    (match Emodule.regex_module "(" sarg with
    | exception Eywa_symex.Regex.Parse_error _ -> true
    | _ -> false);
  check "non-string target rejected" true
    (match Emodule.regex_module "a" (arg "n" (Etype.int_ ~bits:3)) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_graph_edges () =
  let f = simple_func "f" and g = simple_func "g" and h = simple_func "h" in
  let gr = Graph.create () in
  Graph.call_edge gr f [ g; h ];
  Graph.call_edge gr g [ h ];
  check_int "f deps" 2 (List.length (Graph.call_deps gr f));
  match Graph.synthesis_order gr ~main:f with
  | Ok order ->
      let names = List.map Emodule.name order in
      check "callees before callers" true (names = [ "h"; "g"; "f" ])
  | Error e -> Alcotest.fail e

let test_graph_cycle () =
  let f = simple_func "f" and g = simple_func "g" in
  let gr = Graph.create () in
  Graph.call_edge gr f [ g ];
  Graph.call_edge gr g [ f ];
  check "cycle detected" true (Result.is_error (Graph.synthesis_order gr ~main:f))

let test_graph_pipe_validation () =
  let f = simple_func "f" in
  let sarg = arg "s" (Etype.string_ ~maxsize:4) in
  let re = Emodule.regex_module "a*" sarg in
  check "regex target must be an input of dst" true
    (match Graph.pipe (Graph.create ()) re f with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_graph_guards_in_order () =
  let sarg = arg "s" (Etype.string_ ~maxsize:4) in
  let main =
    Emodule.func_module "main_fn" "main" [ sarg; arg "result" Etype.bool_ ]
  in
  let guard =
    Emodule.func_module "guard_fn" "guard" [ sarg; arg "valid" Etype.bool_ ]
  in
  let re = Emodule.regex_module "a*" sarg in
  let gr = Graph.create () in
  Graph.pipe gr re main;
  Graph.pipe gr guard main;
  check_int "two pipes" 2 (List.length (Graph.pipes_into gr main));
  match Graph.synthesis_order gr ~main with
  | Ok order ->
      check "guard synthesized too" true
        (List.exists (fun m -> Emodule.name m = "guard_fn") order)
  | Error e -> Alcotest.fail e

(* ----- prompts ----- *)

let fig1_setup () =
  let domain = Etype.string_ ~maxsize:5 in
  let rt = Etype.enum "RecordType" [ "A"; "CNAME"; "DNAME" ] in
  let record = Etype.struct_ "Record" [ ("rtyp", rt); ("name", domain) ] in
  let query = Etype.Arg.v "query" domain "A DNS query domain name." in
  let record_arg = Etype.Arg.v "record" record "A DNS record." in
  let result = Etype.Arg.v "result" Etype.bool_ "If the DNS record matches the query." in
  let da =
    Emodule.func_module "dname_applies" "If a DNAME record matches a query."
      [ query; record_arg; result ]
  in
  let ra =
    Emodule.func_module "record_applies" "If a DNS record matches a query."
      [ query; record_arg; result ]
  in
  let valid = Emodule.regex_module {|[a-z*](\.[a-z*])*|} query in
  let g = Graph.create () in
  Graph.pipe g valid ra;
  Graph.call_edge g ra [ da ];
  (g, ra, da)

let test_prompt_structure () =
  let g, ra, _ = fig1_setup () in
  let f = match ra with Emodule.Func f -> f | _ -> assert false in
  let prompt = Prompt.for_module g f in
  check "system prompt bans strtok" true (contains ~needle:"strtok" prompt.system);
  check "user prompt has typedefs" true (contains ~needle:"typedef enum" prompt.user);
  check "user prompt has the record struct" true
    (contains ~needle:"} Record;" prompt.user);
  check "helper prototype included" true
    (contains ~needle:"bool dname_applies(char* query, Record record);" prompt.user);
  check "target signature opens a brace" true
    (contains ~needle:"bool record_applies(char* query, Record record) {" prompt.user);
  check "doc comment describes parameters" true
    (contains ~needle:"query: A DNS query domain name." prompt.user);
  check "completion marker present" true (contains ~needle:"implement me" prompt.user)

let test_prompt_helper_has_no_proto_of_itself () =
  let g, _, da = fig1_setup () in
  let f = match da with Emodule.Func f -> f | _ -> assert false in
  let prompt = Prompt.for_module g f in
  check "no self prototype" false
    (contains ~needle:"bool dname_applies(char* query, Record record);" prompt.user)

(* ----- harness ----- *)

let test_harness_builds_and_typechecks () =
  let g, ra, _ = fig1_setup () in
  let main = match ra with Emodule.Func f -> f | _ -> assert false in
  let funcs =
    [
      { Ast.fname = "dname_applies"; ret = Ast.Tbool;
        params = [ (Ast.Tstring, "query"); (Ast.Tstruct "Record", "record") ];
        body = [ Ast.Sreturn (Some (Ast.Ebool false)) ]; doc = [] };
      { Ast.fname = "record_applies"; ret = Ast.Tbool;
        params = [ (Ast.Tstring, "query"); (Ast.Tstruct "Record", "record") ];
        body = [ Ast.Sreturn (Some (Ast.Ecall ("dname_applies",
                   [ Ast.Evar "query"; Ast.Evar "record" ]))) ]; doc = [] };
    ]
  in
  let program = Harness.build g ~main ~funcs in
  check "typechecks" true (Result.is_ok (Eywa_minic.Typecheck.check program));
  check "has the out struct" true (Ast.find_struct program Harness.out_struct <> None);
  check "has the entry" true (Ast.find_func program Harness.entry_name <> None);
  check "regex proto declared" true (List.length program.Ast.protos = 1)

let test_harness_symbolic_inputs () =
  let _, ra, _ = fig1_setup () in
  let main = match ra with Emodule.Func f -> f | _ -> assert false in
  let inputs = Harness.symbolic_inputs ~alphabet:[ 'a'; '.' ] main in
  check_int "two inputs (result excluded)" 2 (List.length inputs);
  check_str "first is query" "query" (fst (List.hd inputs));
  (* the struct input contains atoms for each scalar field *)
  let record_sv = List.assoc "record" inputs in
  check "record has atoms" true (List.length (Eywa_symex.Sv.atoms record_sv) > 0)

(* ----- testcase ----- *)

let tc inputs result =
  { Testcase.inputs; result = Some result; bad_input = false; error = None }

let test_testcase_dedup () =
  let a = tc [ ("x", Value.Vint 1) ] (Value.Vbool true) in
  let b = tc [ ("x", Value.Vint 1) ] (Value.Vbool false) in
  let c = tc [ ("x", Value.Vint 2) ] (Value.Vbool true) in
  check_int "dedup by inputs" 2 (List.length (Testcase.dedup [ a; b; c ]))

let test_testcase_string_canonical () =
  let a = tc [ ("s", Value.Vstring "ab\000garbage") ] (Value.Vbool true) in
  let b = tc [ ("s", Value.Vstring "ab\000other!!") ] (Value.Vbool true) in
  check "NUL-tail ignored" true (Testcase.key a = Testcase.key b)

(* ----- synthesis with a canned oracle ----- *)

let canned_completion =
  {|
typedef enum { A, CNAME, DNAME } RecordType;
typedef struct { RecordType rtyp; char* name; } Record;
bool dname_applies(char* query, Record record) {
  return record.rtyp == DNAME && strcmp(query, record.name) == 0;
}
bool record_applies(char* query, Record record) {
  if (record.rtyp == DNAME) { return dname_applies(query, record); }
  return strcmp(query, record.name) == 0;
}
|}

let test_synthesis_canned () =
  let g, ra, _ = fig1_setup () in
  let oracle = Oracle.constant canned_completion in
  let config = { Synthesis.default_config with k = 2; alphabet = [ 'a'; '.' ] } in
  match Synthesis.run ~config ~oracle g ~main:ra with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check "tests produced" true (List.length result.unique_tests > 0);
      check_int "both models compiled" 2 (List.length result.programs);
      check "loc bounds consistent" true (result.loc_min <= result.loc_max);
      check "has a bad-input test" true
        (List.exists (fun (t : Testcase.t) -> t.bad_input) result.unique_tests);
      (* every good test replays concretely to the recorded result *)
      let main = result.main in
      let program = List.hd result.programs in
      List.iter
        (fun (t : Testcase.t) ->
          if t.error = None then begin
            match Synthesis.replay g ~main program t with
            | Ok (Value.Vstruct (_, fields)) ->
                let bad = List.assoc "bad_input" fields in
                check "bad_input agrees" true (Value.Vbool t.bad_input = bad);
                if not t.bad_input then
                  check "result agrees" true
                    (match (t.result, List.assoc_opt "result" fields) with
                    | Some a, Some b -> Value.equal a b
                    | _ -> false)
            | Ok _ -> Alcotest.fail "replay did not return the out struct"
            | Error e -> Alcotest.failf "replay failed: %s" e
          end)
        result.unique_tests

let test_synthesis_skips_bad_models () =
  let g, ra, _ = fig1_setup () in
  let oracle =
    (* fail every completion of model index 0 (request seed = base_seed),
       succeed for the rest; keyed on the request rather than a call
       counter so the oracle stays a pure function of its input and the
       test is deterministic when the k draws run on a domain pool *)
    Oracle.make ~name:"flaky" (fun req ->
        if req.Oracle.seed = Synthesis.default_config.base_seed then
          "this is not C at all {{{"
        else if contains ~needle:"int seed_marker" req.user then ""
        else canned_completion)
  in
  let config = { Synthesis.default_config with k = 2; alphabet = [ 'a' ] } in
  match Synthesis.run ~config ~oracle g ~main:ra with
  | Error e -> Alcotest.fail e
  | Ok result ->
      let failed =
        List.filter (fun (r : Synthesis.model_result) -> r.compile_error <> None)
          result.results
      in
      check_int "one model skipped" 1 (List.length failed);
      check_int "one model survived" 1 (List.length result.programs)

let test_synthesis_rejects_non_func_main () =
  let sarg = arg "s" (Etype.string_ ~maxsize:3) in
  let re = Emodule.regex_module "a*" sarg in
  let g = Graph.create () in
  check "regex main rejected" true
    (Result.is_error
       (Synthesis.run ~oracle:(Oracle.constant "") g ~main:re))

let suite =
  [
    Alcotest.test_case "etype: lowering to MiniC" `Quick test_etype_to_minic;
    Alcotest.test_case "etype: constructor validation" `Quick test_etype_validation;
    Alcotest.test_case "etype: declarations dedup and order" `Quick test_etype_declarations;
    Alcotest.test_case "etype: conflicting names rejected" `Quick test_etype_conflicting_decl;
    Alcotest.test_case "etype: default values" `Quick test_etype_default;
    Alcotest.test_case "module: shapes and validation" `Quick test_module_shapes;
    Alcotest.test_case "module: regex validation" `Quick test_regex_module_validation;
    Alcotest.test_case "graph: call edges and topo order" `Quick test_graph_edges;
    Alcotest.test_case "graph: cycles rejected" `Quick test_graph_cycle;
    Alcotest.test_case "graph: pipe validation" `Quick test_graph_pipe_validation;
    Alcotest.test_case "graph: func guards synthesized" `Quick test_graph_guards_in_order;
    Alcotest.test_case "prompt: structure matches Fig. 5" `Quick test_prompt_structure;
    Alcotest.test_case "prompt: no self prototype" `Quick test_prompt_helper_has_no_proto_of_itself;
    Alcotest.test_case "harness: builds and typechecks" `Quick test_harness_builds_and_typechecks;
    Alcotest.test_case "harness: symbolic inputs" `Quick test_harness_symbolic_inputs;
    Alcotest.test_case "testcase: dedup by inputs" `Quick test_testcase_dedup;
    Alcotest.test_case "testcase: string canonicalisation" `Quick test_testcase_string_canonical;
    Alcotest.test_case "synthesis: canned oracle end to end" `Quick test_synthesis_canned;
    Alcotest.test_case "synthesis: compile failures skipped" `Quick test_synthesis_skips_bad_models;
    Alcotest.test_case "synthesis: main must be a Func" `Quick test_synthesis_rejects_non_func_main;
  ]
