module Term = Eywa_solver.Term
module Solve = Eywa_solver.Solve

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let bvar name = Term.fresh_var ~name Term.Sbool [| 0; 1 |]
let ivar ?(domain = Array.init 8 (fun i -> i)) name =
  Term.fresh_var ~name (Term.Sint 3) domain

(* ----- smart constructors ----- *)

let test_const_folding () =
  check "and ff" true (Term.is_false (Term.and_ Term.ff Term.tt));
  check "and tt" true (Term.is_true (Term.and_ Term.tt Term.tt));
  check "or tt" true (Term.is_true (Term.or_ Term.ff Term.tt));
  check "not" true (Term.is_false (Term.not_ Term.tt));
  check "eq fold" true (Term.is_true (Term.eq (Term.const 3) (Term.const 3)));
  check "lt fold" true (Term.is_false (Term.lt (Term.const 3) (Term.const 3)));
  check "add fold" true (Term.add (Term.const 2) (Term.const 3) = Term.const 5);
  check "mul zero" true (Term.mul (Term.const 0) (Term.var (bvar "b")) = Term.const 0);
  check "div fold" true (Term.div (Term.const 7) (Term.const 2) = Term.const 3);
  check "div by zero is total" true (Term.div (Term.const 7) (Term.const 0) = Term.const 0);
  check "mod fold" true (Term.mod_ (Term.const 7) (Term.const 2) = Term.const 1)

let test_var_identities () =
  let v = Term.var (ivar "x") in
  check "x = x folds" true (Term.is_true (Term.eq v v));
  check "x < x folds" true (Term.is_false (Term.lt v v));
  check "x <= x folds" true (Term.is_true (Term.le v v));
  check "x + 0" true (Term.add v (Term.const 0) = v);
  check "x * 1" true (Term.mul v (Term.const 1) = v);
  check "x / 1" true (Term.div v (Term.const 1) = v)

let test_ite () =
  let v = Term.var (ivar "x") in
  check "ite true" true (Term.ite Term.tt v (Term.const 0) = v);
  check "ite false" true (Term.ite Term.ff v (Term.const 9) = Term.const 9);
  check "ite same" true (Term.ite (Term.var (bvar "c")) v v = v)

let test_vars_order () =
  let a = ivar "a" and b = ivar "b" in
  let t = Term.and_ (Term.eq (Term.var a) (Term.const 1))
            (Term.eq (Term.var b) (Term.var a)) in
  let vs = Term.vars t in
  check_int "two vars" 2 (List.length vs);
  check "first occurrence order" true
    ((List.hd vs).Term.vid = a.Term.vid)

let test_eval () =
  let a = ivar "a" and b = ivar "b" in
  let env vid = if vid = a.Term.vid then 3 else if vid = b.Term.vid then 5 else 0 in
  let t = Term.add (Term.var a) (Term.mul (Term.var b) (Term.const 2)) in
  check_int "3 + 5*2" 13 (Term.eval env t);
  check_int "lt" 1 (Term.eval env (Term.lt (Term.var a) (Term.var b)));
  check_int "not" 0 (Term.eval env (Term.not_ (Term.lt (Term.var a) (Term.var b))))

let test_peval_short_circuit () =
  let a = bvar "a" in
  (* one side unknown, the other determines the result *)
  let env _ = None in
  check "and with ff" true
    (Term.peval env (Term.And (Term.var a, Term.ff)) = Some 0);
  check "or with tt" true
    (Term.peval env (Term.Or (Term.var a, Term.tt)) = Some 1);
  check "unknown stays unknown" true (Term.peval env (Term.var a) = None)

(* ----- solver ----- *)

let test_solve_simple () =
  let x = ivar "x" in
  let c = Term.eq (Term.var x) (Term.const 5) in
  match Solve.solve [ c ] with
  | Solve.Sat m -> check_int "x = 5" 5 (Solve.value m x)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

let test_solve_unsat () =
  let x = ivar "x" in
  let cs = [ Term.lt (Term.var x) (Term.const 3); Term.gt (Term.var x) (Term.const 5) ] in
  check "unsat" true (Solve.solve cs = Solve.Unsat)

let test_solve_multi_var () =
  let x = ivar "x" and y = ivar "y" in
  let cs =
    [
      Term.eq (Term.add (Term.var x) (Term.var y)) (Term.const 9);
      Term.lt (Term.var x) (Term.var y);
      Term.gt (Term.var x) (Term.const 2);
    ]
  in
  match Solve.solve cs with
  | Solve.Sat m ->
      let vx = Solve.value m x and vy = Solve.value m y in
      check_int "sum" 9 (vx + vy);
      check "x < y" true (vx < vy);
      check "x > 2" true (vx > 2)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

let test_solve_respects_domain () =
  let x = ivar ~domain:[| 2; 4; 6 |] "x" in
  let cs = [ Term.gt (Term.var x) (Term.const 4) ] in
  match Solve.solve cs with
  | Solve.Sat m -> check_int "only 6 fits" 6 (Solve.value m x)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

let test_solve_budget () =
  (* tiny budget forces Unknown on a search that needs backtracking *)
  let vars = List.init 6 (fun i -> ivar (Printf.sprintf "v%d" i)) in
  let sum =
    List.fold_left (fun acc v -> Term.add acc (Term.var v)) (Term.const 0) vars
  in
  let cs = [ Term.eq sum (Term.const 42) ] in
  match Solve.solve ~max_decisions:3 cs with
  | Solve.Unknown -> ()
  | Solve.Sat _ | Solve.Unsat -> Alcotest.fail "expected unknown under tiny budget"

let test_empty_constraints () =
  match Solve.solve [] with
  | Solve.Sat _ -> ()
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "empty set is sat"

let test_constant_false () =
  check "constant false is unsat" true (Solve.solve [ Term.ff ] = Solve.Unsat)

let test_div_constraint () =
  let x = ivar ~domain:(Array.init 16 (fun i -> i)) "x" in
  let cs =
    [
      Term.eq (Term.div (Term.var x) (Term.const 4)) (Term.const 2);
      Term.eq (Term.mod_ (Term.var x) (Term.const 4)) (Term.const 3);
    ]
  in
  match Solve.solve cs with
  | Solve.Sat m -> check_int "x = 11" 11 (Solve.value m x)
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat"

(* ----- properties ----- *)

(* Random terms over a fixed set of variables. *)
let gen_term vars =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map Term.const (int_range (-4) 12);
            map (fun i -> Term.var (List.nth vars (i mod List.length vars)))
              (int_range 0 (List.length vars - 1)) ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Term.not_ sub;
            map2 Term.and_ sub sub;
            map2 Term.or_ sub sub;
            map2 Term.eq sub sub;
            map2 Term.lt sub sub;
            map2 Term.le sub sub;
            map2 Term.add sub sub;
            map2 Term.sub sub sub;
            map2 Term.mul sub sub;
          ])

let shared_vars = List.init 3 (fun i -> ivar (Printf.sprintf "q%d" i))

let prop_solve_sound =
  QCheck2.Test.make ~count:200 ~name:"models returned by solve satisfy the constraints"
    (gen_term shared_vars)
    (fun t ->
      match Solve.solve ~max_decisions:100_000 [ t ] with
      | Solve.Sat m -> Solve.check m [ t ]
      | Solve.Unsat | Solve.Unknown -> true)

let prop_peval_agrees_with_eval =
  QCheck2.Test.make ~count:200 ~name:"peval under a total env agrees with eval"
    (gen_term shared_vars)
    (fun t ->
      let env vid = (vid * 7 mod 5) + 1 in
      let penv vid = Some (env vid) in
      Term.peval penv t = Some (Term.eval env t))

let prop_unsat_means_no_assignment =
  QCheck2.Test.make ~count:100
    ~name:"when solve says unsat, exhaustive enumeration agrees (1 var)"
    (gen_term [ List.hd shared_vars ])
    (fun t ->
      let v = List.hd shared_vars in
      match Solve.solve [ t ] with
      | Solve.Unsat ->
          Array.for_all
            (fun value -> Term.eval (fun _ -> value) t = 0)
            v.Term.domain
      | Solve.Sat _ | Solve.Unknown -> true)

(* ----- hash-consing ----- *)

let test_hash_consing () =
  Term.with_fresh_ids (fun () ->
      let x = ivar "x" and y = ivar "y" in
      let mk () = Term.eq (Term.add (Term.var x) (Term.var y)) (Term.const 5) in
      let a = mk () and b = mk () in
      check_int "equal terms intern to the same id" (Term.intern_id a)
        (Term.intern_id b);
      let c = Term.lt (Term.var x) (Term.var y) in
      check "distinct terms intern to distinct ids" true
        (Term.intern_id a <> Term.intern_id c);
      check "memoized vars = structural vars" true
        (Term.vars a = Term.vars b && List.length (Term.vars a) = 2);
      check_int "pc_key [] is 0" 0 (Term.pc_key []);
      check_int "equal lists, equal keys"
        (Term.pc_key [ a; c ])
        (Term.pc_key [ b; c ]);
      check "different lists, different keys" true
        (Term.pc_key [ a; c ] <> Term.pc_key [ c; a ]);
      check "prefix differs from whole" true
        (Term.pc_key [ c ] <> Term.pc_key [ a; c ]);
      check_int "pc_key_cons is the incremental step"
        (Term.pc_key [ a; c ])
        (Term.pc_key_cons a (Term.pc_key [ c ])))

(* ----- order_vars determinism (PR-5 satellite regression) ----- *)

let test_order_vars_vid_tiebreak () =
  (* eight bool vars, each occurring once in one constraint: domain
     size and occurrence count tie for all of them, so before the fix
     the order fell back to Hashtbl.fold order over vids — an artifact
     of the stdlib hash function. Referencing them scrambled must
     still yield ascending vids. *)
  let vs = Array.init 8 (fun i -> bvar (Printf.sprintf "t%d" i)) in
  let scrambled = [ 5; 2; 7; 0; 6; 3; 1; 4 ] in
  let c =
    List.fold_left
      (fun acc i -> Term.or_ acc (Term.var vs.(i)))
      (Term.var vs.(List.hd scrambled))
      (List.tl scrambled)
  in
  let order = List.map (fun v -> v.Term.vid) (Solve.order_vars [ c ]) in
  let sorted = List.sort compare order in
  check "tied vars come out in ascending vid order" true (order = sorted);
  check_int "all eight vars ordered" 8 (List.length order);
  (* a var with more occurrences still outranks the tie *)
  let busy = bvar "busy" in
  let cs =
    [
      Term.or_ c (Term.var busy);
      Term.or_ (Term.var busy) (Term.var vs.(0));
      Term.or_ (Term.var busy) (Term.var vs.(1));
    ]
  in
  match Solve.order_vars cs with
  | first :: _ ->
      check_int "most-occurring var first" busy.Term.vid first.Term.vid
  | [] -> Alcotest.fail "expected ordered vars"

(* ----- watched solver = naive reference (PR-5 tentpole) ----- *)

let model_to_list m =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [])

let outcomes_equal a b =
  match (a, b) with
  | Solve.Sat m1, Solve.Sat m2 -> model_to_list m1 = model_to_list m2
  | Solve.Unsat, Solve.Unsat | Solve.Unknown, Solve.Unknown -> true
  | _ -> false

let prop_watched_equals_naive =
  QCheck2.Test.make ~count:300
    ~name:"watched solver = naive reference (outcome, model, stats)"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 5) (gen_term shared_vars))
        (int_range 0 3) (int_range 1 2))
    (fun (cs, rotate, budget_sel) ->
      (* a tiny budget exercises Unknown parity, a large one Sat/Unsat *)
      let max_decisions = if budget_sel = 1 then 25 else 100_000 in
      let o1, s1 = Solve.solve_with_stats ~max_decisions ~rotate cs in
      let o2, s2 = Solve.solve_naive_with_stats ~max_decisions ~rotate cs in
      outcomes_equal o1 o2
      && s1.Solve.decisions = s2.Solve.decisions
      && s1.Solve.conflicts = s2.Solve.conflicts)

(* A hint only reorders the values the complete search visits, so it
   may change which model comes out first but never the verdict, and a
   hinted Sat model still satisfies the constraints. The executor's
   probe path depends on both halves. *)
let prop_hinted_solve_sound =
  QCheck2.Test.make ~count:300
    ~name:"hinted solve: same verdict as hint-free, models satisfy"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 5) (gen_term shared_vars))
        (list_size (int_range 0 3) (int_range (-4) 12)))
    (fun (cs, hint_vals) ->
      let hint = Hashtbl.create 8 in
      List.iteri
        (fun i value ->
          let v = List.nth shared_vars (i mod List.length shared_vars) in
          Hashtbl.replace hint v.Term.vid value)
        hint_vals;
      let o1, _ = Solve.solve_with_stats ~max_decisions:100_000 ~hint cs in
      let o2, _ = Solve.solve_with_stats ~max_decisions:100_000 cs in
      match (o1, o2) with
      | Solve.Sat m, Solve.Sat _ -> Solve.check m cs
      | Solve.Unsat, Solve.Unsat | Solve.Unknown, Solve.Unknown -> true
      | _ -> false)

(* ----- counterexample cache: byte-identity on vs off ----- *)

module Pipeline = Eywa_core.Pipeline
module Model_def = Eywa_models.Model_def
module Obs = Eywa_obs.Obs
module Trace = Eywa_obs.Trace
module Export = Eywa_obs.Export
module Metrics = Eywa_obs.Metrics

let oracle = Eywa_llm.Gpt.oracle ()

let observed_synthesis ~cex_cache (m : Model_def.t) =
  let ctx = Obs.create ~label:m.id () in
  match
    Model_def.synthesize ~obs:ctx ~k:3 ~timeout:2.0 ~jobs:2 ~cex_cache ~oracle
      m
  with
  | Ok s -> (s, ctx)
  | Error e -> Alcotest.fail e

let test_cex_cache_byte_identity () =
  let m = Eywa_models.Bgp_models.rr in
  let s_on, ctx_on = observed_synthesis ~cex_cache:true m in
  let s_off, ctx_off = observed_synthesis ~cex_cache:false m in
  let tests (s : Pipeline.t) =
    String.concat "\n"
      (List.map Eywa_core.Testcase.to_string s.unique_tests
      @ List.concat_map
          (fun (r : Pipeline.model_result) ->
            List.map Eywa_core.Testcase.to_string r.tests)
          s.results)
  in
  check_string "generated tests byte-identical cache on vs off" (tests s_on)
    (tests s_off);
  let stripped ctx = Export.to_jsonl (Trace.strip (Obs.finish ctx)) in
  check_string "stripped traces byte-identical cache on vs off"
    (stripped ctx_on) (stripped ctx_off);
  check_string "env-stripped metrics byte-identical cache on vs off"
    (Metrics.expose ~strip_env:true (Obs.metrics ctx_on))
    (Metrics.expose ~strip_env:true (Obs.metrics ctx_off));
  (* the bookkeeping is identical; only executed solver work shrinks *)
  let totals (s : Pipeline.t) =
    List.fold_left
      (fun (d, h, r, t) (res : Pipeline.model_result) ->
        match res.stats with
        | None -> (d, h, r, t)
        | Some st ->
            ( d + st.Eywa_symex.Exec.solver_decisions,
              h + st.Eywa_symex.Exec.cex_hits,
              r + st.Eywa_symex.Exec.model_reuses,
              t + st.Eywa_symex.Exec.ticks_used ))
      (0, 0, 0, 0) s.results
  in
  let d_on, h_on, r_on, t_on = totals s_on in
  let d_off, h_off, r_off, t_off = totals s_off in
  check_int "cex_hits identical on vs off" h_off h_on;
  check_int "model_reuses identical on vs off" r_off r_on;
  check_int "ticks identical on vs off" t_off t_on;
  check "the cache is actually exercised" true (h_on + r_on > 0);
  check "cache on executes fewer decisions" true (d_on < d_off)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_const_folding;
    Alcotest.test_case "variable identities" `Quick test_var_identities;
    Alcotest.test_case "ite simplification" `Quick test_ite;
    Alcotest.test_case "vars in first-occurrence order" `Quick test_vars_order;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "peval short circuits" `Quick test_peval_short_circuit;
    Alcotest.test_case "solve a simple equation" `Quick test_solve_simple;
    Alcotest.test_case "detect unsat" `Quick test_solve_unsat;
    Alcotest.test_case "solve multi-variable constraints" `Quick test_solve_multi_var;
    Alcotest.test_case "solution drawn from the domain" `Quick test_solve_respects_domain;
    Alcotest.test_case "decision budget yields Unknown" `Quick test_solve_budget;
    Alcotest.test_case "empty constraint set is sat" `Quick test_empty_constraints;
    Alcotest.test_case "constant false is unsat" `Quick test_constant_false;
    Alcotest.test_case "div/mod constraints solve" `Quick test_div_constraint;
    Alcotest.test_case "hash-consing: intern ids and pc keys" `Quick
      test_hash_consing;
    Alcotest.test_case "order_vars breaks ties by vid" `Quick
      test_order_vars_vid_tiebreak;
    Alcotest.test_case "cex cache on/off byte-identity" `Quick
      test_cex_cache_byte_identity;
    QCheck_alcotest.to_alcotest prop_solve_sound;
    QCheck_alcotest.to_alcotest prop_peval_agrees_with_eval;
    QCheck_alcotest.to_alcotest prop_unsat_means_no_assignment;
    QCheck_alcotest.to_alcotest prop_watched_equals_naive;
    QCheck_alcotest.to_alcotest prop_hinted_solve_sound;
  ]
