(* The PR-4 observability contract:

   - The wall-clock-stripped trace of a full run (synthesis + fuzz +
     difftest through one Obs context) is byte-identical at jobs=1 vs
     jobs=4 and warm vs cold cache, as is the env-stripped metrics
     exposition.
   - Every trace is well-formed: one root, every span closed, parents
     open before children, ids collision-free — across all 13 models.
   - Serialize.Json and the JSONL trace format round-trip exactly;
     strip is idempotent; the Chrome export is valid JSON.
   - Instrument.tee preserves sink order; the Collector survives
     concurrent emission from pool workers.
   - Difftest_done.execs equals report.observations and the summary's
     fuzz_edges_gained matches the per-draw coverage gains. *)

module Instrument = Eywa_core.Instrument
module Cache = Eywa_core.Cache
module Pool = Eywa_core.Pool
module Json = Eywa_core.Serialize.Json
module Trace = Eywa_obs.Trace
module Metrics = Eywa_obs.Metrics
module Export = Eywa_obs.Export
module Obs = Eywa_obs.Obs
module Model_def = Eywa_models.Model_def
module Dns_models = Eywa_models.Dns_models
module Dns_adapter = Eywa_models.Dns_adapter
module Difftest = Eywa_difftest.Difftest

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let oracle = Eywa_llm.Gpt.oracle ()
let model = Dns_models.cname

let fuzz_config = { Eywa_fuzz.Fuzz.default_config with budget = 120 }

(* One full observed run: synthesis, fuzz, difftest, all through the
   same context. *)
let observed_run ~jobs ~cache =
  let ctx = Obs.create ~label:model.Model_def.id () in
  let s =
    match
      Model_def.synthesize ~cache ~obs:ctx ~k:3 ~timeout:2.0 ~jobs ~oracle
        model
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  (match
     Model_def.fuzz ~cache ~obs:ctx ~fuzz_config ~k:3 ~timeout:2.0 ~jobs
       ~oracle model s
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  ignore
    (Dns_adapter.run ~jobs ~sink:(Obs.sink ctx) ~model_id:model.Model_def.id
       ~version:Eywa_dns.Impls.Old s.Eywa_core.Pipeline.unique_tests);
  ctx

let test_stripped_trace_identical () =
  (* run order matters: the second run must find the first one's cache
     warm, the third must start cold again *)
  let cache = Cache.create () in
  let ctx1 = observed_run ~jobs:1 ~cache in
  let ctx2 = observed_run ~jobs:4 ~cache in
  let ctx3 = observed_run ~jobs:4 ~cache:(Cache.create ()) in
  let stripped ctx = Export.to_jsonl (Trace.strip (Obs.finish ctx)) in
  let s1 = stripped ctx1 and s2 = stripped ctx2 and s3 = stripped ctx3 in
  check_string "jobs=1 cold = jobs=4 warm" s1 s2;
  check_string "jobs=1 cold = jobs=4 cold" s1 s3;
  let metrics ctx = Metrics.expose ~strip_env:true (Obs.metrics ctx) in
  check_string "stripped metrics jobs=1 cold = jobs=4 warm" (metrics ctx1)
    (metrics ctx2);
  check_string "stripped metrics jobs=1 cold = jobs=4 cold" (metrics ctx1)
    (metrics ctx3);
  (* the unstripped traces DO differ (cache events, pool env), so the
     strip is doing real work *)
  check "unstripped warm trace differs from cold" true
    (Export.to_jsonl (Obs.finish ctx1) <> Export.to_jsonl (Obs.finish ctx2))

let test_well_formed_all_models () =
  let traces =
    List.map
      (fun (m : Model_def.t) ->
        let ctx = Obs.create ~label:m.id () in
        (match
           Model_def.synthesize ~obs:ctx ~k:1 ~timeout:1.0 ~jobs:2 ~oracle m
         with
        | Ok _ -> ()
        | Error e -> failwith (m.id ^ ": " ^ e));
        Obs.finish ctx)
      Eywa_models.All_models.all
  in
  check_int "all 13 models traced" 13 (List.length traces);
  List.iter
    (fun (t : Trace.t) ->
      match Trace.well_formed t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: malformed trace: %s" t.Trace.label e)
    traces;
  (* ids are collision-free across models too: every id is rooted at
     the model's label *)
  let all_ids = List.concat_map Trace.span_ids traces in
  check_int "ids collision-free across the 13 models"
    (List.length all_ids)
    (List.length (List.sort_uniq compare all_ids))

let test_trace_roundtrip_and_strip () =
  let t = Obs.finish (observed_run ~jobs:2 ~cache:(Cache.create ())) in
  (match Export.of_jsonl (Export.to_jsonl t) with
  | Ok t' -> check "JSONL round-trips the trace" true (t' = t)
  | Error e -> Alcotest.failf "of_jsonl: %s" e);
  let s = Trace.strip t in
  check "strip is idempotent" true (Trace.strip s = s);
  (match Export.of_jsonl (Export.to_jsonl s) with
  | Ok s' -> check "stripped trace round-trips too" true (s' = s)
  | Error e -> Alcotest.failf "of_jsonl (stripped): %s" e);
  (match Json.of_string (Export.chrome_trace t) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e);
  match Trace.well_formed t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "malformed trace: %s" e

(* ----- Serialize.Json ----- *)

let json_gen =
  let open QCheck.Gen in
  let finite_float =
    map (fun f -> if Float.is_finite f then f else 0.5) float
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) finite_float;
        map (fun s -> Json.Str s) (string_size (0 -- 12));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map (fun l -> Json.List l)
                   (list_size (0 -- 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun l -> Json.Obj l)
                   (list_size (0 -- 4)
                      (pair (string_size (0 -- 6)) (self (n / 2)))) );
             ])

let qcheck_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Json.of_string inverts to_string"
       (QCheck.make json_gen) (fun v ->
         match Json.of_string (Json.to_string v) with
         | Ok v' -> v' = v
         | Error _ -> false))

let test_json_units () =
  check_string "canonical compact form"
    {|{"a":1,"b":[true,null,"x\n"],"c":1.5}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x\n" ]);
            ("c", Json.Float 1.5);
          ]));
  check "pretty form parses back" true
    (Json.of_string
       (Json.to_string_pretty
          (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]))
    = Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]));
  check "floats keep their type" true
    (Json.of_string "3.0" = Ok (Json.Float 3.0));
  check "ints keep theirs" true (Json.of_string "3" = Ok (Json.Int 3));
  check "control chars escape and return" true
    (Json.of_string (Json.to_string (Json.Str "\x01\x02\xff"))
    = Ok (Json.Str "\x01\x02\xff"));
  check "trailing garbage rejected" true
    (match Json.of_string "1 2" with Error _ -> true | Ok _ -> false);
  check "non-finite floats are a programming error" true
    (match Json.to_string (Json.Float Float.nan) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----- metrics registry ----- *)

let test_metrics_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~help:"things" "things_total" in
  Metrics.inc c 3;
  let g = Metrics.gauge r ~cls:Metrics.Env ~help:"secs" "wall_seconds" in
  Metrics.set_gauge g 1.5;
  let h = Metrics.histogram r ~buckets:[ 1.0; 5.0 ] ~help:"sz" "sizes" in
  Metrics.observe h 0.5;
  Metrics.observe h 3.0;
  Metrics.observe h 10.0;
  let v =
    Metrics.counter_vec r ~label:"worker" ~help:"per worker" "worker_total"
  in
  Metrics.inc_vec v "1" 2;
  Metrics.inc_vec v "0" 1;
  let text = Metrics.expose r in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check "counter sample" true (has "things_total 3");
  check "gauge sample" true (has "wall_seconds 1.5");
  check "histogram buckets are cumulative" true
    (has {|sizes_bucket{le="1.0"} 1|}
    && has {|sizes_bucket{le="5.0"} 2|}
    && has {|sizes_bucket{le="+Inf"} 3|});
  check "histogram sum and count" true
    (has "sizes_sum 13.5" && has "sizes_count 3");
  check "vec cells sorted by label value" true
    (has {|worker_total{worker="0"} 1|} && has {|worker_total{worker="1"} 2|});
  let stripped = Metrics.expose ~strip_env:true r in
  check "strip_env drops the Env gauge" true
    (not
       (let nl = String.length "wall_seconds" in
        let rec go i =
          i + nl <= String.length stripped
          && (String.sub stripped i nl = "wall_seconds" || go (i + 1))
        in
        go 0));
  check "duplicate names are rejected" true
    (match Metrics.counter r "things_total" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "buckets must strictly increase" true
    (match Metrics.histogram r ~buckets:[ 2.0; 2.0 ] "bad" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----- instrument plumbing ----- *)

let test_tee_ordering () =
  let order = ref [] in
  let sink =
    Instrument.tee
      (fun _ -> order := "first" :: !order)
      (fun _ -> order := "second" :: !order)
  in
  sink (Instrument.Draw_started { index = 0 });
  sink (Instrument.Draw_started { index = 1 });
  Alcotest.(check (list string))
    "left sink of tee fires before the right one, per event"
    [ "first"; "second"; "first"; "second" ]
    (List.rev !order)

let qcheck_collector_cross_domain =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"Collector survives concurrent emit from pool workers"
       QCheck.(list_of_size Gen.(0 -- 60) small_nat)
       (fun xs ->
         let c = Instrument.Collector.create () in
         let sink = Instrument.Collector.sink c in
         let ys =
           Pool.with_pool ~jobs:4 (fun pool ->
               Pool.map pool
                 (fun x ->
                   sink (Instrument.Draw_started { index = x });
                   sink
                     (Instrument.Symex_done
                        {
                          index = x;
                          ticks = x;
                          paths_completed = 1;
                          paths_pruned = 0;
                          solver_calls = 0;
                          solver_decisions = 0;
                          cex_hits = 0;
                          model_reuses = 0;
                          timed_out = false;
                        });
                   x)
                 xs)
         in
         ys = xs
         && List.length (Instrument.Collector.events c) = 2 * List.length xs
         && (Instrument.Collector.summary c).Instrument.Collector.symex_ticks
            = List.fold_left ( + ) 0 xs))

(* ----- difftest + fuzz counters ----- *)

let test_difftest_execs () =
  let s =
    match Model_def.synthesize ~k:2 ~timeout:2.0 ~jobs:1 ~oracle model with
    | Ok s -> s
    | Error e -> failwith e
  in
  let c = Instrument.Collector.create () in
  let r =
    Dns_adapter.run ~jobs:2 ~sink:(Instrument.Collector.sink c)
      ~model_id:model.Model_def.id ~version:Eywa_dns.Impls.Old
      s.Eywa_core.Pipeline.unique_tests
  in
  check "difftest recorded executions" true (r.Difftest.observations > 0);
  let summary = Instrument.Collector.summary c in
  check_int "Difftest_done.execs = report.observations"
    r.Difftest.observations summary.Instrument.Collector.difftest_execs;
  let execs_evt =
    List.filter_map
      (function
        | Instrument.Difftest_done { execs; label; _ } -> Some (label, execs)
        | _ -> None)
      (Instrument.Collector.events c)
  in
  check "one Difftest_done, labelled by the model" true
    (execs_evt = [ (model.Model_def.id, r.Difftest.observations) ]);
  check_int "per-suite counter is per-test exec sum"
    (List.length
       (List.filter
          (fun (t : Eywa_core.Testcase.t) -> not t.bad_input)
          s.Eywa_core.Pipeline.unique_tests)
     * List.length Eywa_dns.Impls.all)
    r.Difftest.observations

let test_summary_fuzz_edges_gained () =
  let s =
    match Model_def.synthesize ~k:2 ~timeout:2.0 ~jobs:1 ~oracle model with
    | Ok s -> s
    | Error e -> failwith e
  in
  let c = Instrument.Collector.create () in
  let f =
    match
      Model_def.fuzz ~sink:(Instrument.Collector.sink c) ~fuzz_config ~k:2
        ~timeout:2.0 ~jobs:1 ~oracle model s
    with
    | Ok f -> f
    | Error e -> failwith e
  in
  let expected =
    List.fold_left
      (fun acc (d : Eywa_fuzz.Fuzz.draw_fuzz) ->
        acc + max 0 (d.edges_after - d.edges_seed))
      0 f.Eywa_fuzz.Fuzz.per_draw
  in
  check_int "summary.fuzz_edges_gained sums per-draw gains" expected
    (Instrument.Collector.summary c).Instrument.Collector.fuzz_edges_gained;
  (* only the fuzz stage ran under this sink: one pool batch, one
     logical unit per draw *)
  check_int "summary counts the pool batches" 1
    (Instrument.Collector.summary c).Instrument.Collector.pool_batches;
  check "the batch is the fuzz stage's" true
    (List.exists
       (function
         | Instrument.Pool_merged { label = "fuzz"; _ } -> true | _ -> false)
       (Instrument.Collector.events c))

let suite =
  [
    Alcotest.test_case "stripped trace and metrics byte-identical (jobs, cache)"
      `Slow test_stripped_trace_identical;
    Alcotest.test_case "traces well-formed, ids unique across all models" `Slow
      test_well_formed_all_models;
    Alcotest.test_case "JSONL round-trip, strip idempotent, Chrome valid" `Slow
      test_trace_roundtrip_and_strip;
    qcheck_json_roundtrip;
    Alcotest.test_case "Json canonical printing and parsing" `Quick
      test_json_units;
    Alcotest.test_case "metrics registry exposition" `Quick
      test_metrics_registry;
    Alcotest.test_case "tee preserves sink order" `Quick test_tee_ordering;
    qcheck_collector_cross_domain;
    Alcotest.test_case "Difftest_done.execs = report.observations" `Slow
      test_difftest_execs;
    Alcotest.test_case "fuzz_edges_gained and pool_batches in the summary"
      `Slow test_summary_fuzz_edges_gained;
  ]
