(* Integration: the 13 Table-2 models through the whole pipeline, and
   the protocol adapters that replay their tests differentially. *)

module Model_def = Eywa_models.Model_def
module All = Eywa_models.All_models
module Dns_models = Eywa_models.Dns_models
module Bgp_models = Eywa_models.Bgp_models
module Smtp_models = Eywa_models.Smtp_models
module Dns_adapter = Eywa_models.Dns_adapter
module Bgp_adapter = Eywa_models.Bgp_adapter
module Smtp_adapter = Eywa_models.Smtp_adapter
module Testcase = Eywa_core.Testcase
module Synthesis = Eywa_core.Synthesis
module Difftest = Eywa_difftest.Difftest

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let oracle = Eywa_llm.Gpt.oracle ()

let synth ?(k = 2) model = Model_def.synthesize ~k ~timeout:2.0 ~max_paths:600 ~oracle model

let test_roster () =
  check_int "thirteen models" 13 (List.length All.all);
  check_int "eight DNS" 8 (List.length All.dns);
  check_int "four BGP" 4 (List.length All.bgp);
  check_int "one SMTP" 1 (List.length All.smtp);
  check "find by id" true (All.find "RMAP-PL" <> None);
  check "unknown id" true (All.find "QUIC" = None)

let test_every_model_synthesizes () =
  List.iter
    (fun (m : Model_def.t) ->
      match synth m with
      | Error e -> Alcotest.failf "%s: %s" m.id e
      | Ok result ->
          check (m.id ^ " produced tests") true (List.length result.unique_tests > 0);
          check (m.id ^ " compiled at least one model") true (result.programs <> []);
          check (m.id ^ " loc bounds") true (0 < result.loc_min && result.loc_min <= result.loc_max))
    All.all

let test_unique_tests_are_unique () =
  match synth Dns_models.dname with
  | Error e -> Alcotest.fail e
  | Ok result ->
      let keys = List.map Testcase.key result.unique_tests in
      check_int "no duplicate keys" (List.length keys)
        (List.length (List.sort_uniq compare keys))

let test_k_diversity_increases_tests () =
  let count k =
    match Model_def.synthesize ~k ~timeout:2.0 ~oracle Dns_models.dname with
    | Ok r -> List.length r.unique_tests
    | Error e -> Alcotest.fail e
  in
  check "k=6 finds at least as many unique tests as k=1" true (count 6 >= count 1)

let test_temperature_zero_no_diversity () =
  let go temperature =
    match
      Model_def.synthesize ~k:3 ~temperature ~timeout:2.0 ~oracle Dns_models.cname
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let cold = go 0.0 in
  (* at tau=0 every model draw is identical, so the union equals any
     single model's tests *)
  let per_model =
    List.map
      (fun (r : Synthesis.model_result) -> List.length (Testcase.dedup r.tests))
      cold.results
  in
  check "tau=0 collapses" true
    (List.for_all (fun n -> n = List.length cold.unique_tests) per_model)

(* ----- DNS adapter ----- *)

let dname_synth = lazy (match synth ~k:4 Dns_models.dname with
  | Ok r -> r
  | Error e -> Alcotest.fail e)

let test_dns_artifacts () =
  let result = Lazy.force dname_synth in
  let with_artifacts =
    List.filter_map (Dns_adapter.artifacts_for ~model_id:"DNAME") result.unique_tests
  in
  check "most tests become zones" true (List.length with_artifacts > 0);
  List.iter
    (fun (zone, query) ->
      check "zone validates" true (Result.is_ok (Eywa_dns.Zone.validate zone));
      check "query in zone" true (Eywa_dns.Zone.in_zone zone query.Eywa_dns.Message.qname))
    with_artifacts

let test_dns_bad_input_skipped () =
  let result = Lazy.force dname_synth in
  List.iter
    (fun (t : Testcase.t) ->
      if t.bad_input then
        check "bad input not replayed" true
          (Dns_adapter.artifacts_for ~model_id:"DNAME" t = None))
    result.unique_tests

let test_dns_difftest_finds_knot_bug () =
  let result = Lazy.force dname_synth in
  let found =
    Dns_adapter.quirks_triggered ~version:Eywa_dns.Impls.Old
      [ ("DNAME", result.unique_tests) ]
  in
  check "knot DNAME owner bug found" true
    (List.mem ("knot", Eywa_dns.Lookup.Dname_name_replaced_by_query) found);
  check "nsd recursion bug found" true
    (List.mem ("nsd", Eywa_dns.Lookup.Dname_not_recursive) found)

let test_dns_current_version_fixes_old_bugs () =
  let result = Lazy.force dname_synth in
  let old_report =
    Dns_adapter.run ~model_id:"DNAME" ~version:Eywa_dns.Impls.Old result.unique_tests
  in
  let cur_report =
    Dns_adapter.run ~model_id:"DNAME" ~version:Eywa_dns.Impls.Current
      result.unique_tests
  in
  check "current version disagrees less" true
    (List.length cur_report.Difftest.tuples <= List.length old_report.Difftest.tuples)

(* ----- BGP adapter ----- *)

let test_bgp_confed_difftest () =
  match synth ~k:4 Bgp_models.confed with
  | Error e -> Alcotest.fail e
  | Ok result ->
      let found =
        Bgp_adapter.quirks_triggered
          [ ("CONFED", result.unique_tests) ]
      in
      check "sub-AS collision found on frr" true
        (List.mem ("frr", Eywa_bgp.Quirks.Confed_sub_as_eq_peer) found);
      check "sub-AS collision found on gobgp" true
        (List.mem ("gobgp", Eywa_bgp.Quirks.Confed_sub_as_eq_peer) found);
      check "sub-AS collision found on batfish" true
        (List.mem ("batfish", Eywa_bgp.Quirks.Confed_sub_as_eq_peer) found);
      check "frr replace-as bug found" true
        (List.mem ("frr", Eywa_bgp.Quirks.Replace_as_confed_broken) found)

let test_bgp_rmap_pl_difftest () =
  match synth ~k:4 Bgp_models.rmap_pl with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check "validity pipe produces bad-input tests" true
        (List.exists (fun (t : Testcase.t) -> t.bad_input) result.unique_tests);
      let found =
        Bgp_adapter.quirks_triggered
          [ ("RMAP-PL", result.unique_tests) ]
      in
      check "frr prefix-list bug found" true
        (List.mem ("frr", Eywa_bgp.Quirks.Prefix_list_ge_match) found)

let test_bgp_rr_only_local_pref () =
  (* all implementations share the reference reflection logic, so RR
     tests can only surface the Batfish local-pref bug (which rides
     along on any eBGP-learned route), never a reflection bug *)
  match synth ~k:2 Bgp_models.rr with
  | Error e -> Alcotest.fail e
  | Ok result ->
      let found =
        Bgp_adapter.quirks_triggered
          [ ("RR", result.unique_tests) ]
      in
      check "only the local-pref quirk can fire" true
        (List.for_all
           (fun (_, q) -> q = Eywa_bgp.Quirks.Local_pref_not_reset_ebgp)
           found)

(* ----- SMTP adapter ----- *)

let test_smtp_end_to_end () =
  match synth ~k:3 Smtp_models.server with
  | Error e -> Alcotest.fail e
  | Ok result -> (
      check "tests produced" true (result.unique_tests <> []);
      match Smtp_adapter.state_graph_for result with
      | Error m -> Alcotest.fail m
      | Ok graph ->
          check "graph covers the protocol states" true
            (List.length (Eywa_stategraph.Stategraph.states graph) >= 6);
          let found = Smtp_adapter.quirks_triggered ~graph result.unique_tests in
          check "aiosmtpd bug found" true
            (List.mem ("aiosmtpd", Eywa_smtp.Machine.Accept_mail_without_helo) found))

let suite =
  [
    Alcotest.test_case "roster of Table 2" `Quick test_roster;
    Alcotest.test_case "every model synthesizes" `Slow test_every_model_synthesizes;
    Alcotest.test_case "unique tests have unique keys" `Quick test_unique_tests_are_unique;
    Alcotest.test_case "k diversity grows the union" `Slow test_k_diversity_increases_tests;
    Alcotest.test_case "tau=0 collapses diversity" `Quick test_temperature_zero_no_diversity;
    Alcotest.test_case "dns: tests become valid zones" `Quick test_dns_artifacts;
    Alcotest.test_case "dns: bad inputs not replayed" `Quick test_dns_bad_input_skipped;
    Alcotest.test_case "dns: DNAME bugs found differentially" `Slow
      test_dns_difftest_finds_knot_bug;
    Alcotest.test_case "dns: fixed versions disagree less" `Slow
      test_dns_current_version_fixes_old_bugs;
    Alcotest.test_case "bgp: confederation bugs found" `Slow test_bgp_confed_difftest;
    Alcotest.test_case "bgp: prefix-list bug found" `Slow test_bgp_rmap_pl_difftest;
    Alcotest.test_case "bgp: RR surfaces only local-pref" `Quick test_bgp_rr_only_local_pref;
    Alcotest.test_case "smtp: stateful end to end" `Slow test_smtp_end_to_end;
  ]
